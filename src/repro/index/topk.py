"""TopKMemNN — approximate retrieval in front of exact attention.

The solver wraps the existing exact kernels rather than replacing
them: an :class:`~repro.index.ivf.IVFIndex` selects candidate rows per
question batch, and the lazy-softmax column dataflow (or its sharded
fan-out) runs *unchanged* on the candidate subset — via a plain row
gather on resident memories, or a
:class:`~repro.store.base.RowSubsetStore` view on an out-of-core tier
(PR 5's gather substrate).  The only approximation is which rows are
examined; the arithmetic on the examined rows is the exact kernel's.

Below ``TopKConfig.min_rows`` the solver skips the index entirely and
delegates to the exact kernel over the full memory — *bit-exact* with
the non-topk path (the differential suite pins this at 1e-10), so the
tier can be left enabled unconditionally and small memories pay
nothing.

With ``measure_recall`` set, each pass also computes the attention-mass
recall: the fraction of the exact softmax mass the candidate set
captured, via one streaming online-softmax pass over the full memory.
That is the metric the differential harness and the recall benchmark
hold a floor on (answer agreement is checked separately at the
answer-ID level); it costs the ``O(ns * ed)`` scan the tier exists to
avoid, so it is measurement machinery, not the serving path — recall
measurement runs outside the pass's timed window.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..core.column import ColumnMemNN, check_dtype
from ..core.config import ChunkConfig, ExecutionConfig, TopKConfig, ZeroSkipConfig
from ..core.results import InferenceResult
from ..core.sharded import ShardedMemNN
from ..core.stats import OpStats
from ..store.base import MemoryStore, StoreStats, iter_chunk_spans
from ..store.resident import ResidentStore
from .ivf import IVFIndex
from .stats import IndexStats

__all__ = ["TopKMemNN"]

#: Rows per block of the streaming recall measurement.
RECALL_BLOCK_ROWS = 16_384


class TopKMemNN:
    """Top-k candidate retrieval feeding the exact column kernels.

    Args:
        m_in: ``(ns, ed)`` input memory (omit when ``store`` is given).
        m_out: ``(ns, ed)`` output memory.
        config: the :class:`~repro.core.config.TopKConfig` driving the
            tier (must be enabled — a disabled tier has no reason to
            construct this solver).
        chunk: chunking of the downstream column dataflow.
        dtype: compute precision (a ``store`` dictates its own).
        store: a :class:`~repro.store.MemoryStore` to retrieve from
            instead of resident arrays; candidate subsets become lazy
            :class:`~repro.store.base.RowSubsetStore` views of it.
        num_shards: fan the candidate subset out over this many shards
            (1 runs the plain column kernel).
        shard_policy: row-partition policy of the candidate fan-out.
        execution: execution backend for the sharded fan-out.
        resident_bytes: chunk-LRU budget of store-backed passes.
        prefetch_depth: chunk lookahead of store-backed passes.
    """

    def __init__(
        self,
        m_in: np.ndarray | None = None,
        m_out: np.ndarray | None = None,
        config: TopKConfig | None = None,
        chunk: ChunkConfig | None = None,
        dtype=np.float64,
        store: MemoryStore | None = None,
        num_shards: int = 1,
        shard_policy: str = "contiguous",
        execution: ExecutionConfig | None = None,
        resident_bytes: int | None = None,
        prefetch_depth: int = 0,
    ) -> None:
        self.config = config if config is not None else TopKConfig(nprobe=8)
        if not self.config.enabled:
            raise ValueError(
                "TopKMemNN requires an enabled TopKConfig (nprobe > 0); "
                "run the exact kernels directly when the tier is off"
            )
        self.chunk = chunk if chunk is not None else ChunkConfig()
        self.num_shards = num_shards
        self.shard_policy = shard_policy
        self.execution = execution
        self._resident_bytes = resident_bytes
        self._prefetch_depth = prefetch_depth
        # An explicit store keeps store semantics end to end (subset
        # passes run through the chunk pipeline and its ledger); plain
        # arrays keep the pipeline-free hot path of the array kernels.
        self._explicit_store = store is not None
        if store is not None:
            if m_in is not None or m_out is not None:
                raise ValueError("pass either (m_in, m_out) or store=, not both")
            self.dtype = check_dtype(store.dtype)
            self._base: MemoryStore = store
        else:
            if m_in is None or m_out is None:
                raise ValueError("memories required: pass (m_in, m_out) or store=")
            self.dtype = check_dtype(dtype)
            self._base = ResidentStore(m_in, m_out, dtype=self.dtype)
        self._index: IVFIndex | None = None
        self._build_seconds = 0.0
        self._build_charged = False
        self._exact_solver: ColumnMemNN | ShardedMemNN | None = None
        self._subset_store_stats: StoreStats | None = None

    # --- geometry ------------------------------------------------------------

    @property
    def num_sentences(self) -> int:
        return self._base.num_rows

    @property
    def embedding_dim(self) -> int:
        return self._base.embedding_dim

    @property
    def store(self) -> MemoryStore:
        """The tier the candidate rows are retrieved from."""
        return self._base

    @property
    def uses_index(self) -> bool:
        """Whether this memory's size puts passes through the index."""
        return self.config.uses_index(self.num_sentences)

    @property
    def index(self) -> IVFIndex | None:
        """The built IVF index (``None`` until the first indexed pass)."""
        return self._index

    @property
    def store_stats(self) -> StoreStats | None:
        """Cumulative chunk-pipeline ledger across all passes (subset
        passes plus the exact-fallback solver), or ``None`` when no
        pass ran a pipeline."""
        total: StoreStats | None = self._subset_store_stats
        if self._exact_solver is not None:
            exact = self._exact_solver.store_stats
            if exact is not None:
                total = exact if total is None else total + exact
        return total.snapshot() if total is not None else None

    # --- inference -----------------------------------------------------------

    def output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> InferenceResult:
        """Response vectors via probe -> gather -> exact attention.

        Mirrors the exact solvers' ``output`` signature so the engine
        dispatches to it interchangeably; the result additionally
        carries an :class:`~repro.index.stats.IndexStats`.
        """
        if not self.uses_index:
            return self._exact_output(u, zero_skip, stable)

        start = time.perf_counter()
        u_checked = self._check_questions(u)
        index = self._ensure_index()
        probe_start = time.perf_counter()
        candidates, _ = index.probe(u_checked, self.config.nprobe)
        solver = self._subset_solver(candidates)
        probe_seconds = time.perf_counter() - probe_start

        result = solver.output(u_checked, zero_skip=zero_skip, stable=stable)
        result.stats = result.stats + self._probe_stats(
            len(u_checked), index.nlist
        )
        self._absorb_subset_ledger(solver)
        elapsed = time.perf_counter() - start

        recall = None
        if self.config.measure_recall:
            # Diagnostics-only O(ns*ed) pass, outside the timed window.
            recall = self._attention_mass_recall(u_checked, candidates)
        build_seconds = 0.0 if self._build_charged else self._build_seconds
        self._build_charged = True
        result.index_stats = IndexStats(
            num_rows=self.num_sentences,
            candidate_rows=len(candidates),
            nlist=index.nlist,
            nprobe=self.config.nprobe,
            used_index=True,
            build_seconds=build_seconds,
            probe_seconds=probe_seconds,
            recall=recall,
            candidates=(
                tuple(int(row) for row in candidates)
                if self.config.record_candidates
                else None
            ),
        )
        result.elapsed_seconds = elapsed
        # Replace the subset solver's per-pass ledger with the tier's
        # cumulative one (private storage: tier_stats() is the only
        # read surface since the attribute shims were removed).
        result._store_stats = self.store_stats
        return result

    # --- internals -----------------------------------------------------------

    def _exact_output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None,
        stable: bool,
    ) -> InferenceResult:
        """Exact-scan fallback: the configured kernel over every row,
        bit-identical to the tier being disabled."""
        if self._exact_solver is None:
            self._exact_solver = self._build_solver(full_memory=True)
        result = self._exact_solver.output(u, zero_skip=zero_skip, stable=stable)
        result.index_stats = IndexStats(
            num_rows=self.num_sentences,
            candidate_rows=self.num_sentences,
            nlist=0,
            nprobe=self.config.nprobe,
            used_index=False,
            recall=1.0 if self.config.measure_recall else None,
        )
        return result

    def _ensure_index(self) -> IVFIndex:
        if self._index is None:
            build_start = time.perf_counter()
            self._index = IVFIndex.build(
                self._base,
                nlist=self.config.effective_nlist(self.num_sentences),
                kmeans_iters=self.config.kmeans_iters,
                seed=self.config.seed,
            )
            self._build_seconds = time.perf_counter() - build_start
            self._build_charged = False
        return self._index

    def _build_solver(
        self,
        full_memory: bool = False,
        candidates: np.ndarray | None = None,
    ) -> ColumnMemNN | ShardedMemNN:
        """The exact kernel over the full memory or a candidate subset."""
        execution = self.execution
        if (
            not full_memory
            and execution is not None
            and execution.backend == "process"
        ):
            # Candidate-subset solvers are transient — one per pass,
            # over a different row set each time.  Routing them through
            # the process backend would spill the gathered subset and
            # spin a worker pool per pass, costing far more than the
            # fan-out parallelizes; the process backend accelerates the
            # long-lived full-memory fallback only, and subset passes
            # run the serial per-shard loop.
            execution = replace(execution, backend="serial", num_workers=1)
        if self._explicit_store:
            source = self._base if full_memory else self._base.select(candidates)
            tier = {
                "store": source,
                "resident_bytes": self._resident_bytes,
                "prefetch_depth": self._prefetch_depth,
            }
        else:
            if full_memory:
                m_in, m_out = self._base.m_in, self._base.m_out  # type: ignore[attr-defined]
            else:
                m_in, m_out = self._base.read_rows(candidates)
            tier = {
                "m_in": m_in,
                "m_out": m_out,
                "dtype": self.dtype,
                "resident_bytes": self._resident_bytes,
                "prefetch_depth": self._prefetch_depth,
            }
        if self.num_shards > 1:
            return ShardedMemNN(
                num_shards=self.num_shards,
                policy=self.shard_policy,
                chunk=self.chunk,
                execution=execution,
                **tier,
            )
        return ColumnMemNN(chunk=self.chunk, **tier)

    def close(self) -> None:
        """Release the full-memory fallback solver's backend resources
        (worker pool / self-spilled store).  The tier stays usable —
        the next exact-fallback pass rebuilds the solver."""
        if self._exact_solver is not None:
            close = getattr(self._exact_solver, "close", None)
            if close is not None:
                close()
            self._exact_solver = None

    def _subset_solver(self, candidates: np.ndarray) -> ColumnMemNN | ShardedMemNN:
        return self._build_solver(candidates=candidates)

    def _absorb_subset_ledger(self, solver: ColumnMemNN | ShardedMemNN) -> None:
        """Fold a transient subset solver's pipeline ledger into the
        tier-lifetime total (each subset solver serves one pass)."""
        stats = solver.store_stats
        if stats is None:
            return
        snapshot = stats.snapshot()
        self._subset_store_stats = (
            snapshot
            if self._subset_store_stats is None
            else self._subset_store_stats + snapshot
        )

    def _probe_stats(self, nq: int, nlist: int) -> OpStats:
        """Countable cost of the centroid probe (the gather and the
        candidate pass are already counted by the subset kernel)."""
        ed = self.embedding_dim
        return OpStats(
            flops=2 * nq * nlist * ed,
            bytes_read=nlist * ed * np.dtype(np.float64).itemsize,
        )

    def _attention_mass_recall(
        self, u: np.ndarray, candidates: np.ndarray
    ) -> float:
        """Mean over questions of the exact softmax mass the candidate
        set captures, via a streaming online softmax over all rows."""
        base = self._base
        ns = base.num_rows
        nq = len(u)
        u64 = np.asarray(u, dtype=np.float64)
        mask = np.zeros(ns, dtype=bool)
        mask[candidates] = True
        log_max = np.full(nq, -np.inf)
        denom = np.zeros(nq)
        cand_mass = np.zeros(nq)
        for start, stop in iter_chunk_spans(ns, RECALL_BLOCK_ROWS):
            rows = np.asarray(base.read_chunk(start, stop)[0], dtype=np.float64)
            scores = u64 @ rows.T
            new_max = np.maximum(log_max, scores.max(axis=1))
            with np.errstate(invalid="ignore"):
                scale = np.where(
                    np.isneginf(log_max), 0.0, np.exp(log_max - new_max)
                )
            denom *= scale
            cand_mass *= scale
            log_max = new_max
            exp_scores = np.exp(scores - log_max[:, None])
            denom += exp_scores.sum(axis=1)
            block_mask = mask[start:stop]
            if block_mask.any():
                cand_mass += exp_scores[:, block_mask].sum(axis=1)
        return float(np.mean(cand_mass / denom))

    def _check_questions(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=self.dtype)
        if u.ndim == 1:
            u = u[None, :]
        if u.ndim != 2 or u.shape[1] != self.embedding_dim:
            raise ValueError(
                f"questions must be (nq, {self.embedding_dim}), got {u.shape}"
            )
        return u
