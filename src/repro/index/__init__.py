"""Approximate top-k retrieval tier in front of exact attention.

Every exact attention path still touches all ``ns`` memory rows per
hop; MnnFast's zero-skipping data (§3.2, Fig. 6) shows most of those
rows carry negligible attention mass.  This package cashes that in the
way sparse-access memories (Rae et al.) and hierarchical memory
networks (Chandar et al.) do: an IVF index over ``M_IN`` selects
candidate rows per question batch, and the *exact* lazy-softmax column
kernel runs on the candidates only — ``O(sqrt(ns))``-ish work per
question instead of ``O(ns)``, with the approximation confined to
which rows are examined.

* :class:`IVFIndex` — the k-means clustered inverted file (build +
  probe), streaming-built so out-of-core memories index without
  materializing.
* :class:`TopKMemNN` — the solver the engine dispatches to: probe,
  gather (resident rows or a lazy
  :class:`~repro.store.base.RowSubsetStore` view of a disk tier),
  exact attention, with a bit-exact full-scan fallback below
  ``TopKConfig.min_rows``.
* :class:`IndexStats` — per-pass observability (candidates examined,
  probe/build time, attention-mass recall).
* :func:`compare_topk_vs_exact` / :func:`synthetic_topical_workload` —
  the recall-vs-exact differential harness (answer agreement +
  attention-mass recall, not 1e-10 equality).
"""

from .harness import (
    TopKComparison,
    compare_topk_vs_exact,
    synthetic_topical_workload,
)
from .ivf import IVFIndex
from .stats import IndexStats
from .topk import TopKMemNN

__all__ = [
    "IVFIndex",
    "IndexStats",
    "TopKMemNN",
    "TopKComparison",
    "compare_topk_vs_exact",
    "synthetic_topical_workload",
]
