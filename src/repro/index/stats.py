"""Observability counters of the top-k retrieval tier.

Kept dependency-free (no imports from :mod:`repro.core` or
:mod:`repro.store`) so result containers anywhere in the stack can
carry an :class:`IndexStats` without creating an import cycle —
``repro.index`` depends on the core kernels, not the other way round.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IndexStats"]


@dataclass(frozen=True)
class IndexStats:
    """What the retrieval tier did for one inference pass.

    Attributes:
        num_rows: total memory rows (``ns``) behind the tier.
        candidate_rows: rows the exact kernel actually examined — the
            union of the probed clusters' members across the question
            batch (every row under exact-scan fallback).
        nlist: cluster count of the index (``0`` when no index was
            used — fallback or tier disabled).
        nprobe: clusters probed per question.
        used_index: ``True`` when the pass went through the IVF index;
            ``False`` means the exact-scan fallback ran (bit-exact).
        build_seconds: wall-clock spent building the index, charged to
            the first pass that triggered the build (``0.0`` after).
        probe_seconds: wall-clock of the centroid probe + candidate
            gather for this pass.
        recall: mean attention-mass recall across the batch — the
            fraction of the exact softmax mass the candidate set
            captured (``None`` unless the config asked the tier to
            measure it; ``1.0`` exactly under fallback).
        candidates: the candidate row IDs themselves, sorted (``None``
            unless ``TopKConfig.record_candidates`` asked the tier to
            keep them — measurement machinery for qrels-style retrieval
            evaluation, where *which* rows were examined is the ground
            truth being scored).  Under exact-scan fallback every row
            is a candidate, so nothing is recorded.
    """

    num_rows: int
    candidate_rows: int
    nlist: int
    nprobe: int
    used_index: bool
    build_seconds: float = 0.0
    probe_seconds: float = 0.0
    recall: float | None = None
    candidates: tuple[int, ...] | None = None

    @property
    def candidate_fraction(self) -> float:
        """Fraction of the memory the exact kernel touched."""
        return self.candidate_rows / self.num_rows if self.num_rows else 1.0
