"""IVF (inverted-file) index over ``M_IN`` rows.

The retrieval tier's data structure: k-means clusters the memory rows
once, then each query probes the ``nprobe`` clusters whose centroids
score highest under the attention inner product and the exact kernel
runs on the union of their member rows.  Per query that costs
``O(nlist * ed)`` centroid scores plus ``O(ns * nprobe / nlist)``
candidate rows — sublinear in ``ns`` at the classic ``nlist = sqrt(ns)``
sizing, versus the ``O(ns * ed)`` full scan.

This is the same structure sparse-access memories (Rae et al.) and
hierarchical memory networks (Chandar et al.) put in front of large
external memories; the FAISS-style variant here is deliberately plain
NumPy:

* **Build** — Lloyd k-means with blocked assignment: rows stream
  through in ``block_rows`` slices straight from the
  :class:`~repro.store.MemoryStore` tier, so building over an
  out-of-core memory never materializes it.  Nearest-centroid uses the
  ``argmax(x . c - ||c||^2 / 2)`` identity (the ``||x||^2`` term is
  constant per row), and per-cluster sums use one ``bincount`` per
  embedding column instead of ``ufunc.at`` scatter-adds.
* **Probe** — one ``(nq, nlist)`` GEMM against the centroids, an
  ``argpartition`` top-``nprobe`` per query, then the union of the
  selected clusters' member lists across the batch (the column kernel
  runs once per batch, so the batch shares one candidate set).

Determinism: centroid seeding is driven by the config seed, ties in
``argmax``/``argpartition`` resolve the NumPy way, and member lists are
kept in sorted row order — the same memories and config always build
the same index and return the same candidates.
"""

from __future__ import annotations

import numpy as np

from ..store.base import MemoryStore, iter_chunk_spans

__all__ = ["IVFIndex"]

#: Rows per blocked k-means assignment pass (bounds the transient
#: ``(block, nlist)`` score matrix; 64k rows x 256 clusters x 8B = 128MB
#: worst case at the default sizing).
DEFAULT_BLOCK_ROWS = 65_536


class IVFIndex:
    """A k-means clustered inverted file over memory rows.

    Build with :meth:`build`; query with :meth:`probe`.  The index
    holds only the ``(nlist, ed)`` centroid matrix and the member-row
    permutation — ``O(nlist * ed + ns)`` memory, independent of the
    tier the rows themselves live on.

    Attributes:
        centroids: ``(nlist, ed)`` float64 cluster centroids.
    """

    def __init__(
        self,
        centroids: np.ndarray,
        members: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        self.centroids = np.ascontiguousarray(centroids, dtype=np.float64)
        self._members = np.asarray(members, dtype=np.intp)
        self._offsets = np.asarray(offsets, dtype=np.intp)
        if self.centroids.ndim != 2:
            raise ValueError("centroids must be 2-D (nlist, ed)")
        if len(self._offsets) != len(self.centroids) + 1:
            raise ValueError("offsets must have nlist + 1 entries")

    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]

    @property
    def num_rows(self) -> int:
        return len(self._members)

    @property
    def embedding_dim(self) -> int:
        return self.centroids.shape[1]

    def cluster_members(self, cluster: int) -> np.ndarray:
        """Sorted row indices assigned to ``cluster``."""
        return self._members[self._offsets[cluster] : self._offsets[cluster + 1]]

    @property
    def cluster_sizes(self) -> np.ndarray:
        return np.diff(self._offsets)

    @classmethod
    def build(
        cls,
        store: MemoryStore,
        nlist: int,
        kmeans_iters: int = 4,
        seed: int = 0,
        block_rows: int = DEFAULT_BLOCK_ROWS,
    ) -> "IVFIndex":
        """Cluster the store's ``M_IN`` rows into ``nlist`` cells.

        Rows stream through in ``block_rows`` slices, so the build
        works unchanged over out-of-core stores.  Empty clusters keep
        their previous centroid (they simply attract no probes).
        """
        ns = store.num_rows
        if ns == 0:
            raise ValueError("cannot build an index over an empty memory")
        nlist = max(1, min(nlist, ns))
        if kmeans_iters < 1:
            raise ValueError(f"kmeans_iters must be >= 1, got {kmeans_iters}")

        rng = np.random.default_rng(seed)
        seed_rows = np.sort(rng.choice(ns, size=nlist, replace=False))
        centroids = store.read_rows(seed_rows)[0].astype(np.float64, copy=True)

        ed = store.embedding_dim
        assignments = np.empty(ns, dtype=np.intp)
        for _ in range(kmeans_iters):
            cls._assign(store, centroids, assignments, block_rows)
            counts = np.bincount(assignments, minlength=nlist).astype(np.float64)
            sums = np.zeros((nlist, ed), dtype=np.float64)
            for start, stop in iter_chunk_spans(ns, block_rows):
                rows = np.asarray(
                    store.read_chunk(start, stop)[0], dtype=np.float64
                )
                block_assign = assignments[start:stop]
                for dim in range(ed):
                    sums[:, dim] += np.bincount(
                        block_assign, weights=rows[:, dim], minlength=nlist
                    )
            nonempty = counts > 0
            centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        # One final assignment so membership matches the centroids a
        # probe will score (the loop updates centroids after assigning).
        cls._assign(store, centroids, assignments, block_rows)

        order = np.argsort(assignments, kind="stable")
        offsets = np.zeros(nlist + 1, dtype=np.intp)
        np.cumsum(np.bincount(assignments, minlength=nlist), out=offsets[1:])
        return cls(centroids, order, offsets)

    @staticmethod
    def _assign(
        store: MemoryStore,
        centroids: np.ndarray,
        out: np.ndarray,
        block_rows: int,
    ) -> None:
        """Nearest-centroid (L2) assignment, blocked over the store."""
        half_sq = 0.5 * np.einsum("ij,ij->i", centroids, centroids)
        for start, stop in iter_chunk_spans(store.num_rows, block_rows):
            rows = np.asarray(store.read_chunk(start, stop)[0], dtype=np.float64)
            scores = rows @ centroids.T
            scores -= half_sq
            np.argmax(scores, axis=1, out=out[start:stop])

    def probe(self, u: np.ndarray, nprobe: int) -> tuple[np.ndarray, np.ndarray]:
        """Candidate rows for a question batch.

        Each question scores every centroid under the attention inner
        product and selects its ``nprobe`` best clusters; the batch's
        candidate set is the union of the selected clusters' members
        (the exact column kernel runs once for the whole batch, so the
        candidate set is shared — per-question subsets would forfeit
        the batch's single memory stream).

        Args:
            u: ``(nq, ed)`` question state vectors.
            nprobe: clusters probed per question.

        Returns:
            ``(candidates, clusters)`` — sorted unique candidate row
            indices, and the sorted unique cluster ids they came from.
        """
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        u = np.atleast_2d(np.asarray(u, dtype=np.float64))
        if u.shape[1] != self.embedding_dim:
            raise ValueError(
                f"questions must be (nq, {self.embedding_dim}), got {u.shape}"
            )
        nprobe = min(nprobe, self.nlist)
        scores = u @ self.centroids.T
        if nprobe == self.nlist:
            clusters = np.arange(self.nlist, dtype=np.intp)
        else:
            top = np.argpartition(scores, -nprobe, axis=1)[:, -nprobe:]
            clusters = np.unique(top).astype(np.intp)
        if len(clusters) == self.nlist:
            # Every cluster probed: the members are a permutation of all
            # rows, so the sorted candidate list is simply 0..ns-1.
            return np.arange(self.num_rows, dtype=np.intp), clusters
        candidates = np.sort(
            np.concatenate([self.cluster_members(c) for c in clusters])
        )
        return candidates, clusters
