"""Recall-vs-exact differential harness for the top-k tier.

The tier is approximate by design, so the exactness harness the other
optimizations use (1e-10 output agreement) is the wrong instrument.
What matters for an approximate retrieval stage is:

* **answer agreement** — the fraction of questions whose argmax answer
  ID matches the exact engine's (the end-to-end metric a deployment
  cares about);
* **attention-mass recall@k** — per hop, the fraction of the exact
  softmax mass the candidate set captured (the retrieval-quality
  metric; 1.0 means the skipped rows held zero attention mass).

:func:`compare_topk_vs_exact` runs the same weights, memories and
questions through an exact engine and a top-k engine and reports both
metrics.  :func:`synthetic_topical_workload` generates the workload
the comparison needs to be meaningful: bAbI-style stories with *topic*
structure (sentences within a topic share anchor words), questions
that revisit a stored sentence — the concentrated-attention regime
MnnFast's own zero-skipping data (Fig. 6) shows trained MANNs live in.
On structureless uniform-random stories attention is near-uniform and
no sublinear retrieval scheme (nor zero-skipping) has anything to
find.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import EngineConfig, MemNNConfig
from ..core.engine import AnswerResult, EngineWeights, MnnFastEngine

__all__ = [
    "TopKComparison",
    "compare_topk_vs_exact",
    "synthetic_topical_workload",
]


def synthetic_topical_workload(
    config: MemNNConfig,
    num_questions: int,
    num_topics: int | None = None,
    anchor_words: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stories with topic structure plus questions that revisit them.

    Each story sentence belongs to one of ``num_topics`` topics and
    spends ``anchor_words`` of its ``nw`` word slots on the topic's
    shared anchor words (the rest are uniform over the vocabulary), so
    same-topic sentences embed near each other — the cluster structure
    an IVF index discovers.  Each question copies a stored sentence's
    words, so its state vector aligns with that row and the attention
    mass concentrates there (and on its topic-mates).

    ``num_topics`` defaults to ``round(sqrt(ns))`` — matching the
    index's default ``nlist`` sizing, so topics are cluster-sized at
    every scale and the probed fraction shrinks as ``ns`` grows (the
    sublinearity the benchmark measures).

    Returns:
        ``(stories, questions)`` word-ID arrays of shape ``(ns, nw)``
        and ``(num_questions, nw)``.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    ns = config.num_sentences
    nw = config.max_words
    vocab = config.vocab_size
    if num_topics is None:
        num_topics = max(1, int(round(np.sqrt(ns))))
    num_topics = min(num_topics, ns)
    if anchor_words is None:
        anchor_words = max(1, (2 * nw) // 3)
    anchor_words = min(anchor_words, nw)
    if vocab < 2:
        raise ValueError("need vocab_size >= 2 (word 0 is the pad)")

    # Word 0 is PAD (embeds to zero); draw real words from [1, vocab).
    anchors = rng.integers(1, vocab, size=(num_topics, anchor_words))
    topic = rng.integers(0, num_topics, size=ns)
    stories = rng.integers(1, vocab, size=(ns, nw))
    stories[:, :anchor_words] = anchors[topic]
    revisit = rng.integers(0, ns, size=num_questions)
    questions = stories[revisit].copy()
    return stories, questions


@dataclass(frozen=True)
class TopKComparison:
    """Outcome of one exact-vs-topk differential run.

    Attributes:
        num_questions: questions compared.
        answer_agreement: fraction of questions whose argmax answer ID
            matched the exact engine's.
        mean_recall: attention-mass recall averaged over hops (``None``
            when the tier ran in exact-scan fallback without
            measurement).
        min_recall: worst per-hop attention-mass recall.
        mean_candidate_fraction: average fraction of memory rows the
            top-k engine examined per hop (1.0 under fallback).
        used_index: whether any hop actually went through the index.
        exact: the exact engine's :class:`AnswerResult`.
        topk: the top-k engine's :class:`AnswerResult`.
    """

    num_questions: int
    answer_agreement: float
    mean_recall: float | None
    min_recall: float | None
    mean_candidate_fraction: float
    used_index: bool
    exact: AnswerResult
    topk: AnswerResult


def compare_topk_vs_exact(
    config: MemNNConfig,
    questions: np.ndarray,
    engine_config: EngineConfig,
    weights: EngineWeights | None = None,
    stories: np.ndarray | None = None,
    memories: tuple[np.ndarray, np.ndarray] | None = None,
) -> TopKComparison:
    """Run the same workload exactly and through the top-k tier.

    The exact engine is ``engine_config`` with the tier disabled; the
    top-k engine is ``engine_config`` with recall measurement forced on
    (so per-hop :class:`~repro.index.stats.IndexStats` carry the
    attention-mass recall).  Everything else — weights, memories,
    algorithm, sharding, store tier, zero-skipping — is shared, so the
    comparison isolates the retrieval approximation.

    Args:
        config: network shape.
        questions: ``(nq, nw)`` question word IDs.
        engine_config: the top-k configuration under test (its ``topk``
            must be enabled).
        weights: model parameters (random when omitted — shared by
            both engines either way).
        stories: ``(ns, nw)`` story word IDs to embed and store.
        memories: pre-embedded ``(m_in, m_out)`` alternative to
            ``stories`` (layer-wise tying only).
    """
    if not engine_config.topk.enabled:
        raise ValueError("engine_config.topk must be enabled to compare")
    if (stories is None) == (memories is None):
        raise ValueError("pass exactly one of stories= or memories=")
    weights = weights if weights is not None else EngineWeights.random(config)

    exact_cfg = engine_config.with_topk(nprobe=0)
    topk_cfg = engine_config.with_topk(
        nprobe=engine_config.topk.nprobe, measure_recall=True
    )

    results: dict[str, AnswerResult] = {}
    for name, cfg in (("exact", exact_cfg), ("topk", topk_cfg)):
        engine = MnnFastEngine(config, weights=weights, engine_config=cfg)
        if stories is not None:
            engine.store_story(stories)
        else:
            engine.set_memories(*memories)
        results[name] = engine.answer(questions)

    exact, topk = results["exact"], results["topk"]
    agreement = float(np.mean(exact.answer_ids == topk.answer_ids))
    index_stats = [s for s in topk.tier_stats()["index"] if s is not None]
    recalls = [s.recall for s in index_stats if s.recall is not None]
    fractions = [s.candidate_fraction for s in index_stats]
    return TopKComparison(
        num_questions=len(questions),
        answer_agreement=agreement,
        mean_recall=float(np.mean(recalls)) if recalls else None,
        min_recall=float(np.min(recalls)) if recalls else None,
        mean_candidate_fraction=(
            float(np.mean(fractions)) if fractions else 1.0
        ),
        used_index=any(s.used_index for s in index_stats),
        exact=exact,
        topk=topk,
    )
