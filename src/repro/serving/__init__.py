"""Multi-tenant QA serving simulator (the §2.2.3 scenario, end to end).

The serving API v2: :class:`ServerConfig` embeds the repo-wide
:class:`~repro.core.config.EngineConfig`, requests carry deadlines and
lifecycle traces, and the policy layer (admission control, retries,
graceful degradation) keeps the server responsive under overload.
"""

from .metrics import BatchSample, LatencySample, ServingMetrics
from .overload import OverloadResult, run_overload_experiment
from .policy import (
    AdmissionConfig,
    DegradationConfig,
    DegradationPolicy,
    RetryConfig,
    exit_rate_for_threshold,
    skip_ratio_for_threshold,
)
from .requests import QuestionRequest, StoryRequest, Workload, generate_workload
from .server import QaServer, ServerConfig, cpu_algorithm
from .trace import STAGE_GROUPS, RequestTrace, Span, stage_group

__all__ = [
    "QaServer",
    "ServerConfig",
    "cpu_algorithm",
    "Workload",
    "generate_workload",
    "QuestionRequest",
    "StoryRequest",
    "ServingMetrics",
    "LatencySample",
    "BatchSample",
    "AdmissionConfig",
    "RetryConfig",
    "DegradationConfig",
    "DegradationPolicy",
    "exit_rate_for_threshold",
    "skip_ratio_for_threshold",
    "RequestTrace",
    "Span",
    "STAGE_GROUPS",
    "stage_group",
    "OverloadResult",
    "run_overload_experiment",
]
