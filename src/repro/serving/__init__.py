"""Multi-tenant QA serving simulator (the §2.2.3 scenario, end to end)."""

from .metrics import LatencySample, ServingMetrics
from .requests import QuestionRequest, StoryRequest, Workload, generate_workload
from .server import QaServer, ServerConfig

__all__ = [
    "QaServer",
    "ServerConfig",
    "Workload",
    "generate_workload",
    "QuestionRequest",
    "StoryRequest",
    "ServingMetrics",
    "LatencySample",
]
