"""Robustness policies for the serving stack.

Three orthogonal controls, each a small config consumed by
:class:`~repro.serving.server.QaServer`:

* :class:`AdmissionConfig` — a bounded admission queue.  Arrivals that
  would push the queue past ``max_queue`` are *shed* immediately (load
  shedding) instead of building an unbounded backlog.
* :class:`RetryConfig` — shed or timed-out requests may retry with
  exponential backoff, up to ``max_retries`` attempts.
* :class:`DegradationConfig` / :class:`DegradationPolicy` — graceful
  degradation.  Sparse-retrieval work (Rae et al.; A2P-MANN) shows the
  attention-sparsity threshold is a *tunable* knob: under overload the
  policy raises ``th_skip`` and cuts inference hops — shedding
  *compute* instead of *requests* — and restores full fidelity once
  the queue drains.  The controller is a simple hysteresis loop over
  the observed queue depth (raise a level at ``high_watermark``, drop
  one at ``low_watermark``).

:func:`skip_ratio_for_threshold` maps a zero-skip threshold onto the
compute-reduction ratio the CPU timing model consumes, anchored at the
paper's Fig. 7 operating point (97% of weighted-sum work removed at
``th_skip = 0.1``) and monotone in the threshold.

:func:`exit_rate_for_threshold` is its early-exit sibling: it maps the
confidence gate's pruning threshold
(:class:`~repro.core.config.EarlyExitConfig`) onto the expected
per-check fraction of questions that exit, the geometric-survivor
model :meth:`~repro.serving.server.QaServer.expected_hop_survivors`
turns into a depth histogram.  Under overload the degradation policy
raises this threshold (:meth:`DegradationPolicy.effective_exit_threshold`)
so the server sheds *hops* before it sheds *requests*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import EngineConfig
from ..perf.cpu import PAPER_SKIP_RATIO

__all__ = [
    "AdmissionConfig",
    "RetryConfig",
    "DegradationConfig",
    "DegradationPolicy",
    "exit_rate_for_threshold",
    "skip_ratio_for_threshold",
]


def skip_ratio_for_threshold(threshold: float) -> float:
    """Compute-reduction ratio of zero-skipping at a given threshold.

    Calibrated to the paper's Fig. 7 anchor (``th_skip = 0.1`` removes
    97% of the weighted-sum work) with a gentle logarithmic slope —
    raising the threshold skips more rows, never fewer — and capped at
    99% (some rows always survive).
    """
    if threshold <= 0.0:
        return 0.0
    ratio = PAPER_SKIP_RATIO * (1.0 + 0.05 * math.log10(threshold / 0.1))
    return float(min(0.99, max(0.0, ratio)))


def exit_rate_for_threshold(threshold: float) -> float:
    """Expected per-check early-exit fraction at a gate threshold.

    Calibrated against the synthetic topical workload the early-exit
    benchmark runs (``benchmarks/bench_early_exit.py``): on a
    concentrated-attention workload roughly half the questions clear a
    ``logit_margin`` gate at its first check for ``threshold = 0.05``
    and the fraction grows sub-linearly from there.  The contract the
    serving layer relies on is the shape, not the constant: 0 at
    ``threshold = 0`` (gate disabled), strictly monotone increasing,
    capped below 1 (some questions always run full depth).
    """
    if threshold <= 0.0:
        return 0.0
    return float(min(0.95, threshold**0.25))


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounded admission queue.

    Attributes:
        max_queue: admitted-but-unstarted requests the server will hold;
            arrivals beyond it are shed.  ``None`` disables shedding
            (the pre-robustness behavior).
    """

    max_queue: int | None = None

    def __post_init__(self) -> None:
        if self.max_queue is not None and self.max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {self.max_queue}")


@dataclass(frozen=True)
class RetryConfig:
    """Retry-with-exponential-backoff for shed / timed-out requests.

    Attributes:
        max_retries: additional attempts after the first (0 = no retry).
        backoff_base: backoff before the first retry, in seconds.
        backoff_factor: multiplier per subsequent retry.
    """

    max_retries: int = 0
    backoff_base: float = 500e-6
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base must be >= 0 and backoff_factor >= 1")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class DegradationConfig:
    """Graceful-degradation knobs (queue-depth hysteresis controller).

    Attributes:
        enabled: master switch.
        high_watermark: queue depth at/above which the level rises.
        low_watermark: queue depth at/below which the level falls.
        max_level: deepest degradation level.
        threshold_factor: ``th_skip`` multiplier per level.
        max_threshold: ceiling on the degraded threshold (the paper
            sweeps up to 0.5 in Fig. 7).
        hop_step: inference hops removed per level.
        min_hops: floor on the degraded hop count.
        exit_threshold_step: early-exit gate threshold *added* per
            level — the per-question hop-pruning lever.  Additive so a
            zero base threshold (gate off) switches on under load.
        max_exit_threshold: ceiling on the degraded exit threshold
            (the gate's own domain is ``[0, 1)``).
    """

    enabled: bool = False
    high_watermark: int = 8
    low_watermark: int = 2
    max_level: int = 3
    threshold_factor: float = 2.0
    max_threshold: float = 0.5
    hop_step: int = 1
    min_hops: int = 1
    exit_threshold_step: float = 0.15
    max_exit_threshold: float = 0.9

    def __post_init__(self) -> None:
        if self.low_watermark < 0 or self.high_watermark <= self.low_watermark:
            raise ValueError(
                "need 0 <= low_watermark < high_watermark, got "
                f"[{self.low_watermark}, {self.high_watermark}]"
            )
        if self.max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {self.max_level}")
        if self.threshold_factor < 1.0:
            raise ValueError("threshold_factor must be >= 1")
        if not 0.0 < self.max_threshold < 1.0:
            raise ValueError("max_threshold must be in (0, 1)")
        if self.hop_step < 0 or self.min_hops < 1:
            raise ValueError("hop_step must be >= 0 and min_hops >= 1")
        if self.exit_threshold_step < 0:
            raise ValueError("exit_threshold_step must be >= 0")
        if not 0.0 < self.max_exit_threshold < 1.0:
            raise ValueError("max_exit_threshold must be in (0, 1)")


class DegradationPolicy:
    """The runtime state of the degradation controller.

    Observes queue depth at every admission decision; the current level
    tightens the effective zero-skip threshold and hop count the server
    serves with.  ``peak_level`` / ``transitions`` feed the metrics.
    """

    def __init__(
        self, config: DegradationConfig, engine: EngineConfig, hops: int
    ) -> None:
        self.config = config
        self.base_threshold = engine.zero_skip.threshold
        self.base_exit_threshold = engine.early_exit.threshold
        self.base_hops = hops
        self.level = 0
        self.peak_level = 0
        self.transitions = 0

    def observe(self, queue_depth: int) -> int:
        """Feed one queue-depth observation; returns the new level."""
        if queue_depth >= self.config.high_watermark:
            if self.level < self.config.max_level:
                self.level += 1
                self.transitions += 1
                self.peak_level = max(self.peak_level, self.level)
        elif queue_depth <= self.config.low_watermark and self.level > 0:
            self.level -= 1
            self.transitions += 1
        return self.level

    def effective(self) -> tuple[float, int]:
        """The ``(th_skip, hops)`` pair for the current level."""
        if self.level == 0:
            return self.base_threshold, self.base_hops
        threshold = min(
            self.config.max_threshold,
            # A zero base threshold has nothing to multiply: degrade by
            # switching zero-skipping on at the paper's operating point.
            (self.base_threshold or 0.1) * self.config.threshold_factor ** self.level,
        )
        hops = max(
            self.config.min_hops, self.base_hops - self.config.hop_step * self.level
        )
        return threshold, hops

    def effective_exit_threshold(self) -> float:
        """The early-exit gate threshold for the current level.

        Additive in the level (``base + step * level``, capped), so a
        server running with the gate disabled (base 0) switches
        per-question hop pruning *on* under load and back *off* once
        the queue drains — shedding hops before shedding requests.
        Raising the threshold only ever prunes *more* aggressively
        (exit sets are nested in it), so degradation moves along the
        same accuracy/latency curve the benchmark sweeps.
        """
        if self.level == 0:
            return self.base_exit_threshold
        return min(
            self.config.max_exit_threshold,
            self.base_exit_threshold
            + self.config.exit_threshold_step * self.level,
        )
