"""The overload experiment: graceful degradation vs plain shedding.

Drives one workload at a configurable multiple of the server's own
saturation point through two otherwise-identical servers:

* **no-policy** — bounded queue + deadline only: overload is handled
  purely by shedding requests and timing them out;
* **degraded** — the same, plus the graceful-degradation policy: as
  queue depth grows the server tightens ``th_skip`` and cuts hops,
  shedding *compute* instead of requests (the MnnFast knobs turned
  into a serving-robustness lever).

The saturating rate is computed from the server's own service-time
model (``workers / question_service_seconds``), so the experiment
tracks the timing substrate instead of hard-coding a rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import EngineConfig, MemNNConfig
from .metrics import ServingMetrics
from .policy import AdmissionConfig, DegradationConfig
from .requests import QuestionRequest, generate_workload
from .server import QaServer, ServerConfig

__all__ = [
    "OverloadResult",
    "overload_config",
    "overload_network",
    "run_overload_experiment",
]


@dataclass(frozen=True)
class OverloadResult:
    """Both runs of the overload experiment, plus the rates driving it."""

    saturating_rate: float  # questions/s at which the server saturates
    offered_rate: float  # questions/s actually offered
    duration: float  # simulated seconds of arrivals
    no_policy: ServingMetrics
    degraded: ServingMetrics


def overload_network() -> MemNNConfig:
    # A deeper network (3 hops) so the degradation policy has a strong
    # lever: cutting hops 3 -> 1 shrinks service time ~3x, while
    # th_skip tightening trims the already-97%-skipped weighted sum.
    return MemNNConfig(
        embedding_dim=48, num_sentences=20_000, num_questions=1,
        vocab_size=30_000, hops=3,
    )


def overload_config(degraded: bool) -> ServerConfig:
    return ServerConfig(
        network=overload_network(),
        engine=EngineConfig.mnnfast(),
        workers=4,
        deadline=5e-3,
        admission=AdmissionConfig(max_queue=32),
        degradation=DegradationConfig(
            enabled=degraded,
            high_watermark=16,
            low_watermark=4,
            max_level=2,
            hop_step=1,
            min_hops=1,
        ),
    )


def run_overload_experiment(
    duration: float = 0.05,
    load_factor: float = 2.0,
    seed: int = 7,
) -> OverloadResult:
    """Run the paired overload experiment.

    Args:
        duration: simulated seconds of Poisson arrivals.
        load_factor: offered load as a multiple of the saturating rate.
        seed: workload seed (both servers see the identical stream).
    """
    if duration <= 0 or load_factor <= 0:
        raise ValueError("duration and load_factor must be positive")
    base = overload_config(False)
    service = QaServer(base).question_service_seconds(
        QuestionRequest(arrival=0.0, words=6)
    )
    saturating = base.workers / service
    offered = load_factor * saturating
    workload = generate_workload(
        question_rate=offered, story_rate=0.0, duration=duration, seed=seed
    )
    return OverloadResult(
        saturating_rate=saturating,
        offered_rate=offered,
        duration=duration,
        no_policy=QaServer(overload_config(False)).run(workload),
        degraded=QaServer(overload_config(True)).run(workload),
    )
