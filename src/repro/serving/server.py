"""A multi-tenant QA serving simulator (the §2.2.3 scenario, executable).

Ties three of the repository's substrates together:

* **service times** come from the platform models: inference cost from
  :class:`~repro.perf.cpu.CpuModel` for the configured algorithm,
  embedding cost per word from the DRAM model — through the dedicated
  embedding cache when one is attached (§3.3);
* **queueing** runs on the discrete-event kernel: a pool of worker
  threads serves the merged question/story stream;
* **contention** follows Fig. 4: while story-ingest (embedding) work is
  in service without isolation, concurrent inference service is slowed
  by a per-embedding-worker factor (calibrated against the Fig. 4
  sweep; zero when the embedding cache isolates the streams).

The result is the end-to-end claim of the paper in one place: under a
mixed workload, MnnFast (column+streaming+zero-skip, embedding cache)
sustains higher throughput at lower tail latency than the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import EmbeddingCacheConfig, MemNNConfig
from ..memsim.dram import DramModel
from ..memsim.embedding_cache import EmbeddingCache
from ..perf.cpu import CpuModel
from ..perf.events import Acquire, Release, Resource, Simulator, Timeout
from .metrics import LatencySample, ServingMetrics
from .requests import QuestionRequest, StoryRequest, Workload

__all__ = ["ServerConfig", "QaServer"]


@dataclass
class ServerConfig:
    """Serving-side configuration.

    Attributes:
        network: the MemNN being served.
        algorithm: inference dataflow (one of
            :data:`repro.perf.cpu.ALGORITHMS`).
        workers: worker threads serving requests.
        use_embedding_cache: attach the dedicated embedding cache
            (§3.3) — isolates streams and accelerates hot words.
        embedding_cache_bytes: capacity of that cache.
        contention_per_embedding_worker: fractional inference slowdown
            per concurrently-serviced story request when streams share
            the LLC (Fig. 4's slope; ignored when isolated).
        sram_lookup_seconds: embedding-cache hit cost per word.
    """

    network: MemNNConfig = field(
        default_factory=lambda: MemNNConfig(
            embedding_dim=48, num_sentences=20_000, num_questions=1,
            vocab_size=30_000,
        )
    )
    algorithm: str = "mnnfast"
    workers: int = 4
    use_embedding_cache: bool = False
    embedding_cache_bytes: int = 64 * 1024
    contention_per_embedding_worker: float = 0.08
    sram_lookup_seconds: float = 20e-9

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.contention_per_embedding_worker < 0:
            raise ValueError("contention factor must be non-negative")


class QaServer:
    """Simulate a QA server over a request workload."""

    def __init__(
        self,
        config: ServerConfig,
        cpu: CpuModel | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.cpu = cpu if cpu is not None else CpuModel()
        self.dram = self.cpu.dram
        self.rng = np.random.default_rng(seed)
        self.embedding_cache = (
            EmbeddingCache(
                EmbeddingCacheConfig(
                    size_bytes=config.embedding_cache_bytes,
                    embedding_dim=config.network.embedding_dim,
                )
            )
            if config.use_embedding_cache
            else None
        )
        # Inference cost of one question batch on one worker thread.
        self._inference_seconds = self.cpu.run(
            config.network, config.algorithm, threads=1
        ).total_seconds

    # --- service-time models -------------------------------------------------------

    def embedding_word_seconds(self, word_id: int) -> float:
        """Cost of one dictionary lookup, through the cache if present."""
        vector_bytes = self.config.network.embedding_dim * 4
        dram_cost = self.dram.access_latency + vector_bytes / self.dram.peak_bandwidth
        if self.embedding_cache is None:
            return dram_cost
        if self.embedding_cache.touch(word_id):
            return self.config.sram_lookup_seconds
        return dram_cost + self.config.sram_lookup_seconds

    def _embedding_seconds(self, words: int) -> float:
        vocab = self.config.network.vocab_size
        total = 0.0
        for _ in range(words):
            # Zipf-distributed word IDs: natural-language locality.
            rank = min(int(self.rng.zipf(1.2)), vocab)
            total += self.embedding_word_seconds(rank - 1)
        return total

    def question_service_seconds(self, request: QuestionRequest) -> float:
        return self._embedding_seconds(request.words) + self._inference_seconds

    def story_service_seconds(self, request: StoryRequest) -> float:
        return self._embedding_seconds(request.total_words)

    # --- simulation -------------------------------------------------------------------

    def run(self, workload: Workload) -> ServingMetrics:
        """Serve a workload to completion; returns the metrics."""
        sim = Simulator()
        pool = Resource(sim, capacity=self.config.workers, name="workers")
        metrics = ServingMetrics()
        state = {"embedding_in_service": 0}
        isolated = self.embedding_cache is not None

        def handle(request) -> None:
            if isinstance(request, QuestionRequest):
                sim.spawn(question_process(request), name="question")
            elif isinstance(request, StoryRequest):
                sim.spawn(story_process(request), name="story")
            else:
                raise TypeError(f"unknown request type: {request!r}")

        def question_process(request: QuestionRequest):
            yield Timeout(request.arrival)
            yield Acquire(pool)
            start = sim.now
            service = self.question_service_seconds(request)
            if not isolated:
                slowdown = 1.0 + (
                    self.config.contention_per_embedding_worker
                    * state["embedding_in_service"]
                )
                service *= slowdown
            yield Timeout(service)
            yield Release(pool)
            metrics.add(
                LatencySample("question", request.arrival, start, sim.now)
            )

        def story_process(request: StoryRequest):
            yield Timeout(request.arrival)
            yield Acquire(pool)
            start = sim.now
            state["embedding_in_service"] += 1
            yield Timeout(self.story_service_seconds(request))
            state["embedding_in_service"] -= 1
            yield Release(pool)
            metrics.add(LatencySample("story", request.arrival, start, sim.now))

        for request in workload.requests:
            handle(request)
        metrics.simulated_seconds = sim.run()
        return metrics
