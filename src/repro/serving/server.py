"""A multi-tenant QA serving simulator (the §2.2.3 scenario, executable).

Ties the repository's substrates together:

* **service times** come from the platform models: inference cost from
  :class:`~repro.perf.cpu.CpuModel` for the configured engine,
  embedding cost per word from the DRAM model — through the dedicated
  embedding cache when one is attached (§3.3);
* **queueing** runs on the discrete-event kernel: a pool of worker
  threads serves the merged question/story stream;
* **contention** follows Fig. 4: while story-ingest (embedding) work is
  in service without isolation, concurrent inference service is slowed
  by a per-embedding-worker factor (zero when the embedding cache
  isolates the streams);
* **robustness** comes from the policy layer: a bounded admission
  queue sheds overload, per-request deadlines time requests out while
  queued (deadline-aware ``Acquire``) or in service (kernel
  cancellation via a watchdog process), shed/timed-out requests retry
  with exponential backoff, and the degradation policy trades
  attention fidelity (``th_skip``, hop count) for latency as queue
  depth grows — shedding *compute* instead of *requests*.

Every request carries a :class:`~repro.serving.trace.RequestTrace`
span record (enqueue → admit → embed → per-hop inference → respond /
shed / timeout) that feeds the metrics registry.

The configuration surface is unified with the rest of the repo:
:class:`ServerConfig` embeds an :class:`~repro.core.config.EngineConfig`
(algorithm / chunking / zero-skip flow from one object) and an optional
:class:`~repro.core.config.EmbeddingCacheConfig`.  The pre-unification
fields (``algorithm`` string, ``use_embedding_cache``,
``embedding_cache_bytes``) still construct a valid config but emit a
``DeprecationWarning``.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import replace

import numpy as np

from ..batching.batcher import ContinuousBatcher, FormedBatch

from ..core.config import (
    FLOAT_BYTES,
    ChunkConfig,
    EmbeddingCacheConfig,
    EngineConfig,
    MemNNConfig,
)
from ..core.plan import InferencePlan, plan_inference
from ..core.plan import expected_hop_survivors as _plan_survivors
from ..core.sharded import ShardPlan
from ..memsim.embedding_cache import EmbeddingCache
from ..perf.cpu import CpuModel
from ..perf.events import (
    Acquire,
    Cancelled,
    Process,
    Release,
    Resource,
    Simulator,
    Timeout,
)
from .metrics import BatchSample, LatencySample, ServingMetrics
from .policy import (
    AdmissionConfig,
    DegradationConfig,
    DegradationPolicy,
    RetryConfig,
    exit_rate_for_threshold,
    skip_ratio_for_threshold,
)
from .requests import QuestionRequest, StoryRequest, Workload
from .trace import RequestTrace

__all__ = ["ServerConfig", "QaServer", "cpu_algorithm"]


def cpu_algorithm(engine: EngineConfig) -> str:
    """Map an :class:`EngineConfig` onto the CPU-model variant name.

    The timing model speaks the paper's four-variant vocabulary
    (:data:`repro.perf.cpu.ALGORITHMS`); the engine config factors the
    same space into algorithm × streaming × zero-skip.  A ``sharded``
    engine maps to its per-shard column variant — the fan-out itself
    (max-of-shards + merge) is modelled by
    :meth:`QaServer.hop_seconds`.
    """
    if engine.algorithm == "baseline":
        return "baseline"
    if not engine.chunk.streaming:
        return "column"
    if engine.zero_skip.enabled:
        return "mnnfast"
    return "column_streaming"


#: Pre-unification ``algorithm`` strings -> the equivalent EngineConfig.
_LEGACY_ENGINES = {
    "baseline": EngineConfig.baseline,
    "column": lambda: EngineConfig(
        algorithm="column", chunk=ChunkConfig(streaming=False)
    ),
    "column_streaming": lambda: EngineConfig(algorithm="column"),
    "mnnfast": EngineConfig.mnnfast,
}


class ServerConfig:
    """Serving-side configuration (API v2).

    Attributes:
        network: the MemNN being served.
        engine: the inference engine configuration — algorithm,
            chunking, zero-skipping and softmax form flow from this one
            object (the same :class:`EngineConfig` the rest of the repo
            uses).
        workers: worker threads serving requests.
        embedding_cache: geometry of the dedicated embedding cache
            (§3.3), or ``None`` for no cache (shared-LLC contention).
        contention_per_embedding_worker: fractional inference slowdown
            per concurrently-serviced story request when streams share
            the LLC (Fig. 4's slope; ignored when isolated).
        sram_lookup_seconds: embedding-cache hit cost per word.
        disk_bandwidth: sequential-stream bandwidth (bytes/s) of the
            disk tier an out-of-core engine pages ``M_IN``/``M_OUT``
            from (default 2 GB/s, NVMe-class).  Charged separately
            from DRAM bandwidth: each hop streams the bytes the chunk
            LRU cannot hold, and with prefetching the stream overlaps
            compute (the slower of the two bounds the hop) instead of
            serializing with it.
        deadline: per-attempt deadline in seconds — a request times out
            while queued or in service once this budget is exhausted.
            ``None`` disables deadlines.
        admission: bounded-queue load shedding policy.
        retry: retry-with-backoff policy for shed/timed-out requests.
        degradation: graceful-degradation policy (tightens ``th_skip``
            and cuts hops as queue depth grows).

    Deprecated (still accepted, with a ``DeprecationWarning``):
        ``algorithm`` (a :data:`repro.perf.cpu.ALGORITHMS` string),
        ``use_embedding_cache`` and ``embedding_cache_bytes`` — the
        pre-unification surface, mapped onto ``engine`` /
        ``embedding_cache``.
    """

    def __init__(
        self,
        network: MemNNConfig | None = None,
        engine: EngineConfig | None = None,
        workers: int = 4,
        embedding_cache: EmbeddingCacheConfig | None = None,
        contention_per_embedding_worker: float = 0.08,
        sram_lookup_seconds: float = 20e-9,
        disk_bandwidth: float = 2e9,
        deadline: float | None = None,
        admission: AdmissionConfig | None = None,
        retry: RetryConfig | None = None,
        degradation: DegradationConfig | None = None,
        *,
        algorithm: str | None = None,
        use_embedding_cache: bool | None = None,
        embedding_cache_bytes: int | None = None,
    ) -> None:
        self.network = (
            network
            if network is not None
            else MemNNConfig(
                embedding_dim=48, num_sentences=20_000, num_questions=1,
                vocab_size=30_000,
            )
        )

        if algorithm is not None:
            if engine is not None:
                raise ValueError(
                    "pass either engine= or the deprecated algorithm=, not both"
                )
            if algorithm not in _LEGACY_ENGINES:
                raise ValueError(
                    f"algorithm must be one of {tuple(_LEGACY_ENGINES)}, "
                    f"got {algorithm!r}"
                )
            warnings.warn(
                "ServerConfig(algorithm=...) is deprecated; pass an "
                "EngineConfig via engine= (e.g. EngineConfig.mnnfast())",
                DeprecationWarning,
                stacklevel=2,
            )
            engine = _LEGACY_ENGINES[algorithm]()
        # Cross-field engine invariants (sharding x execution x store x
        # top-k) surface here, at composition time, not mid-simulation.
        self.engine = (
            engine if engine is not None else EngineConfig.mnnfast()
        ).validate()

        if use_embedding_cache is not None or embedding_cache_bytes is not None:
            if embedding_cache is not None:
                raise ValueError(
                    "pass either embedding_cache= or the deprecated "
                    "use_embedding_cache=/embedding_cache_bytes=, not both"
                )
            warnings.warn(
                "ServerConfig(use_embedding_cache=..., embedding_cache_bytes"
                "=...) is deprecated; pass an EmbeddingCacheConfig via "
                "embedding_cache= (None disables the cache)",
                DeprecationWarning,
                stacklevel=2,
            )
            if use_embedding_cache:
                embedding_cache = EmbeddingCacheConfig(
                    size_bytes=(
                        embedding_cache_bytes
                        if embedding_cache_bytes is not None
                        else 64 * 1024
                    ),
                    embedding_dim=self.network.embedding_dim,
                )
        self.embedding_cache = embedding_cache

        self.workers = workers
        self.contention_per_embedding_worker = contention_per_embedding_worker
        self.sram_lookup_seconds = sram_lookup_seconds
        self.disk_bandwidth = disk_bandwidth
        self.deadline = deadline
        self.admission = admission if admission is not None else AdmissionConfig()
        self.retry = retry if retry is not None else RetryConfig()
        self.degradation = (
            degradation if degradation is not None else DegradationConfig()
        )

        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.disk_bandwidth <= 0:
            raise ValueError("disk_bandwidth must be positive")
        if self.contention_per_embedding_worker < 0:
            raise ValueError("contention factor must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    # --- deprecated read surface ---------------------------------------------

    @property
    def algorithm(self) -> str:
        """The CPU-model variant name the engine config maps onto."""
        return cpu_algorithm(self.engine)

    @property
    def use_embedding_cache(self) -> bool:
        return self.embedding_cache is not None

    def __repr__(self) -> str:
        return (
            f"ServerConfig(algorithm={self.algorithm!r}, "
            f"workers={self.workers}, "
            f"embedding_cache={self.embedding_cache is not None}, "
            f"deadline={self.deadline}, "
            f"max_queue={self.admission.max_queue}, "
            f"retries={self.retry.max_retries}, "
            f"degradation={self.degradation.enabled})"
        )


class QaServer:
    """Simulate a QA server over a request workload."""

    def __init__(
        self,
        config: ServerConfig,
        cpu: CpuModel | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.cpu = cpu if cpu is not None else CpuModel()
        self.dram = self.cpu.dram
        self.rng = np.random.default_rng(seed)
        self.embedding_cache = (
            EmbeddingCache(config.embedding_cache)
            if config.embedding_cache is not None
            else None
        )
        self._cpu_algorithm = cpu_algorithm(config.engine)
        # §2.2.3 co-runner bandwidth sharing: the pool's workers stream
        # M_IN/M_OUT from the *same* socket, so each worker's hop is
        # entitled to a 1/workers share of the aggregate DRAM bandwidth
        # (cf. DramModel.loaded_transfer_time).  This is what makes the
        # memory stream the bottleneck at batch size 1 — and what
        # batching amortizes.
        self._worker_cpu = replace(
            self.cpu,
            dram=replace(
                self.cpu.dram,
                channel_bandwidth=self.cpu.dram.channel_bandwidth
                / max(1, config.workers),
            ),
        )
        # (threshold, batch size) -> one-hop inference seconds on one worker.
        self._hop_seconds_cache: dict[tuple[float, int], float] = {}

    # --- service-time models -------------------------------------------------------

    def embedding_word_seconds(self, word_id: int) -> float:
        """Cost of one dictionary lookup, through the cache if present."""
        vector_bytes = self.config.network.embedding_dim * 4
        dram_cost = self.dram.access_latency + vector_bytes / self.dram.peak_bandwidth
        if self.embedding_cache is None:
            return dram_cost
        if self.embedding_cache.probe(word_id):
            return self.config.sram_lookup_seconds
        return dram_cost + self.config.sram_lookup_seconds

    def _embedding_seconds(self, words: int) -> float:
        vocab = self.config.network.vocab_size
        total = 0.0
        for _ in range(words):
            # Zipf-distributed word IDs: natural-language locality.
            rank = min(int(self.rng.zipf(1.2)), vocab)
            total += self.embedding_word_seconds(rank - 1)
        return total

    def shard_plan(self, num_rows: int | None = None) -> ShardPlan | None:
        """The memory partition the engine fans one hop out over, or
        ``None`` when unsharded — the *same* plan
        :class:`~repro.core.sharded.ShardedMemNN` executes, so the
        latency model and the numerics agree on shard geometry.

        ``num_rows`` overrides the network's sentence count: under the
        top-k tier the kernel shards the *candidate subset*, not the
        full memory.
        """
        engine = self.config.engine
        if engine.num_shards <= 1:
            return None
        if num_rows is None:
            num_rows = self.config.network.num_sentences
        return ShardPlan(num_rows, engine.num_shards, engine.shard_policy)

    def shard_merge_seconds(
        self, plan: ShardPlan, batch_size: int | None = None
    ) -> float:
        """Coordinator cost of the exact merge: a tree reduction of
        ``O(nq x ed)`` partials (numerator + denominator + running
        max), each round one partial-sized transfer plus an access.

        ``batch_size`` overrides the network's ``nq`` (the batched
        service mode merges one partial per shard for the whole
        batch).
        """
        if plan.num_shards <= 1:
            return 0.0
        network = self.config.network
        nq = batch_size if batch_size is not None else network.num_questions
        partial_bytes = (
            nq * network.embedding_dim + 2 * nq
        ) * FLOAT_BYTES
        rounds = math.ceil(math.log2(plan.num_shards))
        per_round = (
            self.dram.access_latency + partial_bytes / self.dram.peak_bandwidth
        )
        return rounds * per_round

    def disk_stream_seconds(self, num_rows: int | None = None) -> float:
        """Per-hop disk-tier transfer time of an out-of-core engine.

        Each hop streams the whole ``M_IN``/``M_OUT`` footprint; the
        chunk LRU holds ``resident_bytes`` of it in RAM, so only the
        overflow pages in from disk — charged against the dedicated
        ``disk_bandwidth``, not the DRAM channel model.  Zero for
        resident engines.  ``num_rows`` overrides the row count — under
        the top-k tier only the candidate rows page in.
        """
        store = self.config.engine.store
        if not store.out_of_core:
            return 0.0
        network = self.config.network
        rows = num_rows if num_rows is not None else network.num_sentences
        footprint = 2 * rows * network.embedding_dim * FLOAT_BYTES
        disk_bytes = max(0, footprint - (store.resident_bytes or 0))
        return disk_bytes / self.config.disk_bandwidth

    def probe_gather_seconds(self, batch_size: int | None = None) -> float:
        """Per-hop cost of the top-k retrieval tier ahead of attention.

        Two stages, zero when the engine's index is disabled or in
        exact-scan fallback:

        * **probe** — scoring the batch against the centroid table,
          ``2 x nq x nlist x ed`` FLOPs on one core overlapped with the
          centroid stream (roofline max of the two);
        * **gather** — pulling the candidate rows of ``M_IN``/``M_OUT``
          out of DRAM.  The probed clusters land scattered across the
          memory, so each candidate row is a latency-bound random
          access (:meth:`~repro.memsim.dram.DramModel.random_access_time`),
          not a sequential stream — the price the tier pays for reading
          ``candidates`` rows instead of ``ns``.

        Candidate count follows the batch-union model
        (:meth:`~repro.core.config.TopKConfig.expected_candidates`):
        one kernel pass serves the whole batch, over the union of every
        member's probed clusters.
        """
        engine = self.config.engine
        network = self.config.network
        ns = network.num_sentences
        if not engine.topk.uses_index(ns):
            return 0.0
        nq = batch_size if batch_size is not None else network.num_questions
        ed = network.embedding_dim
        nlist = engine.topk.effective_nlist(ns)
        probe = max(
            2.0 * nq * nlist * ed / self._worker_cpu.flops_per_core,
            self._worker_cpu.dram.transfer_time(nlist * ed * FLOAT_BYTES),
        )
        candidates = engine.topk.expected_candidates(ns, batch_size=nq)
        row_bytes = ed * FLOAT_BYTES
        gather = self._worker_cpu.dram.random_access_time(
            2 * candidates, row_bytes
        )
        return probe + gather

    def hop_seconds(
        self, threshold: float | None = None, batch_size: int | None = None
    ) -> float:
        """Cost of one inference hop on one worker thread.

        ``threshold`` overrides the engine's zero-skip threshold — the
        knob the degradation policy turns; it only matters for the
        full-MnnFast variant (zero-skipping enabled).  ``batch_size``
        overrides the network's question count ``nq``: the CPU model
        charges the ``M_IN``/``M_OUT`` stream once per *pass* while
        compute scales with ``nq``, so a larger batch amortizes the
        memory traffic — the cost model the batched service mode
        schedules with.

        With a sharded engine the hop fans out over the execution
        backend's *measured* per-shard concurrency
        (:meth:`~repro.core.config.ExecutionConfig.shard_concurrency`):
        the shards execute in ``ceil(K / concurrency)`` waves, each
        wave as long as its largest shard, then the coordinator pays
        the merge cost of the exact lazy-softmax reduction.  Only the
        process backend reports concurrency above 1 — the thread
        backend measured a net slowdown (see
        :mod:`repro.core.execution`), so serial/thread/fused shards
        are costed sequentially.

        With an out-of-core store the hop additionally streams the
        non-resident ``M_IN``/``M_OUT`` bytes from the disk tier
        (:meth:`disk_stream_seconds`): with prefetching the stream
        overlaps compute (the hop costs the *slower* of the two —
        §3.1's load/compute overlap applied to the disk tier), without
        it the stream serializes ahead of compute.

        With the top-k tier enabled (and the memory above its
        exact-scan fallback), the hop first pays
        :meth:`probe_gather_seconds` (centroid probe + candidate
        gather), and every downstream stage — exact kernel, shard plan,
        disk stream — is costed over the expected *candidate* rows
        rather than the full memory.
        """
        if threshold is None:
            threshold = self.config.engine.zero_skip.threshold
        network = self.config.network
        nq = batch_size if batch_size is not None else network.num_questions
        if nq < 1:
            raise ValueError(f"batch_size must be positive, got {nq}")
        key = (threshold, nq)
        if key not in self._hop_seconds_cache:
            engine = self.config.engine
            rows = network.num_sentences
            retrieval = 0.0
            if engine.topk.uses_index(rows):
                # The top-k tier probes the index and gathers the
                # candidate rows; the exact kernel then scans only the
                # (batch-union) candidate set instead of the full memory.
                retrieval = self.probe_gather_seconds(batch_size=nq)
                rows = max(1, engine.topk.expected_candidates(rows, batch_size=nq))
                network = replace(network, num_sentences=rows)
            plan = self.shard_plan(num_rows=rows)
            if nq != network.num_questions:
                network = replace(network, num_questions=nq)
            merge = 0.0
            if plan is not None:
                # Shards run in waves of the backend's measured
                # per-shard concurrency; each wave's critical path is
                # its largest shard.
                concurrency = engine.execution.shard_concurrency()
                waves = -(-plan.num_shards // concurrency)
                network = replace(
                    network,
                    num_sentences=max(1, plan.max_shard_rows * waves),
                )
                merge = self.shard_merge_seconds(plan, batch_size=nq)
            compute = self._worker_cpu.run(
                network,
                self._cpu_algorithm,
                threads=1,
                chunk=engine.chunk,
                skip_ratio=skip_ratio_for_threshold(threshold),
            ).total_seconds
            disk = self.disk_stream_seconds(num_rows=rows)
            if disk > 0.0:
                if engine.store.prefetch_depth > 0:
                    compute = max(compute, disk)
                else:
                    compute = compute + disk
            self._hop_seconds_cache[key] = retrieval + compute + merge
        return self._hop_seconds_cache[key]

    def expected_hop_survivors(
        self,
        batch_size: int,
        hops: int | None = None,
        exit_threshold: float | None = None,
    ) -> list[int]:
        """Expected questions still running at each hop under the gate.

        Delegates to the pure survivor model in
        :func:`repro.core.plan.expected_hop_survivors`, calibrating
        the gate threshold into a per-check exit rate with
        :func:`~repro.serving.policy.exit_rate_for_threshold` — entry
        ``h`` is the batch size hop ``h`` is charged at, the
        shrinking-GEMM accounting :meth:`run_batched` schedules with.
        With the gate disabled (``exit_threshold`` 0) every entry is
        ``batch_size``.
        """
        if hops is None:
            hops = self.config.network.hops
        early_exit = self.config.engine.early_exit
        if exit_threshold is None:
            exit_threshold = early_exit.threshold
        return _plan_survivors(
            batch_size,
            hops,
            min_hops=early_exit.min_hops,
            exit_rate=exit_rate_for_threshold(exit_threshold),
        )

    def plan(
        self,
        batch_size: int | None = None,
        chunks: tuple[int, ...] | None = None,
    ) -> InferencePlan:
        """The :class:`~repro.core.plan.InferencePlan` of one question
        batch on this server — the placement-facing description a
        cluster router scores replicas against.

        The server (not core) owns the threshold→rate calibration of
        the early-exit gate, so the plan's ``exit_rate`` is
        :func:`~repro.serving.policy.exit_rate_for_threshold` of the
        configured gate threshold.  ``chunks`` narrows planned chunk
        coverage when the caller knows the pass's rows cluster.
        """
        network = self.config.network
        engine = self.config.engine
        nq = batch_size if batch_size is not None else network.num_questions
        rows = network.num_sentences
        candidates = (
            engine.topk.expected_candidates(rows, batch_size=nq)
            if engine.topk.enabled
            else rows
        )
        return plan_inference(
            num_rows=rows,
            embedding_dim=network.embedding_dim,
            batch_size=nq,
            chunk_size=engine.chunk.chunk_size,
            hops=network.hops,
            min_hops=engine.early_exit.min_hops,
            exit_rate=(
                exit_rate_for_threshold(engine.early_exit.threshold)
                if engine.early_exit.enabled
                else 0.0
            ),
            candidate_rows=candidates,
            chunks=chunks,
            num_shards=engine.num_shards,
            shard_policy=engine.shard_policy,
        )

    def inference_seconds(
        self,
        threshold: float | None = None,
        hops: int | None = None,
        batch_size: int | None = None,
        exit_threshold: float | None = None,
    ) -> float:
        """Inference cost of one question batch on one worker thread.

        ``exit_threshold`` overrides the engine's early-exit gate
        threshold (``None`` — the degradation policy's other lever):
        with the gate active each hop is charged at its expected
        survivor count (:meth:`expected_hop_survivors`) instead of the
        full batch, and hops the whole batch is expected to have
        exited before cost nothing.
        """
        if hops is None:
            hops = self.config.network.hops
        network = self.config.network
        nq = batch_size if batch_size is not None else network.num_questions
        survivors = self.expected_hop_survivors(
            nq, hops=hops, exit_threshold=exit_threshold
        )
        return sum(
            self.hop_seconds(threshold, batch_size=rows)
            for rows in survivors
            if rows >= 1
        )

    def question_embed_seconds(self, request: QuestionRequest) -> float:
        return self._embedding_seconds(request.words)

    def question_service_seconds(self, request: QuestionRequest) -> float:
        return self.question_embed_seconds(request) + self.inference_seconds()

    def story_service_seconds(self, request: StoryRequest) -> float:
        return self._embedding_seconds(request.total_words)

    # --- simulation -------------------------------------------------------------------

    def run(self, workload: Workload) -> ServingMetrics:
        """Serve a workload to completion; returns the metrics registry."""
        config = self.config
        sim = Simulator()
        pool = Resource(sim, capacity=config.workers, name="workers")
        metrics = ServingMetrics()
        state = {"embedding_in_service": 0, "queued": 0}
        isolated = self.embedding_cache is not None
        policy = (
            DegradationPolicy(config.degradation, config.engine, config.network.hops)
            if config.degradation.enabled
            else None
        )
        handles: dict[int, Process] = {}

        def deadline_watchdog(rid: int, fire_at: float, served: dict):
            delay = fire_at - sim.now
            if delay > 0:
                yield Timeout(delay)
            if not served["done"]:
                sim.cancel(handles[rid], "deadline")

        def request_process(rid: int, request):
            if isinstance(request, QuestionRequest):
                kind = "question"
            elif isinstance(request, StoryRequest):
                kind = "story"
            else:
                raise TypeError(f"unknown request type: {request!r}")
            trace = RequestTrace(rid, kind, arrival=request.arrival)
            metrics.traces.append(trace)
            metrics.arrivals += 1
            deadline = (
                request.deadline if request.deadline is not None else config.deadline
            )
            yield Timeout(request.arrival)

            attempt = 1
            while True:
                trace.attempts = attempt
                enqueue_at = sim.now

                # --- admission: bounded queue sheds overload -------------
                if (
                    config.admission.max_queue is not None
                    and state["queued"] >= config.admission.max_queue
                ):
                    if attempt <= config.retry.max_retries:
                        delay = config.retry.backoff(attempt)
                        metrics.retries += 1
                        trace.add_span("backoff", sim.now, sim.now + delay)
                        attempt += 1
                        yield Timeout(delay)
                        continue
                    trace.finish("shed")
                    metrics.shed += 1
                    return
                if policy is not None:
                    policy.observe(state["queued"])

                # --- queue for a worker, deadline-aware ------------------
                state["queued"] += 1
                granted = yield Acquire(pool, timeout=deadline)
                state["queued"] -= 1
                trace.add_span("queue", enqueue_at, sim.now)
                if granted is False:  # timed out while queued
                    if attempt <= config.retry.max_retries:
                        delay = config.retry.backoff(attempt)
                        metrics.retries += 1
                        trace.add_span("backoff", sim.now, sim.now + delay)
                        attempt += 1
                        yield Timeout(delay)
                        continue
                    trace.finish("timeout")
                    metrics.timed_out += 1
                    return

                # --- in service ------------------------------------------
                metrics.admitted += 1
                start = sim.now
                served = {"done": False}
                watchdog = (
                    sim.spawn(
                        deadline_watchdog(rid, enqueue_at + deadline, served),
                        name=f"watchdog-{rid}",
                    )
                    if deadline is not None
                    else None
                )
                counted_embedding = False
                try:
                    if kind == "question":
                        slowdown = 1.0
                        if not isolated:
                            slowdown += (
                                config.contention_per_embedding_worker
                                * state["embedding_in_service"]
                            )
                        t0 = sim.now
                        yield Timeout(
                            self.question_embed_seconds(request) * slowdown
                        )
                        trace.add_span("embed", t0, sim.now)
                        if policy is not None:
                            threshold, hops = policy.effective()
                            exit_threshold = policy.effective_exit_threshold()
                            trace.degradation_level = policy.level
                        else:
                            threshold = config.engine.zero_skip.threshold
                            hops = config.network.hops
                            exit_threshold = config.engine.early_exit.threshold
                        exit_rate = exit_rate_for_threshold(exit_threshold)
                        min_exit_hops = config.engine.early_exit.min_hops
                        per_hop = self.hop_seconds(threshold) * slowdown
                        hops_run = 0
                        for hop in range(hops):
                            t0 = sim.now
                            yield Timeout(per_hop)
                            trace.add_span(f"hop{hop}", t0, sim.now)
                            hops_run += 1
                            # Confidence-gated early exit, sampled at the
                            # expected rate: the gate checks after hops
                            # min_hops .. hops-1 (never the last hop).
                            if (
                                exit_rate > 0.0
                                and min_exit_hops <= hop + 1 < hops
                                and self.rng.random() < exit_rate
                            ):
                                break
                        metrics.question_hops_run += hops_run
                        metrics.question_hops_full += hops
                    else:
                        state["embedding_in_service"] += 1
                        counted_embedding = True
                        t0 = sim.now
                        yield Timeout(self.story_service_seconds(request))
                        trace.add_span("embed", t0, sim.now)
                        state["embedding_in_service"] -= 1
                        counted_embedding = False
                except Cancelled:
                    # Deadline expired mid-service: the watchdog threw us
                    # out.  Release the worker and record the timeout.
                    if counted_embedding:
                        state["embedding_in_service"] -= 1
                    yield Release(pool)
                    trace.finish("timeout")
                    metrics.timed_out += 1
                    return

                served["done"] = True
                if watchdog is not None:
                    sim.cancel(watchdog)
                yield Release(pool)
                trace.finish("completed")
                metrics.completed += 1
                metrics.add(LatencySample(kind, request.arrival, start, sim.now))
                return

        for rid, request in enumerate(workload.requests):
            handles[rid] = sim.spawn(
                request_process(rid, request), name=f"request-{rid}"
            )

        metrics.simulated_seconds = sim.run()
        if policy is not None:
            metrics.degradation_peak_level = policy.peak_level
            metrics.degradation_transitions = policy.transitions
            metrics.degradation_final_level = policy.level
        metrics.reconcile()
        return metrics

    def run_batched(self, workload: Workload) -> ServingMetrics:
        """Serve a workload with continuous question batching.

        Questions are coalesced by a deadline-aware
        :class:`~repro.batching.ContinuousBatcher` under the engine's
        :class:`~repro.core.config.BatchConfig`
        (``config.engine.batch``); each formed batch occupies **one**
        worker and is charged the memory stream once per batch but
        embedding and hop compute per question
        (:meth:`hop_seconds` with ``batch_size`` — the amortized cost
        model).  Story-ingest requests are served individually, as in
        :meth:`run`.

        Policy interaction:

        * ``admission.max_queue`` bounds the questions awaiting service
          (in the batcher plus in formed batches still waiting for a
          worker) — arrivals beyond it are shed immediately (no
          retries in batched mode);
        * per-request deadlines are honored three times: at batch
          formation (a request is never coalesced past its admission
          deadline), at worker grant (already-expired members are
          timed out without charging their compute) and at completion
          (members whose deadline lapses mid-batch count as timed out
          — the batch still runs; that compute is already spent);
        * the degradation policy's *early-exit lever* is wired into
          batched service: under backlog it raises the gate threshold
          (:meth:`~repro.serving.policy.DegradationPolicy.effective_exit_threshold`)
          and each hop is charged at its expected survivor count
          (:meth:`expected_hop_survivors`) — a shrinking GEMM, so the
          server sheds *hops* before it sheds *requests*.  The
          ``th_skip``/hop-count levers apply as in :meth:`run`;
          retries remain the unbatched mode's domain.

        Batch formation is arrival-driven (dispatch on full /
        ``max_wait`` / deadline — worker availability never delays
        formation), run by a source process on the event kernel so
        admission control can observe the live backlog.  Every served
        batch lands in ``metrics.batches`` as a
        :class:`~repro.serving.metrics.BatchSample`.
        """
        config = self.config
        policy = config.engine.batch
        sim = Simulator()
        pool = Resource(sim, capacity=config.workers, name="workers")
        metrics = ServingMetrics()
        # queued_questions: submitted to the batcher but not yet granted
        # a worker — the backlog admission control bounds.
        state = {
            "embedding_in_service": 0,
            "queued_questions": 0,
            "batches_launched": 0,
        }
        isolated = self.embedding_cache is not None
        degradation = (
            DegradationPolicy(config.degradation, config.engine, config.network.hops)
            if config.degradation.enabled
            else None
        )

        rid_of: dict[int, int] = {}
        for rid, request in enumerate(workload.requests):
            if isinstance(request, QuestionRequest):
                kind = "question"
            elif isinstance(request, StoryRequest):
                kind = "story"
            else:
                raise TypeError(f"unknown request type: {request!r}")
            metrics.traces.append(RequestTrace(rid, kind, arrival=request.arrival))
            metrics.arrivals += 1
            rid_of[id(request)] = rid

        batcher = ContinuousBatcher(policy)

        def launch(batch: FormedBatch) -> None:
            index = state["batches_launched"]
            state["batches_launched"] += 1
            sim.spawn(batch_process(batch), name=f"batch-{index}")

        def question_source():
            """Walk the arrival stream, honoring forced dispatches.

            Sleeps until each arrival, waking at every
            ``next_forced_dispatch`` time on the way — the contract
            that no request is coalesced past its deadline.
            """
            for request in workload.questions:
                while True:
                    forced = batcher.next_forced_dispatch()
                    if forced is None or forced > request.arrival + 1e-12:
                        break
                    if forced > sim.now:
                        yield Timeout(forced - sim.now)
                    batch = batcher.poll(sim.now)
                    if batch is not None:
                        launch(batch)
                if request.arrival > sim.now:
                    yield Timeout(request.arrival - sim.now)
                trace = metrics.traces[rid_of[id(request)]]
                if (
                    config.admission.max_queue is not None
                    and state["queued_questions"] >= config.admission.max_queue
                ):
                    trace.finish("shed")
                    metrics.shed += 1
                    continue
                if degradation is not None:
                    degradation.observe(state["queued_questions"])
                deadline = (
                    request.deadline
                    if request.deadline is not None
                    else config.deadline
                )
                absolute = (
                    request.arrival + deadline if deadline is not None else None
                )
                state["queued_questions"] += 1
                batch = batcher.submit(request, now=sim.now, deadline=absolute)
                if batch is not None:
                    launch(batch)
            # End of stream: drain the tail at its forced-dispatch times.
            while batcher.queue_depth:
                forced = batcher.next_forced_dispatch()
                if forced is not None and forced > sim.now:
                    yield Timeout(forced - sim.now)
                batch = batcher.poll(sim.now)
                if batch is None:  # pragma: no cover — poll fires at forced
                    batch = batcher.flush(sim.now)
                launch(batch)

        def batch_process(batch: FormedBatch):
            formation = batch.formation
            yield Acquire(pool)
            start = sim.now
            state["queued_questions"] -= len(batch.entries)
            live = [
                entry
                for entry in batch.entries
                if entry.deadline is None or entry.deadline >= start - 1e-12
            ]
            for entry in batch.entries:
                if entry in live:
                    continue
                trace = metrics.traces[rid_of[id(entry.item)]]
                trace.add_span("queue", entry.item.arrival, entry.deadline)
                trace.finish("timeout")
                metrics.timed_out += 1
            if not live:
                yield Release(pool)
                metrics.record_batch(
                    BatchSample(
                        formed_at=formation.formed_at,
                        size=formation.size,
                        capacity=formation.capacity,
                        queue_waits=formation.queue_waits,
                        deadline_slacks=formation.deadline_slacks,
                        service_start=start,
                        service_end=start,
                        served=0,
                    )
                )
                return
            metrics.admitted += len(live)
            slowdown = 1.0
            if not isolated:
                slowdown += (
                    config.contention_per_embedding_worker
                    * state["embedding_in_service"]
                )
            embed_start = sim.now
            yield Timeout(
                sum(self.question_embed_seconds(e.item) for e in live) * slowdown
            )
            embed_end = sim.now
            if degradation is not None:
                threshold, hops = degradation.effective()
                exit_threshold = degradation.effective_exit_threshold()
            else:
                threshold = config.engine.zero_skip.threshold
                hops = config.network.hops
                exit_threshold = config.engine.early_exit.threshold
            # Ragged-depth accounting: hop h runs at its expected
            # survivor count, so the GEMM (and its charged seconds)
            # shrinks as gated questions retire.
            survivors = self.expected_hop_survivors(
                len(live), hops=hops, exit_threshold=exit_threshold
            )
            hop_spans = []
            for hop, rows in enumerate(survivors):
                if rows < 1:
                    break
                hop_start = sim.now
                yield Timeout(
                    self.hop_seconds(threshold, batch_size=rows) * slowdown
                )
                hop_spans.append((f"hop{hop}", hop_start, sim.now))
            metrics.question_hops_run += sum(survivors)
            metrics.question_hops_full += hops * len(live)
            yield Release(pool)
            finish = sim.now
            for entry in live:
                trace = metrics.traces[rid_of[id(entry.item)]]
                trace.add_span("queue", entry.item.arrival, start)
                trace.add_span("embed", embed_start, embed_end)
                for name, hop_start, hop_end in hop_spans:
                    trace.add_span(name, hop_start, hop_end)
                if entry.deadline is not None and entry.deadline < finish - 1e-12:
                    trace.finish("timeout")
                    metrics.timed_out += 1
                else:
                    trace.finish("completed")
                    metrics.completed += 1
                    metrics.add(
                        LatencySample(
                            "question", entry.item.arrival, start, finish
                        )
                    )
            metrics.record_batch(
                BatchSample(
                    formed_at=formation.formed_at,
                    size=formation.size,
                    capacity=formation.capacity,
                    queue_waits=formation.queue_waits,
                    deadline_slacks=formation.deadline_slacks,
                    service_start=start,
                    service_end=finish,
                    served=len(live),
                    hop_survivors=(
                        tuple(survivors) if exit_threshold > 0.0 else ()
                    ),
                )
            )

        def story_process(request: StoryRequest):
            trace = metrics.traces[rid_of[id(request)]]
            deadline = (
                request.deadline if request.deadline is not None else config.deadline
            )
            yield Timeout(request.arrival)
            enqueue_at = sim.now
            granted = yield Acquire(pool, timeout=deadline)
            trace.add_span("queue", enqueue_at, sim.now)
            if granted is False:
                trace.finish("timeout")
                metrics.timed_out += 1
                return
            metrics.admitted += 1
            start = sim.now
            state["embedding_in_service"] += 1
            yield Timeout(self.story_service_seconds(request))
            state["embedding_in_service"] -= 1
            trace.add_span("embed", start, sim.now)
            yield Release(pool)
            trace.finish("completed")
            metrics.completed += 1
            metrics.add(LatencySample("story", request.arrival, start, sim.now))

        sim.spawn(question_source(), name="question-source")
        for request in workload.stories:
            sim.spawn(
                story_process(request), name=f"story-{rid_of[id(request)]}"
            )
        metrics.simulated_seconds = sim.run()
        if degradation is not None:
            metrics.degradation_peak_level = degradation.peak_level
            metrics.degradation_transitions = degradation.transitions
            metrics.degradation_final_level = degradation.level
        metrics.reconcile()
        return metrics
