"""Request types and workload generation for the QA serving simulator.

The paper's contention analysis (§2.2.3) assumes a *multi-tenant*
setting: question-answering inference runs while other tenants ingest
new stories (embedding-heavy work).  This module generates that mixed
request stream with Poisson arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QuestionRequest", "StoryRequest", "Workload", "generate_workload"]


@dataclass(frozen=True)
class QuestionRequest:
    """An inference request: answer one question.

    ``deadline`` overrides the server-wide ``ServerConfig.deadline``
    for this request (``None`` inherits the server's).
    """

    arrival: float
    words: int  # non-pad words to embed
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.words <= 0:
            raise ValueError("arrival must be >= 0 and words > 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")


@dataclass(frozen=True)
class StoryRequest:
    """An ingestion request: embed and append story sentences.

    ``deadline`` overrides the server-wide ``ServerConfig.deadline``
    for this request (``None`` inherits the server's).
    """

    arrival: float
    sentences: int
    words_per_sentence: int
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.sentences <= 0 or self.words_per_sentence <= 0:
            raise ValueError("arrival/sentences/words must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    @property
    def total_words(self) -> int:
        return self.sentences * self.words_per_sentence


@dataclass
class Workload:
    """A merged, time-ordered request stream."""

    requests: list = field(default_factory=list)

    @property
    def questions(self) -> list[QuestionRequest]:
        return [r for r in self.requests if isinstance(r, QuestionRequest)]

    @property
    def stories(self) -> list[StoryRequest]:
        return [r for r in self.requests if isinstance(r, StoryRequest)]

    @property
    def duration(self) -> float:
        return self.requests[-1].arrival if self.requests else 0.0


def generate_workload(
    question_rate: float,
    story_rate: float,
    duration: float,
    words_per_question: int = 6,
    sentences_per_story: int = 10,
    words_per_sentence: int = 7,
    seed: int = 0,
) -> Workload:
    """Poisson arrivals of questions and story ingestions.

    Args:
        question_rate: questions per second.
        story_rate: story-ingest requests per second (0 disables them —
            the paper's 0-embedding-thread baseline).
        duration: simulated seconds of arrivals.
    """
    if question_rate <= 0:
        raise ValueError("question_rate must be positive")
    if story_rate < 0:
        raise ValueError("story_rate must be non-negative")
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    requests: list = []

    time = 0.0
    while True:
        time += rng.exponential(1.0 / question_rate)
        if time >= duration:
            break
        requests.append(QuestionRequest(arrival=time, words=words_per_question))

    if story_rate > 0:
        time = 0.0
        while True:
            time += rng.exponential(1.0 / story_rate)
            if time >= duration:
                break
            requests.append(
                StoryRequest(
                    arrival=time,
                    sentences=sentences_per_story,
                    words_per_sentence=words_per_sentence,
                )
            )

    requests.sort(key=lambda r: r.arrival)
    return Workload(requests=requests)
