"""Request-lifecycle tracing for the serving simulator.

Every request carries a :class:`RequestTrace`: an append-only record of
named stage spans (``queue`` → ``embed`` → ``hop0..hopN`` → done, with
``backoff`` spans between retry attempts) plus a terminal outcome
(``completed`` / ``shed`` / ``timeout``).  The metrics registry
aggregates these into per-stage latency breakdowns; the tests use
:meth:`RequestTrace.validate` to assert the spans are well-ordered.

Stage naming:

* ``queue``    — enqueue → admit (or → queued-timeout),
* ``embed``    — BoW embedding (questions and story ingest),
* ``hop<k>``   — one inference hop,
* ``backoff``  — retry backoff sleep between attempts.

``STAGE_GROUPS`` maps the fine-grained names onto the three reporting
buckets (``queueing`` / ``embed`` / ``inference``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Span", "RequestTrace", "STAGE_GROUPS", "stage_group"]

#: Terminal outcomes a trace may end in.
OUTCOMES = ("pending", "completed", "shed", "timeout")

#: Reporting buckets for the per-stage latency breakdown.
STAGE_GROUPS = ("queueing", "embed", "inference", "backoff")


def stage_group(stage: str) -> str:
    """Map a fine-grained stage name onto its reporting bucket."""
    if stage == "queue":
        return "queueing"
    if stage.startswith("hop"):
        return "inference"
    if stage in ("embed", "backoff"):
        return stage
    raise ValueError(f"unknown stage {stage!r}")


@dataclass(frozen=True)
class Span:
    """One named stage of one request's life, in simulated time."""

    stage: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"span {self.stage!r} ends before it starts: "
                f"[{self.start}, {self.end}]"
            )
        stage_group(self.stage)  # validates the name

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RequestTrace:
    """The lifecycle record of one request (across all its attempts).

    Attributes:
        request_id: position of the request in the workload stream.
        kind: ``"question"`` or ``"story"``.
        arrival: the request's arrival time.
        outcome: terminal state (``pending`` until the run decides).
        attempts: admission attempts made (1 + retries).
        degradation_level: the degradation level in effect when the
            request was served (0 = full fidelity).
        spans: stage spans in the order they happened.
    """

    request_id: int
    kind: str
    arrival: float
    outcome: str = "pending"
    attempts: int = 1
    degradation_level: int = 0
    spans: list[Span] = field(default_factory=list)

    def add_span(self, stage: str, start: float, end: float) -> None:
        self.spans.append(Span(stage, start, end))

    def finish(self, outcome: str) -> None:
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        if self.outcome != "pending":
            raise RuntimeError(
                f"request {self.request_id} already finished: {self.outcome}"
            )
        self.outcome = outcome

    @property
    def retries(self) -> int:
        return self.attempts - 1

    def stage_seconds(self, group: str) -> float:
        """Total time this request spent in one reporting bucket."""
        return sum(s.duration for s in self.spans if stage_group(s.stage) == group)

    @property
    def end(self) -> float:
        """When the last recorded span closed (arrival if none)."""
        return self.spans[-1].end if self.spans else self.arrival

    def validate(self) -> None:
        """Assert the span sequence is well-ordered.

        Spans must start at or after the arrival, be non-overlapping,
        and appear in chronological order; a finished trace must not be
        ``pending``.  Raises ``ValueError`` on the first violation.
        """
        cursor = self.arrival
        for span in self.spans:
            if span.start < cursor - 1e-12:
                raise ValueError(
                    f"request {self.request_id}: span {span.stage!r} starts at "
                    f"{span.start} before the previous span ended at {cursor}"
                )
            cursor = max(cursor, span.end)
        if self.outcome == "pending":
            raise ValueError(f"request {self.request_id} never finished")
