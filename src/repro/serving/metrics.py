"""Latency/throughput statistics for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencySample", "ServingMetrics"]


@dataclass(frozen=True)
class LatencySample:
    """One completed request."""

    kind: str  # "question" or "story"
    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queueing(self) -> float:
        return self.start - self.arrival

    @property
    def service(self) -> float:
        return self.finish - self.start


@dataclass
class ServingMetrics:
    """Aggregated results of one simulated run."""

    samples: list[LatencySample] = field(default_factory=list)
    simulated_seconds: float = 0.0

    def add(self, sample: LatencySample) -> None:
        self.samples.append(sample)

    def of_kind(self, kind: str) -> list[LatencySample]:
        return [s for s in self.samples if s.kind == kind]

    def latency_percentile(self, percentile: float, kind: str = "question") -> float:
        samples = self.of_kind(kind)
        if not samples:
            return 0.0
        return float(np.percentile([s.latency for s in samples], percentile))

    def mean_latency(self, kind: str = "question") -> float:
        samples = self.of_kind(kind)
        if not samples:
            return 0.0
        return float(np.mean([s.latency for s in samples]))

    def throughput(self, kind: str = "question") -> float:
        """Completed requests per simulated second."""
        if self.simulated_seconds <= 0:
            return 0.0
        return len(self.of_kind(kind)) / self.simulated_seconds

    def summary(self) -> dict[str, float]:
        return {
            "questions_completed": float(len(self.of_kind("question"))),
            "stories_completed": float(len(self.of_kind("story"))),
            "question_throughput": self.throughput("question"),
            "question_mean_latency": self.mean_latency("question"),
            "question_p95_latency": self.latency_percentile(95.0),
            "simulated_seconds": self.simulated_seconds,
        }
