"""Latency/throughput statistics for the serving simulator.

:class:`ServingMetrics` is the run's metrics registry: the original
completed-request latency samples (p50/p95/p99, throughput) plus the
robustness counters (arrivals / admissions / sheds / timeouts /
retries), the degradation-controller summary, the full set of
request-lifecycle traces from which the per-stage latency breakdown is
aggregated, and — in the batched service mode — per-batch
:class:`BatchSample` records from which batch occupancy and
per-request queueing percentiles are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .trace import STAGE_GROUPS, RequestTrace

__all__ = ["BatchSample", "LatencySample", "ServingMetrics"]


@dataclass(frozen=True)
class LatencySample:
    """One completed request."""

    kind: str  # "question" or "story"
    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queueing(self) -> float:
        return self.start - self.arrival

    @property
    def service(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class BatchSample:
    """One engine batch served by the batched service mode.

    Attributes:
        formed_at: when the batcher dispatched the batch.
        size: questions the batch carried at dispatch.
        capacity: the policy's ``max_batch_size``.
        queue_waits: per-member seconds spent in the batcher.
        deadline_slacks: per-member ``deadline - formed_at`` for the
            members that carry deadlines.
        service_start: when a worker began serving the batch.
        service_end: when the batch finished.
        served: members actually served (those still within deadline
            when the worker was granted).
        hop_survivors: expected questions still running at each hop
            under the early-exit cost model (empty when the batch was
            charged full depth for every member).  A shrinking tuple is
            the freed compute the batched mode accounts: hop ``h`` is
            charged at ``hop_seconds(batch_size=hop_survivors[h])``.
    """

    formed_at: float
    size: int
    capacity: int
    queue_waits: tuple[float, ...]
    deadline_slacks: tuple[float, ...]
    service_start: float
    service_end: float
    served: int
    hop_survivors: tuple[int, ...] = ()

    @property
    def fill_ratio(self) -> float:
        """``size / capacity`` — 1.0 is a perfectly amortized batch."""
        return self.size / self.capacity

    @property
    def service_seconds(self) -> float:
        return self.service_end - self.service_start


@dataclass
class ServingMetrics:
    """Aggregated results of one simulated run.

    ``samples`` holds one entry per *completed* request (the pre-
    robustness contract); the counters below reconcile against the full
    arrival stream: ``arrivals == completed + shed + timed_out`` once a
    run finishes.
    """

    samples: list[LatencySample] = field(default_factory=list)
    simulated_seconds: float = 0.0

    # --- request-lifecycle registry ------------------------------------------
    traces: list[RequestTrace] = field(default_factory=list)
    arrivals: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    timed_out: int = 0
    retries: int = 0
    degradation_peak_level: int = 0
    degradation_transitions: int = 0
    degradation_final_level: int = 0
    # Early-exit accounting: hops actually charged for served questions
    # vs. the full-depth budget those questions would have cost.
    question_hops_run: int = 0
    question_hops_full: int = 0

    # --- batched-mode registry -----------------------------------------------
    batches: list[BatchSample] = field(default_factory=list)

    def add(self, sample: LatencySample) -> None:
        self.samples.append(sample)

    def record_batch(self, sample: BatchSample) -> None:
        self.batches.append(sample)

    def of_kind(self, kind: str) -> list[LatencySample]:
        return [s for s in self.samples if s.kind == kind]

    def latency_percentile(self, percentile: float, kind: str = "question") -> float:
        samples = self.of_kind(kind)
        if not samples:
            return 0.0
        return float(np.percentile([s.latency for s in samples], percentile))

    def percentiles(self, kind: str = "question") -> dict[str, float]:
        """The standard p50/p95/p99 triple for one request kind."""
        return {
            f"p{p:g}": self.latency_percentile(p, kind) for p in (50.0, 95.0, 99.0)
        }

    def mean_latency(self, kind: str = "question") -> float:
        samples = self.of_kind(kind)
        if not samples:
            return 0.0
        return float(np.mean([s.latency for s in samples]))

    def throughput(self, kind: str = "question") -> float:
        """Completed requests per simulated second."""
        if self.simulated_seconds <= 0:
            return 0.0
        return len(self.of_kind(kind)) / self.simulated_seconds

    def queueing_percentile(self, percentile: float, kind: str = "question") -> float:
        """Percentile of per-request queueing delay (arrival → service)."""
        samples = self.of_kind(kind)
        if not samples:
            return 0.0
        return float(np.percentile([s.queueing for s in samples], percentile))

    def queueing_percentiles(self, kind: str = "question") -> dict[str, float]:
        """p50/p95/p99 of queueing delay for one request kind."""
        return {
            f"p{p:g}": self.queueing_percentile(p, kind) for p in (50.0, 95.0, 99.0)
        }

    # --- batch-occupancy aggregates --------------------------------------------

    @property
    def batch_occupancy(self) -> float:
        """Mean batch fill ratio (1.0 = every batch at capacity)."""
        if not self.batches:
            return 0.0
        return float(np.mean([b.fill_ratio for b in self.batches]))

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return float(np.mean([b.size for b in self.batches]))

    @property
    def batch_formation_wait(self) -> float:
        """Mean per-request seconds spent waiting for batch-mates."""
        waits = [w for b in self.batches for w in b.queue_waits]
        return float(np.mean(waits)) if waits else 0.0

    # --- robustness aggregates -------------------------------------------------

    @property
    def shed_rate(self) -> float:
        """Fraction of arrivals that were shed."""
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def timeout_rate(self) -> float:
        """Fraction of arrivals that exhausted their deadline."""
        return self.timed_out / self.arrivals if self.arrivals else 0.0

    @property
    def hops_saved_fraction(self) -> float:
        """Fraction of the full-depth hop budget the exit gate shed."""
        if self.question_hops_full <= 0:
            return 0.0
        return 1.0 - self.question_hops_run / self.question_hops_full

    def stage_breakdown(self, kind: str | None = None) -> dict[str, float]:
        """Mean seconds spent per stage group, over completed requests.

        Aggregated from the span traces — the queueing / embed /
        inference / backoff decomposition of the end-to-end latency.
        """
        traces = [
            t
            for t in self.traces
            if t.outcome == "completed" and (kind is None or t.kind == kind)
        ]
        if not traces:
            return {group: 0.0 for group in STAGE_GROUPS}
        return {
            group: float(np.mean([t.stage_seconds(group) for t in traces]))
            for group in STAGE_GROUPS
        }

    def reconcile(self) -> None:
        """Assert the lifecycle counters are mutually consistent.

        Every arrival must have exactly one terminal outcome, every
        completed request one latency sample, and every trace must be
        well-ordered.  Raises ``ValueError`` on the first violation.
        """
        if self.arrivals != self.completed + self.shed + self.timed_out:
            raise ValueError(
                f"{self.arrivals} arrivals != {self.completed} completed + "
                f"{self.shed} shed + {self.timed_out} timed out"
            )
        if self.completed != len(self.samples):
            raise ValueError(
                f"{self.completed} completed but {len(self.samples)} samples"
            )
        outcomes = {"completed": 0, "shed": 0, "timeout": 0}
        for trace in self.traces:
            trace.validate()
            outcomes[trace.outcome] += 1
        if (
            outcomes["completed"] != self.completed
            or outcomes["shed"] != self.shed
            or outcomes["timeout"] != self.timed_out
        ):
            raise ValueError(f"trace outcomes {outcomes} disagree with counters")

    def summary(self) -> dict[str, float]:
        breakdown = self.stage_breakdown("question")
        batched = (
            {
                "batches": float(len(self.batches)),
                "batch_occupancy": self.batch_occupancy,
                "mean_batch_size": self.mean_batch_size,
                "batch_formation_wait": self.batch_formation_wait,
                "queueing_p50": self.queueing_percentile(50.0),
                "queueing_p99": self.queueing_percentile(99.0),
            }
            if self.batches
            else {}
        )
        return {
            **batched,
            "questions_completed": float(len(self.of_kind("question"))),
            "stories_completed": float(len(self.of_kind("story"))),
            "question_throughput": self.throughput("question"),
            "question_mean_latency": self.mean_latency("question"),
            "question_p50_latency": self.latency_percentile(50.0),
            "question_p95_latency": self.latency_percentile(95.0),
            "question_p99_latency": self.latency_percentile(99.0),
            "simulated_seconds": self.simulated_seconds,
            "arrivals": float(self.arrivals),
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "shed_rate": self.shed_rate,
            "timed_out": float(self.timed_out),
            "retries": float(self.retries),
            "degradation_peak_level": float(self.degradation_peak_level),
            "question_hops_run": float(self.question_hops_run),
            "question_hops_full": float(self.question_hops_full),
            "hops_saved_fraction": self.hops_saved_fraction,
            "queueing_seconds": breakdown["queueing"],
            "embed_seconds": breakdown["embed"],
            "inference_seconds": breakdown["inference"],
        }
