"""Baseline MemNN inference — the step-by-step dataflow of Fig. 5(a).

The baseline computes each layer to completion before starting the
next, materializing three full ``nq x ns`` intermediates (``T_IN``,
``P_exp``, ``P``) between the inner product, softmax, and weighted sum.
At paper scale these intermediates spill to DRAM (§3.1's 800 MB / 200M
sentence example); here they are real NumPy arrays and the engine
accounts for the traffic they would generate.
"""

from __future__ import annotations

import time

import numpy as np

from .column import check_dtype
from .config import FLOAT_BYTES, ZeroSkipConfig
from .numerics import softmax, unstable_softmax
from .results import InferenceResult
from .stats import OpStats
from .zero_skip import exp_mode_mask, probability_mode_mask

__all__ = ["BaselineMemNN"]


class BaselineMemNN:
    """The paper's baseline inference over fixed input/output memories.

    Args:
        m_in: ``(ns, ed)`` input memory ``M_IN`` (embedded story).
        m_out: ``(ns, ed)`` output memory ``M_OUT``.
        dtype: compute precision for the memories and score matrix
            (the softmax itself runs in float64 either way).
    """

    def __init__(
        self, m_in: np.ndarray, m_out: np.ndarray, dtype=np.float64
    ) -> None:
        dtype = check_dtype(dtype)
        m_in = np.asarray(m_in, dtype=dtype)
        m_out = np.asarray(m_out, dtype=dtype)
        if m_in.ndim != 2 or m_out.ndim != 2:
            raise ValueError("memories must be 2-D (ns, ed)")
        if m_in.shape != m_out.shape:
            raise ValueError(
                f"M_IN and M_OUT shapes differ: {m_in.shape} vs {m_out.shape}"
            )
        self.m_in = m_in
        self.m_out = m_out
        self.dtype = dtype

    @property
    def num_sentences(self) -> int:
        return self.m_in.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self.m_in.shape[1]

    def scores(self, u: np.ndarray) -> np.ndarray:
        """Inner-product scores ``u x M_IN^T`` (step 1 of Fig. 5a)."""
        u = self._check_questions(u)
        return u @ self.m_in.T

    def output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
        return_probabilities: bool = False,
    ) -> InferenceResult:
        """Response vectors ``o = softmax(u x M_IN) x M_OUT`` (Eq. 3).

        Args:
            u: ``(nq, ed)`` question state vectors.
            zero_skip: optional zero-skipping configuration; when
                enabled, weighted-sum terms below the threshold are
                dropped (the probability vector itself is *not*
                renormalized, matching §4.1.1).
            stable: use the numerically stable softmax. ``False``
                selects the paper-faithful Eq. (1) form.
            return_probabilities: attach the full ``(nq, ns)``
                probability matrix to the result.
        """
        start_time = time.perf_counter()
        u = self._check_questions(u)
        nq, ed = u.shape
        ns = self.num_sentences

        t_in = u @ self.m_in.T  # (nq, ns) intermediate #1
        p = softmax(t_in) if stable else unstable_softmax(t_in)

        if zero_skip is not None and zero_skip.enabled:
            if zero_skip.mode == "probability":
                keep = probability_mode_mask(t_in, zero_skip.threshold)
            else:
                keep = exp_mode_mask(t_in, zero_skip.threshold)
            weights = np.where(keep, p, 0.0)
        else:
            keep = np.ones_like(p, dtype=bool)
            weights = p

        o = weights @ self.m_out

        kept = int(np.count_nonzero(keep))
        # bytes_read reflects the actual compute dtype via nbytes; the
        # modeled spill terms keep the paper's 4-byte-float convention.
        item = FLOAT_BYTES
        stats = OpStats(
            flops=int(2 * nq * ns * ed + 3 * nq * ns + 2 * kept * ed),
            divisions=nq * ns,
            exp_calls=nq * ns,
            bytes_read=(
                2 * self.m_in.nbytes  # M_IN for inner product, M_OUT for sum
                + 3 * nq * ns * item  # re-read T_IN, P_exp, P spills
            ),
            bytes_written=3 * nq * ns * item + o.nbytes,
            intermediate_bytes=3 * nq * ns * item,
            rows_computed=kept,
            rows_skipped=nq * ns - kept,
        )
        return InferenceResult(
            output=o,
            stats=stats,
            probabilities=p if return_probabilities else None,
            elapsed_seconds=time.perf_counter() - start_time,
        )

    def _check_questions(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=self.dtype)
        if u.ndim == 1:
            u = u[None, :]
        if u.ndim != 2 or u.shape[1] != self.embedding_dim:
            raise ValueError(
                f"questions must be (nq, {self.embedding_dim}), got {u.shape}"
            )
        return u
