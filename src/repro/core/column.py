"""Column-based algorithm with lazy softmax — the dataflow of Fig. 5(b).

The key idea (§3.1) is to pull the softmax denominator out of the
weighted sum:

    o = (1 / sum_j e^{u.m_j^IN}) * sum_i e^{u.m_i^IN} m_i^OUT      (Eq. 4)

which lets the engine stream ``M_IN``/``M_OUT`` chunk by chunk,
accumulating a partial weighted sum and a partial denominator, and
divide exactly once at the end ("lazy softmax").  Intermediates shrink
from ``nq x ns`` to ``nq x chunk`` and the division count drops from
``O(ns)`` to ``O(ed)`` per question.

Two numerical modes:

* ``stable=False`` — the paper-faithful Eq. (4): raw exponentials.
  Overflows for large scores.
* ``stable=True`` (default) — an *online softmax*: a running maximum is
  maintained per question and previously accumulated partials are
  rescaled when it grows.  Bit-for-bit this is the same rescaling trick
  flash-attention later popularized; it preserves Eq. (4)'s single-pass
  structure while matching the stable baseline.

Because partial results combine associatively, the same machinery
implements the paper's scale-out story (§3.1, last paragraph):
:class:`PartialOutput` values produced by different workers (threads,
CUDA streams, GPUs, FPGA lanes) merge with negligible synchronization
cost — the merged state is ``O(nq x ed)`` regardless of ``ns``.

The chunk loop itself is written allocation-free (DESIGN.md §10): all
per-chunk intermediates live in workspaces preallocated once per call
and filled with ``np.matmul(..., out=)`` / ``np.exp(..., out=)``, the
no-skip path never materializes a keep-mask, and the running-max
rescale short-circuits when no question's maximum grew.  Shifted
scores are floored at ``log(tiny)`` before exponentiation so deeply
improbable rows cost a normal-range multiply instead of a subnormal
one (x86 handles subnormals in microcode, ~100x slower — on float32
this turned the whole pass over).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

# The canonical dtype validation lives with the store tier (the two
# must agree on what a memory may contain); re-exported here because
# this module has always been its home.
from ..store.base import SUPPORTED_DTYPES, MemoryStore, StoreStats, check_dtype
from ..store.prefetch import ChunkPrefetcher
from ..store.resident import ResidentStore
from .config import FLOAT_BYTES, ChunkConfig, ZeroSkipConfig
from .results import InferenceResult
from .stats import OpStats
from .zero_skip import exp_mode_mask, running_probability_mode_mask

__all__ = [
    "ColumnMemNN",
    "PartialOutput",
    "column_op_stats",
    "exp_floor",
    "keep_mask",
    "partition_memory",
    "SUPPORTED_DTYPES",
    "check_dtype",
]


def keep_mask(
    scores: np.ndarray,
    denom: np.ndarray,
    log_max: np.ndarray,
    stable: bool,
    zero_skip: ZeroSkipConfig | None,
) -> np.ndarray | None:
    """Zero-skip keep-mask for one score block, or ``None`` for
    keep-all.

    ``None`` (zero-skipping disabled) lets the caller skip the mask
    multiply entirely instead of paying a full ``(nq, c)`` elementwise
    product against an all-ones mask.  Shared by the per-shard chunk
    loop and the fused tile kernel: the mask semantics depend only on
    the block's raw scores and the caller's running ``(denom,
    log_max)`` state, not on how the block was produced.
    """
    if zero_skip is None or not zero_skip.enabled:
        return None
    if zero_skip.mode == "exp":
        # Raw-score comparison: exact regardless of stabilization.
        return exp_mode_mask(scores, zero_skip.threshold)
    # Running-probability mode: denominator known so far.
    with np.errstate(divide="ignore"):
        log_running = log_max + np.log(denom) if stable else np.log(denom)
    return running_probability_mode_mask(
        scores, log_running, zero_skip.threshold
    )


def exp_floor(dtype: np.dtype):
    """Floor for shifted scores before ``exp``, a few ulps above
    ``log(smallest normal)`` so ``exp(floor)`` is safely *normal*: exp
    at the exact boundary rounds into subnormal range, and subnormal
    operands stall x86 pipelines ~100x per element (on float32 this
    single effect dominated the whole pass).  Shared by the per-shard
    chunk loop and the fused tile kernel so both clamp identically."""
    return dtype.type(np.log(np.finfo(dtype).tiny) + 2.0)


def column_op_stats(
    nq: int, ns: int, ed: int, rows_kept: int, chunk_size: int, dtype: np.dtype
) -> OpStats:
    """The column dataflow's operation ledger for one memory scan —
    the single accounting formula every kernel arrangement (per-shard
    chunk loop, fused tile kernel, worker-process shard) reports
    through, so stats are comparable across execution backends."""
    item = FLOAT_BYTES
    skipped_rows = nq * ns - rows_kept
    # Skipped rows leave their M_OUT rows unread (at chunk granularity
    # the hardware still streams them; this counts the algorithmic
    # bound the FPGA's per-row skip achieves).
    kept_fraction = rows_kept / (nq * ns) if nq * ns else 0.0
    # Matrix size from store metadata, not .nbytes — a row-subset
    # view would have to gather every row just to be measured.
    matrix_bytes = ns * ed * dtype.itemsize
    return OpStats(
        flops=int(2 * nq * ns * ed + 2 * nq * ns + 2 * rows_kept * ed + nq * ed),
        divisions=nq * ed,
        exp_calls=nq * ns,
        bytes_read=matrix_bytes + int(matrix_bytes * kept_fraction),
        bytes_written=nq * ed * item,
        intermediate_bytes=2 * nq * min(chunk_size, ns) * item,
        rows_computed=rows_kept,
        rows_skipped=skipped_rows,
    )


@dataclass
class PartialOutput:
    """Mergeable partial state of the column-based algorithm.

    Stores the weighted-sum numerator and the softmax denominator in a
    max-normalized form: the true quantities are
    ``weighted * e^{log_max}`` and ``denom * e^{log_max}``.

    Attributes:
        weighted: ``(nq, ed)`` partial numerator.
        denom: ``(nq,)`` partial denominator.
        log_max: ``(nq,)`` normalization exponent (``0`` in the
            paper-faithful unstable mode, the running score maximum in
            stable mode).
    """

    weighted: np.ndarray
    denom: np.ndarray
    log_max: np.ndarray

    @classmethod
    def empty(
        cls, num_questions: int, embedding_dim: int, dtype=np.float64
    ) -> "PartialOutput":
        """Identity element for :meth:`merge`."""
        dtype = check_dtype(dtype)
        return cls(
            weighted=np.zeros((num_questions, embedding_dim), dtype=dtype),
            denom=np.zeros(num_questions, dtype=dtype),
            log_max=np.full(num_questions, -np.inf, dtype=dtype),
        )

    def merge(self, other: "PartialOutput") -> "PartialOutput":
        """Combine two partials; associative and commutative."""
        if self.weighted.shape != other.weighted.shape:
            raise ValueError(
                "cannot merge partials of different shapes: "
                f"{self.weighted.shape} vs {other.weighted.shape}"
            )
        if np.array_equal(self.log_max, other.log_max):
            # Equal running maxima: both scale vectors are exactly 1.0
            # (a partial with log_max = -inf carries zero weighted/denom,
            # so skipping its 0-scale is also exact) — skip the no-op
            # rescale multiplies.
            return PartialOutput(
                weighted=self.weighted + other.weighted,
                denom=self.denom + other.denom,
                log_max=self.log_max.copy(),
            )
        new_max = np.maximum(self.log_max, other.log_max)
        # exp(-inf - -inf) would be NaN; an empty partial contributes 0.
        with np.errstate(invalid="ignore"):
            scale_self = np.where(
                np.isneginf(self.log_max), 0.0, np.exp(self.log_max - new_max)
            )
            scale_other = np.where(
                np.isneginf(other.log_max), 0.0, np.exp(other.log_max - new_max)
            )
        return PartialOutput(
            weighted=self.weighted * scale_self[:, None]
            + other.weighted * scale_other[:, None],
            denom=self.denom * scale_self + other.denom * scale_other,
            log_max=new_max,
        )

    def finalize(self) -> np.ndarray:
        """Apply the lazy softmax division (step 4 of Fig. 5b)."""
        if np.any(self.denom <= 0.0):
            raise ValueError("cannot finalize a partial with an empty denominator")
        return self.weighted / self.denom[:, None]


class ColumnMemNN:
    """Column-based inference over fixed input/output memories.

    The memories reach the kernel through a
    :class:`~repro.store.MemoryStore` tier: plain arrays are wrapped
    in a :class:`~repro.store.ResidentStore` (zero-copy chunk views —
    the historical behaviour, bit for bit), while a disk-backed store
    streams chunks through an optional budgeted LRU and double-buffered
    prefetch thread.  The numbers are identical either way; only where
    the bytes live differs.

    Args:
        m_in: ``(ns, ed)`` input memory ``M_IN`` (omit when ``store``
            is given).
        m_out: ``(ns, ed)`` output memory ``M_OUT``.
        chunk: chunking configuration (paper: 1000 sentences on CPU).
        dtype: compute precision (``float64`` reference, ``float32``
            halves memory traffic; converted once, here).  A ``store``
            dictates its own dtype.
        store: a :class:`~repro.store.MemoryStore` to stream the
            memories from instead of resident arrays.
        resident_bytes: byte budget of the resident-chunk LRU fronting
            the store (``None`` disables caching).
        prefetch_depth: chunks the background thread fetches ahead of
            the kernel (``0`` disables lookahead).
    """

    def __init__(
        self,
        m_in: np.ndarray | None = None,
        m_out: np.ndarray | None = None,
        chunk: ChunkConfig | None = None,
        dtype=np.float64,
        store: MemoryStore | None = None,
        resident_bytes: int | None = None,
        prefetch_depth: int = 0,
    ) -> None:
        self.chunk = chunk if chunk is not None else ChunkConfig()
        if store is not None:
            if m_in is not None or m_out is not None:
                raise ValueError("pass either (m_in, m_out) or store=, not both")
            dtype = check_dtype(store.dtype)
            self._store: MemoryStore = store
        else:
            if m_in is None or m_out is None:
                raise ValueError("memories required: pass (m_in, m_out) or store=")
            dtype = check_dtype(dtype)
            self._store = ResidentStore(m_in, m_out, dtype=dtype)
        self.dtype = dtype
        # Explicit stores and any caching/lookahead knobs go through
        # the prefetch pipeline (which also keeps the StoreStats
        # ledger); the plain-array path stays pipeline-free so the hot
        # resident loop reads zero-copy slices with no indirection.
        self._pipeline: ChunkPrefetcher | None = None
        if store is not None or resident_bytes is not None or prefetch_depth > 0:
            self._pipeline = ChunkPrefetcher(
                self._store,
                chunk_size=self.chunk.chunk_size,
                resident_bytes=resident_bytes,
                prefetch_depth=prefetch_depth,
            )
        self._exp_floor = exp_floor(dtype)

    @property
    def store(self) -> MemoryStore:
        """The tier serving this kernel's memory rows."""
        return self._store

    @property
    def store_stats(self) -> StoreStats | None:
        """Cumulative chunk-pipeline ledger (None on the plain path)."""
        return self._pipeline.stats if self._pipeline is not None else None

    @property
    def m_in(self) -> np.ndarray:
        """``M_IN`` as an array-like (a memmap for disk-backed stores)."""
        return self._store.m_in  # type: ignore[attr-defined]

    @property
    def m_out(self) -> np.ndarray:
        return self._store.m_out  # type: ignore[attr-defined]

    @property
    def num_sentences(self) -> int:
        return self._store.num_rows

    @property
    def embedding_dim(self) -> int:
        return self._store.embedding_dim

    def close(self) -> None:
        """Release solver-held resources (none here: this kernel owns
        no worker pools or spill directories).  Kept for API symmetry
        with :class:`~repro.core.sharded.ShardedMemNN` so callers can
        close any solver uniformly."""

    def output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> InferenceResult:
        """Response vectors via the chunked lazy-softmax dataflow."""
        start = time.perf_counter()
        partial, stats = self.partial_output(u, zero_skip=zero_skip, stable=stable)
        output = partial.finalize()
        return InferenceResult(
            output=output,
            stats=stats,
            elapsed_seconds=time.perf_counter() - start,
            store_stats=(
                self._pipeline.stats.snapshot()
                if self._pipeline is not None
                else None
            ),
        )

    def partial_output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> tuple[PartialOutput, OpStats]:
        """Run all chunks and return the mergeable partial state.

        This is the unit of work a scale-out deployment distributes:
        each worker calls :meth:`partial_output` on its shard and the
        coordinator merges and finalizes.
        """
        u = self._check_questions(u)
        nq, ed = u.shape
        ns = self.num_sentences
        dtype = self.dtype
        c = min(self.chunk.chunk_size, ns) if ns else 1
        skipping = zero_skip is not None and zero_skip.enabled

        log_max = (
            np.full(nq, -np.inf, dtype=dtype)
            if stable
            else np.zeros(nq, dtype=dtype)
        )
        denom = np.zeros(nq, dtype=dtype)
        acc = np.zeros((nq, ed), dtype=dtype)
        rows_kept = 0

        # Workspaces reused by every chunk — the loop itself allocates
        # nothing.  ``exp_ws`` exists only when zero-skipping needs the
        # raw scores kept alive alongside the exponentials.
        scores_ws = np.empty((nq, c), dtype=dtype)
        contrib = np.empty((nq, ed), dtype=dtype)
        chunk_max = np.empty(nq, dtype=dtype)
        new_max = np.empty(nq, dtype=dtype)
        exp_ws = np.empty((nq, c), dtype=dtype) if skipping else None

        if self._pipeline is not None:
            chunk_source = self._pipeline.chunks()
        else:
            store = self._store
            chunk_source = (
                store.read_chunk(start, start + c) for start in range(0, ns, c)
            )
        for chunk_in, chunk_out in chunk_source:
            n = chunk_in.shape[0]
            scores = scores_ws[:, :n]  # (nq, c) — fits on chip
            np.matmul(u, chunk_in.T, out=scores)

            if stable:
                scores.max(axis=1, out=chunk_max)
                np.maximum(log_max, chunk_max, out=new_max)
                if not np.array_equal(new_max, log_max):
                    # Some question's running max grew: rescale the
                    # accumulated partials.  When no max moved, every
                    # scale is exactly 1.0 — skip the no-op multiplies.
                    with np.errstate(invalid="ignore"):
                        scale = np.where(
                            np.isneginf(log_max),
                            0.0,
                            np.exp(log_max - new_max),
                        )
                    denom *= scale
                    acc *= scale[:, None]
                    log_max[:] = new_max
                exp_scores = exp_ws[:, :n] if skipping else scores
                np.subtract(scores, log_max[:, None], out=exp_scores)
            else:
                exp_scores = exp_ws[:, :n] if skipping else scores
                if exp_scores is not scores:
                    np.copyto(exp_scores, scores)
            np.maximum(exp_scores, self._exp_floor, out=exp_scores)
            np.exp(exp_scores, out=exp_scores)
            denom += exp_scores.sum(axis=1)

            # When skipping is off, `scores` may alias `exp_scores`
            # (already exponentiated) — safe, because the no-skip path
            # returns None without reading them.
            keep = self._keep_mask(scores, denom, log_max, stable, zero_skip)
            if keep is None:
                rows_kept += nq * n
            else:
                rows_kept += int(np.count_nonzero(keep))
                np.multiply(exp_scores, keep, out=exp_scores)
            np.matmul(exp_scores, chunk_out, out=contrib)
            acc += contrib

        partial = PartialOutput(weighted=acc, denom=denom, log_max=log_max)
        stats = self._stats(nq, ns, ed, rows_kept)
        return partial, stats

    def _keep_mask(
        self,
        scores: np.ndarray,
        denom: np.ndarray,
        log_max: np.ndarray,
        stable: bool,
        zero_skip: ZeroSkipConfig | None,
    ) -> np.ndarray | None:
        """Keep-mask for the current chunk (see :func:`keep_mask`)."""
        return keep_mask(scores, denom, log_max, stable, zero_skip)

    def _stats(self, nq: int, ns: int, ed: int, rows_kept: int) -> OpStats:
        # bytes_read reflects the actual compute dtype (float32 halves
        # the streamed traffic); the modeled write/intermediate terms
        # keep the paper's 4-byte-float convention (FLOAT_BYTES).
        return column_op_stats(
            nq, ns, ed, rows_kept, self.chunk.chunk_size, self.dtype
        )

    def _check_questions(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=self.dtype)
        if u.ndim == 1:
            u = u[None, :]
        if u.ndim != 2 or u.shape[1] != self.embedding_dim:
            raise ValueError(
                f"questions must be (nq, {self.embedding_dim}), got {u.shape}"
            )
        return u


def partition_memory(
    m_in: np.ndarray,
    m_out: np.ndarray,
    parts: int,
    chunk: ChunkConfig | None = None,
    dtype=np.float64,
) -> Iterator[ColumnMemNN]:
    """Shard the memories across ``parts`` column-based workers.

    Used by the multi-GPU model (§5.3): each worker computes a
    :class:`PartialOutput` on its shard; partials merge associatively.
    Shards are contiguous and cover every sentence exactly once.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    ns = np.asarray(m_in).shape[0]
    if parts > ns:
        raise ValueError(f"cannot split {ns} sentences into {parts} parts")
    bounds = np.linspace(0, ns, parts + 1, dtype=int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        yield ColumnMemNN(m_in[lo:hi], m_out[lo:hi], chunk=chunk, dtype=dtype)


def merge_partials(partials: Sequence[PartialOutput]) -> PartialOutput:
    """Merge worker partials into one (the coordinator's reduce step)."""
    if not partials:
        raise ValueError("need at least one partial to merge")
    merged = partials[0]
    for partial in partials[1:]:
        merged = merged.merge(partial)
    return merged


__all__.append("merge_partials")
