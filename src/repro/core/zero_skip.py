"""Zero-skipping masks (§3.2).

The probability vector produced by the input memory representation is
extremely sparse (Fig. 6): only the few story sentences related to the
question carry non-negligible weight.  Zero-skipping bypasses the
weighted-sum work for rows below a threshold.

Two placements exist in the paper:

* **probability mode** (CPU/GPU, §4.1.1): after the softmax, rows with
  ``p_i < th_skip`` are skipped.  Exact, but requires the full softmax
  denominator.
* **exp mode** (FPGA, §4.2): the raw exponential ``e^{u . m_i}`` is
  compared against ``th_skip`` on the fly, before the lazy softmax
  division is known.

All comparisons here happen in log space, which makes them exact and
overflow-free even when the raw exponentials would not be representable
— this is the reproduction's numerically robust equivalent of the
hardware comparator.

A mask value of ``True`` means *keep the row*.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "exp_mode_mask",
    "probability_mode_mask",
    "running_probability_mode_mask",
    "reduction_ratio",
]


def _log_threshold(threshold: float) -> float:
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    return math.log(threshold) if threshold > 0.0 else -math.inf


def exp_mode_mask(scores: np.ndarray, threshold: float) -> np.ndarray:
    """FPGA-style mask: keep rows with ``e^{score} >= threshold``.

    Evaluated as ``score >= log(threshold)`` so enormous scores never
    overflow. A threshold of 0 keeps every row.
    """
    return np.asarray(scores) >= _log_threshold(threshold)


def probability_mode_mask(scores: np.ndarray, threshold: float) -> np.ndarray:
    """CPU-style mask: keep rows with softmax probability >= threshold.

    Args:
        scores: ``(nq, ns)`` raw inner-product scores.
        threshold: probability cutoff (paper uses 0.1 on CPU).
    """
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - scores.max(axis=-1, keepdims=True)
    log_denom = np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))
    log_p = shifted - log_denom
    return log_p >= _log_threshold(threshold)


def running_probability_mode_mask(
    scores: np.ndarray,
    log_running_sum: np.ndarray,
    threshold: float,
) -> np.ndarray:
    """Single-pass probability mask using a *running* denominator.

    In the column-based algorithm the true softmax denominator is only
    known after the last chunk, so a probability-mode skip decision must
    use the denominator accumulated so far.  Because the running sum is
    never larger than the final sum, the running probability estimate is
    never smaller than the true probability — this mask therefore skips
    a **subset** of what the exact mask would skip (conservative; it
    never drops a row the exact rule would have kept).

    Args:
        scores: ``(nq, chunk)`` raw scores of the current chunk.
        log_running_sum: ``(nq,)`` log of the exp-sum accumulated up to
            and including the current chunk.
        threshold: probability cutoff.
    """
    scores = np.asarray(scores, dtype=np.float64)
    log_p_hat = scores - np.asarray(log_running_sum)[:, None]
    return log_p_hat >= _log_threshold(threshold)


def reduction_ratio(mask: np.ndarray) -> float:
    """Fraction of the weighted-sum work removed by a keep-mask."""
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        return 0.0
    return 1.0 - (float(np.count_nonzero(mask)) / mask.size)
