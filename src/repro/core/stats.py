"""Operation accounting: FLOPs, bytes moved, and intermediate spills.

The paper's bottleneck analysis (§2.2) and every platform model in
:mod:`repro.perf` are driven by the same question: *for a given network
shape and algorithm, how much arithmetic happens in each phase and how
many bytes cross the memory hierarchy?*  This module centralizes that
arithmetic so the numerical engines, the cache simulator traces, and
the analytical platform models all agree.

Two layers:

* :class:`OpStats` — a counter bundle produced by the numerical engines
  while they run (exact, includes zero-skipping effects).
* :func:`baseline_phase_costs` / :func:`column_phase_costs` — closed-form
  per-phase costs (inner product, softmax, weighted sum) for a
  :class:`~repro.core.config.MemNNConfig`, used by the platform models
  where running the actual numerics at paper scale (100M sentences)
  would be impossible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import FLOAT_BYTES, ChunkConfig, MemNNConfig

__all__ = [
    "OpStats",
    "PhaseCost",
    "baseline_phase_costs",
    "column_phase_costs",
    "PHASES",
]

#: The three inference phases of Fig. 5, in dataflow order.
PHASES = ("inner_product", "softmax", "weighted_sum")


@dataclass
class OpStats:
    """Counters accumulated by a numerical inference engine.

    Attributes:
        flops: floating-point multiply/add/divide/exp operations.
        divisions: division operations (the column-based algorithm cuts
            these from ``O(ns)`` to ``O(ed)``, §3.1).
        exp_calls: exponentiations (softmax numerator).
        bytes_read: bytes loaded from the memory matrices.
        bytes_written: bytes stored (outputs and spills).
        intermediate_bytes: peak bytes of live intermediate data — the
            quantity the column-based algorithm exists to shrink.
        rows_computed: output-memory rows that entered the weighted sum.
        rows_skipped: rows bypassed by zero-skipping.
    """

    flops: int = 0
    divisions: int = 0
    exp_calls: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    intermediate_bytes: int = 0
    rows_computed: int = 0
    rows_skipped: int = 0

    def __add__(self, other: "OpStats") -> "OpStats":
        return OpStats(
            flops=self.flops + other.flops,
            divisions=self.divisions + other.divisions,
            exp_calls=self.exp_calls + other.exp_calls,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            intermediate_bytes=max(self.intermediate_bytes, other.intermediate_bytes),
            rows_computed=self.rows_computed + other.rows_computed,
            rows_skipped=self.rows_skipped + other.rows_skipped,
        )

    def amortized(self, num_questions: int) -> "OpStats":
        """Fair per-question share of a batch's counters.

        The column-based dataflow streams the memory matrices once per
        *batch*, so a batch of ``nq`` questions attributes ``1/nq`` of
        every additive counter to each question (integer division;
        ``intermediate_bytes`` is a peak, not additive, and is kept
        whole).  This is attribution for reporting — the batch-level
        counters remain the ground truth.
        """
        if num_questions <= 0:
            raise ValueError(
                f"num_questions must be positive, got {num_questions}"
            )
        n = num_questions
        return OpStats(
            flops=self.flops // n,
            divisions=self.divisions // n,
            exp_calls=self.exp_calls // n,
            bytes_read=self.bytes_read // n,
            bytes_written=self.bytes_written // n,
            intermediate_bytes=self.intermediate_bytes,
            rows_computed=self.rows_computed // n,
            rows_skipped=self.rows_skipped // n,
        )

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def skip_ratio(self) -> float:
        """Fraction of output rows bypassed by zero-skipping."""
        total = self.rows_computed + self.rows_skipped
        return self.rows_skipped / total if total else 0.0


@dataclass(frozen=True)
class PhaseCost:
    """Closed-form cost of one inference phase.

    Attributes:
        flops: arithmetic operations in the phase.
        dram_bytes: bytes that must come from / go to off-chip DRAM
            (compulsory memory-matrix traffic plus intermediate spills
            that exceed the cache).
        cache_bytes: bytes served by on-chip storage (chunk-resident
            intermediates in the column-based algorithm).
    """

    flops: float
    dram_bytes: float
    cache_bytes: float = 0.0

    def __add__(self, other: "PhaseCost") -> "PhaseCost":
        return PhaseCost(
            flops=self.flops + other.flops,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            cache_bytes=self.cache_bytes + other.cache_bytes,
        )


def baseline_phase_costs(cfg: MemNNConfig) -> dict[str, PhaseCost]:
    """Per-phase costs of the baseline dataflow (Fig. 5a).

    The baseline materializes three ``nq x ns`` intermediates
    (``T_IN``, ``P_exp``, ``P``); at large ``ns`` they cannot stay in
    the LLC (§3.1's 800 MB example), so each is written to and re-read
    from DRAM between phases.
    """
    ns, nq, ed = cfg.num_sentences, cfg.num_questions, cfg.embedding_dim
    inter = ns * nq * FLOAT_BYTES  # one nq x ns intermediate matrix

    inner = PhaseCost(
        # u (nq x ed) . M_IN^T (ed x ns): 2 flops per MAC.
        flops=2.0 * nq * ns * ed,
        # Read M_IN once + write T_IN spill.
        dram_bytes=cfg.memory_bytes + inter,
    )
    softmax_phase = PhaseCost(
        # exp per element + sum + ns divisions per question (step 2-2).
        flops=3.0 * nq * ns,
        # Read T_IN back, write P_exp, read P_exp, write P.
        dram_bytes=4.0 * inter,
    )
    weighted = PhaseCost(
        # P (nq x ns) . M_OUT (ns x ed).
        flops=2.0 * nq * ns * ed,
        # Read P back + read M_OUT; output o is nq x ed (negligible).
        dram_bytes=inter + cfg.memory_bytes,
    )
    return {
        "inner_product": inner,
        "softmax": softmax_phase,
        "weighted_sum": weighted,
    }


def column_phase_costs(
    cfg: MemNNConfig,
    chunk: ChunkConfig,
    skip_ratio: float = 0.0,
) -> dict[str, PhaseCost]:
    """Per-phase costs of the column-based dataflow (Fig. 5b).

    Intermediates are ``nq x chunk`` and live in the cache
    (``cache_bytes``); only the memory matrices stream from DRAM.  The
    lazy softmax defers division to the end: ``nq x ed`` divisions
    total instead of ``nq x ns``.

    Args:
        skip_ratio: fraction of weighted-sum rows bypassed by
            zero-skipping (0 disables it).
    """
    if not 0.0 <= skip_ratio <= 1.0:
        raise ValueError(f"skip_ratio must be in [0, 1], got {skip_ratio}")
    ns, nq, ed = cfg.num_sentences, cfg.num_questions, cfg.embedding_dim
    chunk_inter = chunk.chunk_size * nq * FLOAT_BYTES
    n_chunks = chunk.num_chunks(ns)

    inner = PhaseCost(
        flops=2.0 * nq * ns * ed,
        dram_bytes=cfg.memory_bytes,  # M_IN streamed once
        cache_bytes=float(n_chunks * chunk_inter),  # T_IN per chunk
    )
    softmax_phase = PhaseCost(
        # exp + running sum per element, then the lazy division at the
        # very end: ed divisions per question.
        flops=2.0 * nq * ns + nq * ed,
        dram_bytes=0.0,
        cache_bytes=2.0 * n_chunks * chunk_inter,
    )
    weighted = PhaseCost(
        flops=2.0 * nq * ns * ed * (1.0 - skip_ratio),
        dram_bytes=cfg.memory_bytes * (1.0 - skip_ratio),  # skipped rows unread
        cache_bytes=float(n_chunks * chunk_inter),
    )
    return {
        "inner_product": inner,
        "softmax": softmax_phase,
        "weighted_sum": weighted,
    }
