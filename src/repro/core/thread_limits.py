"""Best-effort BLAS thread-pool introspection and limiting.

The process execution backend runs ``P`` worker processes, each of
which calls into NumPy's BLAS.  If every worker's BLAS also spins up
its own ``T``-wide thread pool, the machine runs ``P x T`` compute
threads on ``P``-ish cores and the "parallel" path loses to serial on
context switches (the oversubscription failure mode DESIGN.md §15
documents).  This module is the knob that prevents it: each worker
pins its BLAS pool to a configured width (default 1) at startup.

``threadpoolctl`` is the right tool for this job but is an optional
dependency this environment may not have, so the implementation
degrades explicitly:

1. ``threadpoolctl`` when importable (authoritative: covers OpenBLAS,
   MKL, BLIS and OpenMP runtimes);
2. a ``ctypes`` call into the already-loaded OpenBLAS
   (``openblas_set_num_threads``), located via ``/proc/self/maps`` —
   covers the scipy-openblas wheels NumPy ships on Linux;
3. environment variables (``OPENBLAS_NUM_THREADS`` & co.) — these do
   not affect an already-initialized pool in *this* process, but are
   inherited by worker processes forked/spawned afterwards, which is
   exactly when the process backend needs them;
4. a recorded no-op.

:func:`blas_thread_info` reports which layer is in effect so the
BENCH_core.json artifact can record the *actual* thread limits a
measurement ran under, not the requested ones.
"""

from __future__ import annotations

import ctypes
import os
from pathlib import Path

__all__ = ["apply_blas_limit", "blas_thread_info"]

#: Env vars the common BLAS/OpenMP runtimes honor at pool creation.
_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

#: Symbol names the OpenBLAS control API exports.  The scipy-openblas
#: wheels NumPy ships prefix the whole API with ``scipy_`` (and the
#: ILP64 build suffixes ``64_``); vanilla OpenBLAS exports the bare
#: names.
_OPENBLAS_SETTERS = (
    "scipy_openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "openblas_set_num_threads",
)
_OPENBLAS_GETTERS = (
    "scipy_openblas_get_num_threads64_",
    "scipy_openblas_get_num_threads",
    "openblas_get_num_threads64_",
    "openblas_get_num_threads",
)

_openblas_handle: ctypes.CDLL | None = None
_openblas_probed = False


def _load_openblas() -> ctypes.CDLL | None:
    """A handle to the OpenBLAS already mapped into this process, or
    ``None``.  ``CDLL`` on a path the dynamic loader has already mapped
    returns the existing library (refcounted), so this never loads a
    second BLAS."""
    global _openblas_handle, _openblas_probed
    if _openblas_probed:
        return _openblas_handle
    _openblas_probed = True
    maps = Path("/proc/self/maps")
    try:
        candidates = {
            line.split()[-1]
            for line in maps.read_text().splitlines()
            if "openblas" in line.lower() and line.split()[-1].startswith("/")
        }
        for path in sorted(candidates):
            try:
                handle = ctypes.CDLL(path)
            except OSError:
                continue
            if any(hasattr(handle, name) for name in _OPENBLAS_SETTERS):
                _openblas_handle = handle
                break
    except OSError:
        pass
    return _openblas_handle


def _threadpoolctl():
    try:
        import threadpoolctl  # noqa: PLC0415 — optional dependency

        return threadpoolctl
    except ImportError:
        return None


def apply_blas_limit(num_threads: int) -> str:
    """Pin BLAS thread pools to ``num_threads`` for the rest of this
    process's life (a worker-initializer, not a context manager).

    Returns the name of the layer that took effect —
    ``"threadpoolctl"``, ``"openblas-ctypes"``, ``"env"`` (future
    pools/children only) or ``"noop"`` — so callers can record what a
    measurement actually ran under.
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    # Env vars always: they cost nothing and cover any BLAS pool (or
    # grandchild process) initialized after this call.
    for var in _BLAS_ENV_VARS:
        os.environ[var] = str(num_threads)
    tpc = _threadpoolctl()
    if tpc is not None:
        tpc.threadpool_limits(limits=num_threads)
        return "threadpoolctl"
    handle = _load_openblas()
    if handle is not None:
        for name in _OPENBLAS_SETTERS:
            setter = getattr(handle, name, None)
            if setter is not None:
                setter(ctypes.c_int(num_threads))
                return "openblas-ctypes"
    return "env" if _BLAS_ENV_VARS[0] in os.environ else "noop"


def blas_thread_info() -> dict:
    """What BLAS this process runs and its current thread width.

    Keys: ``implementation`` (e.g. ``"openblas"``/``"unknown"``),
    ``max_threads`` (current pool width, ``None`` when undiscoverable)
    and ``control`` (the strongest limiting layer available here).
    Recorded into BENCH_core.json so speedup claims carry the thread
    configuration they were measured under.
    """
    tpc = _threadpoolctl()
    if tpc is not None:
        pools = [
            info
            for info in tpc.threadpool_info()
            if info.get("user_api") == "blas"
        ]
        if pools:
            return {
                "implementation": pools[0].get("internal_api", "unknown"),
                "max_threads": pools[0].get("num_threads"),
                "control": "threadpoolctl",
            }
    handle = _load_openblas()
    if handle is not None:
        threads = None
        for name in _OPENBLAS_GETTERS:
            getter = getattr(handle, name, None)
            if getter is not None:
                getter.restype = ctypes.c_int
                threads = int(getter())
                break
        return {
            "implementation": "openblas",
            "max_threads": threads,
            "control": "openblas-ctypes",
        }
    return {
        "implementation": "unknown",
        "max_threads": None,
        "control": "env",
    }
