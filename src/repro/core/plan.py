"""Planner side of the planner/executor split.

An :class:`InferencePlan` is a pure description of what one inference
pass *would* do — which chunks it streams, how many candidate rows the
top-k tier admits, how deep the early-exit gate is expected to let the
batch run — computed without touching the memories.  Execution stays
in :class:`~repro.core.engine.MnnFastEngine`; the plan exists so a
placement layer (the cluster router) can reason about a request's
memory footprint *before* deciding where it runs, and so cost models
and the executed pass agree on one description of the work.

The early-exit survivor model lives here as the pure function
:func:`expected_hop_survivors`, parameterized by a plain ``exit_rate``
probability: the calibration from a gate *threshold* to a rate is a
serving-policy concern (:func:`repro.serving.policy.
exit_rate_for_threshold`), and core must not import serving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import FLOAT_BYTES

__all__ = ["InferencePlan", "expected_hop_survivors", "plan_inference"]


def expected_hop_survivors(
    batch_size: int,
    hops: int,
    min_hops: int = 1,
    exit_rate: float = 0.0,
) -> list[int]:
    """Expected questions still running at each hop under the gate.

    The early-exit cost model: every question runs hop 1; after each
    gate check (hops ``min_hops .. hops - 1`` — the engine never
    checks after the last hop) an ``exit_rate`` fraction of the
    survivors retires, so the expected depth histogram is geometric.
    Entry ``h`` is the batch size hop ``h`` is charged at.  With the
    gate disabled (``exit_rate`` 0) every entry is ``batch_size``.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if hops < 1:
        raise ValueError(f"hops must be positive, got {hops}")
    if not 0.0 <= exit_rate <= 1.0:
        raise ValueError(f"exit_rate must be in [0, 1], got {exit_rate}")
    survivors: list[int] = []
    current = float(batch_size)
    for hop in range(hops):
        survivors.append(int(round(current)))
        if exit_rate > 0.0 and min_hops <= hop + 1 < hops:
            current *= 1.0 - exit_rate
    return survivors


@dataclass(frozen=True)
class InferencePlan:
    """What one inference pass will do, described without running it.

    Attributes:
        batch_size: questions in the pass.
        num_rows: memory rows backing the pass (the full store).
        embedding_dim: embedding width ``ed``.
        chunk_size: rows per streamed chunk of the column dataflow.
        chunks: global chunk indices the pass streams, in stream
            order.  Full coverage by default; a retrieval tier or a
            topic-locality workload narrows this to the chunks its
            candidate rows actually occupy — the set the router
            intersects with replica LRU contents.
        candidate_rows: expected rows the exact kernel scans per hop
            (``num_rows`` without a top-k tier).
        hops: configured hop count.
        min_hops: first hop after which the early-exit gate may fire.
        exit_rate: per-check expected exit probability (0 disables).
        survivors: expected batch size charged at each hop
            (:func:`expected_hop_survivors`).
        num_shards: shard fan-out of each hop (1 = unsharded).
        shard_policy: ``"contiguous"`` or ``"strided"``.
        dtype_bytes: bytes per element of the streamed memories.
    """

    batch_size: int
    num_rows: int
    embedding_dim: int
    chunk_size: int
    chunks: tuple[int, ...]
    candidate_rows: int
    hops: int
    min_hops: int
    exit_rate: float
    survivors: tuple[int, ...]
    num_shards: int = 1
    shard_policy: str = "contiguous"
    dtype_bytes: int = FLOAT_BYTES

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise ValueError(f"num_rows must be positive, got {self.num_rows}")
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )
        if not self.chunks:
            raise ValueError("a plan must stream at least one chunk")
        total = self.total_chunks
        bad = [c for c in self.chunks if not 0 <= c < total]
        if bad:
            raise ValueError(
                f"chunk indices {bad} outside [0, {total}) for "
                f"{self.num_rows} rows at chunk_size {self.chunk_size}"
            )
        if len(self.survivors) != self.hops:
            raise ValueError(
                f"survivors has {len(self.survivors)} entries for "
                f"{self.hops} hops"
            )

    @property
    def total_chunks(self) -> int:
        """Chunks covering the whole store (the plan may touch fewer)."""
        return math.ceil(self.num_rows / self.chunk_size)

    @property
    def num_chunks(self) -> int:
        """Chunks this pass streams."""
        return len(self.chunks)

    @property
    def executed_hops(self) -> int:
        """Hops expected to run at all (survivor count >= 1)."""
        return sum(1 for rows in self.survivors if rows >= 1)

    @property
    def expected_hops(self) -> float:
        """Expected per-question hop depth under the gate."""
        return sum(self.survivors) / self.batch_size

    @property
    def hop_bytes(self) -> int:
        """Memory traffic of one hop: the planned chunks of both
        ``M_IN`` and ``M_OUT``, streamed once per hop regardless of
        batch size (the column dataflow's amortization)."""
        per_chunk = self.chunk_rows_total * self.embedding_dim
        return 2 * per_chunk * self.dtype_bytes

    @property
    def chunk_rows_total(self) -> int:
        """Rows covered by the planned chunks (the tail chunk may be
        short)."""
        full, tail = divmod(self.num_rows, self.chunk_size)
        rows = 0
        for c in self.chunks:
            rows += self.chunk_size if c < full else tail
        return rows

    @property
    def bytes_streamed(self) -> int:
        """Total planned memory traffic across the executed hops."""
        return self.hop_bytes * self.executed_hops


def plan_inference(
    num_rows: int,
    embedding_dim: int,
    batch_size: int = 1,
    *,
    chunk_size: int = 1000,
    hops: int = 1,
    min_hops: int = 1,
    exit_rate: float = 0.0,
    candidate_rows: int | None = None,
    chunks: tuple[int, ...] | None = None,
    num_shards: int = 1,
    shard_policy: str = "contiguous",
    dtype_bytes: int = FLOAT_BYTES,
) -> InferencePlan:
    """Build an :class:`InferencePlan` from first principles.

    ``chunks`` defaults to full coverage of the store; pass an
    explicit subset when a retrieval tier (or workload topic locality)
    bounds which chunks the candidate rows can occupy.
    ``candidate_rows`` defaults to a full scan.
    """
    if chunks is None:
        chunks = tuple(range(math.ceil(num_rows / chunk_size)))
    if candidate_rows is None:
        candidate_rows = num_rows
    survivors = tuple(
        expected_hop_survivors(batch_size, hops, min_hops, exit_rate)
    )
    return InferencePlan(
        batch_size=batch_size,
        num_rows=num_rows,
        embedding_dim=embedding_dim,
        chunk_size=chunk_size,
        chunks=chunks,
        candidate_rows=candidate_rows,
        hops=hops,
        min_hops=min_hops,
        exit_rate=exit_rate,
        survivors=survivors,
        num_shards=num_shards,
        shard_policy=shard_policy,
        dtype_bytes=dtype_bytes,
    )
