"""MnnFastEngine — the public end-to-end inference facade.

Ties the pieces of Fig. 2 together: BoW embedding of stories and
questions, the input/output memory representations (via either the
baseline or the column-based algorithm), multi-hop iteration, and the
final fully-connected answer layer.

The engine is deliberately *deployment-shaped*: stories are appended
incrementally (as in the FPGA design of Fig. 8), questions arrive in
batches, and an optional embedding cache can be attached to the
question-embedding path to model (and measure) §3.3's dedicated cache.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import InitVar, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict

import numpy as np

from ..store.base import StoreStats
from ..store.mmap_store import MmapStore
from .baseline import BaselineMemNN
from .cache import VectorCache
from .column import ColumnMemNN
from .config import EngineConfig, MemNNConfig
from .early_exit import (
    EXIT_CONFIDENCE,
    EXIT_FULL_DEPTH,
    HopTrace,
    attention_mass_confidence,
    logit_margin_confidence,
)
from .plan import InferencePlan, plan_inference
from .sharded import ShardedMemNN

if TYPE_CHECKING:
    from ..index.stats import IndexStats
    from ..index.topk import TopKMemNN
from .numerics import (
    PAD_ID,
    bow_embed,
    position_encoding,
    softmax,
    unstable_softmax,
)
from .stats import OpStats

__all__ = [
    "MnnFastEngine",
    "EngineWeights",
    "AnswerResult",
    "BatchAnswer",
    "HopTrace",
    "VectorCache",
]


@dataclass
class EngineWeights:
    """Model parameters used by the engine.

    Two tying schemes are supported (matching Sukhbaatar et al.):

    * **layer-wise** (default): one ``(A, C)`` embedding pair reused by
      every hop — construct directly with ``embedding_a`` /
      ``embedding_c`` / ``answer_weight``.
    * **adjacent**: per-hop tables ``E_0 .. E_K`` with ``A_k = E_{k-1}``,
      ``C_k = E_k``, question embedding ``B = E_0`` and answer matrix
      ``W^T = E_K`` — construct with :meth:`adjacent`.

    Attributes:
        embedding_a: ``(V, ed)`` question/input embedding matrix (A/B).
        embedding_c: ``(V, ed)`` output embedding matrix (C).
        answer_weight: ``(num_answers, ed)`` final FC layer ``W``.
        hop_tables: adjacent-tying tables ``E_0 .. E_K`` (None for
            layer-wise tying).
    """

    embedding_a: np.ndarray
    embedding_c: np.ndarray
    answer_weight: np.ndarray
    hop_tables: list[np.ndarray] | None = None

    def __post_init__(self) -> None:
        if self.embedding_a.shape != self.embedding_c.shape:
            raise ValueError("A and C embedding matrices must share a shape")
        if self.answer_weight.shape[1] != self.embedding_a.shape[1]:
            raise ValueError("answer weight width must equal the embedding dim")
        # The pad row must embed to zero for BoW masking to be exact.
        self.embedding_a = np.array(self.embedding_a, dtype=np.float64)
        self.embedding_c = np.array(self.embedding_c, dtype=np.float64)
        self.answer_weight = np.array(self.answer_weight, dtype=np.float64)
        self.embedding_a[PAD_ID] = 0.0
        self.embedding_c[PAD_ID] = 0.0
        if self.hop_tables is not None:
            if len(self.hop_tables) < 2:
                raise ValueError("adjacent tying needs at least E_0 and E_1")
            tables = []
            for table in self.hop_tables:
                if table.shape != self.embedding_a.shape:
                    raise ValueError("all hop tables must share the A/C shape")
                table = np.array(table, dtype=np.float64)
                table[PAD_ID] = 0.0
                tables.append(table)
            self.hop_tables = tables

    @classmethod
    def adjacent(cls, tables: list[np.ndarray]) -> "EngineWeights":
        """Adjacent-tied weights from the tables ``E_0 .. E_K``."""
        if len(tables) < 2:
            raise ValueError("adjacent tying needs at least E_0 and E_1")
        return cls(
            embedding_a=tables[0],
            embedding_c=tables[1],
            answer_weight=tables[-1],
            hop_tables=list(tables),
        )

    @property
    def num_hops(self) -> int:
        """Hops this weight set serves exactly (adjacent tying), or 0
        for layer-wise weights (any hop count)."""
        return len(self.hop_tables) - 1 if self.hop_tables is not None else 0

    def hop_pair(self, hop: int, total_hops: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``(A_k, C_k)`` embedding pair for hop ``hop`` (0-based)."""
        if self.hop_tables is None:
            return self.embedding_a, self.embedding_c
        if total_hops != self.num_hops:
            raise ValueError(
                f"adjacent weights serve exactly {self.num_hops} hops, "
                f"engine configured for {total_hops}"
            )
        return self.hop_tables[hop], self.hop_tables[hop + 1]

    @classmethod
    def random(
        cls,
        config: MemNNConfig,
        num_answers: int | None = None,
        rng: np.random.Generator | None = None,
        scale: float = 0.1,
    ) -> "EngineWeights":
        """Gaussian-initialized weights (the paper's N(0, 0.1) style)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        num_answers = num_answers if num_answers is not None else config.vocab_size
        shape = (config.vocab_size, config.embedding_dim)
        return cls(
            embedding_a=rng.normal(0.0, scale, shape),
            embedding_c=rng.normal(0.0, scale, shape),
            answer_weight=rng.normal(0.0, scale, (num_answers, config.embedding_dim)),
        )


@dataclass
class AnswerResult:
    """Answers for one question batch.

    Attributes:
        answer_ids: ``(nq,)`` argmax answer token IDs.
        logits: ``(nq, num_answers)`` pre-softmax scores.
        answer_probabilities: ``(nq, num_answers)`` softmax over answers.
        response: ``(nq, ed)`` final response vector (o + u of last hop).
        stats: aggregated operation counters across hops.
        hop_stats: per-hop operation counters, in hop order — the
            request-lifecycle observability hook the serving trace
            consumes (``stats`` is their sum plus the answer layer).
        hop_shard_stats: constructor-only — read through
            ``tier_stats()["shards"]``.  Per-hop, per-shard operation
            counters on the sharded path (one inner list per hop, in
            shard order; empty inner lists on unsharded paths).
        hop_store_stats: per-hop memory-store ledger snapshots
            (cumulative at each hop; ``None`` entries off the store
            path).  Prefer ``tier_stats()["store"]``.
        hop_index_stats: per-hop top-k retrieval statistics (``None``
            entries off the top-k path).  Prefer
            ``tier_stats()["index"]``.
        hop_trace: what the confidence gate did — per-question
            ``hops_run``, exit reasons and per-check confidence
            (:class:`~repro.core.early_exit.HopTrace`; present on every
            pass, trivially full-depth when the gate is disabled).
            Prefer ``tier_stats()["hops"]``.
        cache_hits: embedding-cache hits while embedding the questions.
        cache_misses: embedding-cache misses.
        elapsed_seconds: measured wall-clock time of the end-to-end
            answer pass (``time.perf_counter``) — the *measured*
            counterpart to the modeled time :mod:`repro.perf` derives
            from ``stats``.  On per-question views of a batched pass
            this is the fair ``1/nq`` share of the batch wall-clock
            (mirroring :meth:`~repro.core.stats.OpStats.amortized`).
    """

    answer_ids: np.ndarray
    logits: np.ndarray
    answer_probabilities: np.ndarray
    response: np.ndarray
    stats: OpStats
    hop_stats: list[OpStats] = field(default_factory=list)
    hop_shard_stats: InitVar[list[list[OpStats]] | None] = None
    hop_store_stats: list[StoreStats | None] = field(default_factory=list)
    hop_index_stats: "list[IndexStats | None]" = field(default_factory=list)
    hop_trace: HopTrace | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0

    def __post_init__(
        self, hop_shard_stats: list[list[OpStats]] | None
    ) -> None:
        # Constructor keyword without a public attribute (the shim over
        # the old read surface is gone): tier_stats() is the accessor.
        self._hop_shard_stats = (
            hop_shard_stats if hop_shard_stats is not None else []
        )

    def tier_stats(self) -> Dict[str, Any]:
        """Per-tier statistics of this answer pass, one key per tier.

        Returns:
            ``{"shards": list[list[OpStats]], "store":
            list[StoreStats | None], "index": list[IndexStats | None],
            "hops": HopTrace | None}`` — shard/store/index values
            indexed by *executed* hop (shard lists empty and
            store/index entries ``None`` on hops where that tier did
            not run); ``"hops"`` is the confidence-gate record
            (per-question depth, exit reasons, per-check confidence).
        """
        return {
            "shards": self._hop_shard_stats,
            "store": self.hop_store_stats,
            "index": self.hop_index_stats,
            "hops": self.hop_trace,
        }


# Drop the lingering ``InitVar`` default so ``result.hop_shard_stats``
# is a hard AttributeError rather than a silent class-attribute read.
del AnswerResult.hop_shard_stats


@dataclass
class BatchAnswer:
    """Result of one *batched* engine pass over ``nq`` questions.

    The batch is the unit the column dataflow amortizes over: all hops
    run on the full ``nq x ed`` question matrix, so ``M_IN``/``M_OUT``
    stream from memory once for the whole batch while compute scales
    per question.  ``batch.stats`` records that amortized traffic;
    ``results`` re-slices the same numbers into one
    :class:`AnswerResult` per question (each carrying a fair
    per-question :meth:`~repro.core.stats.OpStats.amortized` share of
    the counters, so summing them never double-counts the stream).

    Attributes:
        batch: the whole-batch :class:`AnswerResult` — its ``stats``
            are the batch-level ground truth (memory streamed once).
        results: per-question :class:`AnswerResult` views in question
            order; numerically identical to answering each question
            alone (the lazy softmax is row-independent), with
            amortized per-question counters.  Embedding-cache counters
            live on ``batch`` (hits depend on batch order, so a
            per-question split would be arbitrary).
    """

    batch: AnswerResult
    results: list[AnswerResult]

    @property
    def batch_size(self) -> int:
        return len(self.results)

    @property
    def stats(self) -> OpStats:
        """Batch-level counters (the amortized memory traffic)."""
        return self.batch.stats

    @property
    def answer_ids(self) -> np.ndarray:
        return self.batch.answer_ids

    @property
    def amortized_bytes_per_question(self) -> float:
        """Memory-matrix bytes each question effectively paid for."""
        return self.batch.stats.bytes_read / max(1, self.batch_size)

    @property
    def hop_trace(self) -> HopTrace | None:
        """The batch's confidence-gate record (ragged depth across
        members lives here; per-question views carry their slice)."""
        return self.batch.hop_trace

    @property
    def hops_run(self) -> np.ndarray:
        """``(nq,)`` hops each member actually ran."""
        trace = self.batch.hop_trace
        if trace is None:  # pragma: no cover — answer() always emits one
            return np.full(self.batch_size, 0, dtype=np.intp)
        return trace.hops_run


class MnnFastEngine:
    """End-to-end MemNN inference with the MnnFast optimizations.

    Args:
        config: network shape.
        weights: model parameters; random by default.
        engine_config: which optimizations to apply
            (:meth:`EngineConfig.baseline` /
            :meth:`EngineConfig.mnnfast` / custom).
        use_position_encoding: apply Sukhbaatar-style position
            encoding to sentence embeddings.
    """

    def __init__(
        self,
        config: MemNNConfig,
        weights: EngineWeights | None = None,
        engine_config: EngineConfig | None = None,
        use_position_encoding: bool = False,
    ) -> None:
        self.config = config
        self.weights = (
            weights if weights is not None else EngineWeights.random(config)
        )
        if self.weights.embedding_a.shape[0] != config.vocab_size:
            raise ValueError(
                "weights vocabulary does not match config: "
                f"{self.weights.embedding_a.shape[0]} vs {config.vocab_size}"
            )
        if self.weights.embedding_a.shape[1] != config.embedding_dim:
            raise ValueError(
                "weights embedding dim does not match config: "
                f"{self.weights.embedding_a.shape[1]} vs {config.embedding_dim}"
            )
        self.engine_config = (
            engine_config if engine_config is not None else EngineConfig()
        )
        self._encoding = (
            position_encoding(config.max_words, config.embedding_dim)
            if use_position_encoding
            else None
        )
        # One (M_IN, M_OUT) pair per hop under adjacent tying; a single
        # shared pair under layer-wise tying.
        self._num_pairs = (
            self.weights.num_hops if self.weights.hop_tables is not None else 1
        )
        if self.weights.hop_tables is not None and (
            self.weights.num_hops != config.hops
        ):
            raise ValueError(
                f"adjacent weights serve {self.weights.num_hops} hops, "
                f"config asks for {config.hops}"
            )
        # Lazily-created spill directory for the mmap store backend
        # (used when the engine config asks for out-of-core memories
        # without naming a path).
        self._spill_tmp: tempfile.TemporaryDirectory | None = None
        self.clear_memories()

    # --- memory management ---------------------------------------------------

    @property
    def num_stored_sentences(self) -> int:
        return self._memories[0][0].shape[0]

    @property
    def memories(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only views of the first hop's (M_IN, M_OUT)."""
        return self._memories[0]

    def store_story(self, sentences: np.ndarray) -> None:
        """Embed story sentences and append them to M_IN / M_OUT
        (every hop's pair under adjacent tying).

        Args:
            sentences: ``(n, nw)`` padded word IDs.
        """
        sentences = self._check_sentences(sentences)
        if self.num_stored_sentences + len(sentences) > self.config.num_sentences:
            raise ValueError(
                "story overflows the configured memory: "
                f"{self.num_stored_sentences} + {len(sentences)} > "
                f"{self.config.num_sentences}"
            )
        for pair_index in range(self._num_pairs):
            emb_a, emb_c = self.weights.hop_pair(pair_index, self.config.hops) \
                if self.weights.hop_tables is not None \
                else (self.weights.embedding_a, self.weights.embedding_c)
            new_in = bow_embed(emb_a, sentences, self._encoding)
            new_out = bow_embed(emb_c, sentences, self._encoding)
            m_in, m_out = self._memories[pair_index]
            self._memories[pair_index] = (
                np.vstack([m_in, new_in]),
                np.vstack([m_out, new_out]),
            )
        self._invalidate_solvers()

    def set_memories(self, m_in: np.ndarray, m_out: np.ndarray) -> None:
        """Install pre-embedded memories directly (§4.1.1: the knowledge
        database is usually prepared offline in internal format).

        Only meaningful under layer-wise tying, where one memory pair
        serves every hop.
        """
        if self._num_pairs != 1:
            raise ValueError(
                "set_memories requires layer-wise weights; adjacent tying "
                "stores one embedded pair per hop (use store_story)"
            )
        m_in = np.asarray(m_in, dtype=np.float64)
        m_out = np.asarray(m_out, dtype=np.float64)
        if m_in.shape != m_out.shape or m_in.ndim != 2:
            raise ValueError("memories must be equal-shaped 2-D arrays")
        if m_in.shape[1] != self.config.embedding_dim:
            raise ValueError(
                f"memory width {m_in.shape[1]} != ed {self.config.embedding_dim}"
            )
        self._memories = [(m_in, m_out)]
        self._invalidate_solvers()

    def clear_memories(self) -> None:
        empty = np.zeros((0, self.config.embedding_dim))
        self._memories = [
            (empty.copy(), empty.copy()) for _ in range(self._num_pairs)
        ]
        # Solvers hold dtype-converted, shard-sliced copies of the
        # memories; every memory mutation invalidates them.
        self._invalidate_solvers()
        self._solver_cache_config = self.engine_config

    def _invalidate_solvers(self) -> None:
        """Drop the solver cache, releasing backend resources first.

        Process-backed solvers own a worker pool and possibly a
        spilled temp store; simply forgetting them would leave pool
        teardown to GC timing, so invalidation closes every cached
        solver that exposes ``close()`` before emptying the cache.
        """
        cache = getattr(self, "_solver_cache", None)
        if cache:
            for solver in cache.values():
                close = getattr(solver, "close", None)
                if close is not None:
                    close()
        self._solver_cache: dict[int, BaselineMemNN | ColumnMemNN | ShardedMemNN]
        self._solver_cache = {}

    def close(self) -> None:
        """Release engine-held resources: cached solvers (worker
        pools, self-spilled stores) and the engine's own spill
        directory.  The engine stays usable — the next answer pass
        rebuilds solvers (and re-spills) on demand.  Idempotent."""
        self._invalidate_solvers()
        spill, self._spill_tmp = self._spill_tmp, None
        if spill is not None:
            spill.cleanup()

    # --- planning ------------------------------------------------------------

    def plan(
        self,
        batch_size: int = 1,
        exit_rate: float = 0.0,
        chunks: tuple[int, ...] | None = None,
    ) -> InferencePlan:
        """Describe what one :meth:`answer` pass over ``batch_size``
        questions would do, without running it.

        The plan is pure — chunk coverage, expected candidate rows
        under the top-k tier, and the expected survivor schedule of
        the early-exit gate — so a placement layer can reason about
        the pass's memory footprint before choosing where it runs.

        ``exit_rate`` is the calibrated per-check exit probability;
        core does not know the threshold→rate calibration (a serving
        policy concern), so callers with an active gate supply it
        (:meth:`repro.serving.server.QaServer.plan` does).  ``chunks``
        narrows the planned chunk set below full coverage when the
        caller knows the pass's rows cluster (topic locality).
        """
        network = self.config
        engine = self.engine_config
        rows = max(1, self.num_stored_sentences or network.num_sentences)
        candidates = (
            engine.topk.expected_candidates(rows, batch_size=batch_size)
            if engine.topk.enabled
            else rows
        )
        return plan_inference(
            num_rows=rows,
            embedding_dim=network.embedding_dim,
            batch_size=batch_size,
            chunk_size=engine.chunk.chunk_size,
            hops=network.hops,
            min_hops=engine.early_exit.min_hops,
            exit_rate=exit_rate if engine.early_exit.enabled else 0.0,
            candidate_rows=candidates,
            chunks=chunks,
            num_shards=engine.num_shards,
            shard_policy=engine.shard_policy,
        )

    # --- question path -------------------------------------------------------

    def embed_question(
        self,
        questions: np.ndarray,
        cache: VectorCache | None = None,
    ) -> tuple[np.ndarray, int, int]:
        """Embed raw question word IDs into state vectors ``u``.

        Questions arrive as raw bag-of-words (§4.1.1); each word's
        vector is fetched through the embedding cache when one is
        attached, modelling §3.3.

        Returns:
            ``(u, cache_hits, cache_misses)``.
        """
        questions = self._check_sentences(questions)
        if cache is None:
            return (
                bow_embed(self.weights.embedding_a, questions, self._encoding),
                0,
                0,
            )

        hits = misses = 0
        u = np.zeros((len(questions), self.config.embedding_dim))
        for row, sentence in enumerate(questions):
            for pos, word_id in enumerate(sentence):
                if word_id == PAD_ID:
                    continue
                vector = cache.lookup(int(word_id))
                if vector is None:
                    misses += 1
                    vector = self.weights.embedding_a[word_id]
                    cache.insert(int(word_id), vector)
                else:
                    hits += 1
                if self._encoding is not None:
                    vector = vector * self._encoding[pos]
                u[row] += vector
        return u, hits, misses

    def answer(
        self,
        questions: np.ndarray,
        cache: VectorCache | None = None,
        hop_hook: Callable[[int, OpStats], None] | None = None,
    ) -> AnswerResult:
        """Answer a batch of raw (word-ID) questions end-to-end.

        When the engine config enables confidence-gated early exit
        (:meth:`EngineConfig.with_early_exit`), questions that clear
        the gate after a hop are *retired* from the question matrix:
        the remaining hops run a shrinking ``nq x ed`` GEMM over the
        survivors only.  Every step of every dataflow is
        row-independent over the question axis, so the survivors'
        numbers are unchanged by the retirement, and the per-question
        outcome (``hops_run``, exit reason, per-check confidence) is
        recorded in ``tier_stats()["hops"]``.  At threshold 0 the gate
        is disabled and this method is bit-identical to the historical
        full-depth path.

        Args:
            questions: ``(nq, nw)`` raw word IDs.
            cache: optional embedding cache on the question path (§3.3).
            hop_hook: called as ``hop_hook(hop, stats)`` after each hop
                with that hop's operation counters — the per-hop
                observability hook the serving trace builds on.
        """
        start_time = time.perf_counter()
        if self.num_stored_sentences == 0:
            raise ValueError("no story stored: call store_story/set_memories first")
        u, hits, misses = self.embed_question(questions, cache)

        ec = self.engine_config
        ee = ec.early_exit
        stats = OpStats()
        hop_stats: list[OpStats] = []
        hop_shard_stats: list[list[OpStats]] = []
        hop_store_stats: list[StoreStats | None] = []
        hop_index_stats: list[IndexStats | None] = []
        zero_skip = ec.zero_skip if ec.zero_skip.enabled else None
        gated = ee.enabled and self.config.hops > 1
        if gated:
            # Ragged-depth loop: exited questions are scattered into
            # final_u and dropped from u, so later hops shrink.
            nq_total = len(u)
            active = np.arange(nq_total, dtype=np.intp)
            final_u = np.empty_like(u)
            hops_run = np.zeros(nq_total, dtype=np.intp)
            exit_reason = [EXIT_FULL_DEPTH] * nq_total
            confidences: list[np.ndarray] = []
        for hop in range(self.config.hops):
            solver = self._solver(hop if self._num_pairs > 1 else 0)
            result = solver.output(u, zero_skip=zero_skip, stable=ec.stable_softmax)
            tiers = result.tier_stats()
            stats = stats + result.stats
            hop_stats.append(result.stats)
            hop_shard_stats.append(list(tiers["shards"] or []))
            hop_store_stats.append(tiers["store"])
            hop_index_stats.append(tiers["index"])
            if hop_hook is not None:
                hop_hook(hop, result.stats)
            u = u + result.output  # u_{k+1} = u_k + o_k
            if not gated:
                continue
            hops_run[active] += 1
            remaining = self.config.hops - (hop + 1)
            if remaining == 0 or hop + 1 < ee.min_hops:
                continue
            confidence, gate_stats = self._gate_confidence(
                u, np.asarray(result.output, dtype=u.dtype), remaining, hop
            )
            stats = stats + gate_stats
            row = np.full(nq_total, np.nan)
            row[active] = confidence
            confidences.append(row)
            exiting = confidence >= ee.required_confidence
            if not np.any(exiting):
                continue
            exited = active[exiting]
            # Fixed-point extrapolation: an exiting question stops
            # *attending* but keeps the predicted additive updates —
            # its terminal state is u_k + remaining * o_k, the same
            # state the confidence signal judged.  With locked-on
            # attention each remaining hop would add ~o_k again, so
            # this approximates full depth instead of truncating it.
            final_u[exited] = u[exiting] + remaining * np.asarray(
                result.output, dtype=u.dtype
            )[exiting]
            for question in exited:
                exit_reason[question] = EXIT_CONFIDENCE
            active = active[~exiting]
            u = u[~exiting]
            if len(active) == 0:
                break

        if gated:
            final_u[active] = u
            u = final_u
            hop_trace = HopTrace(
                threshold=ee.threshold,
                metric=ee.metric,
                hops_configured=self.config.hops,
                hops_run=hops_run,
                exit_reason=exit_reason,
                confidence=confidences,
            )
        else:
            hop_trace = HopTrace.full_depth(
                len(u), self.config.hops,
                threshold=ee.threshold, metric=ee.metric,
            )

        logits = u @ self.weights.answer_weight.T
        probabilities = softmax(logits)
        nq, num_answers = logits.shape
        stats.flops += 2 * nq * num_answers * self.config.embedding_dim
        return AnswerResult(
            answer_ids=np.argmax(logits, axis=1),
            logits=logits,
            answer_probabilities=probabilities,
            response=u,
            stats=stats,
            hop_stats=hop_stats,
            hop_shard_stats=hop_shard_stats,
            hop_store_stats=hop_store_stats,
            hop_index_stats=hop_index_stats,
            hop_trace=hop_trace,
            cache_hits=hits,
            cache_misses=misses,
            elapsed_seconds=time.perf_counter() - start_time,
        )

    def _gate_confidence(
        self,
        u: np.ndarray,
        last_output: np.ndarray,
        remaining_hops: int,
        hop: int,
    ) -> tuple[np.ndarray, OpStats]:
        """The configured confidence signal for the active questions.

        Returns the ``(len(u),)`` confidence array plus the gate's own
        operation counters (the check is not free; the accounting keeps
        the cost model honest).
        """
        ee = self.engine_config.early_exit
        ed = self.config.embedding_dim
        nq = len(u)
        gate_stats = OpStats()
        if ee.metric == "logit_margin":
            num_answers = self.weights.answer_weight.shape[0]
            # Extrapolation (2*nq*ed) + answer GEMM + softmax.
            gate_stats.flops += 2 * nq * ed + 2 * nq * num_answers * ed
            gate_stats.exp_calls += nq * num_answers
            confidence = logit_margin_confidence(
                u, last_output, remaining_hops, self.weights.answer_weight
            )
        else:
            # The next hop's attention distribution, reconstructed from
            # the resident memories (the engine keeps them in RAM even
            # when a store tier backs the solver).
            pair = hop + 1 if self._num_pairs > 1 else 0
            m_in = self._memories[pair][0]
            ns = m_in.shape[0]
            gate_stats.flops += 2 * nq * ns * ed
            gate_stats.exp_calls += nq * ns
            confidence = attention_mass_confidence(
                u, m_in, ee.attention_top_k
            )
        return confidence, gate_stats

    def answer_batch(
        self,
        questions: np.ndarray,
        cache: VectorCache | None = None,
        hop_hook: Callable[[int, OpStats], None] | None = None,
    ) -> BatchAnswer:
        """Answer a question batch in one vectorized pass.

        All hops run on the full ``nq x ed`` question matrix through
        the configured dataflow — one batched lazy softmax per chunk,
        per-row zero-skip masks, and (in sharded mode) a single
        :class:`~repro.core.column.PartialOutput` fold per shard for
        the whole batch — so ``M_IN``/``M_OUT`` stream from memory
        once per *batch* instead of once per question.  Because every
        step of the column dataflow is row-independent, each
        question's numbers match a solo :meth:`answer` call (the
        differential suite bounds the agreement at 1e-10).

        With confidence-gated early exit enabled the batch runs at
        *ragged depth*: members that clear the gate retire from the
        question matrix between hops (later hops stream the memories
        against a shrinking GEMM), and each per-question view carries
        its own slice of the gate record (``tier_stats()["hops"]``).
        Row-independence makes the retirement invisible to survivors,
        so the per-question equivalence above holds at every
        threshold on the exact paths.

        Args:
            questions: ``(nq, nw)`` raw word IDs (``nq >= 1``; a 1-D
                vector is treated as a single question).
            cache: optional embedding cache on the question path.
            hop_hook: per-hop observability hook, as in :meth:`answer`.

        Returns:
            A :class:`BatchAnswer`: the whole-batch result (amortized
            batch-level :class:`~repro.core.stats.OpStats`) plus one
            per-question :class:`AnswerResult` view per question.
        """
        batch = self.answer(questions, cache=cache, hop_hook=hop_hook)
        nq = len(batch.answer_ids)
        batch_tiers = batch.tier_stats()
        share = batch.stats.amortized(nq)
        hop_share = [stats.amortized(nq) for stats in batch.hop_stats]
        shard_share = [
            [stats.amortized(nq) for stats in shard_stats]
            for shard_stats in batch_tiers["shards"]
        ]
        results = [
            AnswerResult(
                answer_ids=batch.answer_ids[i : i + 1],
                logits=batch.logits[i : i + 1],
                answer_probabilities=batch.answer_probabilities[i : i + 1],
                response=batch.response[i : i + 1],
                stats=share,
                hop_stats=hop_share,
                hop_shard_stats=shard_share,
                # Store ledgers and index probes are batch-scoped (one
                # stream / one candidate set for the whole batch), so
                # the per-question views share them rather than split.
                hop_store_stats=batch_tiers["store"],
                hop_index_stats=batch_tiers["index"],
                # The gate record slices cleanly: each view carries its
                # own hops_run / exit reason / confidence trajectory.
                hop_trace=(
                    batch.hop_trace.question(i)
                    if batch.hop_trace is not None
                    else None
                ),
                elapsed_seconds=batch.elapsed_seconds / nq,
            )
            for i in range(nq)
        ]
        return BatchAnswer(batch=batch, results=results)

    def _solver(
        self, pair_index: int
    ) -> BaselineMemNN | ColumnMemNN | ShardedMemNN:
        """The answer-producing backend for one memory pair, cached.

        Solver construction converts the memories to the compute dtype
        and (in sharded mode) slices them into shards — work worth
        paying once per stored story, not once per request.  The cache
        is invalidated whenever the memories mutate
        (:meth:`store_story` / :meth:`set_memories` /
        :meth:`clear_memories`) or ``engine_config`` is swapped.
        """
        if self._solver_cache_config is not self.engine_config:
            self._invalidate_solvers()
            self._solver_cache_config = self.engine_config
        solver = self._solver_cache.get(pair_index)
        if solver is None:
            m_in, m_out = self._memories[pair_index]
            solver = self._build_solver(m_in, m_out, pair_index)
            self._solver_cache[pair_index] = solver
        return solver

    def _spill_dir(self, pair_index: int) -> Path:
        """Directory the mmap backend persists this pair's memories to.

        ``StoreConfig.path`` when the config names one (reusable across
        runs), otherwise an engine-owned temporary directory that lives
        as long as the engine does.
        """
        configured = self.engine_config.store.path
        if configured is not None:
            root = Path(configured)
        else:
            if self._spill_tmp is None:
                self._spill_tmp = tempfile.TemporaryDirectory(
                    prefix="repro-store-"
                )
            root = Path(self._spill_tmp.name)
        return root / f"pair{pair_index}"

    def _build_solver(
        self, m_in: np.ndarray, m_out: np.ndarray, pair_index: int = 0
    ) -> BaselineMemNN | ColumnMemNN | ShardedMemNN | TopKMemNN:
        """The answer-producing backend the engine config selects.

        The composed config's cross-field constraints are checked here
        (:meth:`~repro.core.config.EngineConfig.validate`) — the first
        point every configuration, however it was built, must pass
        through before any numerics run.

        With an mmap :class:`~repro.core.config.StoreConfig` the
        memories are spilled to disk first (§4.1.1's offline knowledge
        database, here produced by the engine itself) and the solver
        streams them back through the chunk pipeline — the spilled
        bytes are the converted memories, so the answers are exactly
        those of the resident path.  An enabled
        :class:`~repro.core.config.TopKConfig` interposes the
        retrieval tier in front of whichever exact kernel the rest of
        the config selects.
        """
        ec = self.engine_config.validate()
        dtype = np.dtype(ec.execution.dtype)
        if ec.algorithm == "baseline":
            return BaselineMemNN(m_in, m_out, dtype=dtype)
        sc = ec.store
        # Spill-on-demand: the process backend's workers need an
        # on-disk store to mmap, so a resident-store config with a
        # process execution backend spills exactly as the mmap backend
        # would (same bytes, same answers).  The top-k tier keeps its
        # resident arrays — its full-memory sharded fallback self-spills
        # and its transient per-pass subset solvers run serial.
        spill = sc.backend == "mmap" or (
            ec.execution.backend == "process"
            and ec.algorithm == "sharded"
            and not ec.topk.enabled
        )
        if spill:
            tier = {
                "store": MmapStore.save(
                    self._spill_dir(pair_index),
                    m_in,
                    m_out,
                    dtype=dtype,
                    overwrite=True,
                )
            }
        else:
            tier = {"m_in": m_in, "m_out": m_out, "dtype": dtype}
        if ec.topk.enabled:
            # Lazy import: repro.index depends on repro.core, so the
            # core package never imports it at module load.
            from ..index.topk import TopKMemNN as _TopKMemNN

            return _TopKMemNN(
                config=ec.topk,
                chunk=ec.chunk,
                num_shards=ec.num_shards,
                shard_policy=ec.shard_policy,
                execution=ec.execution,
                resident_bytes=sc.resident_bytes,
                prefetch_depth=sc.prefetch_depth,
                **tier,
            )
        if ec.algorithm == "sharded":
            return ShardedMemNN(
                num_shards=ec.num_shards,
                policy=ec.shard_policy,
                chunk=ec.chunk,
                execution=ec.execution,
                resident_bytes=sc.resident_bytes,
                prefetch_depth=sc.prefetch_depth,
                **tier,
            )
        return ColumnMemNN(
            chunk=ec.chunk,
            resident_bytes=sc.resident_bytes,
            prefetch_depth=sc.prefetch_depth,
            **tier,
        )

    def attention(
        self,
        questions: np.ndarray,
        cache: VectorCache | None = None,
    ) -> np.ndarray:
        """First-hop attention probabilities (for Fig. 6-style analysis).

        Honors ``engine_config`` (algorithm and ``stable_softmax``) and
        accepts the same optional embedding cache as :meth:`answer`.
        """
        if self.num_stored_sentences == 0:
            raise ValueError("no story stored: call store_story/set_memories first")
        u, _, _ = self.embed_question(questions, cache)
        m_in, m_out = self._memories[0]
        ec = self.engine_config
        if ec.algorithm == "baseline":
            solver = BaselineMemNN(m_in, m_out, dtype=np.dtype(ec.execution.dtype))
            result = solver.output(
                u, stable=ec.stable_softmax, return_probabilities=True
            )
            assert result.probabilities is not None
            return result.probabilities
        # Column/sharded paths: the lazy softmax normalizes once at the
        # end (after the exact shard merge, in sharded mode), so the
        # probabilities equal softmax(u . M_IN^T) — reconstruct them
        # with the configured softmax form.  tests/test_core_engine.py
        # guards this shortcut against the baseline's explicit softmax.
        scores = u @ m_in.T
        return softmax(scores) if ec.stable_softmax else unstable_softmax(scores)

    # --- helpers -------------------------------------------------------------

    def _check_sentences(self, sentences: np.ndarray) -> np.ndarray:
        sentences = np.asarray(sentences)
        if sentences.ndim == 1:
            sentences = sentences[None, :]
        if sentences.ndim != 2:
            raise ValueError(f"expected (n, nw) word IDs, got shape {sentences.shape}")
        if sentences.shape[1] > self.config.max_words:
            raise ValueError(
                f"sentences have {sentences.shape[1]} words > nw="
                f"{self.config.max_words}"
            )
        if sentences.shape[1] < self.config.max_words:
            pad = np.full(
                (sentences.shape[0], self.config.max_words - sentences.shape[1]),
                PAD_ID,
                dtype=sentences.dtype,
            )
            sentences = np.hstack([sentences, pad])
        return sentences
