"""The unified embedding-cache protocol.

Historically the repo had *two* cache contracts: the engine consumed a
``lookup``/``insert`` vector cache (functional: vectors in, vectors
out), while the serving simulator and the trace-driven experiments
drove :meth:`EmbeddingCache.touch` (trace-only: hit/miss bookkeeping,
no payload).  This module defines the single protocol both sides now
consume:

* :class:`VectorCache` — the functional core every cache implements:
  ``lookup(word_id) -> vector | None`` and ``insert(word_id, vector)``.
* :class:`TraceVectorCache` — extends it with ``probe(word_id) ->
  bool``, the trace-only access the timing models need (probe and
  fill, report hit/miss, never materialize a payload).
* :class:`TraceCacheMixin` — derives ``probe`` from ``lookup``/
  ``insert`` for payload-bearing caches, so any functional cache can
  serve the timing models unchanged.

The pre-unification ``EmbeddingCache.touch()`` spelling is gone;
``probe()`` is the only trace-mode access.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["VectorCache", "TraceVectorCache", "TraceCacheMixin", "PROBE_FILL"]


@runtime_checkable
class VectorCache(Protocol):
    """Anything that can cache word-ID -> embedding-vector pairs.

    :class:`repro.memsim.embedding_cache.EmbeddingCache` implements
    this; the engine and server only rely on the two methods below so
    tests can substitute simple fakes.
    """

    def lookup(self, word_id: int) -> Optional[np.ndarray]:
        """Return the cached vector for ``word_id`` or None on miss."""
        ...

    def insert(self, word_id: int, vector: Optional[np.ndarray]) -> None:
        """Install a vector (evicting per the cache's policy)."""
        ...


@runtime_checkable
class TraceVectorCache(VectorCache, Protocol):
    """A :class:`VectorCache` that also supports trace-only probes."""

    def probe(self, word_id: int) -> bool:
        """Trace-mode access: probe and fill, return True on hit."""
        ...


#: Tag-only fill installed by ``TraceCacheMixin.probe`` on a miss — a
#: zero-length vector, distinguishable from both ``None`` (a miss) and
#: any real embedding payload.
PROBE_FILL = np.zeros(0)


class TraceCacheMixin:
    """Derive the trace-only ``probe`` from ``lookup``/``insert``.

    A probe miss installs :data:`PROBE_FILL` (a tag-only sentinel) so
    subsequent probes of the same word hit.  Suitable for caches used
    purely in trace mode; caches with their own tag-only representation
    (e.g. ``EmbeddingCache``) override ``probe`` natively.
    """

    def probe(self, word_id: int) -> bool:
        if self.lookup(word_id) is not None:  # type: ignore[attr-defined]
            return True
        self.insert(word_id, PROBE_FILL)  # type: ignore[attr-defined]
        return False
