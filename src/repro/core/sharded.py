"""Sharded lazy-softmax attention with an exact merge (§3.1 scale-out).

The column-based algorithm turns attention into a single-pass
accumulation with one deferred division, so partial results computed
over *disjoint* slices of ``M_IN``/``M_OUT`` combine exactly: each
shard produces a ``(partial numerator, partial denominator, running
max)`` triple and the coordinator merges them with the max-rescaled
reduction of :meth:`~repro.core.column.PartialOutput.merge`.  The merge
is associative and commutative, which is the property that lets MANN
memories span threads, GPUs, or nodes (the paper's §3.1 closing
remark; the same observation underpins Rae et al.'s sparse-access
memories and hierarchical memory schemes).

Two layers live here:

* :class:`ShardPlan` — a deterministic row partition of the memory.
  ``"contiguous"`` slices the rows into K runs (what a range-sharded
  database does); ``"strided"`` deals rows round-robin (what a
  load-balancing row-cyclic layout does).  Both cover every row
  exactly once, and both tolerate ``K > num_rows`` by leaving trailing
  shards empty.  The plan is shared infrastructure: the numerical
  engine below, the serving fan-out model
  (:meth:`repro.serving.server.QaServer.hop_seconds`) and the cluster
  model (:class:`repro.perf.cluster.ClusterModel`) all consume it, so
  the simulated latency and the executed numerics agree on shard
  geometry.
* :class:`ShardedMemNN` — runs :class:`~repro.core.column.ColumnMemNN`
  (with optional per-shard zero-skipping) on each shard and merges.
  The final output matches single-shard column mode to ~1e-15
  relative (the only reordering is the max-rescaling, which the
  differential suite in ``tests/test_core_sharded.py`` bounds at
  1e-10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..store.base import MemoryStore, StoreStats
from .column import ColumnMemNN, PartialOutput, check_dtype
from .config import ChunkConfig, ExecutionConfig, ZeroSkipConfig
from .execution import run_shard_partials
from .results import InferenceResult
from .stats import OpStats

__all__ = ["ShardPlan", "ShardedMemNN", "SHARD_POLICIES"]

#: Supported row-partition policies.
SHARD_POLICIES = ("contiguous", "strided")


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``num_rows`` memory rows into
    ``num_shards`` disjoint shards.

    Attributes:
        num_rows: rows being partitioned (``ns``).
        num_shards: shard count ``K`` (may exceed ``num_rows``; the
            surplus shards are empty).
        policy: ``"contiguous"`` (range sharding) or ``"strided"``
            (round-robin row-cyclic sharding).
    """

    num_rows: int
    num_shards: int
    policy: str = "contiguous"

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise ValueError(f"num_rows must be non-negative, got {self.num_rows}")
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.policy not in SHARD_POLICIES:
            raise ValueError(
                f"policy must be one of {SHARD_POLICIES}, got {self.policy!r}"
            )

    def indices(self, shard: int) -> np.ndarray:
        """Row indices owned by ``shard`` (sorted, possibly empty)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        if self.policy == "contiguous":
            bounds = self._bounds()
            return np.arange(bounds[shard], bounds[shard + 1])
        return np.arange(shard, self.num_rows, self.num_shards)

    def _bounds(self) -> np.ndarray:
        return np.linspace(0, self.num_rows, self.num_shards + 1, dtype=int)

    def shard_rows(self, shard: int) -> int:
        """Number of rows in ``shard``."""
        return len(self.indices(shard))

    @property
    def shard_sizes(self) -> tuple[int, ...]:
        return tuple(self.shard_rows(k) for k in range(self.num_shards))

    @property
    def max_shard_rows(self) -> int:
        """Rows of the largest shard — the critical path of a fan-out."""
        return max(self.shard_sizes)

    @property
    def num_nonempty(self) -> int:
        return sum(1 for size in self.shard_sizes if size)

    def __iter__(self):
        for shard in range(self.num_shards):
            yield self.indices(shard)


class ShardedMemNN:
    """Column-based inference over K simulated memory shards.

    Each shard holds a disjoint row-slice of ``M_IN``/``M_OUT`` and
    runs the lazy-softmax column algorithm independently; the partial
    ``(numerator, denominator, row max)`` triples merge with the
    numerically-stable max-rescaled reduction.  Because the lazy
    softmax defers its single division to after the merge, the result
    is exact — not an approximation of single-shard column mode.

    Args:
        m_in: ``(ns, ed)`` input memory ``M_IN``.
        m_out: ``(ns, ed)`` output memory ``M_OUT``.
        num_shards: shard count ``K``.
        policy: row-partition policy (see :class:`ShardPlan`).
        chunk: per-shard chunking configuration.
        dtype: compute precision, applied to every shard.
        execution: execution backend — with a parallel config the
            shard fan-out really happens, on a thread pool (NumPy's
            BLAS releases the GIL, so shards occupy separate cores);
            the merge and its result are identical either way.
        store: a :class:`~repro.store.MemoryStore` to shard instead of
            resident arrays — each shard gets a lazy row-subset view
            of the tier (``store.select``), so an out-of-core memory
            is never materialized, shard by shard or otherwise.
        resident_bytes: chunk-LRU byte budget, divided evenly across
            the non-empty shards' pipelines.
        prefetch_depth: per-shard chunk lookahead (each shard's kernel
            runs its own prefetch thread).
    """

    def __init__(
        self,
        m_in: np.ndarray | None = None,
        m_out: np.ndarray | None = None,
        num_shards: int = 1,
        policy: str = "contiguous",
        chunk: ChunkConfig | None = None,
        dtype=np.float64,
        execution: ExecutionConfig | None = None,
        store: MemoryStore | None = None,
        resident_bytes: int | None = None,
        prefetch_depth: int = 0,
    ) -> None:
        self.chunk = chunk if chunk is not None else ChunkConfig()
        self.execution = execution
        if store is not None:
            if m_in is not None or m_out is not None:
                raise ValueError("pass either (m_in, m_out) or store=, not both")
            dtype = check_dtype(store.dtype)
            self.plan = ShardPlan(store.num_rows, num_shards, policy)
            self._embedding_dim = store.embedding_dim
        else:
            if m_in is None or m_out is None:
                raise ValueError("memories required: pass (m_in, m_out) or store=")
            dtype = check_dtype(dtype)
            m_in = np.asarray(m_in)
            m_out = np.asarray(m_out)
            if m_in.ndim != 2 or m_out.ndim != 2:
                raise ValueError("memories must be 2-D (ns, ed)")
            if m_in.shape != m_out.shape:
                raise ValueError(
                    f"M_IN and M_OUT shapes differ: {m_in.shape} vs {m_out.shape}"
                )
            self.plan = ShardPlan(m_in.shape[0], num_shards, policy)
            self._embedding_dim = m_in.shape[1]
        self.dtype = dtype
        # The LRU budget is a whole-memory budget: split it across the
        # shards' pipelines (a too-small share disables caching rather
        # than thrashing single-chunk entries).
        shard_budget = (
            resident_bytes // max(1, self.plan.num_nonempty) or None
            if resident_bytes is not None
            else None
        )
        if store is not None:
            self._shards = [
                ColumnMemNN(
                    store=store.select(idx),
                    chunk=self.chunk,
                    resident_bytes=shard_budget,
                    prefetch_depth=prefetch_depth,
                )
                for idx in self.plan
            ]
        else:
            self._shards = [
                ColumnMemNN(
                    m_in[idx],
                    m_out[idx],
                    chunk=self.chunk,
                    dtype=dtype,
                    resident_bytes=shard_budget,
                    prefetch_depth=prefetch_depth,
                )
                for idx in self.plan
            ]

    @property
    def num_sentences(self) -> int:
        return self.plan.num_rows

    @property
    def embedding_dim(self) -> int:
        return self._embedding_dim

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def store_stats(self) -> StoreStats | None:
        """Summed chunk-pipeline ledger across shards (cumulative),
        or ``None`` when no shard runs a pipeline."""
        per_shard = [
            shard.store_stats
            for shard in self._shards
            if shard.store_stats is not None
        ]
        if not per_shard:
            return None
        total = StoreStats()
        for stats in per_shard:
            total = total + stats
        return total

    def shard_partials(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> list[tuple[PartialOutput, OpStats]]:
        """Per-shard ``(partial, stats)`` pairs, in shard order.

        This is the unit of work a real deployment fans out; empty
        shards contribute the merge identity and zero counters.  Under
        a parallel :class:`~repro.core.config.ExecutionConfig` the
        shards genuinely run concurrently (thread pool over
        GIL-releasing NumPy kernels); results arrive in shard order
        either way, so downstream merges are order-deterministic.
        """
        return run_shard_partials(
            self._shards,
            u,
            zero_skip=zero_skip,
            stable=stable,
            execution=self.execution,
        )

    def partial_output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> tuple[PartialOutput, OpStats]:
        """Merged partial state plus aggregate counters.

        Mirrors :meth:`ColumnMemNN.partial_output`, so a sharded
        engine composes anywhere a column engine does (e.g. as one
        node of a larger cluster reduction).
        """
        partial, stats, _ = self._merged(u, zero_skip, stable)
        return partial, stats

    def output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> InferenceResult:
        """Response vectors via shard fan-out + exact merge."""
        start = time.perf_counter()
        partial, stats, shard_stats = self._merged(u, zero_skip, stable)
        output = partial.finalize()
        store_stats = self.store_stats
        return InferenceResult(
            output=output,
            stats=stats,
            shard_stats=shard_stats,
            elapsed_seconds=time.perf_counter() - start,
            store_stats=store_stats.snapshot() if store_stats is not None else None,
        )

    def _merged(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None,
        stable: bool,
    ) -> tuple[PartialOutput, OpStats, list[OpStats]]:
        pairs = self.shard_partials(u, zero_skip=zero_skip, stable=stable)
        merged = pairs[0][0]
        for partial, _ in pairs[1:]:
            merged = merged.merge(partial)
        shard_stats = [stats for _, stats in pairs]
        total = OpStats()
        for stats in shard_stats:
            total = total + stats
        total = total + self._merge_stats(merged.weighted.shape)
        return merged, total, shard_stats

    def _merge_stats(self, shape: tuple[int, int]) -> OpStats:
        """Cost of the coordinator's reduce: (K-1) max-rescaled merges
        of an ``O(nq x ed)`` partial — the negligible-synchronization
        claim of §3.1, made countable."""
        nq, ed = shape
        merges = self.plan.num_shards - 1
        # Per merge: rescale+add the numerator (4*nq*ed), plus the
        # max/scale/denominator work (~6*nq).
        return OpStats(flops=int(merges * (4 * nq * ed + 6 * nq)))
