"""Sharded lazy-softmax attention with an exact merge (§3.1 scale-out).

The column-based algorithm turns attention into a single-pass
accumulation with one deferred division, so partial results computed
over *disjoint* slices of ``M_IN``/``M_OUT`` combine exactly: each
shard produces a ``(partial numerator, partial denominator, running
max)`` triple and the coordinator merges them with the max-rescaled
reduction of :meth:`~repro.core.column.PartialOutput.merge`.  The merge
is associative and commutative, which is the property that lets MANN
memories span threads, GPUs, or nodes (the paper's §3.1 closing
remark; the same observation underpins Rae et al.'s sparse-access
memories and hierarchical memory schemes).

Two layers live here:

* :class:`ShardPlan` — a deterministic row partition of the memory.
  ``"contiguous"`` slices the rows into K runs (what a range-sharded
  database does); ``"strided"`` deals rows round-robin (what a
  load-balancing row-cyclic layout does).  Both cover every row
  exactly once, and both tolerate ``K > num_rows`` by leaving trailing
  shards empty.  The plan is shared infrastructure: the numerical
  engine below, the serving fan-out model
  (:meth:`repro.serving.server.QaServer.hop_seconds`) and the cluster
  model (:class:`repro.perf.cluster.ClusterModel`) all consume it, so
  the simulated latency and the executed numerics agree on shard
  geometry.
* :class:`ShardedMemNN` — runs :class:`~repro.core.column.ColumnMemNN`
  (with optional per-shard zero-skipping) on each shard and merges.
  The final output matches single-shard column mode to ~1e-15
  relative (the only reordering is the max-rescaling, which the
  differential suite in ``tests/test_core_sharded.py`` bounds at
  1e-10).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..store.base import MemoryStore, StoreStats
from ..store.mmap_store import MmapStore
from ..store.prefetch import ChunkPrefetcher
from ..store.resident import ResidentStore
from .column import (
    ColumnMemNN,
    PartialOutput,
    check_dtype,
    column_op_stats,
    exp_floor,
    keep_mask,
)
from .config import ChunkConfig, ExecutionConfig, ZeroSkipConfig
from .execution import ProcessShardRunner, run_shard_partials
from .results import InferenceResult
from .stats import OpStats

__all__ = ["ShardPlan", "ShardedMemNN", "SHARD_POLICIES"]

#: Supported row-partition policies.
SHARD_POLICIES = ("contiguous", "strided")


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``num_rows`` memory rows into
    ``num_shards`` disjoint shards.

    Attributes:
        num_rows: rows being partitioned (``ns``).
        num_shards: shard count ``K`` (may exceed ``num_rows``; the
            surplus shards are empty).
        policy: ``"contiguous"`` (range sharding) or ``"strided"``
            (round-robin row-cyclic sharding).
    """

    num_rows: int
    num_shards: int
    policy: str = "contiguous"

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise ValueError(f"num_rows must be non-negative, got {self.num_rows}")
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.policy not in SHARD_POLICIES:
            raise ValueError(
                f"policy must be one of {SHARD_POLICIES}, got {self.policy!r}"
            )

    def indices(self, shard: int) -> np.ndarray:
        """Row indices owned by ``shard`` (sorted, possibly empty)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        if self.policy == "contiguous":
            bounds = self._bounds()
            return np.arange(bounds[shard], bounds[shard + 1])
        return np.arange(shard, self.num_rows, self.num_shards)

    def _bounds(self) -> np.ndarray:
        return np.linspace(0, self.num_rows, self.num_shards + 1, dtype=int)

    def shard_rows(self, shard: int) -> int:
        """Number of rows in ``shard``."""
        return len(self.indices(shard))

    @property
    def shard_sizes(self) -> tuple[int, ...]:
        return tuple(self.shard_rows(k) for k in range(self.num_shards))

    @property
    def max_shard_rows(self) -> int:
        """Rows of the largest shard — the critical path of a fan-out."""
        return max(self.shard_sizes)

    @property
    def num_nonempty(self) -> int:
        return sum(1 for size in self.shard_sizes if size)

    def __iter__(self):
        for shard in range(self.num_shards):
            yield self.indices(shard)


class _FusedShardKernel:
    """The fused batchxshard tile kernel (DESIGN.md §15).

    The per-shard chunk loop issues one ``(nq x c)`` score GEMM per
    shard per chunk — ``K`` small BLAS calls per sweep step, with
    GIL-bound Python bookkeeping between them.  This kernel
    restructures the sweep: memory rows stream in *global tiles* of
    ``chunk_size x K`` rows, each tile's scores against **all** shards
    are one ``np.matmul`` (the nqxchunk matmul of ``answer_batch``,
    extended to fold shards), and only the cheap ``O(nq)``-state
    updates (running max, rescale, exp, per-shard second GEMM) happen
    per shard segment.  Parallelism belongs to BLAS's own threads
    inside that one big call — no Python fan-out, no GIL contention.

    Per-shard partial semantics are preserved exactly: every shard
    keeps its own ``(weighted, denom, log_max)`` accumulator and
    row-kept counter, updated from its segment of each tile, so the
    output is a list of per-shard ``(PartialOutput, OpStats)`` pairs
    that merge in shard order like any other backend's.  The rescale
    cadence differs from the per-shard loop (segments are tile∩shard,
    not shard-local chunks), so agreement with the per-shard path is
    the documented 1e-10 of any chunk-geometry change, not bitwise;
    the kernel itself is deterministic.  One semantic caveat:
    ``"probability"``-mode zero-skip decides against the running
    denominator *at decision time*, which any chunk-geometry change
    shifts (sharding itself already does, vs. unsharded column mode) —
    those masks agree to the skip approximation's threshold scale, not
    1e-10.  ``"exp"``-mode masks compare raw scores only and match the
    per-shard path exactly.

    Works over resident arrays (zero-copy tile views) or a memory
    store (tiles stream through a :class:`ChunkPrefetcher` sized to
    the tile, keeping the LRU/prefetch ledger).
    """

    def __init__(
        self,
        plan: ShardPlan,
        chunk: ChunkConfig,
        dtype,
        m_in: np.ndarray | None = None,
        m_out: np.ndarray | None = None,
        store: MemoryStore | None = None,
        resident_bytes: int | None = None,
        prefetch_depth: int = 0,
        tile_rows: int | None = None,
    ) -> None:
        self.plan = plan
        self.chunk_size = chunk.chunk_size
        #: Global rows per tile.  Default geometry: one shard-chunk's
        #: worth from every shard, so a full sweep runs the same number
        #: of tile steps as the per-shard loop runs chunk steps.  An
        #: explicit ``tile_rows`` (ExecutionConfig.fused_tile_rows)
        #: decouples the tile from the chunk geometry — tile size only
        #: moves the running-max rescale boundaries (~1e-10 agreement).
        self.tile_rows = (
            tile_rows
            if tile_rows is not None
            else max(1, self.chunk_size * plan.num_shards)
        )
        if self.tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {self.tile_rows}")
        self.dtype = dtype
        if store is not None:
            self._store: MemoryStore = store
        else:
            self._store = ResidentStore(m_in, m_out, dtype=dtype)
        self._pipeline: ChunkPrefetcher | None = None
        if store is not None or resident_bytes is not None or prefetch_depth > 0:
            self._pipeline = ChunkPrefetcher(
                self._store,
                chunk_size=self.tile_rows,
                resident_bytes=resident_bytes,
                prefetch_depth=prefetch_depth,
            )
        self._exp_floor = exp_floor(dtype)
        self._bounds = (
            plan._bounds() if plan.policy == "contiguous" else None
        )

    @property
    def store_stats(self) -> StoreStats | None:
        return self._pipeline.stats if self._pipeline is not None else None

    def _segments(self, t0: int, n: int):
        """``(shard, column selector)`` for every shard with rows in
        the tile ``[t0, t0 + n)`` — a contiguous sub-slice per shard
        under range sharding, a ``step=K`` stride under round-robin.
        Selectors index both the tile's score columns and its rows."""
        if self._bounds is not None:
            bounds = self._bounds
            for k in range(self.plan.num_shards):
                lo = max(int(bounds[k]), t0)
                hi = min(int(bounds[k + 1]), t0 + n)
                if lo < hi:
                    yield k, slice(lo - t0, hi - t0)
        else:
            num_shards = self.plan.num_shards
            for k in range(num_shards):
                offset = (k - t0) % num_shards
                if offset < n:
                    yield k, slice(offset, n, num_shards)

    def shard_partials(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> list[tuple[PartialOutput, OpStats]]:
        """Per-shard ``(partial, stats)`` pairs in shard order — the
        same contract as the per-shard backends, produced by the tiled
        sweep."""
        u = np.asarray(u, dtype=self.dtype)
        if u.ndim == 1:
            u = u[None, :]
        if u.ndim != 2 or u.shape[1] != self._store.embedding_dim:
            raise ValueError(
                f"questions must be (nq, {self._store.embedding_dim}), "
                f"got {u.shape}"
            )
        nq, ed = u.shape
        ns = self.plan.num_rows
        num_shards = self.plan.num_shards
        dtype = self.dtype
        skipping = zero_skip is not None and zero_skip.enabled
        tile = min(self.tile_rows, ns) if ns else 1

        # Per-shard accumulator state, exactly one ColumnMemNN partial
        # per shard (rows are views into these stacked arrays).
        log_max = (
            np.full((num_shards, nq), -np.inf, dtype=dtype)
            if stable
            else np.zeros((num_shards, nq), dtype=dtype)
        )
        denom = np.zeros((num_shards, nq), dtype=dtype)
        acc = np.zeros((num_shards, nq, ed), dtype=dtype)
        rows_kept = [0] * num_shards

        # Tile-wide workspaces (allocated once per sweep).
        scores_ws = np.empty((nq, tile), dtype=dtype)
        contrib = np.empty((nq, ed), dtype=dtype)
        seg_max = np.empty(nq, dtype=dtype)
        new_max = np.empty(nq, dtype=dtype)
        exp_ws = np.empty((nq, tile), dtype=dtype) if skipping else None

        if self._pipeline is not None:
            tile_source = self._pipeline.chunks()
        else:
            store = self._store
            tile_source = (
                store.read_chunk(start, start + tile)
                for start in range(0, ns, tile)
            )
        t0 = 0
        for tile_in, tile_out in tile_source:
            n = tile_in.shape[0]
            scores = scores_ws[:, :n]
            # THE fused call: one score GEMM covering every shard's
            # rows in this tile.
            np.matmul(u, tile_in.T, out=scores)
            for k, sel in self._segments(t0, n):
                seg = scores[:, sel]
                k_log_max, k_denom, k_acc = log_max[k], denom[k], acc[k]
                if stable:
                    seg.max(axis=1, out=seg_max)
                    np.maximum(k_log_max, seg_max, out=new_max)
                    if not np.array_equal(new_max, k_log_max):
                        with np.errstate(invalid="ignore"):
                            scale = np.where(
                                np.isneginf(k_log_max),
                                0.0,
                                np.exp(k_log_max - new_max),
                            )
                        k_denom *= scale
                        k_acc *= scale[:, None]
                        k_log_max[:] = new_max
                    exp_seg = exp_ws[:, sel] if skipping else seg
                    np.subtract(seg, k_log_max[:, None], out=exp_seg)
                else:
                    exp_seg = exp_ws[:, sel] if skipping else seg
                    if exp_seg is not seg:
                        np.copyto(exp_seg, seg)
                np.maximum(exp_seg, self._exp_floor, out=exp_seg)
                np.exp(exp_seg, out=exp_seg)
                k_denom += exp_seg.sum(axis=1)
                keep = keep_mask(seg, k_denom, k_log_max, stable, zero_skip)
                if keep is None:
                    rows_kept[k] += nq * seg.shape[1]
                else:
                    rows_kept[k] += int(np.count_nonzero(keep))
                    np.multiply(exp_seg, keep, out=exp_seg)
                np.matmul(exp_seg, tile_out[sel], out=contrib)
                k_acc += contrib
            t0 += n

        return [
            (
                PartialOutput(
                    weighted=acc[k], denom=denom[k], log_max=log_max[k]
                ),
                column_op_stats(
                    nq,
                    self.plan.shard_rows(k),
                    ed,
                    rows_kept[k],
                    self.chunk_size,
                    dtype,
                ),
            )
            for k in range(num_shards)
        ]


class ShardedMemNN:
    """Column-based inference over K simulated memory shards.

    Each shard holds a disjoint row-slice of ``M_IN``/``M_OUT`` and
    runs the lazy-softmax column algorithm independently; the partial
    ``(numerator, denominator, row max)`` triples merge with the
    numerically-stable max-rescaled reduction.  Because the lazy
    softmax defers its single division to after the merge, the result
    is exact — not an approximation of single-shard column mode.

    Args:
        m_in: ``(ns, ed)`` input memory ``M_IN``.
        m_out: ``(ns, ed)`` output memory ``M_OUT``.
        num_shards: shard count ``K``.
        policy: row-partition policy (see :class:`ShardPlan`).
        chunk: per-shard chunking configuration.
        dtype: compute precision, applied to every shard.
        execution: execution backend.  ``"serial"``/``"thread"`` run
            the per-shard chunk loop on the calling thread or a thread
            pool (the latter measured *slower* — see
            :mod:`repro.core.execution`); ``"process"`` fans shards
            out to worker processes that ``mmap`` a spilled
            :class:`~repro.store.MmapStore` (passed as ``store=``, or
            spilled here from resident arrays into a solver-owned temp
            directory); ``fused=True`` (serial only) runs the
            batchxshard tile kernel.  All backends produce per-shard
            partials that merge in shard order; process is
            bit-identical to serial, fused agrees to ~1e-10 (tile
            boundaries reorder the running-max rescales).
        store: a :class:`~repro.store.MemoryStore` to shard instead of
            resident arrays — each shard gets a lazy row-subset view
            of the tier (``store.select``), so an out-of-core memory
            is never materialized, shard by shard or otherwise.  The
            process backend requires this to be an
            :class:`~repro.store.MmapStore` (workers re-map it).
        resident_bytes: chunk-LRU byte budget, divided evenly across
            the non-empty shards' pipelines.
        prefetch_depth: per-shard chunk lookahead (each shard's kernel
            runs its own prefetch thread).
    """

    def __init__(
        self,
        m_in: np.ndarray | None = None,
        m_out: np.ndarray | None = None,
        num_shards: int = 1,
        policy: str = "contiguous",
        chunk: ChunkConfig | None = None,
        dtype=np.float64,
        execution: ExecutionConfig | None = None,
        store: MemoryStore | None = None,
        resident_bytes: int | None = None,
        prefetch_depth: int = 0,
    ) -> None:
        self.chunk = chunk if chunk is not None else ChunkConfig()
        self.execution = execution
        if store is not None:
            if m_in is not None or m_out is not None:
                raise ValueError("pass either (m_in, m_out) or store=, not both")
            dtype = check_dtype(store.dtype)
            self.plan = ShardPlan(store.num_rows, num_shards, policy)
            self._embedding_dim = store.embedding_dim
        else:
            if m_in is None or m_out is None:
                raise ValueError("memories required: pass (m_in, m_out) or store=")
            dtype = check_dtype(dtype)
            m_in = np.asarray(m_in)
            m_out = np.asarray(m_out)
            if m_in.ndim != 2 or m_out.ndim != 2:
                raise ValueError("memories must be 2-D (ns, ed)")
            if m_in.shape != m_out.shape:
                raise ValueError(
                    f"M_IN and M_OUT shapes differ: {m_in.shape} vs {m_out.shape}"
                )
            self.plan = ShardPlan(m_in.shape[0], num_shards, policy)
            self._embedding_dim = m_in.shape[1]
        self.dtype = dtype
        # The LRU budget is a whole-memory budget: split it across the
        # shards' pipelines (a too-small share disables caching rather
        # than thrashing single-chunk entries).
        shard_budget = (
            resident_bytes // max(1, self.plan.num_nonempty) or None
            if resident_bytes is not None
            else None
        )
        self._shards: list[ColumnMemNN] = []
        self._runner: ProcessShardRunner | None = None
        self._fused: _FusedShardKernel | None = None
        self._spill_tmp: tempfile.TemporaryDirectory | None = None
        if execution is not None and execution.backend == "process":
            if store is not None and not isinstance(store, MmapStore):
                raise ValueError(
                    "the process backend computes against a spilled "
                    f"MmapStore workers can map; got {type(store).__name__} "
                    "(spill the memories first, or pass resident arrays "
                    "and the solver spills them itself)"
                )
            if self.plan.num_rows == 0:
                raise ValueError(
                    "the process backend requires a non-empty memory "
                    "(nothing to spill)"
                )
            if isinstance(store, MmapStore):
                store_path = store.path
            else:
                # Self-spill: resident memories become a temp MmapStore
                # owned by this solver (removed on close()/GC) so the
                # worker processes have pages to map.
                self._spill_tmp = tempfile.TemporaryDirectory(
                    prefix="repro-shard-spill-"
                )
                store_path = Path(self._spill_tmp.name) / "store"
                MmapStore.save(store_path, m_in, m_out, dtype=dtype)
            self._runner = ProcessShardRunner(
                str(store_path),
                self.plan.num_shards,
                self.plan.policy,
                self.chunk.chunk_size,
                execution.num_workers,
                execution.worker_blas_threads(),
            )
        elif execution is not None and execution.fused:
            self._fused = _FusedShardKernel(
                self.plan,
                self.chunk,
                dtype,
                m_in=m_in,
                m_out=m_out,
                store=store,
                resident_bytes=resident_bytes,
                prefetch_depth=prefetch_depth,
                tile_rows=execution.fused_tile_rows,
            )
        elif store is not None:
            self._shards = [
                ColumnMemNN(
                    store=store.select(idx),
                    chunk=self.chunk,
                    resident_bytes=shard_budget,
                    prefetch_depth=prefetch_depth,
                )
                for idx in self.plan
            ]
        else:
            self._shards = [
                ColumnMemNN(
                    m_in[idx],
                    m_out[idx],
                    chunk=self.chunk,
                    dtype=dtype,
                    resident_bytes=shard_budget,
                    prefetch_depth=prefetch_depth,
                )
                for idx in self.plan
            ]

    @property
    def num_sentences(self) -> int:
        return self.plan.num_rows

    @property
    def embedding_dim(self) -> int:
        return self._embedding_dim

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def store_stats(self) -> StoreStats | None:
        """Summed chunk-pipeline ledger across shards (cumulative),
        or ``None`` when no shard runs a pipeline.  The process
        backend's ledgers live inside the worker processes (each maps
        its own shard) and are not reported here."""
        if self._fused is not None:
            return self._fused.store_stats
        per_shard = [
            shard.store_stats
            for shard in self._shards
            if shard.store_stats is not None
        ]
        if not per_shard:
            return None
        total = StoreStats()
        for stats in per_shard:
            total = total + stats
        return total

    def close(self) -> None:
        """Release backend resources: the process backend's worker
        pool and any self-spilled store directory.  Terminal — a
        closed process-backed solver cannot serve further requests
        (the engine drops and rebuilds solvers instead of reusing
        closed ones).  No-op for the other backends; idempotent."""
        if self._runner is not None:
            self._runner.close()
        spill, self._spill_tmp = self._spill_tmp, None
        if spill is not None:
            spill.cleanup()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def shard_partials(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> list[tuple[PartialOutput, OpStats]]:
        """Per-shard ``(partial, stats)`` pairs, in shard order.

        This is the unit of work a real deployment fans out; empty
        shards contribute the merge identity and zero counters.  The
        process backend computes them in worker processes against the
        spilled store, the fused kernel computes all of them in one
        tiled sweep, and the serial/thread backends loop (or pool)
        over per-shard kernels; results arrive in shard order in every
        case, so downstream merges are order-deterministic.
        """
        if self._runner is not None:
            return self._runner.run(u, zero_skip=zero_skip, stable=stable)
        if self._fused is not None:
            return self._fused.shard_partials(u, zero_skip=zero_skip, stable=stable)
        return run_shard_partials(
            self._shards,
            u,
            zero_skip=zero_skip,
            stable=stable,
            execution=self.execution,
        )

    def partial_output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> tuple[PartialOutput, OpStats]:
        """Merged partial state plus aggregate counters.

        Mirrors :meth:`ColumnMemNN.partial_output`, so a sharded
        engine composes anywhere a column engine does (e.g. as one
        node of a larger cluster reduction).
        """
        partial, stats, _ = self._merged(u, zero_skip, stable)
        return partial, stats

    def output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> InferenceResult:
        """Response vectors via shard fan-out + exact merge."""
        start = time.perf_counter()
        partial, stats, shard_stats = self._merged(u, zero_skip, stable)
        output = partial.finalize()
        store_stats = self.store_stats
        return InferenceResult(
            output=output,
            stats=stats,
            shard_stats=shard_stats,
            elapsed_seconds=time.perf_counter() - start,
            store_stats=store_stats.snapshot() if store_stats is not None else None,
        )

    def _merged(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None,
        stable: bool,
    ) -> tuple[PartialOutput, OpStats, list[OpStats]]:
        pairs = self.shard_partials(u, zero_skip=zero_skip, stable=stable)
        merged = pairs[0][0]
        for partial, _ in pairs[1:]:
            merged = merged.merge(partial)
        shard_stats = [stats for _, stats in pairs]
        total = OpStats()
        for stats in shard_stats:
            total = total + stats
        total = total + self._merge_stats(merged.weighted.shape)
        return merged, total, shard_stats

    def _merge_stats(self, shape: tuple[int, int]) -> OpStats:
        """Cost of the coordinator's reduce: (K-1) max-rescaled merges
        of an ``O(nq x ed)`` partial — the negligible-synchronization
        claim of §3.1, made countable."""
        nq, ed = shape
        merges = self.plan.num_shards - 1
        # Per merge: rescale+add the numerator (4*nq*ed), plus the
        # max/scale/denominator work (~6*nq).
        return OpStats(flops=int(merges * (4 * nq * ed + 6 * nq)))
