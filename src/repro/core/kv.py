"""Key-Value Memory Networks with the MnnFast optimizations.

The paper motivates MnnFast with large-scale question answering over
knowledge sources (Wikipedia-scale databases, §1/§2.2), citing
Key-Value Memory Networks [Miller et al. 2016] as the representative
architecture.  A KV memory generalizes the MemNN memory: *addressing*
happens against key vectors and *reading* returns a weighted sum of
value vectors:

    p_i = softmax(q . k_i)        o = sum_i p_i v_i

which is exactly the inner-product -> softmax -> weighted-sum pipeline
MnnFast optimizes — so the column-based lazy softmax and zero-skipping
apply unchanged, with ``M_IN = K`` and ``M_OUT = V``.  This module
wires that up, plus Miller et al.'s *key hashing*: an inverted index
preselects the candidate memory slots that share a word with the
question, shrinking the scanned memory by orders of magnitude before
the column-based scan even starts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..data.kb import KnowledgeBase
from ..data.vocab import Vocabulary
from .column import ColumnMemNN
from .config import ChunkConfig, ZeroSkipConfig
from .results import InferenceResult
from .stats import OpStats

__all__ = ["KeyValueMemory", "InvertedIndex", "KVMnnFast", "KVAnswer"]


@dataclass
class KeyValueMemory:
    """Encoded (key, value) memory slots.

    Attributes:
        keys: ``(ns, ed)`` key vectors (addressing side).
        values: ``(ns, ed)`` value vectors (reading side).
        value_ids: ``(ns,)`` vocabulary IDs of the value entities, for
            hard (argmax) retrieval.
    """

    keys: np.ndarray
    values: np.ndarray
    value_ids: np.ndarray

    def __post_init__(self) -> None:
        if self.keys.shape != self.values.shape or self.keys.ndim != 2:
            raise ValueError("keys and values must be equal-shaped (ns, ed)")
        if self.value_ids.shape != (self.keys.shape[0],):
            raise ValueError("value_ids must have one entry per slot")

    def __len__(self) -> int:
        return self.keys.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self.keys.shape[1]

    @classmethod
    def from_knowledge_base(
        cls,
        kb: KnowledgeBase,
        embedding: np.ndarray,
    ) -> "KeyValueMemory":
        """Encode a KB with a word-embedding table.

        Key vectors are bag-of-words sums of the fact's key tokens;
        value vectors are the object entity's embedding.
        """
        if embedding.ndim != 2 or embedding.shape[0] < len(kb.vocabulary):
            raise ValueError(
                "embedding must be (V, ed) covering the KB vocabulary"
            )
        ed = embedding.shape[1]
        keys = np.zeros((len(kb), ed))
        values = np.zeros((len(kb), ed))
        value_ids = np.zeros(len(kb), dtype=np.int64)
        for index, fact in enumerate(kb.facts):
            for token in fact.key_tokens():
                keys[index] += embedding[kb.vocabulary.id_of(token)]
            value_id = kb.vocabulary.id_of(fact.value_token())
            values[index] = embedding[value_id]
            value_ids[index] = value_id
        return cls(keys=keys, values=values, value_ids=value_ids)

    def subset(self, indices: Sequence[int]) -> "KeyValueMemory":
        """Gather a candidate subset (the post-hashing memory)."""
        indices = np.asarray(indices, dtype=np.int64)
        return KeyValueMemory(
            keys=self.keys[indices],
            values=self.values[indices],
            value_ids=self.value_ids[indices],
        )


class InvertedIndex:
    """Key hashing: word -> slots whose key contains it."""

    def __init__(self) -> None:
        self._slots_by_word: dict[str, list[int]] = defaultdict(list)
        self._num_slots = 0

    @classmethod
    def from_knowledge_base(cls, kb: KnowledgeBase) -> "InvertedIndex":
        index = cls()
        for slot, fact in enumerate(kb.facts):
            for token in set(fact.key_tokens()):
                index._slots_by_word[token].append(slot)
        index._num_slots = len(kb)
        return index

    @property
    def num_slots(self) -> int:
        return self._num_slots

    def candidates(self, tokens: Iterable[str], max_df: float = 0.2) -> np.ndarray:
        """Slots sharing at least one *discriminative* word with the query.

        Words that appear in more than ``max_df`` of all slots (stop
        words, common relation words at small scale) are ignored for
        hashing, as in Miller et al.'s frequency cutoff — unless no
        discriminative word matches at all, in which case every
        matching slot is returned rather than none.
        """
        if not 0.0 < max_df <= 1.0:
            raise ValueError(f"max_df must be in (0, 1], got {max_df}")
        limit = max(1, int(self._num_slots * max_df))
        discriminative: set[int] = set()
        everything: set[int] = set()
        for token in tokens:
            slots = self._slots_by_word.get(token.lower(), [])
            everything.update(slots)
            if 0 < len(slots) <= limit:
                discriminative.update(slots)
        chosen = discriminative if discriminative else everything
        return np.array(sorted(chosen), dtype=np.int64)


@dataclass
class KVAnswer:
    """Result of answering one question against the KV memory."""

    answer_token: str
    answer_id: int
    candidates_scanned: int
    total_slots: int
    stats: OpStats
    reading: InferenceResult

    @property
    def hashing_reduction(self) -> float:
        """Fraction of the memory the inverted index skipped."""
        if self.total_slots == 0:
            return 0.0
        return 1.0 - self.candidates_scanned / self.total_slots


class KVMnnFast:
    """Key-value QA with key hashing + the MnnFast dataflow.

    Args:
        kb: the knowledge base.
        embedding: ``(V, ed)`` word embeddings (random Gaussian works
            for retrieval because BoW dot products count shared words).
        chunk: column-based chunking for the key scan.
        zero_skip: optional zero-skipping during the value read.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        embedding: np.ndarray | None = None,
        chunk: ChunkConfig | None = None,
        zero_skip: ZeroSkipConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.kb = kb
        if embedding is None:
            # Near-orthogonal random embeddings: BoW dot products then
            # count shared words with noise ~ 1/sqrt(ed); 256 dims keep
            # a one-word margin reliable at WikiMovies-like scales.
            rng = rng if rng is not None else np.random.default_rng(0)
            vocab_size = len(kb.vocabulary)
            embedding = rng.normal(0.0, 1.0, (vocab_size, 256)) / np.sqrt(256)
            embedding[0] = 0.0
        self.embedding = np.asarray(embedding, dtype=np.float64)
        self.memory = KeyValueMemory.from_knowledge_base(kb, self.embedding)
        self.index = InvertedIndex.from_knowledge_base(kb)
        self.chunk = chunk if chunk is not None else ChunkConfig(chunk_size=256)
        self.zero_skip = zero_skip

    def encode_question(self, tokens: Sequence[str]) -> np.ndarray:
        """BoW-encode a question with the shared embedding table."""
        vector = np.zeros(self.memory.embedding_dim)
        for token in tokens:
            if token in self.kb.vocabulary:
                vector += self.embedding[self.kb.vocabulary.id_of(token)]
        return vector

    def answer(self, tokens: Sequence[str], use_hashing: bool = True) -> KVAnswer:
        """Answer one question.

        Addressing runs the column-based scan over the (hashed)
        candidate keys; the answer is the value of the best-addressed
        slot (hard retrieval), while the soft reading ``o`` — what a
        trained multi-hop network would consume — is returned alongside.
        """
        question = self.encode_question(tokens)
        if use_hashing:
            candidate_ids = self.index.candidates(tokens)
            if candidate_ids.size == 0:
                candidate_ids = np.arange(len(self.memory))
            memory = self.memory.subset(candidate_ids)
        else:
            candidate_ids = np.arange(len(self.memory))
            memory = self.memory

        scanner = ColumnMemNN(memory.keys, memory.values, chunk=self.chunk)
        reading = scanner.output(question, zero_skip=self.zero_skip)

        scores = memory.keys @ question
        best = int(np.argmax(scores))
        answer_id = int(memory.value_ids[best])
        return KVAnswer(
            answer_token=self.kb.vocabulary.word_of(answer_id),
            answer_id=answer_id,
            candidates_scanned=len(memory),
            total_slots=len(self.memory),
            stats=reading.stats,
            reading=reading,
        )
