"""Numerical primitives shared by the baseline and MnnFast algorithms.

These are the building blocks of Fig. 2 in the paper: the bag-of-words
embedding that turns sentences into internal state vectors, the softmax
used by the input memory representation, and the position encoding some
MemNN variants multiply into the word vectors before summation
(footnote 1 of §2.1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "unstable_softmax",
    "bow_embed",
    "position_encoding",
    "PAD_ID",
]

#: Word ID reserved for padding; its embedding row is forced to zero.
PAD_ID = 0


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Subtracts the running maximum before exponentiation so that large
    scores do not overflow; identical to the textbook definition
    ``e^{x_i} / sum_j e^{x_j}`` used in Eq. (1) of the paper.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def unstable_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """The paper-faithful softmax without max subtraction.

    Equation (1) as written: ``Softmax(x_i) = e^{x_i} / sum_j e^{x_j}``.
    Overflows for large scores — kept for the ablation of the lazy
    softmax's numerical behaviour (DESIGN.md §5).
    """
    exp = np.exp(np.asarray(x, dtype=np.float64))
    return exp / np.sum(exp, axis=axis, keepdims=True)


def bow_embed(
    embedding: np.ndarray,
    sentences: np.ndarray,
    encoding: np.ndarray | None = None,
) -> np.ndarray:
    """Embed sentences with the bag-of-words model (§2.1).

    Each word is looked up in the embedding matrix and the resulting
    vectors are summed to represent the sentence.

    Args:
        embedding: ``(V, ed)`` embedding dictionary. Row :data:`PAD_ID`
            is treated as padding and contributes zero.
        sentences: ``(n, nw)`` integer word IDs, padded with
            :data:`PAD_ID`.
        encoding: optional ``(nw, ed)`` position-encoding weights
            multiplied element-wise into each word vector before the
            sum (footnote 1 of §2.1).

    Returns:
        ``(n, ed)`` internal state vectors.
    """
    sentences = np.asarray(sentences)
    if sentences.ndim != 2:
        raise ValueError(f"sentences must be 2-D (n, nw), got shape {sentences.shape}")
    if sentences.min(initial=0) < 0 or sentences.max(initial=0) >= embedding.shape[0]:
        raise ValueError("sentence word IDs out of range for the embedding matrix")

    vectors = embedding[sentences]  # (n, nw, ed)
    mask = (sentences != PAD_ID)[..., None]  # (n, nw, 1)
    vectors = vectors * mask
    if encoding is not None:
        if encoding.shape != (sentences.shape[1], embedding.shape[1]):
            raise ValueError(
                "encoding shape must be (nw, ed) = "
                f"{(sentences.shape[1], embedding.shape[1])}, got {encoding.shape}"
            )
        vectors = vectors * encoding[None, :, :]
    return vectors.sum(axis=1)


def position_encoding(max_words: int, embedding_dim: int) -> np.ndarray:
    """Position-encoding matrix of Sukhbaatar et al. (2015), Eq. (4).

    ``l_kj = (1 - j/J) - (k/d) (1 - 2j/J)`` with 1-based ``j`` (word
    position) and ``k`` (embedding dimension). Preserves word order
    information that a plain BoW sum discards.

    Returns:
        ``(max_words, embedding_dim)`` weight matrix.
    """
    if max_words <= 0 or embedding_dim <= 0:
        raise ValueError("max_words and embedding_dim must be positive")
    j = np.arange(1, max_words + 1, dtype=np.float64)[:, None]  # word position
    k = np.arange(1, embedding_dim + 1, dtype=np.float64)[None, :]  # dimension
    big_j = float(max_words)
    big_d = float(embedding_dim)
    return (1.0 - j / big_j) - (k / big_d) * (1.0 - 2.0 * j / big_j)
