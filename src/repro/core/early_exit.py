"""Confidence-gated early exit: per-question adaptive hop depth.

A MemNN runs ``u_{k+1} = u_k + o_k`` for a *fixed* number of hops, but
A2P-MANN shows per-question hop pruning preserves accuracy while
cutting work, and MnnFast's own zero-skipping data (§3.2, Fig. 6)
proves the attention vector of a trained MANN is peaked enough to read
confidence from.  This module holds the two confidence signals the
gate can read after a hop and the :class:`HopTrace` record every
answer pass emits (surfaced through ``tier_stats()["hops"]``).

**Confidence semantics** (see
:class:`~repro.core.config.EarlyExitConfig`): a question exits after
hop ``k`` when its confidence reaches ``1 - threshold``, so the
threshold is the pruning *aggressiveness* — exit sets are nested in
it, which makes exit depth monotone non-increasing in the threshold
(the property the serving degradation lever relies on).

**Metrics:**

* ``logit_margin`` — softmax margin (top-1 minus top-2 probability)
  of the answer layer applied to the *extrapolated terminal state*
  ``u_k + remaining * o_k``.  The recurrence adds one attention
  readout per hop; once the attention has locked onto its rows, each
  remaining hop adds approximately the same ``o_k`` again, so the
  extrapolation previews where the full-depth state is heading.  A
  wide margin there means running the remaining hops cannot flip the
  argmax — exactly the agreement-with-full-depth guarantee the bench
  holds.  Cost ``O(nq * num_answers * ed)``, independent of ``ns``.
* ``attention_mass`` — the top-``k`` mass of the attention
  distribution the *next* hop would produce, ``softmax(u . M_IN^T)``.
  This is Fig. 6's concentration read directly: mass near 1 means the
  next readout is determined by a handful of rows the state has
  already absorbed.  It pays a full ``O(nq * ns * ed)`` scoring pass
  per check, so it is the analysis metric, not the production one.

Both signals are **row-independent over the question axis**: a
question's confidence depends only on its own row of ``u``/``o``, so
retiring exited rows between hops never perturbs the survivors (the
property suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .numerics import softmax

__all__ = [
    "HopTrace",
    "logit_margin_confidence",
    "attention_mass_confidence",
    "EXIT_FULL_DEPTH",
    "EXIT_CONFIDENCE",
]

#: Exit reason: the question ran every configured hop.
EXIT_FULL_DEPTH = "full_depth"
#: Exit reason: the question cleared the confidence gate early.
EXIT_CONFIDENCE = "confidence"


def logit_margin_confidence(
    u: np.ndarray,
    last_output: np.ndarray,
    remaining_hops: int,
    answer_weight: np.ndarray,
) -> np.ndarray:
    """Softmax margin of the extrapolated terminal answer logits.

    Args:
        u: ``(nq, ed)`` state *after* the hop just run.
        last_output: ``(nq, ed)`` the hop's attention readout ``o_k``.
        remaining_hops: hops left if the question does not exit.
        answer_weight: ``(num_answers, ed)`` final FC layer ``W``.

    Returns:
        ``(nq,)`` confidence in ``[0, 1]`` — top-1 minus top-2 softmax
        probability of ``(u + remaining * o_k) @ W^T``.  With a single
        answer class the margin is defined as 1 (nothing to flip).
    """
    projected = u + remaining_hops * last_output
    logits = projected @ answer_weight.T
    if logits.shape[1] < 2:
        return np.ones(len(logits))
    probabilities = softmax(logits)
    top2 = np.partition(probabilities, -2, axis=1)[:, -2:]
    return top2[:, 1] - top2[:, 0]


def attention_mass_confidence(
    u: np.ndarray,
    m_in: np.ndarray,
    top_k: int,
) -> np.ndarray:
    """Top-``k`` attention-mass concentration of the next hop.

    Args:
        u: ``(nq, ed)`` state after the hop just run (the next hop's
            input).
        m_in: ``(ns, ed)`` input memory the next hop would attend over.
        top_k: rows whose mass counts as "concentrated".

    Returns:
        ``(nq,)`` confidence in ``(0, 1]`` — the softmax mass the
        ``top_k`` highest-probability rows carry.  With ``ns <= top_k``
        every row is in the top set and the confidence is exactly 1.
    """
    probabilities = softmax(u @ m_in.T)
    k = min(top_k, probabilities.shape[1])
    top = np.partition(probabilities, -k, axis=1)[:, -k:]
    return top.sum(axis=1)


@dataclass
class HopTrace:
    """What the confidence gate did during one answer pass.

    Emitted by every :meth:`~repro.core.engine.MnnFastEngine.answer`
    call (gate enabled or not) and surfaced through
    ``tier_stats()["hops"]``.

    Attributes:
        threshold: the gate's pruning aggressiveness (0 = disabled).
        metric: confidence metric the gate read.
        hops_configured: hops a full-depth pass would run.
        hops_run: ``(nq,)`` int — hops each question actually ran.
        exit_reason: per-question :data:`EXIT_FULL_DEPTH` or
            :data:`EXIT_CONFIDENCE`.
        confidence: one ``(nq,)`` array per gate check (after hops
            ``min_hops - 1 .. hops - 2``, in hop order); ``NaN`` marks
            questions already retired when the check ran.  Empty when
            the gate is disabled (no checks run).
    """

    threshold: float
    metric: str
    hops_configured: int
    hops_run: np.ndarray
    exit_reason: list[str]
    confidence: list[np.ndarray] = field(default_factory=list)

    @classmethod
    def full_depth(
        cls, num_questions: int, hops: int, threshold: float = 0.0,
        metric: str = "logit_margin",
    ) -> "HopTrace":
        """The trace of a pass where every question ran every hop."""
        return cls(
            threshold=threshold,
            metric=metric,
            hops_configured=hops,
            hops_run=np.full(num_questions, hops, dtype=np.intp),
            exit_reason=[EXIT_FULL_DEPTH] * num_questions,
        )

    @property
    def num_questions(self) -> int:
        return len(self.hops_run)

    @property
    def num_exited(self) -> int:
        """Questions that left before the last configured hop."""
        return int(np.sum(self.hops_run < self.hops_configured))

    @property
    def mean_hops(self) -> float:
        return float(np.mean(self.hops_run)) if len(self.hops_run) else 0.0

    @property
    def hops_saved_fraction(self) -> float:
        """Fraction of the full-depth hop budget the gate skipped."""
        full = self.num_questions * self.hops_configured
        if full == 0:
            return 0.0
        return 1.0 - float(np.sum(self.hops_run)) / full

    def depth_histogram(self) -> dict[int, int]:
        """``{hops_run: question count}`` — the serving cost model's
        expected depth histogram, measured."""
        depths, counts = np.unique(self.hops_run, return_counts=True)
        return {int(d): int(c) for d, c in zip(depths, counts)}

    def question(self, index: int) -> "HopTrace":
        """The single-question view of this trace (for the per-question
        :class:`~repro.core.engine.AnswerResult` views of a batch)."""
        return HopTrace(
            threshold=self.threshold,
            metric=self.metric,
            hops_configured=self.hops_configured,
            hops_run=self.hops_run[index : index + 1].copy(),
            exit_reason=[self.exit_reason[index]],
            confidence=[c[index : index + 1].copy() for c in self.confidence],
        )
