"""The paper's primary contribution: MnnFast's algorithms.

* :mod:`repro.core.baseline` — the baseline MemNN dataflow (Fig. 5a).
* :mod:`repro.core.column` — column-based algorithm + lazy softmax (Fig. 5b).
* :mod:`repro.core.zero_skip` — zero-skipping masks (§3.2).
* :mod:`repro.core.engine` — the end-to-end inference facade.
"""

from .baseline import BaselineMemNN
from .cache import TraceCacheMixin, TraceVectorCache, VectorCache
from .column import ColumnMemNN, PartialOutput, merge_partials, partition_memory
from .config import (
    CPU_CONFIG,
    FPGA_CONFIG,
    GPU_CONFIG,
    TABLE1,
    BatchConfig,
    ChunkConfig,
    EarlyExitConfig,
    EmbeddingCacheConfig,
    EngineConfig,
    ExecutionConfig,
    MemNNConfig,
    StoreConfig,
    TopKConfig,
    ZeroSkipConfig,
)
from .early_exit import (
    EXIT_CONFIDENCE,
    EXIT_FULL_DEPTH,
    HopTrace,
    attention_mass_confidence,
    logit_margin_confidence,
)
from .engine import AnswerResult, BatchAnswer, EngineWeights, MnnFastEngine
from .execution import FLOAT32_LOGIT_TOLERANCE, run_shard_partials
from .kv import InvertedIndex, KeyValueMemory, KVAnswer, KVMnnFast
from .plan import InferencePlan, expected_hop_survivors, plan_inference
from .sharded import SHARD_POLICIES, ShardedMemNN, ShardPlan
from .numerics import bow_embed, position_encoding, softmax, unstable_softmax
from .results import InferenceResult
from .stats import OpStats, PhaseCost, baseline_phase_costs, column_phase_costs

__all__ = [
    "BaselineMemNN",
    "ColumnMemNN",
    "PartialOutput",
    "merge_partials",
    "partition_memory",
    "ShardedMemNN",
    "ShardPlan",
    "SHARD_POLICIES",
    "MemNNConfig",
    "BatchConfig",
    "ChunkConfig",
    "ZeroSkipConfig",
    "EmbeddingCacheConfig",
    "EngineConfig",
    "ExecutionConfig",
    "StoreConfig",
    "TopKConfig",
    "EarlyExitConfig",
    "HopTrace",
    "EXIT_CONFIDENCE",
    "EXIT_FULL_DEPTH",
    "attention_mass_confidence",
    "logit_margin_confidence",
    "FLOAT32_LOGIT_TOLERANCE",
    "run_shard_partials",
    "CPU_CONFIG",
    "GPU_CONFIG",
    "FPGA_CONFIG",
    "TABLE1",
    "MnnFastEngine",
    "EngineWeights",
    "AnswerResult",
    "BatchAnswer",
    "VectorCache",
    "TraceVectorCache",
    "TraceCacheMixin",
    "KVMnnFast",
    "KeyValueMemory",
    "InvertedIndex",
    "KVAnswer",
    "InferenceResult",
    "InferencePlan",
    "plan_inference",
    "expected_hop_survivors",
    "OpStats",
    "PhaseCost",
    "baseline_phase_costs",
    "column_phase_costs",
    "softmax",
    "unstable_softmax",
    "bow_embed",
    "position_encoding",
]
