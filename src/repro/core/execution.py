"""Execution backends for sharded attention (§3.1, measured honestly).

DESIGN.md §8 proves the lazy-softmax shard merge exact; this module
holds the machinery that tries to turn that proof into wall-clock
speedup, and is explicit about which attempt worked:

* **Thread backend** (:func:`run_shard_partials` with a ``"thread"``
  config).  The BLAS calls inside
  :meth:`~repro.core.column.ColumnMemNN.partial_output` release the
  GIL, but the Python-level chunk-loop bookkeeping between them —
  slicing workspaces, max/rescale branching, mask logic — does not,
  and at realistic chunk sizes that bookkeeping is a large enough
  fraction of each iteration to serialize the pool.  Measured
  (BENCH_core.json, ``threaded_vs_serial``): **0.79–0.99x vs serial**
  across 1–4 workers, i.e. a slowdown.  The backend is kept as API
  surface and as the measured counterexample; it should not be chosen
  for performance.

* **Process backend** (:class:`ProcessShardRunner`).  Worker processes
  sidestep the GIL entirely.  The classic objection — a process pool
  must pickle the ``O(ns x ed)`` memories — is dissolved by the store
  tier: workers ``mmap`` the engine's spilled
  :class:`~repro.store.MmapStore` *read-only* and compute against
  zero-copy mapped shards (the OS page cache backs every worker with
  the same physical pages).  Only the ``O(nq x ed)`` question matrix
  crosses the pipe inbound and the ``O(nq x ed)``
  :class:`~repro.core.column.PartialOutput` triple outbound.  Workers
  pin their BLAS pools (:mod:`repro.core.thread_limits`) so P workers
  never run P x T BLAS threads.

Determinism: both backends collect shard results **in shard order**
regardless of completion order, and the fold happens on the caller's
side, so thread and process backends are bit-identical to the serial
backend at every worker count (each worker runs the same
:class:`~repro.core.column.ColumnMemNN` kernel on the same shard
bytes; the differential suite asserts equality, not closeness).
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Protocol, Sequence

import multiprocessing

import numpy as np

from .column import ColumnMemNN, PartialOutput
from .config import ChunkConfig, ExecutionConfig, ZeroSkipConfig
from .stats import OpStats
from .thread_limits import apply_blas_limit

__all__ = [
    "FLOAT32_LOGIT_TOLERANCE",
    "ProcessShardRunner",
    "run_shard_partials",
]

#: Documented agreement bound between the float32 compute path and the
#: float64 reference on final logits (see DESIGN.md §10 and
#: tests/test_core_execution.py; observed ~1e-6 on the test grid).
FLOAT32_LOGIT_TOLERANCE = 1e-4

#: Env override for the multiprocessing start method ("fork"/"spawn"/
#: "forkserver"); unset picks fork where available (no interpreter
#: re-import per worker) and falls back to spawn.
_START_METHOD_ENV = "REPRO_MP_START_METHOD"


class _PartialWorker(Protocol):
    def partial_output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> tuple[PartialOutput, OpStats]: ...


def run_shard_partials(
    shards: Sequence[_PartialWorker],
    u: np.ndarray,
    zero_skip: ZeroSkipConfig | None = None,
    stable: bool = True,
    execution: ExecutionConfig | None = None,
) -> list[tuple[PartialOutput, OpStats]]:
    """Compute every shard's ``(partial, stats)`` pair, in shard order.

    With a parallel *thread* :class:`ExecutionConfig` the shards run on
    a thread pool (`min(num_workers, len(shards))` wide); otherwise —
    serial backend, one worker, or a single shard — they run in a loop
    on the calling thread.  Both paths produce identical floats: the
    kernel is deterministic per shard and the merge order is fixed by
    the caller.  Note the thread pool is an *ordering* guarantee, not a
    performance one — see the module docstring for the measured
    regression.  (The process backend does not flow through here; it
    needs a spilled store and lives in :class:`ProcessShardRunner`.)
    """

    def one(shard: _PartialWorker) -> tuple[PartialOutput, OpStats]:
        return shard.partial_output(u, zero_skip=zero_skip, stable=stable)

    if (
        execution is None
        or not execution.parallel
        or execution.backend != "thread"
        or len(shards) <= 1
    ):
        return [one(shard) for shard in shards]

    workers = min(execution.num_workers, len(shards))
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-shard"
    ) as pool:
        return list(pool.map(one, shards))


# --- process backend ---------------------------------------------------------


@dataclass(frozen=True)
class _ShardSpec:
    """Everything a worker needs to (re)build one shard's kernel from
    the spilled store — a few strings and ints, so the solver cache in
    each worker can key on it and the pipe never carries memory rows.
    """

    store_path: str
    shard: int
    num_shards: int
    policy: str
    chunk_size: int


#: Per-worker-process solver cache: reopening the store and gathering
#: a strided shard are one-time costs per (store, geometry), not
#: per-request ones.  Lives at module level so it survives across
#: tasks in the same worker.
_WORKER_SOLVERS: dict[_ShardSpec, ColumnMemNN] = {}


def _worker_init(blas_threads: int | None) -> None:
    """Worker-process initializer: pin the BLAS pool width before the
    first GEMM so P pool workers never fan out P x T BLAS threads."""
    if blas_threads is not None:
        apply_blas_limit(blas_threads)


def _worker_solver(spec: _ShardSpec) -> ColumnMemNN:
    solver = _WORKER_SOLVERS.get(spec)
    if solver is None:
        # Local import: workers under the spawn start method import
        # this module fresh; keeping the store import here keeps the
        # core package free of an import-time store dependency.
        from ..store.mmap_store import MmapStore
        from .sharded import ShardPlan

        store = MmapStore.open(spec.store_path)
        plan = ShardPlan(store.num_rows, spec.num_shards, spec.policy)
        m_in, m_out = store.map_rows(plan.indices(spec.shard))
        solver = ColumnMemNN(
            m_in,
            m_out,
            chunk=ChunkConfig(spec.chunk_size),
            dtype=store.dtype,
        )
        _WORKER_SOLVERS[spec] = solver
    return solver


def _shard_task(
    spec: _ShardSpec,
    u: np.ndarray,
    zero_skip: ZeroSkipConfig | None,
    stable: bool,
) -> tuple[PartialOutput, OpStats]:
    """One shard's partial, computed inside a worker process against
    its zero-copy mapped slice of the spilled store."""
    return _worker_solver(spec).partial_output(
        u, zero_skip=zero_skip, stable=stable
    )


def _start_method() -> str:
    configured = os.environ.get(_START_METHOD_ENV)
    available = multiprocessing.get_all_start_methods()
    if configured:
        if configured not in available:
            raise ValueError(
                f"{_START_METHOD_ENV}={configured!r} is not available "
                f"on this platform (choices: {available})"
            )
        return configured
    return "fork" if "fork" in available else "spawn"


class ProcessShardRunner:
    """Shard fan-out over a persistent :class:`ProcessPoolExecutor`.

    Owned by a :class:`~repro.core.sharded.ShardedMemNN` configured
    with the ``"process"`` backend.  The pool is created lazily on the
    first run (so merely *constructing* a process-configured solver is
    cheap) and persists across requests — worker startup and the
    strided shards' one-time row gather amortize over the solver's
    life.  Callers must :meth:`close` when invalidating the solver;
    ``__del__`` is a best-effort backstop.

    Args:
        store_path: directory of the spilled :class:`MmapStore` every
            worker maps read-only.
        num_shards: shard count ``K`` (one task per shard per run).
        policy: row-partition policy of the shard plan.
        chunk_size: per-shard chunk size (must match the serial path's
            for bit-identity).
        num_workers: pool width (clamped to the shard count).
        blas_threads: per-worker BLAS pool width (``None`` = library
            default; the engine passes the anti-oversubscription
            default of :meth:`ExecutionConfig.worker_blas_threads`).
    """

    def __init__(
        self,
        store_path: str,
        num_shards: int,
        policy: str,
        chunk_size: int,
        num_workers: int,
        blas_threads: int | None = None,
    ) -> None:
        self._specs = [
            _ShardSpec(
                store_path=str(store_path),
                shard=shard,
                num_shards=num_shards,
                policy=policy,
                chunk_size=chunk_size,
            )
            for shard in range(num_shards)
        ]
        self._num_workers = max(1, min(num_workers, num_shards))
        self._blas_threads = blas_threads
        self._pool: ProcessPoolExecutor | None = None

    @property
    def num_workers(self) -> int:
        return self._num_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._num_workers,
                mp_context=multiprocessing.get_context(_start_method()),
                initializer=_worker_init,
                initargs=(self._blas_threads,),
            )
        return self._pool

    def run(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> list[tuple[PartialOutput, OpStats]]:
        """Every shard's ``(partial, stats)``, collected in shard order.

        A dead worker (OOM-killed, segfaulted, ``os._exit``) breaks
        the pool; that surfaces here as a :class:`RuntimeError` naming
        the failure instead of a hang — the pool is torn down so the
        next run starts fresh.
        """
        pool = self._ensure_pool()
        try:
            futures: list[Future] = [
                pool.submit(_shard_task, spec, u, zero_skip, stable)
                for spec in self._specs
            ]
            return [future.result() for future in futures]
        except BrokenExecutor as error:
            self.close()
            raise RuntimeError(
                "a shard worker process died mid-computation (crashed or "
                "was killed); the process pool has been shut down — "
                f"retry re-creates it ({error!r})"
            ) from error

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass
