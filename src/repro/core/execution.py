"""Parallel execution backend for sharded attention (§3.1, cashed in).

DESIGN.md §8 proves the lazy-softmax shard merge exact; this module
turns that proof into wall-clock speedup.  Each shard's
:meth:`~repro.core.column.ColumnMemNN.partial_output` is an independent
unit of work whose heavy operations (``np.matmul`` against the shard's
``M_IN``/``M_OUT``, vectorized ``np.exp``) release the GIL, so a plain
:class:`~concurrent.futures.ThreadPoolExecutor` achieves genuine
multicore parallelism with zero serialization cost — the partials stay
in shared memory and the coordinator folds them with
:meth:`~repro.core.column.PartialOutput.merge`.

Threads were chosen over processes deliberately: the merged state is
``O(nq x ed)`` but the *inputs* are the ``O(ns x ed)`` memory shards,
which a process pool would have to pickle or share explicitly.  Threads
see the shard arrays in place.

Determinism: shard results are collected **in shard order** regardless
of completion order, and the fold happens on the caller's thread, so
the threaded backend is bit-identical to the serial backend at every
worker count (the differential suite asserts equality, not closeness).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Protocol, Sequence

import numpy as np

from .column import PartialOutput
from .config import ExecutionConfig, ZeroSkipConfig
from .stats import OpStats

__all__ = [
    "FLOAT32_LOGIT_TOLERANCE",
    "run_shard_partials",
]

#: Documented agreement bound between the float32 compute path and the
#: float64 reference on final logits (see DESIGN.md §10 and
#: tests/test_core_execution.py; observed ~1e-6 on the test grid).
FLOAT32_LOGIT_TOLERANCE = 1e-4


class _PartialWorker(Protocol):
    def partial_output(
        self,
        u: np.ndarray,
        zero_skip: ZeroSkipConfig | None = None,
        stable: bool = True,
    ) -> tuple[PartialOutput, OpStats]: ...


def run_shard_partials(
    shards: Sequence[_PartialWorker],
    u: np.ndarray,
    zero_skip: ZeroSkipConfig | None = None,
    stable: bool = True,
    execution: ExecutionConfig | None = None,
) -> list[tuple[PartialOutput, OpStats]]:
    """Compute every shard's ``(partial, stats)`` pair, in shard order.

    With a parallel :class:`ExecutionConfig` the shards run on a thread
    pool (`min(num_workers, len(shards))` wide); otherwise — serial
    backend, one worker, or a single shard — they run in a loop on the
    calling thread.  Both paths produce identical floats: the kernel is
    deterministic per shard and the merge order is fixed by the caller.
    """

    def one(shard: _PartialWorker) -> tuple[PartialOutput, OpStats]:
        return shard.partial_output(u, zero_skip=zero_skip, stable=stable)

    if (
        execution is None
        or not execution.parallel
        or len(shards) <= 1
    ):
        return [one(shard) for shard in shards]

    workers = min(execution.num_workers, len(shards))
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-shard"
    ) as pool:
        return list(pool.map(one, shards))
