"""Result containers shared by the inference engines.

Per-path statistics are accessed through one unified accessor,
:meth:`InferenceResult.tier_stats`, returning ``{"shards": ...,
"store": ..., "index": ...}`` — one key per optimization tier, each
``None``/empty when that tier did not run.  The historical per-tier
attributes (``shard_stats``, ``store_stats``) went through two PRs of
``DeprecationWarning`` and are now removed; ``tier_stats()`` is the
only read surface (the constructor keywords survive, as the internal
write surface of the engines).
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass
from typing import TYPE_CHECKING, Any, Dict

import numpy as np

from ..store.base import StoreStats
from .stats import OpStats

if TYPE_CHECKING:
    # repro.index depends on repro.core; annotation-only import here
    # keeps the dependency one-directional at runtime.
    from ..index.stats import IndexStats

__all__ = ["InferenceResult"]


@dataclass
class InferenceResult:
    """Output of one inference pass over a batch of questions.

    Attributes:
        output: ``(nq, ed)`` response vectors ``o`` (Eq. 2 / Eq. 4).
        stats: operation counters accumulated during the pass.
        probabilities: ``(nq, ns)`` attention probabilities, present
            only when explicitly requested (materializing them defeats
            the column-based algorithm's purpose at scale, so engines
            only build them for analysis).
        elapsed_seconds: measured wall-clock time of the pass
            (``time.perf_counter``), as opposed to the *modeled* time
            the platform models in :mod:`repro.perf` derive from
            ``stats`` — benchmarks and serving report both.
        index_stats: what the top-k retrieval tier did for this pass
            (candidates examined, probe time, attention-mass recall),
            present only on top-k engines.  Prefer
            ``tier_stats()["index"]``.

    Constructor-only (read them through :meth:`tier_stats`):
        shard_stats: per-shard operation counters in shard order,
            present only on the sharded path (``stats`` is their sum
            plus the coordinator's merge cost) —
            ``tier_stats()["shards"]``.
        store_stats: cumulative memory-store ledger of the serving
            chunk pipeline, present only on store-backed engines —
            ``tier_stats()["store"]``.  Cumulative across the engine's
            lifetime, not per pass — diff two snapshots to attribute a
            single pass.
    """

    output: np.ndarray
    stats: OpStats
    probabilities: np.ndarray | None = None
    shard_stats: InitVar[list[OpStats] | None] = None
    elapsed_seconds: float = 0.0
    store_stats: InitVar[StoreStats | None] = None
    index_stats: "IndexStats | None" = None

    def __post_init__(
        self,
        shard_stats: list[OpStats] | None,
        store_stats: StoreStats | None,
    ) -> None:
        # InitVar keywords keep the engines' construction sites stable
        # while leaving no public attribute behind: reading
        # ``result.shard_stats`` is an AttributeError, not a shim.
        self._shard_stats = shard_stats
        self._store_stats = store_stats

    def tier_stats(self) -> Dict[str, Any]:
        """Per-tier statistics of this pass, one key per tier.

        Returns:
            ``{"shards": list[OpStats] | None,
            "store": StoreStats | None,
            "index": IndexStats | None}`` — each entry ``None`` when
            the corresponding tier did not run.
        """
        return {
            "shards": self._shard_stats,
            "store": self._store_stats,
            "index": self.index_stats,
        }


# ``InitVar`` defaults linger as class attributes, which would let
# ``result.shard_stats`` silently read ``None`` instead of raising.
# Drop them so the removal is a hard AttributeError (the generated
# ``__init__`` captured its defaults at decoration time).
del InferenceResult.shard_stats
del InferenceResult.store_stats
