"""Result containers shared by the inference engines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..store.base import StoreStats
from .stats import OpStats

__all__ = ["InferenceResult"]


@dataclass
class InferenceResult:
    """Output of one inference pass over a batch of questions.

    Attributes:
        output: ``(nq, ed)`` response vectors ``o`` (Eq. 2 / Eq. 4).
        stats: operation counters accumulated during the pass.
        probabilities: ``(nq, ns)`` attention probabilities, present
            only when explicitly requested (materializing them defeats
            the column-based algorithm's purpose at scale, so engines
            only build them for analysis).
        shard_stats: per-shard operation counters in shard order,
            present only on the sharded path (``stats`` is their sum
            plus the coordinator's merge cost).
        elapsed_seconds: measured wall-clock time of the pass
            (``time.perf_counter``), as opposed to the *modeled* time
            the platform models in :mod:`repro.perf` derive from
            ``stats`` — benchmarks and serving report both.
        store_stats: cumulative memory-store ledger of the serving
            chunk pipeline (bytes from RAM vs disk, prefetch hit
            rate, stall seconds), present only on store-backed
            engines.  Cumulative across the engine's lifetime, not
            per pass — diff two snapshots to attribute a single pass.
    """

    output: np.ndarray
    stats: OpStats
    probabilities: np.ndarray | None = None
    shard_stats: list[OpStats] | None = None
    elapsed_seconds: float = 0.0
    store_stats: StoreStats | None = None
