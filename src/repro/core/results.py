"""Result containers shared by the inference engines.

Per-path statistics are accessed through one unified accessor,
:meth:`InferenceResult.tier_stats`, returning ``{"shards": ...,
"store": ..., "index": ...}`` — one key per optimization tier, each
``None``/empty when that tier did not run.  The historical per-tier
attributes (``shard_stats``, ``store_stats``) still work but emit a
:class:`DeprecationWarning`; new code should go through
``tier_stats()``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict

import numpy as np

from ..store.base import StoreStats
from .stats import OpStats

if TYPE_CHECKING:
    # repro.index depends on repro.core; annotation-only import here
    # keeps the dependency one-directional at runtime.
    from ..index.stats import IndexStats

__all__ = ["InferenceResult", "deprecate_fields"]


def deprecate_fields(cls, names, replacement):
    """Swap dataclass fields for warning properties, post-decoration.

    Each named field keeps its constructor keyword and storage (under
    ``_name``), but attribute *reads* emit a :class:`DeprecationWarning`
    pointing at ``replacement``.  The dataclass-generated ``__init__``
    assigns through the property's setter, which stores silently — so
    constructing a result never warns, only reaching for the old
    attribute does.  Fields passed here should be declared with
    ``repr=False, compare=False`` so the generated dunders don't trip
    the warning internally.
    """
    for name in names:
        storage = "_" + name

        def _make(name: str = name, storage: str = storage):
            def getter(self):
                warnings.warn(
                    f"{cls.__name__}.{name} is deprecated; "
                    f"use {replacement}",
                    DeprecationWarning,
                    stacklevel=2,
                )
                return getattr(self, storage)

            def setter(self, value):
                object.__setattr__(self, storage, value)

            return property(getter, setter)

        setattr(cls, name, _make())
    return cls


@dataclass
class InferenceResult:
    """Output of one inference pass over a batch of questions.

    Attributes:
        output: ``(nq, ed)`` response vectors ``o`` (Eq. 2 / Eq. 4).
        stats: operation counters accumulated during the pass.
        probabilities: ``(nq, ns)`` attention probabilities, present
            only when explicitly requested (materializing them defeats
            the column-based algorithm's purpose at scale, so engines
            only build them for analysis).
        shard_stats: *deprecated* — use ``tier_stats()["shards"]``.
            Per-shard operation counters in shard order, present only
            on the sharded path (``stats`` is their sum plus the
            coordinator's merge cost).
        elapsed_seconds: measured wall-clock time of the pass
            (``time.perf_counter``), as opposed to the *modeled* time
            the platform models in :mod:`repro.perf` derive from
            ``stats`` — benchmarks and serving report both.
        store_stats: *deprecated* — use ``tier_stats()["store"]``.
            Cumulative memory-store ledger of the serving chunk
            pipeline (bytes from RAM vs disk, prefetch hit rate, stall
            seconds), present only on store-backed engines.  Cumulative
            across the engine's lifetime, not per pass — diff two
            snapshots to attribute a single pass.
        index_stats: what the top-k retrieval tier did for this pass
            (candidates examined, probe time, attention-mass recall),
            present only on top-k engines.  Prefer
            ``tier_stats()["index"]``.
    """

    output: np.ndarray
    stats: OpStats
    probabilities: np.ndarray | None = None
    shard_stats: list[OpStats] | None = field(
        default=None, repr=False, compare=False
    )
    elapsed_seconds: float = 0.0
    store_stats: StoreStats | None = field(
        default=None, repr=False, compare=False
    )
    index_stats: "IndexStats | None" = None

    def tier_stats(self) -> Dict[str, Any]:
        """Per-tier statistics of this pass, one key per tier.

        Returns:
            ``{"shards": list[OpStats] | None,
            "store": StoreStats | None,
            "index": IndexStats | None}`` — each entry ``None`` when
            the corresponding tier did not run.
        """
        return {
            "shards": self._shard_stats,
            "store": self._store_stats,
            "index": self.index_stats,
        }


deprecate_fields(
    InferenceResult,
    ("shard_stats", "store_stats"),
    "InferenceResult.tier_stats()",
)
