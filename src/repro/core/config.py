"""Configuration objects for memory networks and MnnFast optimizations.

The dataclasses in this module mirror the knobs the paper exposes:

* :class:`MemNNConfig` — the shape of the memory network itself
  (embedding dimension ``ed``, number of story sentences ``ns``, number
  of questions ``nq``, vocabulary size ``V``, maximum words per sentence
  ``nw`` and the number of inference hops).
* :class:`ChunkConfig` — the column-based algorithm's chunking (§3.1).
* :class:`ZeroSkipConfig` — the zero-skipping threshold (§3.2).
* :class:`EmbeddingCacheConfig` — the dedicated embedding cache (§3.3).
* :class:`BatchConfig` — continuous question batching (the §5/Fig. 12
  amortization lever: memory streams once per batch).
* :class:`StoreConfig` — where ``M_IN``/``M_OUT`` live (the tiered
  RAM/disk memory store) and how chunks are prefetched.
* :class:`EngineConfig` — which optimizations an engine applies.

The paper's Table 1 platform presets are provided as
:data:`CPU_CONFIG`, :data:`GPU_CONFIG` and :data:`FPGA_CONFIG` (with the
100M-sentence CPU/GPU databases scaled down by default so the presets
are directly runnable; the original sizes are kept in
``database_sentences``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "MemNNConfig",
    "ChunkConfig",
    "ZeroSkipConfig",
    "EmbeddingCacheConfig",
    "BatchConfig",
    "ExecutionConfig",
    "StoreConfig",
    "EngineConfig",
    "CPU_CONFIG",
    "GPU_CONFIG",
    "FPGA_CONFIG",
    "TABLE1",
]

#: Bytes per value; the paper assumes ``float`` (4 bytes) throughout §3.1.
FLOAT_BYTES = 4


@dataclass(frozen=True)
class MemNNConfig:
    """Shape of an end-to-end memory network (Fig. 2 of the paper).

    Attributes:
        embedding_dim: ``ed``, the internal state vector width.
        num_sentences: ``ns``, story sentences held in memory.
        num_questions: ``nq``, questions answered per batch.
        vocab_size: ``V``, words in the embedding dictionary.
        max_words: ``nw``, maximum words per sentence (BoW width).
        hops: number of input/output memory representation iterations.
    """

    embedding_dim: int = 48
    num_sentences: int = 10_000
    num_questions: int = 16
    vocab_size: int = 10_000
    max_words: int = 12
    hops: int = 1

    def __post_init__(self) -> None:
        for name in (
            "embedding_dim",
            "num_sentences",
            "num_questions",
            "vocab_size",
            "max_words",
            "hops",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")

    @property
    def memory_bytes(self) -> int:
        """Bytes of one memory matrix (``M_IN`` or ``M_OUT``)."""
        return self.num_sentences * self.embedding_dim * FLOAT_BYTES

    @property
    def intermediate_bytes(self) -> int:
        """Bytes of one full intermediate matrix (``T_IN``/``P_exp``/``P``)."""
        return self.num_sentences * self.num_questions * FLOAT_BYTES

    @property
    def embedding_matrix_bytes(self) -> int:
        """Bytes of the embedding dictionary (``ed`` x ``V``)."""
        return self.embedding_dim * self.vocab_size * FLOAT_BYTES

    def scaled(self, num_sentences: int) -> "MemNNConfig":
        """Return a copy with a different story-database size."""
        return replace(self, num_sentences=num_sentences)


@dataclass(frozen=True)
class ChunkConfig:
    """Chunking of the column-based algorithm (§3.1).

    Attributes:
        chunk_size: sentences processed per chunk (paper: 1000 on CPU,
            25 on FPGA, variable on GPU).
        streaming: overlap the next chunk's memory loads with the
            current chunk's computation (double buffering).
    """

    chunk_size: int = 1000
    streaming: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")

    def num_chunks(self, num_sentences: int) -> int:
        """Number of chunks needed to cover ``num_sentences``."""
        return -(-num_sentences // self.chunk_size)


@dataclass(frozen=True)
class ZeroSkipConfig:
    """Zero-skipping of near-zero probability rows (§3.2).

    Attributes:
        threshold: skip rows whose weight is below this value
            (paper sweeps 0.0001 - 0.5; CPU implementation uses 0.1).
        mode: ``"probability"`` compares the post-softmax probability
            (CPU/GPU §4.1) while ``"exp"`` compares the raw exponential
            against a scaled threshold on the fly (FPGA §4.2).
    """

    threshold: float = 0.1
    mode: str = "probability"

    _MODES = ("probability", "exp")

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {self.threshold}")
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {self.mode!r}")

    @property
    def enabled(self) -> bool:
        """Zero-skipping is a no-op at threshold 0."""
        return self.threshold > 0.0


@dataclass(frozen=True)
class EmbeddingCacheConfig:
    """Geometry of the dedicated embedding cache (§3.3, §4.2).

    Each entry holds a valid bit, a word ID tag and one full embedding
    vector (``32 * ed`` bits), so the number of entries follows from the
    cache capacity and embedding dimension.
    """

    size_bytes: int = 64 * 1024
    embedding_dim: int = 256

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_entries < 1:
            raise ValueError(
                "cache too small to hold a single embedding vector: "
                f"{self.size_bytes} bytes < {self.entry_bytes} bytes/entry"
            )

    @property
    def entry_bytes(self) -> int:
        """Data bytes per entry (the vector; tag overhead is separate)."""
        return self.embedding_dim * FLOAT_BYTES

    @property
    def num_entries(self) -> int:
        return self.size_bytes // self.entry_bytes


@dataclass(frozen=True)
class BatchConfig:
    """Continuous question batching (§5's ``nq`` amortization, served).

    The column-based algorithm streams ``M_IN``/``M_OUT`` once per
    *batch*, so its memory traffic amortizes over the questions it
    carries (the sizing note behind Fig. 12's "fully utilize SMs").
    These knobs govern how a serving-side batcher forms those batches
    from an online request stream.

    Attributes:
        max_batch_size: questions coalesced into one engine pass; a
            batch dispatches immediately once it reaches this size
            (1 disables batching — every question rides alone).
        max_wait: seconds the oldest queued question may wait for
            batch-mates before the batch dispatches anyway — the
            latency ceiling batching is allowed to add.
    """

    max_batch_size: int = 1
    max_wait: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_batch_size, int) or self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be a positive integer, "
                f"got {self.max_batch_size!r}"
            )
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {self.max_wait}")

    @property
    def enabled(self) -> bool:
        """Batching is a no-op at ``max_batch_size`` 1."""
        return self.max_batch_size > 1


@dataclass(frozen=True)
class ExecutionConfig:
    """How the numerical engines execute (§3.1's scale-out, realized).

    The lazy-softmax partials merge exactly (DESIGN.md §8), so shard
    work is embarrassingly parallel: a thread pool computes per-shard
    :meth:`~repro.core.column.ColumnMemNN.partial_output` concurrently
    and the coordinator folds the results.  NumPy's BLAS kernels
    release the GIL, so thread-over-shards yields genuine multicore
    speedup without any process or serialization overhead.

    Attributes:
        backend: ``"serial"`` (shards run in a loop, the reference
            behaviour) or ``"thread"`` (shards fan out over a
            :class:`~concurrent.futures.ThreadPoolExecutor`).
        num_workers: pool width for the thread backend.  ``1`` runs
            sequentially even under ``"thread"`` and is bit-identical
            to ``"serial"`` (same kernel, same order).
        dtype: compute precision — ``"float64"`` (reference) or
            ``"float32"`` (half the memory traffic and roughly double
            the BLAS throughput; agrees with float64 to ~1e-5 on
            logits, see DESIGN.md §10).
    """

    backend: str = "serial"
    num_workers: int = 1
    dtype: str = "float64"

    _BACKENDS = ("serial", "thread")
    _DTYPES = ("float64", "float32")

    def __post_init__(self) -> None:
        if self.backend not in self._BACKENDS:
            raise ValueError(
                f"backend must be one of {self._BACKENDS}, got {self.backend!r}"
            )
        if not isinstance(self.num_workers, int) or self.num_workers < 1:
            raise ValueError(
                f"num_workers must be a positive integer, got {self.num_workers!r}"
            )
        if self.num_workers > 1 and self.backend != "thread":
            raise ValueError(
                "num_workers > 1 requires backend='thread' "
                f"(got {self.backend!r})"
            )
        if self.dtype not in self._DTYPES:
            raise ValueError(
                f"dtype must be one of {self._DTYPES}, got {self.dtype!r}"
            )

    @property
    def parallel(self) -> bool:
        """True when shard work actually fans out over a pool."""
        return self.backend == "thread" and self.num_workers > 1


@dataclass(frozen=True)
class StoreConfig:
    """Where ``M_IN``/``M_OUT`` live and how chunks reach the kernels.

    The column dataflow only ever touches one chunk of each memory at
    a time, so the matrices need not be resident: a
    :class:`~repro.store.MemoryStore` tier can hold them on disk and
    stream chunks through a budgeted RAM cache with double-buffered
    lookahead (§3.1's load/compute overlap) — numerically exact either
    way.

    Attributes:
        backend: ``"resident"`` (in-RAM arrays, today's behaviour) or
            ``"mmap"`` (the engine spills its memories to a
            :class:`~repro.store.MmapStore` and streams them back).
        path: directory for the mmap backend's store shards; ``None``
            uses an engine-owned temporary directory.
        resident_bytes: byte budget of the resident-chunk LRU that
            fronts the backing tier (``None`` disables caching).
        prefetch_depth: chunks fetched ahead of the kernel by the
            background prefetch thread (``0`` disables lookahead;
            the paper's double buffering is depth 1–2).
    """

    backend: str = "resident"
    path: str | None = None
    resident_bytes: int | None = None
    prefetch_depth: int = 0

    _BACKENDS = ("resident", "mmap")

    def __post_init__(self) -> None:
        if self.backend not in self._BACKENDS:
            raise ValueError(
                f"backend must be one of {self._BACKENDS}, got {self.backend!r}"
            )
        if self.prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be non-negative, got {self.prefetch_depth}"
            )
        if self.resident_bytes is not None and self.resident_bytes <= 0:
            raise ValueError(
                f"resident_bytes must be positive or None, got {self.resident_bytes}"
            )
        if self.path is not None and self.backend != "mmap":
            raise ValueError("path= only applies to the mmap backend")

    @property
    def out_of_core(self) -> bool:
        """True when the memories live on a disk tier."""
        return self.backend == "mmap"

    @property
    def enabled(self) -> bool:
        """True when any store machinery deviates from plain arrays."""
        return (
            self.out_of_core
            or self.prefetch_depth > 0
            or self.resident_bytes is not None
        )


@dataclass(frozen=True)
class EngineConfig:
    """Which MnnFast optimizations an inference engine applies.

    Attributes:
        algorithm: ``"baseline"`` (Fig. 5a), ``"column"`` (Fig. 5b) or
            ``"sharded"`` (column on K disjoint memory shards with the
            exact max-rescaled merge).
        chunk: per-worker chunking of the column dataflow.
        zero_skip: zero-skipping threshold/mode (applied per shard in
            sharded mode).
        stable_softmax: online running-max softmax vs the
            paper-faithful raw-exponential form.
        num_shards: shard count ``K`` for the sharded algorithm (must
            be 1 otherwise).
        shard_policy: ``"contiguous"`` or ``"strided"`` row partition.
        batch: continuous-batching policy a serving layer applies when
            coalescing questions into engine passes.
        execution: how the engine runs — backend (serial vs
            thread-over-shards), pool width, and compute dtype.
        store: where the memories live (resident arrays vs an
            out-of-core disk tier) and the chunk prefetch policy.
    """

    algorithm: str = "column"
    chunk: ChunkConfig = field(default_factory=ChunkConfig)
    zero_skip: ZeroSkipConfig = field(default_factory=lambda: ZeroSkipConfig(0.0))
    stable_softmax: bool = True
    num_shards: int = 1
    shard_policy: str = "contiguous"
    batch: BatchConfig = field(default_factory=BatchConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    store: StoreConfig = field(default_factory=StoreConfig)

    _ALGORITHMS = ("baseline", "column", "sharded")
    _SHARD_POLICIES = ("contiguous", "strided")

    def __post_init__(self) -> None:
        if self.algorithm not in self._ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {self._ALGORITHMS}, got {self.algorithm!r}"
            )
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.shard_policy not in self._SHARD_POLICIES:
            raise ValueError(
                f"shard_policy must be one of {self._SHARD_POLICIES}, "
                f"got {self.shard_policy!r}"
            )
        if self.num_shards > 1 and self.algorithm != "sharded":
            raise ValueError(
                "num_shards > 1 requires algorithm='sharded' "
                f"(got {self.algorithm!r})"
            )
        if self.execution.parallel and self.algorithm != "sharded":
            raise ValueError(
                "the thread backend parallelizes over memory shards; "
                "num_workers > 1 requires algorithm='sharded' "
                f"(got {self.algorithm!r})"
            )
        if self.store.enabled and self.algorithm == "baseline":
            raise ValueError(
                "the memory store streams chunks through the column "
                "dataflow; the baseline algorithm needs resident "
                "memories (use algorithm='column' or 'sharded')"
            )

    @classmethod
    def baseline(cls) -> "EngineConfig":
        """The paper's baseline MemNN (no optimizations)."""
        return cls(algorithm="baseline", chunk=ChunkConfig(streaming=False))

    @classmethod
    def mnnfast(
        cls, chunk_size: int = 1000, threshold: float = 0.1
    ) -> "EngineConfig":
        """Full MnnFast: column-based + streaming + zero-skipping."""
        return cls(
            algorithm="column",
            chunk=ChunkConfig(chunk_size=chunk_size, streaming=True),
            zero_skip=ZeroSkipConfig(threshold=threshold),
        )

    @classmethod
    def batched(
        cls,
        max_batch_size: int,
        max_wait: float = 1e-3,
        chunk_size: int = 1000,
        threshold: float = 0.1,
    ) -> "EngineConfig":
        """Full MnnFast plus continuous question batching: memory
        streams once per batch of up to ``max_batch_size`` questions,
        held at most ``max_wait`` seconds while the batch fills."""
        return cls(
            algorithm="column",
            chunk=ChunkConfig(chunk_size=chunk_size, streaming=True),
            zero_skip=ZeroSkipConfig(threshold=threshold),
            batch=BatchConfig(max_batch_size=max_batch_size, max_wait=max_wait),
        )

    @classmethod
    def sharded(
        cls,
        num_shards: int,
        shard_policy: str = "contiguous",
        chunk_size: int = 1000,
        threshold: float = 0.0,
    ) -> "EngineConfig":
        """Column algorithm fanned out over ``num_shards`` memory
        shards with the exact lazy-softmax merge."""
        return cls(
            algorithm="sharded",
            chunk=ChunkConfig(chunk_size=chunk_size, streaming=True),
            zero_skip=ZeroSkipConfig(threshold=threshold),
            num_shards=num_shards,
            shard_policy=shard_policy,
        )

    @classmethod
    def parallel(
        cls,
        num_workers: int,
        num_shards: int | None = None,
        shard_policy: str = "contiguous",
        chunk_size: int = 1000,
        threshold: float = 0.0,
        dtype: str = "float64",
    ) -> "EngineConfig":
        """Sharded column algorithm with the shards executed
        concurrently on a ``num_workers``-wide thread pool.

        One shard per worker by default, so every worker owns exactly
        one ``partial_output`` call; pass ``num_shards`` explicitly to
        oversubscribe (more shards than workers gives the pool
        load-balancing slack on skewed machines).
        """
        return cls(
            algorithm="sharded",
            chunk=ChunkConfig(chunk_size=chunk_size, streaming=True),
            zero_skip=ZeroSkipConfig(threshold=threshold),
            num_shards=num_shards if num_shards is not None else num_workers,
            shard_policy=shard_policy,
            execution=ExecutionConfig(
                backend="thread", num_workers=num_workers, dtype=dtype
            ),
        )

    @classmethod
    def out_of_core(
        cls,
        path: str | None = None,
        resident_bytes: int | None = 32 * 1024 * 1024,
        prefetch_depth: int = 2,
        chunk_size: int = 1000,
        threshold: float = 0.0,
        num_shards: int = 1,
        shard_policy: str = "contiguous",
    ) -> "EngineConfig":
        """Column algorithm streaming ``M_IN``/``M_OUT`` from a disk
        tier: the engine spills its memories to an
        :class:`~repro.store.MmapStore` (under ``path``, or a
        temporary directory) and the kernel consumes them through a
        ``resident_bytes``-budget chunk LRU with ``prefetch_depth``
        chunks of double-buffered lookahead.  Exactly equivalent to
        the resident path — only the tier the bytes come from changes.
        """
        return cls(
            algorithm="sharded" if num_shards > 1 else "column",
            chunk=ChunkConfig(chunk_size=chunk_size, streaming=True),
            zero_skip=ZeroSkipConfig(threshold=threshold),
            num_shards=num_shards,
            shard_policy=shard_policy,
            store=StoreConfig(
                backend="mmap",
                path=path,
                resident_bytes=resident_bytes,
                prefetch_depth=prefetch_depth,
            ),
        )


# --- Table 1: memory network configurations used in the evaluation. ----------
#
# The CPU/GPU database size in the paper is 100M sentences; the presets
# keep that number in ``database_sentences`` but instantiate a runnable
# scale by default (callers pass ``num_sentences`` explicitly to scale).

#: Paper Table 1, CPU column (ed=48, ns=100M, chunk=1000).
CPU_CONFIG = MemNNConfig(embedding_dim=48, num_sentences=100_000, vocab_size=50_000)

#: Paper Table 1, GPU column (ed=64, ns=100M, chunk variable). The
#: question batch is sized up to keep the streaming multiprocessors
#: busy, mirroring the paper's "fully utilize SMs" sizing note.
GPU_CONFIG = MemNNConfig(
    embedding_dim=64, num_sentences=100_000, num_questions=32, vocab_size=50_000
)

#: Paper Table 1, FPGA column (ed=25, ns=1000, chunk=25).
FPGA_CONFIG = MemNNConfig(embedding_dim=25, num_sentences=1000, vocab_size=10_000)

#: The full Table 1 as data: platform -> (config, paper database size, chunk).
TABLE1 = {
    "CPU": {
        "config": CPU_CONFIG,
        "database_sentences": 100_000_000,
        "chunk_size": 1000,
    },
    "GPU": {
        "config": GPU_CONFIG,
        "database_sentences": 100_000_000,
        "chunk_size": None,  # variable, swept in Fig. 12
    },
    "FPGA": {
        "config": FPGA_CONFIG,
        "database_sentences": 1000,
        "chunk_size": 25,
    },
}
