"""Configuration objects for memory networks and MnnFast optimizations.

The dataclasses in this module mirror the knobs the paper exposes:

* :class:`MemNNConfig` — the shape of the memory network itself
  (embedding dimension ``ed``, number of story sentences ``ns``, number
  of questions ``nq``, vocabulary size ``V``, maximum words per sentence
  ``nw`` and the number of inference hops).
* :class:`ChunkConfig` — the column-based algorithm's chunking (§3.1).
* :class:`ZeroSkipConfig` — the zero-skipping threshold (§3.2).
* :class:`EmbeddingCacheConfig` — the dedicated embedding cache (§3.3).
* :class:`BatchConfig` — continuous question batching (the §5/Fig. 12
  amortization lever: memory streams once per batch).
* :class:`StoreConfig` — where ``M_IN``/``M_OUT`` live (the tiered
  RAM/disk memory store) and how chunks are prefetched.
* :class:`TopKConfig` — the approximate top-k retrieval tier that
  selects candidate rows ahead of exact attention (sublinear in ``ns``;
  grounded in sparse-access memories / hierarchical memory networks).
* :class:`EarlyExitConfig` — per-question confidence-gated hop pruning
  (A2P-MANN-style adaptive depth: confident questions exit before
  running every configured hop).
* :class:`EngineConfig` — which optimizations an engine applies.

:class:`EngineConfig` is composed through a **builder API**: each
``with_*`` method returns a new frozen config with one concern changed
(``EngineConfig().with_sharding(8).with_topk(nprobe=16)``), and the
historical preset classmethods (``baseline()`` / ``mnnfast()`` / …)
are thin wrappers over the same builders.  Per-field validation still
happens at construction; *cross-field* constraints (e.g. a parallel
execution backend requires the sharded algorithm) are checked by
:meth:`EngineConfig.validate`, which the engines call on the final
composed config — so intermediate builder states never trip them.

The paper's Table 1 platform presets are provided as
:data:`CPU_CONFIG`, :data:`GPU_CONFIG` and :data:`FPGA_CONFIG` (with the
100M-sentence CPU/GPU databases scaled down by default so the presets
are directly runnable; the original sizes are kept in
``database_sentences``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = [
    "MemNNConfig",
    "ChunkConfig",
    "ZeroSkipConfig",
    "EmbeddingCacheConfig",
    "BatchConfig",
    "ExecutionConfig",
    "StoreConfig",
    "TopKConfig",
    "EarlyExitConfig",
    "EngineConfig",
    "CPU_CONFIG",
    "GPU_CONFIG",
    "FPGA_CONFIG",
    "TABLE1",
]

#: Sentinel distinguishing "not passed" from meaningful ``None`` values
#: in the builder methods (``path=None`` and ``resident_bytes=None``
#: are real settings).
_UNSET = object()

#: Bytes per value; the paper assumes ``float`` (4 bytes) throughout §3.1.
FLOAT_BYTES = 4


@dataclass(frozen=True)
class MemNNConfig:
    """Shape of an end-to-end memory network (Fig. 2 of the paper).

    Attributes:
        embedding_dim: ``ed``, the internal state vector width.
        num_sentences: ``ns``, story sentences held in memory.
        num_questions: ``nq``, questions answered per batch.
        vocab_size: ``V``, words in the embedding dictionary.
        max_words: ``nw``, maximum words per sentence (BoW width).
        hops: number of input/output memory representation iterations.
    """

    embedding_dim: int = 48
    num_sentences: int = 10_000
    num_questions: int = 16
    vocab_size: int = 10_000
    max_words: int = 12
    hops: int = 1

    def __post_init__(self) -> None:
        for name in (
            "embedding_dim",
            "num_sentences",
            "num_questions",
            "vocab_size",
            "max_words",
            "hops",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")

    @property
    def memory_bytes(self) -> int:
        """Bytes of one memory matrix (``M_IN`` or ``M_OUT``)."""
        return self.num_sentences * self.embedding_dim * FLOAT_BYTES

    @property
    def intermediate_bytes(self) -> int:
        """Bytes of one full intermediate matrix (``T_IN``/``P_exp``/``P``)."""
        return self.num_sentences * self.num_questions * FLOAT_BYTES

    @property
    def embedding_matrix_bytes(self) -> int:
        """Bytes of the embedding dictionary (``ed`` x ``V``)."""
        return self.embedding_dim * self.vocab_size * FLOAT_BYTES

    def scaled(self, num_sentences: int) -> "MemNNConfig":
        """Return a copy with a different story-database size."""
        return replace(self, num_sentences=num_sentences)


@dataclass(frozen=True)
class ChunkConfig:
    """Chunking of the column-based algorithm (§3.1).

    Attributes:
        chunk_size: sentences processed per chunk (paper: 1000 on CPU,
            25 on FPGA, variable on GPU).
        streaming: overlap the next chunk's memory loads with the
            current chunk's computation (double buffering).
    """

    chunk_size: int = 1000
    streaming: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")

    def num_chunks(self, num_sentences: int) -> int:
        """Number of chunks needed to cover ``num_sentences``."""
        return -(-num_sentences // self.chunk_size)


@dataclass(frozen=True)
class ZeroSkipConfig:
    """Zero-skipping of near-zero probability rows (§3.2).

    Attributes:
        threshold: skip rows whose weight is below this value
            (paper sweeps 0.0001 - 0.5; CPU implementation uses 0.1).
        mode: ``"probability"`` compares the post-softmax probability
            (CPU/GPU §4.1) while ``"exp"`` compares the raw exponential
            against a scaled threshold on the fly (FPGA §4.2).
    """

    threshold: float = 0.1
    mode: str = "probability"

    _MODES = ("probability", "exp")

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {self.threshold}")
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {self.mode!r}")

    @property
    def enabled(self) -> bool:
        """Zero-skipping is a no-op at threshold 0."""
        return self.threshold > 0.0


@dataclass(frozen=True)
class EmbeddingCacheConfig:
    """Geometry of the dedicated embedding cache (§3.3, §4.2).

    Each entry holds a valid bit, a word ID tag and one full embedding
    vector (``32 * ed`` bits), so the number of entries follows from the
    cache capacity and embedding dimension.
    """

    size_bytes: int = 64 * 1024
    embedding_dim: int = 256

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_entries < 1:
            raise ValueError(
                "cache too small to hold a single embedding vector: "
                f"{self.size_bytes} bytes < {self.entry_bytes} bytes/entry"
            )

    @property
    def entry_bytes(self) -> int:
        """Data bytes per entry (the vector; tag overhead is separate)."""
        return self.embedding_dim * FLOAT_BYTES

    @property
    def num_entries(self) -> int:
        return self.size_bytes // self.entry_bytes


@dataclass(frozen=True)
class BatchConfig:
    """Continuous question batching (§5's ``nq`` amortization, served).

    The column-based algorithm streams ``M_IN``/``M_OUT`` once per
    *batch*, so its memory traffic amortizes over the questions it
    carries (the sizing note behind Fig. 12's "fully utilize SMs").
    These knobs govern how a serving-side batcher forms those batches
    from an online request stream.

    Attributes:
        max_batch_size: questions coalesced into one engine pass; a
            batch dispatches immediately once it reaches this size
            (1 disables batching — every question rides alone).
        max_wait: seconds the oldest queued question may wait for
            batch-mates before the batch dispatches anyway — the
            latency ceiling batching is allowed to add.
    """

    max_batch_size: int = 1
    max_wait: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_batch_size, int) or self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be a positive integer, "
                f"got {self.max_batch_size!r}"
            )
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {self.max_wait}")

    @property
    def enabled(self) -> bool:
        """Batching is a no-op at ``max_batch_size`` 1."""
        return self.max_batch_size > 1


@dataclass(frozen=True)
class ExecutionConfig:
    """How the numerical engines execute (§3.1's scale-out, realized).

    The lazy-softmax partials merge exactly (DESIGN.md §8), so shard
    work is embarrassingly parallel *in principle*.  Which backend
    cashes that in matters — the measured trajectory (BENCH_core.json)
    is blunt about it:

    * ``"thread"`` fans shards over a ``ThreadPoolExecutor``.  The BLAS
      calls release the GIL, but the Python-side chunk-loop bookkeeping
      between them does not, and on the measured workload the thread
      backend is a *slowdown* (0.79–0.99x vs serial across 1–4
      workers).  Kept for API compatibility and as the measured
      counterexample; do not reach for it expecting speedup.
    * ``"process"`` fans shards over a ``ProcessPoolExecutor`` whose
      workers map the engine's spilled
      :class:`~repro.store.MmapStore` read-only — no GIL sharing, and
      no pickling of the ``O(ns x ed)`` memories: only the
      ``O(nq x ed)`` question matrix and partial-output triples cross
      the pipe.  This is the backend that actually scales with cores
      (DESIGN.md §15).
    * ``fused=True`` (serial backend only) is the other true-multicore
      attack: the per-shard chunk GEMMs are restructured into one
      batchxshard tile GEMM so BLAS's *own* thread pool does the
      parallelism, with no Python fan-out at all.

    Attributes:
        backend: ``"serial"`` (shards run in a loop, the reference
            behaviour), ``"thread"`` (GIL-bound pool, see above) or
            ``"process"`` (multicore pool over the spilled store).
        num_workers: pool width for the thread/process backends.  ``1``
            runs sequentially even under a pool backend and is
            bit-identical to ``"serial"`` (same kernel, same order).
        dtype: compute precision — ``"float64"`` (reference) or
            ``"float32"`` (half the memory traffic and roughly double
            the BLAS throughput; agrees with float64 to ~1e-5 on
            logits, see DESIGN.md §10).
        fused: run the sharded algorithm through the fused batchxshard
            tile kernel (one BLAS score call per tile across *all*
            shards) instead of per-shard chunk loops.  Serial backend
            only — the fused kernel hands parallelism to BLAS threads,
            which a process/thread fan-out would oversubscribe.
        fused_tile_rows: global memory rows per fused tile.  ``None``
            (the default) keeps the historical geometry of
            ``chunk_size x num_shards`` — one shard-chunk's worth from
            every shard per tile, bit-identical to the pre-knob kernel.
            An explicit value decouples the tile from the chunk
            geometry: larger tiles amortize more bookkeeping per BLAS
            call (and give BLAS's threads more rows to split), smaller
            tiles bound the score-workspace footprint.  Tile size only
            moves the running-max rescale boundaries, so any value
            agrees with any other to the documented ~1e-10.
        blas_threads: BLAS thread-pool width each worker pins itself to
            (via :mod:`repro.core.thread_limits`).  ``None`` means: 1
            per process worker (P workers x 1 BLAS thread — never
            P x T oversubscription), library default otherwise.
    """

    backend: str = "serial"
    num_workers: int = 1
    dtype: str = "float64"
    fused: bool = False
    fused_tile_rows: int | None = None
    blas_threads: int | None = None

    _BACKENDS = ("serial", "thread", "process")
    _DTYPES = ("float64", "float32")

    def __post_init__(self) -> None:
        if self.backend not in self._BACKENDS:
            raise ValueError(
                f"backend must be one of {self._BACKENDS}, got {self.backend!r}"
            )
        if not isinstance(self.num_workers, int) or self.num_workers < 1:
            raise ValueError(
                f"num_workers must be a positive integer, got {self.num_workers!r}"
            )
        if self.num_workers > 1 and self.backend == "serial":
            raise ValueError(
                "num_workers > 1 requires backend='thread' or 'process' "
                f"(got {self.backend!r})"
            )
        if self.dtype not in self._DTYPES:
            raise ValueError(
                f"dtype must be one of {self._DTYPES}, got {self.dtype!r}"
            )
        if self.fused and self.backend != "serial":
            raise ValueError(
                "fused=True hands parallelism to BLAS threads and "
                "requires backend='serial' (a pool fan-out on top "
                f"would oversubscribe P x T threads; got {self.backend!r})"
            )
        if self.fused_tile_rows is not None:
            if not isinstance(self.fused_tile_rows, int) or self.fused_tile_rows < 1:
                raise ValueError(
                    f"fused_tile_rows must be a positive integer or None, "
                    f"got {self.fused_tile_rows!r}"
                )
            if not self.fused:
                raise ValueError(
                    "fused_tile_rows sizes the fused tile kernel and "
                    "requires fused=True"
                )
        if self.blas_threads is not None and (
            not isinstance(self.blas_threads, int) or self.blas_threads < 1
        ):
            raise ValueError(
                f"blas_threads must be a positive integer or None, "
                f"got {self.blas_threads!r}"
            )

    @property
    def parallel(self) -> bool:
        """True when shard work actually fans out over a pool."""
        return self.backend in ("thread", "process") and self.num_workers > 1

    def worker_blas_threads(self) -> int | None:
        """BLAS pool width each execution worker pins itself to, or
        ``None`` for the library default.  The default policy caps
        process-pool workers at 1 BLAS thread each (P x 1, never
        P x T); explicit ``blas_threads`` overrides."""
        if self.blas_threads is not None:
            return self.blas_threads
        if self.backend == "process" and self.num_workers > 1:
            return 1
        return None

    def shard_concurrency(self) -> int:
        """Shards this backend genuinely executes at once — the number
        the serving cost model may divide the fan-out by.

        The process backend delivers its pool width (separate
        interpreters, no GIL).  The thread backend is charged 1: the
        measured BENCH_core.json trajectory shows it at 0.79–0.99x
        serial, so modeling it as parallel would promise latency the
        engine never delivers.  Serial (fused or not) is 1 — the fused
        kernel's BLAS-thread speedup shows up in per-GEMM throughput,
        not in shard-level concurrency.
        """
        if self.backend == "process":
            return self.num_workers
        return 1


@dataclass(frozen=True)
class StoreConfig:
    """Where ``M_IN``/``M_OUT`` live and how chunks reach the kernels.

    The column dataflow only ever touches one chunk of each memory at
    a time, so the matrices need not be resident: a
    :class:`~repro.store.MemoryStore` tier can hold them on disk and
    stream chunks through a budgeted RAM cache with double-buffered
    lookahead (§3.1's load/compute overlap) — numerically exact either
    way.

    Attributes:
        backend: ``"resident"`` (in-RAM arrays, today's behaviour) or
            ``"mmap"`` (the engine spills its memories to a
            :class:`~repro.store.MmapStore` and streams them back).
        path: directory for the mmap backend's store shards; ``None``
            uses an engine-owned temporary directory.
        resident_bytes: byte budget of the resident-chunk LRU that
            fronts the backing tier (``None`` disables caching).
        prefetch_depth: chunks fetched ahead of the kernel by the
            background prefetch thread (``0`` disables lookahead;
            the paper's double buffering is depth 1–2).
    """

    backend: str = "resident"
    path: str | None = None
    resident_bytes: int | None = None
    prefetch_depth: int = 0

    _BACKENDS = ("resident", "mmap")

    def __post_init__(self) -> None:
        if self.backend not in self._BACKENDS:
            raise ValueError(
                f"backend must be one of {self._BACKENDS}, got {self.backend!r}"
            )
        if self.prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be non-negative, got {self.prefetch_depth}"
            )
        if self.resident_bytes is not None and self.resident_bytes <= 0:
            raise ValueError(
                f"resident_bytes must be positive or None, got {self.resident_bytes}"
            )
        if self.path is not None and self.backend != "mmap":
            raise ValueError("path= only applies to the mmap backend")

    @property
    def out_of_core(self) -> bool:
        """True when the memories live on a disk tier."""
        return self.backend == "mmap"

    @property
    def enabled(self) -> bool:
        """True when any store machinery deviates from plain arrays."""
        return (
            self.out_of_core
            or self.prefetch_depth > 0
            or self.resident_bytes is not None
        )


@dataclass(frozen=True)
class TopKConfig:
    """Approximate top-k retrieval in front of exact attention.

    MnnFast's zero-skipping (§3.2, Fig. 6) shows the attention mass of
    a trained MANN concentrates on a few memory rows; sparse-access
    memories (Rae et al.) and hierarchical memory networks (Chandar et
    al.) exploit that by *retrieving* candidate rows with an
    approximate index and running exact attention on the candidates
    only.  This config drives that tier: an IVF (k-means clustered)
    index over ``M_IN`` selects the ``nprobe`` clusters nearest each
    question, and the exact lazy-softmax column kernel runs on the
    union of their rows — ``O(nlist·ed + candidates·ed)`` per question
    instead of ``O(ns·ed)``, sublinear in ``ns`` at ``nlist ≈ √ns``.

    Attributes:
        nprobe: clusters probed per question (``0`` disables the tier
            entirely — the engine runs the configured exact path).
        nlist: cluster count of the index; ``None`` picks
            ``round(sqrt(ns))`` at build time (the classic IVF sizing,
            which balances probe cost against candidate-list length).
        min_rows: below this many memory rows the index falls back to
            an exact scan over all rows (small memories are cheaper to
            scan than to cluster — and the fallback is bit-exact, which
            the differential suite relies on).
        kmeans_iters: Lloyd iterations when building the index.
        seed: RNG seed for centroid initialization (deterministic
            builds — same memories, same index).
        measure_recall: also compute per-hop attention-mass recall
            (the exact softmax mass the candidate set captures).  This
            costs a full ``O(ns·ed)`` pass per hop, so it is for the
            differential harness and benchmarks, not production.
        record_candidates: also attach the probed candidate *row IDs*
            to each pass's :class:`~repro.index.stats.IndexStats`
            (``candidates``), so a retrieval evaluator can score which
            rows the tier actually examined against qrels ground truth
            (:mod:`repro.docqa.evaluate`).  Costs ``O(candidates)``
            memory per recorded pass — measurement machinery, off by
            default on serving paths.
    """

    nprobe: int = 0
    nlist: int | None = None
    min_rows: int = 2048
    kmeans_iters: int = 4
    seed: int = 0
    measure_recall: bool = False
    record_candidates: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.nprobe, int) or self.nprobe < 0:
            raise ValueError(
                f"nprobe must be a non-negative integer, got {self.nprobe!r}"
            )
        if self.nlist is not None and (
            not isinstance(self.nlist, int) or self.nlist < 1
        ):
            raise ValueError(
                f"nlist must be a positive integer or None, got {self.nlist!r}"
            )
        if self.min_rows < 0:
            raise ValueError(
                f"min_rows must be non-negative, got {self.min_rows}"
            )
        if self.kmeans_iters < 1:
            raise ValueError(
                f"kmeans_iters must be >= 1, got {self.kmeans_iters}"
            )

    @property
    def enabled(self) -> bool:
        """The tier is a no-op at ``nprobe`` 0."""
        return self.nprobe > 0

    def effective_nlist(self, num_rows: int) -> int:
        """Cluster count the index will use for ``num_rows`` rows."""
        nlist = (
            self.nlist
            if self.nlist is not None
            else max(1, int(round(math.sqrt(num_rows))))
        )
        return max(1, min(nlist, num_rows))

    def uses_index(self, num_rows: int) -> bool:
        """True when a memory of this size goes through the index
        (enabled and above the exact-scan fallback threshold)."""
        return self.enabled and num_rows > self.min_rows

    def expected_candidates(self, num_rows: int, batch_size: int = 1) -> int:
        """Expected candidate rows per pass — the cost model's ``ns``.

        Under the index, probing ``nprobe`` of ``nlist`` roughly
        balanced clusters yields ``ns · nprobe / nlist`` rows per
        question; in exact-scan fallback (or disabled) every row is a
        candidate.

        The kernel runs **once per batch** over the *union* of every
        question's probed clusters, so with ``batch_size`` questions
        drawing independently the expected covered fraction is
        ``1 - (1 - nprobe/nlist)^batch_size`` — approaching full-scan
        as the batch grows.  Sublinear serving therefore wants small
        batches (or per-topic affinity, which correlates the draws and
        keeps the union tight).
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if not self.uses_index(num_rows):
            return num_rows
        nlist = self.effective_nlist(num_rows)
        per_question = min(1.0, self.nprobe / nlist)
        fraction = 1.0 - (1.0 - per_question) ** batch_size
        return min(num_rows, int(math.ceil(num_rows * fraction)))


@dataclass(frozen=True)
class EarlyExitConfig:
    """Per-question confidence-gated hop pruning (adaptive depth).

    Every question today runs all configured hops even when hop 1
    already concentrates the attention mass on the answer; A2P-MANN
    shows per-question hop pruning preserves accuracy while cutting
    inference work, and MnnFast's own zero-skipping data (§3.2, Fig. 6)
    proves the p-vector is peaked enough to read confidence from.
    After each hop (except the last, whose work is already spent) the
    engine computes a cheap per-question confidence signal and retires
    the questions that clear the gate from the remaining hops — later
    hops run a shrinking ``nq x ed`` GEMM.

    ``threshold`` is the *pruning aggressiveness*: a question exits
    after hop ``k >= min_hops`` when its confidence reaches
    ``1 - threshold``.  Raising the threshold lowers the confidence
    bar, so exit depth is monotone non-increasing in the threshold —
    the direction the serving degradation lever turns under load — and
    ``threshold = 0`` demands unreachable perfect confidence, i.e.
    disables the gate entirely (bit-identical to the full-depth path).

    Attributes:
        threshold: pruning aggressiveness in ``[0, 1)``; a question
            exits when confidence ``>= 1 - threshold`` (0 disables).
        metric: ``"logit_margin"`` (default) scores the softmax margin
            of the answer layer applied to the *extrapolated terminal
            state* ``u_k + (hops - k) * o_k`` — if attention has locked
            onto its rows, the remaining hops each add ≈ ``o_k``, so a
            wide margin there means running them cannot flip the
            answer.  Costs ``O(nq * num_answers * ed)`` per check,
            independent of ``ns``.  ``"attention_mass"`` scores the
            top-``attention_top_k`` mass of the next hop's attention
            distribution (Fig. 6's concentration, read directly); it
            pays an extra ``O(nq * ns * ed)`` scoring pass per check,
            so it is the analysis metric, not the production one.
        min_hops: hops every question must run before it may exit
            (>= 1; the gate never fires mid-first-hop).
        attention_top_k: ``k`` of the ``attention_mass`` concentration
            measure.
    """

    threshold: float = 0.0
    metric: str = "logit_margin"
    min_hops: int = 1
    attention_top_k: int = 4

    _METRICS = ("logit_margin", "attention_mass")

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold < 1.0:
            raise ValueError(
                f"threshold must be in [0, 1), got {self.threshold}"
            )
        if self.metric not in self._METRICS:
            raise ValueError(
                f"metric must be one of {self._METRICS}, got {self.metric!r}"
            )
        if not isinstance(self.min_hops, int) or self.min_hops < 1:
            raise ValueError(
                f"min_hops must be a positive integer, got {self.min_hops!r}"
            )
        if not isinstance(self.attention_top_k, int) or self.attention_top_k < 1:
            raise ValueError(
                "attention_top_k must be a positive integer, "
                f"got {self.attention_top_k!r}"
            )

    @property
    def enabled(self) -> bool:
        """The gate is a no-op at threshold 0 (perfect confidence is
        unreachable, so no question ever exits early)."""
        return self.threshold > 0.0

    @property
    def required_confidence(self) -> float:
        """Confidence a question needs to exit: ``1 - threshold``."""
        return 1.0 - self.threshold


@dataclass(frozen=True)
class EngineConfig:
    """Which MnnFast optimizations an inference engine applies.

    Attributes:
        algorithm: ``"baseline"`` (Fig. 5a), ``"column"`` (Fig. 5b) or
            ``"sharded"`` (column on K disjoint memory shards with the
            exact max-rescaled merge).
        chunk: per-worker chunking of the column dataflow.
        zero_skip: zero-skipping threshold/mode (applied per shard in
            sharded mode).
        stable_softmax: online running-max softmax vs the
            paper-faithful raw-exponential form.
        num_shards: shard count ``K`` for the sharded algorithm (must
            be 1 otherwise).
        shard_policy: ``"contiguous"`` or ``"strided"`` row partition.
        batch: continuous-batching policy a serving layer applies when
            coalescing questions into engine passes.
        execution: how the engine runs — backend (serial vs
            thread-over-shards), pool width, and compute dtype.
        store: where the memories live (resident arrays vs an
            out-of-core disk tier) and the chunk prefetch policy.
        topk: the approximate top-k retrieval tier in front of exact
            attention (disabled by default — every path stays exact).
        early_exit: per-question confidence-gated hop pruning
            (disabled by default — every question runs every hop).
    """

    algorithm: str = "column"
    chunk: ChunkConfig = field(default_factory=ChunkConfig)
    zero_skip: ZeroSkipConfig = field(default_factory=lambda: ZeroSkipConfig(0.0))
    stable_softmax: bool = True
    num_shards: int = 1
    shard_policy: str = "contiguous"
    batch: BatchConfig = field(default_factory=BatchConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    store: StoreConfig = field(default_factory=StoreConfig)
    topk: TopKConfig = field(default_factory=TopKConfig)
    early_exit: EarlyExitConfig = field(default_factory=EarlyExitConfig)

    _ALGORITHMS = ("baseline", "column", "sharded")
    _SHARD_POLICIES = ("contiguous", "strided")

    def __post_init__(self) -> None:
        # Only *own-field* validation happens at construction; the
        # cross-field constraints live in validate() so builder chains
        # may pass through intermediate states (e.g. a thread-parallel
        # execution config before with_sharding() sets the shards).
        if self.algorithm not in self._ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {self._ALGORITHMS}, got {self.algorithm!r}"
            )
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.shard_policy not in self._SHARD_POLICIES:
            raise ValueError(
                f"shard_policy must be one of {self._SHARD_POLICIES}, "
                f"got {self.shard_policy!r}"
            )

    def validate(self) -> "EngineConfig":
        """Check the cross-field constraints of the *composed* config.

        Called by the engines (and the serving layer) on the final
        configuration; raises :class:`ValueError` on an inconsistent
        combination and returns ``self`` otherwise, so call sites can
        chain ``config.validate()``.
        """
        if self.num_shards > 1 and self.algorithm != "sharded":
            raise ValueError(
                "num_shards > 1 requires algorithm='sharded' "
                f"(got {self.algorithm!r})"
            )
        if self.execution.parallel and self.algorithm != "sharded":
            raise ValueError(
                "the thread/process backends parallelize over memory "
                "shards; num_workers > 1 requires algorithm='sharded' "
                f"(got {self.algorithm!r})"
            )
        if self.execution.fused and self.algorithm != "sharded":
            raise ValueError(
                "the fused tile kernel folds memory shards into one "
                "BLAS call; fused=True requires algorithm='sharded' "
                f"(got {self.algorithm!r})"
            )
        if self.store.enabled and self.algorithm == "baseline":
            raise ValueError(
                "the memory store streams chunks through the column "
                "dataflow; the baseline algorithm needs resident "
                "memories (use algorithm='column' or 'sharded')"
            )
        if self.topk.enabled and self.algorithm == "baseline":
            raise ValueError(
                "the top-k retrieval tier feeds candidates to the "
                "column dataflow; the baseline algorithm scans every "
                "row (use algorithm='column' or 'sharded')"
            )
        return self

    # --- builders ------------------------------------------------------------
    #
    # Each with_* method returns a NEW frozen config with one concern
    # changed, so configurations compose left to right:
    #
    #     EngineConfig().with_zero_skip(0.1).with_sharding(8).with_topk()
    #
    # The preset classmethods below are thin wrappers over these.

    def with_algorithm(self, algorithm: str) -> "EngineConfig":
        """A copy running ``algorithm`` (``baseline``/``column``/``sharded``)."""
        return replace(self, algorithm=algorithm)

    def with_chunking(
        self, chunk_size=_UNSET, streaming=_UNSET
    ) -> "EngineConfig":
        """A copy with the column dataflow's chunking changed.

        Omitted knobs keep their current values.
        """
        chunk = self.chunk
        return replace(
            self,
            chunk=ChunkConfig(
                chunk_size=(
                    chunk.chunk_size if chunk_size is _UNSET else chunk_size
                ),
                streaming=chunk.streaming if streaming is _UNSET else streaming,
            ),
        )

    def with_sharding(
        self, num_shards: int, shard_policy: str = "contiguous"
    ) -> "EngineConfig":
        """A copy fanning attention over ``num_shards`` memory shards
        (sets ``algorithm='sharded'``; the merge stays exact)."""
        return replace(
            self,
            algorithm="sharded",
            num_shards=num_shards,
            shard_policy=shard_policy,
        )

    def with_zero_skip(
        self, threshold: float, mode: str = "probability"
    ) -> "EngineConfig":
        """A copy with §3.2 zero-skipping at ``threshold`` (0 disables)."""
        return replace(self, zero_skip=ZeroSkipConfig(threshold, mode))

    def with_batching(
        self, max_batch_size: int, max_wait: float = 0.0
    ) -> "EngineConfig":
        """A copy with continuous question batching (1 disables)."""
        return replace(
            self,
            batch=BatchConfig(max_batch_size=max_batch_size, max_wait=max_wait),
        )

    def with_execution(
        self,
        backend=_UNSET,
        num_workers=_UNSET,
        dtype=_UNSET,
        fused=_UNSET,
        fused_tile_rows=_UNSET,
        blas_threads=_UNSET,
    ) -> "EngineConfig":
        """A copy with the execution backend changed.

        Omitted knobs keep their current values; as a convenience,
        asking for ``num_workers > 1`` without naming a backend
        upgrades a serial backend to ``"process"`` (the backend that
        actually parallelizes — see :class:`ExecutionConfig`), so
        ``.with_execution(num_workers=4)`` composes.
        """
        ex = self.execution
        if backend is _UNSET:
            backend = ex.backend
            if (
                num_workers is not _UNSET
                and num_workers > 1
                and backend == "serial"
            ):
                backend = "process"
        return replace(
            self,
            execution=ExecutionConfig(
                backend=backend,
                num_workers=(
                    ex.num_workers if num_workers is _UNSET else num_workers
                ),
                dtype=ex.dtype if dtype is _UNSET else dtype,
                fused=ex.fused if fused is _UNSET else fused,
                fused_tile_rows=(
                    ex.fused_tile_rows
                    if fused_tile_rows is _UNSET
                    else fused_tile_rows
                ),
                blas_threads=(
                    ex.blas_threads if blas_threads is _UNSET else blas_threads
                ),
            ),
        )

    def with_store(
        self,
        backend=_UNSET,
        path=_UNSET,
        resident_bytes=_UNSET,
        prefetch_depth=_UNSET,
    ) -> "EngineConfig":
        """A copy with the memory-store tier changed.

        Omitted knobs keep their current values (``None`` is a real
        setting for ``path``/``resident_bytes``, so only genuinely
        omitted arguments are inherited).
        """
        sc = self.store
        return replace(
            self,
            store=StoreConfig(
                backend=sc.backend if backend is _UNSET else backend,
                path=sc.path if path is _UNSET else path,
                resident_bytes=(
                    sc.resident_bytes
                    if resident_bytes is _UNSET
                    else resident_bytes
                ),
                prefetch_depth=(
                    sc.prefetch_depth
                    if prefetch_depth is _UNSET
                    else prefetch_depth
                ),
            ),
        )

    def with_topk(
        self,
        nprobe: int = 8,
        nlist=_UNSET,
        min_rows=_UNSET,
        kmeans_iters=_UNSET,
        seed=_UNSET,
        measure_recall=_UNSET,
        record_candidates=_UNSET,
    ) -> "EngineConfig":
        """A copy with the approximate top-k retrieval tier enabled
        (``nprobe`` clusters probed per question; 0 disables).

        Omitted knobs keep their current values.
        """
        tk = self.topk
        return replace(
            self,
            topk=TopKConfig(
                nprobe=nprobe,
                nlist=tk.nlist if nlist is _UNSET else nlist,
                min_rows=tk.min_rows if min_rows is _UNSET else min_rows,
                kmeans_iters=(
                    tk.kmeans_iters if kmeans_iters is _UNSET else kmeans_iters
                ),
                seed=tk.seed if seed is _UNSET else seed,
                measure_recall=(
                    tk.measure_recall
                    if measure_recall is _UNSET
                    else measure_recall
                ),
                record_candidates=(
                    tk.record_candidates
                    if record_candidates is _UNSET
                    else record_candidates
                ),
            ),
        )

    def with_early_exit(
        self,
        threshold: float,
        metric=_UNSET,
        min_hops=_UNSET,
        attention_top_k=_UNSET,
    ) -> "EngineConfig":
        """A copy with confidence-gated hop pruning at ``threshold``
        (the pruning aggressiveness; 0 disables — see
        :class:`EarlyExitConfig`).

        Omitted knobs keep their current values.
        """
        ee = self.early_exit
        return replace(
            self,
            early_exit=EarlyExitConfig(
                threshold=threshold,
                metric=ee.metric if metric is _UNSET else metric,
                min_hops=ee.min_hops if min_hops is _UNSET else min_hops,
                attention_top_k=(
                    ee.attention_top_k
                    if attention_top_k is _UNSET
                    else attention_top_k
                ),
            ),
        )

    # --- presets (thin wrappers over the builders) ---------------------------

    @classmethod
    def baseline(cls) -> "EngineConfig":
        """The paper's baseline MemNN (no optimizations)."""
        return cls().with_algorithm("baseline").with_chunking(streaming=False)

    @classmethod
    def mnnfast(
        cls, chunk_size: int = 1000, threshold: float = 0.1
    ) -> "EngineConfig":
        """Full MnnFast: column-based + streaming + zero-skipping."""
        return (
            cls()
            .with_chunking(chunk_size=chunk_size, streaming=True)
            .with_zero_skip(threshold)
        )

    @classmethod
    def batched(
        cls,
        max_batch_size: int,
        max_wait: float = 1e-3,
        chunk_size: int = 1000,
        threshold: float = 0.1,
    ) -> "EngineConfig":
        """Full MnnFast plus continuous question batching: memory
        streams once per batch of up to ``max_batch_size`` questions,
        held at most ``max_wait`` seconds while the batch fills."""
        return (
            cls.mnnfast(chunk_size=chunk_size, threshold=threshold)
            .with_batching(max_batch_size, max_wait=max_wait)
        )

    @classmethod
    def sharded(
        cls,
        num_shards: int,
        shard_policy: str = "contiguous",
        chunk_size: int = 1000,
        threshold: float = 0.0,
    ) -> "EngineConfig":
        """Column algorithm fanned out over ``num_shards`` memory
        shards with the exact lazy-softmax merge."""
        return (
            cls()
            .with_chunking(chunk_size=chunk_size, streaming=True)
            .with_zero_skip(threshold)
            .with_sharding(num_shards, shard_policy=shard_policy)
        )

    @classmethod
    def parallel(
        cls,
        num_workers: int,
        num_shards: int | None = None,
        shard_policy: str = "contiguous",
        chunk_size: int = 1000,
        threshold: float = 0.0,
        dtype: str = "float64",
        backend: str = "process",
    ) -> "EngineConfig":
        """Sharded column algorithm with the shards executed
        concurrently on a ``num_workers``-wide worker pool.

        The default backend is ``"process"`` — the one that delivers
        multicore speedup (the thread backend measures 0.79–0.99x
        serial; see :class:`ExecutionConfig`).  One shard per worker by
        default, so every worker owns exactly one ``partial_output``
        call; pass ``num_shards`` explicitly to oversubscribe (more
        shards than workers gives the pool load-balancing slack on
        skewed machines).
        """
        return (
            cls.sharded(
                num_shards if num_shards is not None else num_workers,
                shard_policy=shard_policy,
                chunk_size=chunk_size,
                threshold=threshold,
            )
            .with_execution(backend=backend, num_workers=num_workers, dtype=dtype)
        )

    @classmethod
    def multicore(
        cls,
        num_workers: int,
        num_shards: int | None = None,
        chunk_size: int = 1000,
        dtype: str = "float32",
    ) -> "EngineConfig":
        """The fastest measured multicore composition: float32 compute
        (half the streamed bytes, ~1.4x alone) x process-pool shard
        fan-out over the engine's spilled store (no GIL, no memory
        pickling).  The README's parallel quickstart."""
        return cls.parallel(
            num_workers,
            num_shards=num_shards,
            chunk_size=chunk_size,
            dtype=dtype,
            backend="process",
        )

    @classmethod
    def fused(
        cls,
        num_shards: int,
        shard_policy: str = "contiguous",
        chunk_size: int = 1000,
        blas_threads: int | None = None,
        dtype: str = "float64",
        tile_rows: int | None = None,
    ) -> "EngineConfig":
        """Sharded algorithm through the fused batchxshard tile kernel:
        one BLAS score call per tile across every shard, parallelism
        delegated to BLAS's own ``blas_threads``-wide pool (library
        default when ``None``).  ``tile_rows`` sizes the global tile
        (``None`` keeps the historical ``chunk_size x num_shards``)."""
        return cls.sharded(
            num_shards, shard_policy=shard_policy, chunk_size=chunk_size
        ).with_execution(
            backend="serial",
            fused=True,
            fused_tile_rows=tile_rows,
            dtype=dtype,
            blas_threads=blas_threads,
        )

    @classmethod
    def out_of_core(
        cls,
        path: str | None = None,
        resident_bytes: int | None = 32 * 1024 * 1024,
        prefetch_depth: int = 2,
        chunk_size: int = 1000,
        threshold: float = 0.0,
        num_shards: int = 1,
        shard_policy: str = "contiguous",
    ) -> "EngineConfig":
        """Column algorithm streaming ``M_IN``/``M_OUT`` from a disk
        tier: the engine spills its memories to an
        :class:`~repro.store.MmapStore` (under ``path``, or a
        temporary directory) and the kernel consumes them through a
        ``resident_bytes``-budget chunk LRU with ``prefetch_depth``
        chunks of double-buffered lookahead.  Exactly equivalent to
        the resident path — only the tier the bytes come from changes.
        """
        cfg = (
            cls()
            .with_chunking(chunk_size=chunk_size, streaming=True)
            .with_zero_skip(threshold)
            .with_store(
                backend="mmap",
                path=path,
                resident_bytes=resident_bytes,
                prefetch_depth=prefetch_depth,
            )
        )
        if num_shards > 1:
            return cfg.with_sharding(num_shards, shard_policy=shard_policy)
        # A single shard historically stays on the plain column path
        # (with_sharding would flip the algorithm), so only carry the
        # policy through.
        return replace(cfg, shard_policy=shard_policy)


# --- Table 1: memory network configurations used in the evaluation. ----------
#
# The CPU/GPU database size in the paper is 100M sentences; the presets
# keep that number in ``database_sentences`` but instantiate a runnable
# scale by default (callers pass ``num_sentences`` explicitly to scale).

#: Paper Table 1, CPU column (ed=48, ns=100M, chunk=1000).
CPU_CONFIG = MemNNConfig(embedding_dim=48, num_sentences=100_000, vocab_size=50_000)

#: Paper Table 1, GPU column (ed=64, ns=100M, chunk variable). The
#: question batch is sized up to keep the streaming multiprocessors
#: busy, mirroring the paper's "fully utilize SMs" sizing note.
GPU_CONFIG = MemNNConfig(
    embedding_dim=64, num_sentences=100_000, num_questions=32, vocab_size=50_000
)

#: Paper Table 1, FPGA column (ed=25, ns=1000, chunk=25).
FPGA_CONFIG = MemNNConfig(embedding_dim=25, num_sentences=1000, vocab_size=10_000)

#: The full Table 1 as data: platform -> (config, paper database size, chunk).
TABLE1 = {
    "CPU": {
        "config": CPU_CONFIG,
        "database_sentences": 100_000_000,
        "chunk_size": 1000,
    },
    "GPU": {
        "config": GPU_CONFIG,
        "database_sentences": 100_000_000,
        "chunk_size": None,  # variable, swept in Fig. 12
    },
    "FPGA": {
        "config": FPGA_CONFIG,
        "database_sentences": 1000,
        "chunk_size": 25,
    },
}
