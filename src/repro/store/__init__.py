"""Tiered RAM/disk backing for ``M_IN``/``M_OUT`` (out-of-core memory).

* :mod:`repro.store.base` — the :class:`MemoryStore` protocol,
  :class:`StoreStats` ledger, and row-subset views.
* :mod:`repro.store.resident` — the in-RAM backend (today's arrays).
* :mod:`repro.store.mmap_store` — dtype-aware on-disk shards with a
  ``save``/``open`` format.
* :mod:`repro.store.prefetch` — double-buffered chunk prefetch plus a
  budgeted resident-chunk LRU (the paper's §3.1 load/compute overlap).
"""

from .base import (
    SUPPORTED_DTYPES,
    MemoryStore,
    RowSubsetStore,
    StoreStats,
    check_dtype,
    iter_chunk_spans,
)
from .mmap_store import MmapStore
from .prefetch import ChunkPrefetcher
from .resident import ResidentStore

__all__ = [
    "MemoryStore",
    "ResidentStore",
    "MmapStore",
    "ChunkPrefetcher",
    "RowSubsetStore",
    "StoreStats",
    "SUPPORTED_DTYPES",
    "check_dtype",
    "iter_chunk_spans",
]
