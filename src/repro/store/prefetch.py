"""Double-buffered chunk prefetch + budgeted resident-chunk LRU.

This is the paper's §3.1 streaming story made real: the column kernel
knows exactly which chunk it needs next, so a background thread loads
chunk ``i+1..i+depth`` from the store while the compute thread works
on chunk ``i`` (the chunk fetches — ``read(2)`` for
:class:`~repro.store.mmap_store.MmapStore` — release the GIL, exactly
like the BLAS calls in :mod:`repro.core.execution`'s thread-over-shards
backend, so the overlap is genuine multicore concurrency).

Between the fetcher and the backing store sits a small resident-chunk
LRU with a configurable byte budget — the RAM tier of the store
hierarchy.  Repeated passes over the same memory (multi-hop inference,
every request of a serving engine) hit the LRU for whatever fits the
budget and fall through to the backing tier for the rest, and the
:class:`~repro.store.base.StoreStats` ledger records which bytes came
from where, the prefetch hit rate, and the stall seconds the overlap
failed to hide.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator

import numpy as np

from .base import MemoryStore, StoreStats, iter_chunk_spans

__all__ = ["ChunkPrefetcher"]


class ChunkPrefetcher:
    """Serve a store's chunks with LRU caching and lookahead fetch.

    Args:
        store: the backing tier (resident or disk).
        chunk_size: rows per chunk (the kernel's chunk geometry; the
            pipeline and the kernel must agree, so
            :class:`~repro.core.column.ColumnMemNN` constructs this
            from its own :class:`~repro.core.config.ChunkConfig`).
        resident_bytes: byte budget of the resident-chunk LRU; ``None``
            disables caching (pure streaming).
        prefetch_depth: chunks fetched ahead of the consumer; ``0``
            disables the background thread (every chunk is a
            synchronous demand fetch).

    One prefetcher serves many passes: each :meth:`chunks` call walks
    the whole store once, and ``stats`` accumulates across passes (the
    second hop of a 2-hop engine is where the LRU starts paying).
    """

    def __init__(
        self,
        store: MemoryStore,
        chunk_size: int,
        resident_bytes: int | None = None,
        prefetch_depth: int = 0,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be non-negative, got {prefetch_depth}"
            )
        if resident_bytes is not None and resident_bytes <= 0:
            raise ValueError(
                f"resident_bytes must be positive or None, got {resident_bytes}"
            )
        self.store = store
        self.chunk_size = chunk_size
        self.resident_bytes = resident_bytes
        self.prefetch_depth = prefetch_depth
        self.stats = StoreStats()
        self._lru: OrderedDict[tuple[int, int], tuple[np.ndarray, np.ndarray]]
        self._lru = OrderedDict()
        self._lru_bytes = 0
        self._lock = threading.Lock()

    # --- the chunk stream ----------------------------------------------------

    def chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """One full in-order pass over the store, chunk by chunk."""
        spans = list(iter_chunk_spans(self.store.num_rows, self.chunk_size))
        if self.prefetch_depth < 1:
            for span in spans:
                began = time.perf_counter()
                pair, from_ram = self._fetch(span)
                self._account(pair, from_ram, stalled=time.perf_counter() - began)
                self.stats.demand_fetches += 1
                yield pair
            return

        with ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-prefetch"
        ) as pool:
            in_flight: deque = deque()
            next_issue = 0
            while next_issue < len(spans) and len(in_flight) < self.prefetch_depth:
                in_flight.append(pool.submit(self._fetch, spans[next_issue]))
                next_issue += 1
            while in_flight:
                future = in_flight.popleft()
                ready = future.done()
                began = time.perf_counter()
                pair, from_ram = future.result()
                stalled = time.perf_counter() - began
                # Top the window back up *before* yielding, so the
                # fetch thread works while the kernel computes.
                if next_issue < len(spans):
                    in_flight.append(pool.submit(self._fetch, spans[next_issue]))
                    next_issue += 1
                self._account(pair, from_ram, stalled=stalled)
                if ready:
                    self.stats.prefetch_hits += 1
                else:
                    self.stats.prefetch_late += 1
                yield pair

    def fetch(
        self, span: tuple[int, int]
    ) -> tuple[tuple[np.ndarray, np.ndarray], bool]:
        """Serve one chunk span on demand, through the LRU, with full
        ledger accounting.

        The random-access sibling of :meth:`chunks` — a cluster
        replica's executor pulls exactly the spans its plan names
        rather than walking the whole store.  Returns
        ``((chunk_in, chunk_out), lru_hit)``; ``lru_hit`` is ``True``
        only when the span came out of the resident-chunk LRU (a
        resident backing store that is *not* cached reports ``False``,
        so routing experiments see cache locality, not store
        residency).
        """
        with self._lock:
            was_cached = span in self._lru
        began = time.perf_counter()
        pair, from_ram = self._fetch(span)
        self._account(pair, from_ram, stalled=time.perf_counter() - began)
        self.stats.demand_fetches += 1
        return pair, was_cached

    def resident_spans(self) -> tuple[tuple[int, int], ...]:
        """The spans currently held by the resident-chunk LRU, coldest
        first — the live cache-contents view cache-affinity routing
        scores against.  A snapshot: safe to iterate while the
        prefetch thread runs."""
        with self._lock:
            return tuple(self._lru.keys())

    def resident_chunk_ids(self) -> frozenset[int]:
        """LRU contents as global chunk indices (``start //
        chunk_size``) — the set form the router intersects with an
        :class:`~repro.core.plan.InferencePlan`'s ``chunks``."""
        return frozenset(
            start // self.chunk_size for start, _ in self.resident_spans()
        )

    # --- the RAM tier --------------------------------------------------------

    def _fetch(
        self, span: tuple[int, int]
    ) -> tuple[tuple[np.ndarray, np.ndarray], bool]:
        """``((chunk_in, chunk_out), served_from_ram)`` for one span."""
        if self.resident_bytes is None:
            return self.store.read_chunk(*span), self.store.resident
        with self._lock:
            cached = self._lru.get(span)
            if cached is not None:
                self._lru.move_to_end(span)
                return cached, True
        pair = self.store.read_chunk(*span)
        size = pair[0].nbytes + pair[1].nbytes
        if size <= self.resident_bytes:
            with self._lock:
                if span not in self._lru:
                    self._lru[span] = pair
                    self._lru_bytes += size
                    while self._lru_bytes > self.resident_bytes:
                        _, evicted = self._lru.popitem(last=False)
                        self._lru_bytes -= evicted[0].nbytes + evicted[1].nbytes
        return pair, self.store.resident

    def _account(
        self,
        pair: tuple[np.ndarray, np.ndarray],
        from_ram: bool,
        stalled: float,
    ) -> None:
        size = pair[0].nbytes + pair[1].nbytes
        if from_ram:
            self.stats.ram_bytes += size
        else:
            self.stats.disk_bytes += size
        self.stats.stall_seconds += stalled
        self.stats.chunks_served += 1

    @property
    def cached_bytes(self) -> int:
        """Bytes currently held by the resident-chunk LRU."""
        return self._lru_bytes
