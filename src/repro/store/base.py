"""The tiered memory-store contract (ROADMAP's out-of-core north star).

MnnFast's column-based algorithm (§3.1) never needs ``M_IN``/``M_OUT``
resident in full: the kernel touches one ``chunk x ed`` slice of each
matrix at a time and the lazy softmax carries everything else in
``O(nq x ed)`` state.  This module defines the contract that cashes
that property in — a :class:`MemoryStore` owns *where* memory rows
live (RAM, disk, a remote tier) and hands the kernels chunks on
demand, so the same chunk loop runs over stories far larger than RAM.

Two backends implement the protocol today:

* :class:`~repro.store.resident.ResidentStore` — wraps in-RAM arrays
  (today's behaviour; chunk reads are zero-copy views);
* :class:`~repro.store.mmap_store.MmapStore` — persists dtype-aware
  ``M_IN``/``M_OUT`` shards to disk with a ``save``/``open`` format
  and reads chunks back through the page cache.

:class:`~repro.store.prefetch.ChunkPrefetcher` sits on top of either
backend and adds the paper's load/compute overlap (double-buffered
background fetch) plus a budgeted resident-chunk LRU; its
:class:`StoreStats` ledger records where every byte came from.

The mergeable-partial design (Rae et al.'s sparse-access memories and
Chandar et al.'s hierarchical memory networks treat large external
memory the same way) means none of this changes the numbers: a
store-backed pass is exactly equivalent to the resident pass, chunk
for chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "SUPPORTED_DTYPES",
    "check_dtype",
    "MemoryStore",
    "RowSubsetStore",
    "StoreStats",
    "iter_chunk_spans",
]

#: Compute dtypes the kernels (and therefore the stores) support.
SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def check_dtype(dtype) -> np.dtype:
    """Normalize/validate a compute dtype for the numerical engines."""
    dtype = np.dtype(dtype)
    if dtype not in SUPPORTED_DTYPES:
        raise ValueError(
            f"compute dtype must be one of {[d.name for d in SUPPORTED_DTYPES]}, "
            f"got {dtype.name!r}"
        )
    return dtype


@dataclass
class StoreStats:
    """Where the bytes a chunk pipeline served came from.

    Attributes:
        ram_bytes: bytes served from RAM (resident arrays or the
            chunk LRU).
        disk_bytes: bytes read from a disk-backed store.
        prefetch_hits: chunks whose background fetch had *completed*
            by the time the kernel asked for them (zero stall).
        prefetch_late: chunks fetched ahead of demand whose fetch was
            still in flight when demanded (partial stall).
        demand_fetches: chunks fetched synchronously on demand
            (prefetching disabled, or the cold demand path).
        stall_seconds: wall-clock the consumer spent waiting for
            chunk data (the load time the overlap failed to hide).
        chunks_served: total chunks delivered to the kernel.
    """

    ram_bytes: int = 0
    disk_bytes: int = 0
    prefetch_hits: int = 0
    prefetch_late: int = 0
    demand_fetches: int = 0
    stall_seconds: float = 0.0
    chunks_served: int = 0

    @property
    def bytes_served(self) -> int:
        return self.ram_bytes + self.disk_bytes

    @property
    def prefetch_hit_rate(self) -> float:
        """Fraction of served chunks whose data was ready on demand."""
        return self.prefetch_hits / self.chunks_served if self.chunks_served else 0.0

    @property
    def prefetch_coverage(self) -> float:
        """Fraction of served chunks whose fetch was *issued* ahead of
        demand (hit or late) — the timing-independent counterpart of
        :attr:`prefetch_hit_rate`, and the definition the modeled
        :class:`~repro.memsim.prefetcher.StridePrefetcher` shares (a
        prefetch issued before the demand access covers it)."""
        covered = self.prefetch_hits + self.prefetch_late
        return covered / self.chunks_served if self.chunks_served else 0.0

    def __add__(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            ram_bytes=self.ram_bytes + other.ram_bytes,
            disk_bytes=self.disk_bytes + other.disk_bytes,
            prefetch_hits=self.prefetch_hits + other.prefetch_hits,
            prefetch_late=self.prefetch_late + other.prefetch_late,
            demand_fetches=self.demand_fetches + other.demand_fetches,
            stall_seconds=self.stall_seconds + other.stall_seconds,
            chunks_served=self.chunks_served + other.chunks_served,
        )

    def snapshot(self) -> "StoreStats":
        """A frozen copy (the live ledger keeps accumulating)."""
        return replace(self)


@runtime_checkable
class MemoryStore(Protocol):
    """Anything that owns ``M_IN``/``M_OUT`` rows and serves chunks.

    The kernels only rely on the members below, so RAM, memmap and
    test-fake backends are interchangeable.  ``read_chunk`` returns
    the *pair* of row slices — the column loop always consumes
    ``M_IN`` and ``M_OUT`` rows of the same span together, and pairing
    them lets a backend fetch both in one pass over the tier.
    """

    @property
    def num_rows(self) -> int: ...

    @property
    def embedding_dim(self) -> int: ...

    @property
    def dtype(self) -> np.dtype: ...

    @property
    def resident(self) -> bool:
        """True when chunk reads are RAM-backed (no I/O tier below)."""
        ...

    def read_chunk(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """``(M_IN[start:stop], M_OUT[start:stop])`` as ``(n, ed)`` arrays."""
        ...

    def read_rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather arbitrary rows (the strided-shard access pattern)."""
        ...

    def select(self, indices: Sequence[int]) -> "MemoryStore":
        """A store over a row subset (how shard plans slice a tier)."""
        ...


def iter_chunk_spans(num_rows: int, chunk_size: int) -> Iterator[tuple[int, int]]:
    """``(start, stop)`` spans covering ``num_rows`` in order."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    for start in range(0, num_rows, chunk_size):
        yield start, min(start + chunk_size, num_rows)


class RowSubsetStore:
    """A lazy row-subset view over a base store.

    Used to hand each shard of a :class:`~repro.core.sharded.ShardPlan`
    its slice of an out-of-core tier without materializing it: chunk
    ``[start, stop)`` of the subset gathers only the mapped base rows,
    so a strided shard of a 100M-row memmap still reads one chunk's
    worth of rows at a time.
    """

    def __init__(self, base: MemoryStore, indices: Sequence[int]) -> None:
        indices = np.asarray(indices, dtype=np.intp)
        if indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {indices.shape}")
        if len(indices) and (
            indices.min() < 0 or indices.max() >= base.num_rows
        ):
            raise ValueError(
                f"indices out of range for a {base.num_rows}-row store"
            )
        self._base = base
        self._indices = indices

    @property
    def num_rows(self) -> int:
        return len(self._indices)

    @property
    def embedding_dim(self) -> int:
        return self._base.embedding_dim

    @property
    def dtype(self) -> np.dtype:
        return self._base.dtype

    @property
    def resident(self) -> bool:
        return self._base.resident

    @property
    def m_in(self) -> np.ndarray:
        """Materialized subset (diagnostics only — gathers every row)."""
        return self._base.read_rows(self._indices)[0]

    @property
    def m_out(self) -> np.ndarray:
        return self._base.read_rows(self._indices)[1]

    def read_chunk(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        return self._base.read_rows(self._indices[start:stop])

    def read_rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self._base.read_rows(self._indices[np.asarray(indices, dtype=np.intp)])

    def select(self, indices: Sequence[int]) -> "RowSubsetStore":
        return RowSubsetStore(self._base, self._indices[np.asarray(indices, dtype=np.intp)])
