"""The in-RAM memory-store backend (today's arrays, behind the tier API)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import RowSubsetStore, check_dtype

__all__ = ["ResidentStore"]


class ResidentStore:
    """``M_IN``/``M_OUT`` fully resident as contiguous NumPy arrays.

    This is the backend every pre-store code path used implicitly; it
    owns the dtype conversion and shape validation the kernels used to
    do inline, and serves chunks as zero-copy views — a store-backed
    :class:`~repro.core.column.ColumnMemNN` over a ``ResidentStore``
    touches exactly the same bytes as the historical array path.
    """

    def __init__(self, m_in: np.ndarray, m_out: np.ndarray, dtype=np.float64) -> None:
        dtype = check_dtype(dtype)
        m_in = np.ascontiguousarray(m_in, dtype=dtype)
        m_out = np.ascontiguousarray(m_out, dtype=dtype)
        if m_in.ndim != 2 or m_out.ndim != 2:
            raise ValueError("memories must be 2-D (ns, ed)")
        if m_in.shape != m_out.shape:
            raise ValueError(
                f"M_IN and M_OUT shapes differ: {m_in.shape} vs {m_out.shape}"
            )
        self.m_in = m_in
        self.m_out = m_out

    @property
    def num_rows(self) -> int:
        return self.m_in.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self.m_in.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self.m_in.dtype

    @property
    def resident(self) -> bool:
        return True

    def read_chunk(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        return self.m_in[start:stop], self.m_out[start:stop]

    def read_rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        indices = np.asarray(indices, dtype=np.intp)
        return self.m_in[indices], self.m_out[indices]

    def select(self, indices: Sequence[int]) -> "ResidentStore":
        """An eagerly-sliced sub-store (matches the historical
        ``m_in[idx]`` shard construction: one copy at plan time, then
        contiguous zero-copy chunk reads)."""
        indices = np.asarray(indices, dtype=np.intp)
        store = ResidentStore.__new__(ResidentStore)
        store.m_in = np.ascontiguousarray(self.m_in[indices])
        store.m_out = np.ascontiguousarray(self.m_out[indices])
        return store

    def lazy_select(self, indices: Sequence[int]) -> RowSubsetStore:
        """A view-based subset (no copy; chunk reads gather rows)."""
        return RowSubsetStore(self, indices)
