"""The disk memory-store backend: persisted ``M_IN``/``M_OUT`` shards.

On-disk layout (one directory per store)::

    <path>/
      store.json    # {"format": 1, "dtype": "float64", "rows": ns, "dim": ed}
      m_in.bin      # ns x ed row-major values, the meta dtype
      m_out.bin     # ns x ed row-major values, the meta dtype

The format is dtype-aware (float64 reference or float32 half-traffic
shards) and deliberately trivial: raw C-order matrices that
``np.memmap`` can map and any other tool can stream.  :meth:`MmapStore.save`
writes atomically-enough for a single writer — on any error the
partially-written directory is removed, so a store directory either
holds a complete, openable store or nothing.

Chunk reads (:meth:`MmapStore.read_chunk`) go through ``np.fromfile``
with an explicit offset rather than the mapping: a plain ``read(2)``
into a fresh buffer releases the GIL for the whole transfer, which is
what lets :class:`~repro.store.prefetch.ChunkPrefetcher`'s background
thread genuinely overlap disk loads with the compute thread's BLAS
calls (the paper's §3.1 load/compute overlap).  Row gathers for
strided shards use the mapping (page-granular random access).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Sequence

import numpy as np

from .base import RowSubsetStore, check_dtype

__all__ = ["MmapStore"]

#: On-disk format version (bump on any layout change).
FORMAT_VERSION = 1

_META_NAME = "store.json"
_M_IN_NAME = "m_in.bin"
_M_OUT_NAME = "m_out.bin"

#: Rows copied per step while persisting (bounds save()'s working set,
#: so saving a larger-than-RAM conversion never materializes it).
_SAVE_ROWS = 8192


class MmapStore:
    """Disk-backed ``M_IN``/``M_OUT`` with a ``save``/``open`` format.

    Construct via :meth:`save` (persist arrays) or :meth:`open` (map an
    existing store directory); the initializer itself only wires up an
    already-validated directory.
    """

    def __init__(self, path: Path, rows: int, dim: int, dtype: np.dtype) -> None:
        self.path = Path(path)
        self._rows = rows
        self._dim = dim
        self._dtype = dtype
        shape = (rows, dim)
        self.m_in = np.memmap(
            self.path / _M_IN_NAME, dtype=dtype, mode="r", shape=shape
        )
        self.m_out = np.memmap(
            self.path / _M_OUT_NAME, dtype=dtype, mode="r", shape=shape
        )

    # --- persistence ---------------------------------------------------------

    @classmethod
    def save(
        cls,
        path,
        m_in: np.ndarray,
        m_out: np.ndarray,
        dtype=None,
        overwrite: bool = False,
    ) -> "MmapStore":
        """Persist a memory pair to ``path`` and return the opened store.

        Args:
            path: target directory (created; must not exist unless
                ``overwrite``).
            m_in: ``(ns, ed)`` input memory.
            m_out: ``(ns, ed)`` output memory.
            dtype: on-disk dtype (default: ``m_in``'s dtype if
                supported, else float64).
            overwrite: replace an existing directory.

        On any error the partially-written directory is removed before
        the exception propagates (no half-stores left behind).
        """
        m_in = np.asarray(m_in)
        m_out = np.asarray(m_out)
        if m_in.ndim != 2 or m_out.ndim != 2:
            raise ValueError("memories must be 2-D (ns, ed)")
        if m_in.shape != m_out.shape:
            raise ValueError(
                f"M_IN and M_OUT shapes differ: {m_in.shape} vs {m_out.shape}"
            )
        if m_in.shape[0] == 0:
            raise ValueError("cannot save an empty store (0 rows)")
        if dtype is None:
            dtype = m_in.dtype if m_in.dtype in (np.float32, np.float64) \
                else np.float64
        dtype = check_dtype(dtype)

        path = Path(path)
        if path.exists():
            if not overwrite:
                raise FileExistsError(
                    f"store directory already exists: {path} "
                    "(pass overwrite=True to replace it)"
                )
            shutil.rmtree(path)
        path.mkdir(parents=True)
        try:
            cls._write_matrix(path / _M_IN_NAME, m_in, dtype)
            cls._write_matrix(path / _M_OUT_NAME, m_out, dtype)
            meta = {
                "format": FORMAT_VERSION,
                "dtype": dtype.name,
                "rows": int(m_in.shape[0]),
                "dim": int(m_in.shape[1]),
            }
            (path / _META_NAME).write_text(json.dumps(meta, indent=2) + "\n")
        except BaseException:
            shutil.rmtree(path, ignore_errors=True)
            raise
        return cls.open(path)

    @staticmethod
    def _write_matrix(target: Path, matrix: np.ndarray, dtype: np.dtype) -> None:
        rows, dim = matrix.shape
        out = np.memmap(target, dtype=dtype, mode="w+", shape=(rows, dim))
        for start in range(0, rows, _SAVE_ROWS):
            stop = min(start + _SAVE_ROWS, rows)
            out[start:stop] = matrix[start:stop]
        out.flush()
        del out

    @classmethod
    def open(cls, path) -> "MmapStore":
        """Map an existing store directory (read-only)."""
        path = Path(path)
        meta_path = path / _META_NAME
        if not meta_path.is_file():
            raise FileNotFoundError(f"not a store directory (no {_META_NAME}): {path}")
        meta = json.loads(meta_path.read_text())
        if meta.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported store format {meta.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        dtype = check_dtype(meta["dtype"])
        rows, dim = int(meta["rows"]), int(meta["dim"])
        for name in (_M_IN_NAME, _M_OUT_NAME):
            expected = rows * dim * dtype.itemsize
            actual = (path / name).stat().st_size
            if actual != expected:
                raise ValueError(
                    f"{name} is {actual} bytes, metadata implies {expected} "
                    f"({rows} x {dim} {dtype.name})"
                )
        if rows == 0:
            raise ValueError("cannot open an empty store (0 rows)")
        return cls(path, rows, dim, dtype)

    # --- MemoryStore protocol ------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._rows

    @property
    def embedding_dim(self) -> int:
        return self._dim

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def resident(self) -> bool:
        return False

    def read_chunk(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Load a row span from disk into fresh contiguous buffers.

        Uses ``np.fromfile`` + offset (a plain GIL-releasing read)
        rather than touching the mapping, so a prefetch thread calling
        this genuinely runs concurrently with compute.
        """
        start = max(0, start)
        stop = min(stop, self._rows)
        count = max(0, stop - start) * self._dim
        offset = start * self._dim * self._dtype.itemsize
        chunk_in = np.fromfile(
            self.path / _M_IN_NAME, dtype=self._dtype, count=count, offset=offset
        ).reshape(-1, self._dim)
        chunk_out = np.fromfile(
            self.path / _M_OUT_NAME, dtype=self._dtype, count=count, offset=offset
        ).reshape(-1, self._dim)
        return chunk_in, chunk_out

    def read_rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        indices = np.asarray(indices, dtype=np.intp)
        return np.asarray(self.m_in[indices]), np.asarray(self.m_out[indices])

    def map_rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The worker-side open path of the process execution backend:
        ``(m_in, m_out)`` restricted to ``indices``, *without copying*
        when the indices form one ascending contiguous run (a
        contiguous shard) — the returned arrays are then plain memmap
        slices, so every worker process that maps this store shares
        the same physical pages.  Scattered indices (a strided shard)
        fall back to a one-time gather."""
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and np.array_equal(
            indices, np.arange(indices[0], indices[-1] + 1)
        ):
            lo, hi = int(indices[0]), int(indices[-1]) + 1
            return self.m_in[lo:hi], self.m_out[lo:hi]
        return self.read_rows(indices)

    def select(self, indices: Sequence[int]) -> RowSubsetStore:
        """A lazy row-subset view (shards never materialize the tier)."""
        return RowSubsetStore(self, indices)
