"""Deadline-aware continuous batching of question requests.

The column-based algorithm streams ``M_IN``/``M_OUT`` once per *batch*
of questions, so its dominant cost — the memory stream — amortizes
across the batch (the sizing observation behind the paper's GPU
scalability results, §5 / Fig. 12, and the reason
:meth:`~repro.core.column.ColumnMemNN.partial_output` takes an
``nq x ed`` question matrix).  This module provides the serving-side
half of that bargain: a request queue that coalesces an *online*
question stream into engine batches under a
:class:`~repro.core.config.BatchConfig` policy.

Dispatch rules (continuous batching, the core trick of modern
inference stacks):

* a batch dispatches **immediately** when it reaches
  ``max_batch_size`` — no artificial waiting once full;
* the oldest queued question is never held longer than ``max_wait``
  seconds — the latency ceiling batching may add;
* a question is never coalesced **past its admission deadline**: the
  batcher's next forced-dispatch time is clamped to the earliest
  absolute deadline in the queue, so a driver that honors
  :meth:`ContinuousBatcher.next_forced_dispatch` ships every request
  while it can still meet its deadline (the PR-1 deadline machinery of
  :mod:`repro.serving.requests`, applied at batch-formation time).

Every formed batch carries a :class:`BatchFormation` record — fill
ratio, per-request queue waits, per-request deadline slack and the
dispatch reason — which the serving metrics aggregate into
batch-occupancy statistics.

The batcher is deliberately *request-type agnostic*: it queues any
object (the serving simulator feeds it
:class:`~repro.serving.requests.QuestionRequest` instances; the tests
feed it plain tuples) and tracks time/deadlines itself, so it composes
with any driver — the discrete-event serving simulator, an offline
trace replay via :func:`form_batches`, or a real asyncio loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.config import BatchConfig

__all__ = [
    "BatchFormation",
    "BatcherStats",
    "ContinuousBatcher",
    "FormedBatch",
    "QueuedQuestion",
    "form_batches",
]

#: Forced-dispatch comparisons tolerate this much floating-point slop.
_TIME_EPS = 1e-12

#: Dispatch reasons a batch may form under.
DISPATCH_REASONS = ("full", "wait", "deadline", "flush")


@dataclass(frozen=True)
class QueuedQuestion:
    """One queued request with its admission bookkeeping.

    Attributes:
        item: the underlying request object (opaque to the batcher).
        enqueued: simulated time the request entered the queue.
        deadline: *absolute* time by which the request must have been
            dispatched (``None`` for no deadline).
    """

    item: Any
    enqueued: float
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline < self.enqueued:
            raise ValueError(
                f"deadline {self.deadline} predates enqueue {self.enqueued}"
            )


@dataclass(frozen=True)
class BatchFormation:
    """Formation statistics of one dispatched batch.

    Attributes:
        formed_at: dispatch time.
        size: questions in the batch.
        capacity: the policy's ``max_batch_size``.
        reason: what triggered dispatch — ``"full"`` (capacity
            reached), ``"wait"`` (oldest member hit ``max_wait``),
            ``"deadline"`` (a member's admission deadline loomed) or
            ``"flush"`` (explicit drain).
        queue_waits: per-member seconds spent waiting in the batcher,
            in admission order.
        deadline_slacks: per-member ``deadline - formed_at`` for the
            members that carry deadlines (non-negative when the driver
            honors :meth:`ContinuousBatcher.next_forced_dispatch`).
    """

    formed_at: float
    size: int
    capacity: int
    reason: str
    queue_waits: tuple[float, ...]
    deadline_slacks: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.reason not in DISPATCH_REASONS:
            raise ValueError(
                f"reason must be one of {DISPATCH_REASONS}, got {self.reason!r}"
            )

    @property
    def fill_ratio(self) -> float:
        """``size / capacity`` — 1.0 is a perfectly amortized batch."""
        return self.size / self.capacity

    @property
    def mean_queue_wait(self) -> float:
        return sum(self.queue_waits) / self.size if self.size else 0.0

    @property
    def max_queue_wait(self) -> float:
        return max(self.queue_waits) if self.queue_waits else 0.0

    @property
    def min_deadline_slack(self) -> float:
        """Tightest member slack (``inf`` when no member has one)."""
        return min(self.deadline_slacks) if self.deadline_slacks else float("inf")


@dataclass(frozen=True)
class FormedBatch:
    """A dispatched batch: the member requests plus formation stats."""

    entries: tuple[QueuedQuestion, ...]
    formation: BatchFormation

    @property
    def items(self) -> tuple[Any, ...]:
        """The underlying request objects, in admission order."""
        return tuple(entry.item for entry in self.entries)

    @property
    def size(self) -> int:
        return len(self.entries)


@dataclass
class BatcherStats:
    """Aggregate formation statistics across a batcher's lifetime."""

    submitted: int = 0
    dispatched: int = 0
    formations: list[BatchFormation] = field(default_factory=list)

    @property
    def batches_formed(self) -> int:
        return len(self.formations)

    @property
    def mean_fill_ratio(self) -> float:
        """Mean per-batch fill — the batch-occupancy headline."""
        if not self.formations:
            return 0.0
        return sum(f.fill_ratio for f in self.formations) / len(self.formations)

    @property
    def mean_batch_size(self) -> float:
        if not self.formations:
            return 0.0
        return self.dispatched / len(self.formations)

    @property
    def mean_queue_wait(self) -> float:
        """Mean per-request formation wait across all dispatches."""
        if not self.dispatched:
            return 0.0
        return (
            sum(sum(f.queue_waits) for f in self.formations) / self.dispatched
        )


class ContinuousBatcher:
    """A deadline-aware question-coalescing queue.

    Drive it with three calls: :meth:`submit` on every arrival,
    :meth:`poll` whenever the clock reaches
    :meth:`next_forced_dispatch`, and :meth:`flush` to drain at end of
    stream.  Dispatch is FIFO and never reorders requests.

    Args:
        policy: ``max_batch_size`` / ``max_wait`` knobs
            (:class:`~repro.core.config.BatchConfig`).
    """

    def __init__(self, policy: BatchConfig | None = None) -> None:
        self.policy = policy if policy is not None else BatchConfig()
        self._queue: deque[QueuedQuestion] = deque()
        self._clock = 0.0
        self.stats = BatcherStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting to be batched."""
        return len(self._queue)

    # --- admission -----------------------------------------------------------

    def submit(
        self, item: Any, now: float, deadline: float | None = None
    ) -> FormedBatch | None:
        """Admit one request at time ``now``.

        ``deadline`` is the request's *absolute* admission deadline
        (``None`` for no deadline).  Returns a :class:`FormedBatch`
        when this admission filled the batch to capacity (dispatching
        it immediately), else ``None``.  ``now`` must be monotone
        across calls.
        """
        if now + _TIME_EPS < self._clock:
            raise ValueError(
                f"time went backwards: submit at {now} after {self._clock}"
            )
        self._clock = max(self._clock, now)
        self._queue.append(QueuedQuestion(item, enqueued=now, deadline=deadline))
        self.stats.submitted += 1
        if len(self._queue) >= self.policy.max_batch_size:
            return self._dispatch(now, "full")
        return None

    # --- dispatch ------------------------------------------------------------

    def next_forced_dispatch(self) -> float | None:
        """Earliest time the queued batch must dispatch, or ``None``.

        The minimum of the oldest member's ``max_wait`` expiry and the
        earliest member admission deadline — the invariant that no
        request is coalesced past its deadline lives here.  A driver
        must call :meth:`poll` no later than this time.
        """
        if not self._queue:
            return None
        forced = self._queue[0].enqueued + self.policy.max_wait
        for entry in self._queue:
            if entry.deadline is not None:
                forced = min(forced, entry.deadline)
        return forced

    def poll(self, now: float) -> FormedBatch | None:
        """Dispatch the pending batch if a rule fires at time ``now``.

        Returns the batch when the queue is at capacity, the oldest
        member has waited ``max_wait``, or a member's admission
        deadline has arrived; ``None`` otherwise.
        """
        if not self._queue:
            return None
        self._clock = max(self._clock, now)
        if len(self._queue) >= self.policy.max_batch_size:
            return self._dispatch(now, "full")
        forced = self.next_forced_dispatch()
        if forced is not None and now + _TIME_EPS >= forced:
            wait_expiry = self._queue[0].enqueued + self.policy.max_wait
            reason = "wait" if forced + _TIME_EPS >= wait_expiry else "deadline"
            return self._dispatch(now, reason)
        return None

    def flush(self, now: float) -> FormedBatch | None:
        """Dispatch whatever is queued (end-of-stream drain)."""
        if not self._queue:
            return None
        self._clock = max(self._clock, now)
        return self._dispatch(now, "flush")

    def _dispatch(self, now: float, reason: str) -> FormedBatch:
        size = min(len(self._queue), self.policy.max_batch_size)
        entries = tuple(self._queue.popleft() for _ in range(size))
        formation = BatchFormation(
            formed_at=now,
            size=size,
            capacity=self.policy.max_batch_size,
            reason=reason,
            queue_waits=tuple(now - e.enqueued for e in entries),
            deadline_slacks=tuple(
                e.deadline - now for e in entries if e.deadline is not None
            ),
        )
        self.stats.dispatched += size
        self.stats.formations.append(formation)
        return FormedBatch(entries=entries, formation=formation)


def form_batches(
    requests: Iterable[Any],
    policy: BatchConfig | None = None,
    default_deadline: float | None = None,
) -> list[FormedBatch]:
    """Replay an arrival stream through a batcher offline.

    ``requests`` are objects with an ``arrival`` attribute and an
    optional per-request ``deadline`` (relative seconds, as on
    :class:`~repro.serving.requests.QuestionRequest`);
    ``default_deadline`` fills in for requests without one.  The
    stream is processed in arrival order with forced dispatches
    honored exactly at :meth:`ContinuousBatcher.next_forced_dispatch`
    times, so no request is ever coalesced past its admission
    deadline.  Returns every batch, in dispatch order.
    """
    batcher = ContinuousBatcher(policy)
    batches: list[FormedBatch] = []
    ordered: Sequence[Any] = sorted(requests, key=lambda r: r.arrival)
    for request in ordered:
        while True:
            forced = batcher.next_forced_dispatch()
            if forced is None or forced > request.arrival + _TIME_EPS:
                break
            batch = batcher.poll(forced)
            if batch is None:
                break
            batches.append(batch)
        relative = getattr(request, "deadline", None)
        if relative is None:
            relative = default_deadline
        absolute = request.arrival + relative if relative is not None else None
        batch = batcher.submit(request, now=request.arrival, deadline=absolute)
        if batch is not None:
            batches.append(batch)
    while batcher.queue_depth:
        forced = batcher.next_forced_dispatch()
        batch = batcher.poll(forced)
        if batch is None:  # pragma: no cover — poll always fires at forced
            batch = batcher.flush(forced)
        batches.append(batch)
    return batches
