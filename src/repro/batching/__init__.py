"""Continuous batching: the serving-side ``nq`` amortization lever.

The paper sizes the question batch ``nq`` to keep the hardware busy
(§5, Fig. 12) — the column-based algorithm streams ``M_IN``/``M_OUT``
once per batch, so memory traffic amortizes across the questions while
compute scales per question.  This subsystem turns that batch
dimension into a serving discipline:

* :mod:`repro.batching.batcher` — a deadline-aware continuous batcher:
  :class:`ContinuousBatcher` coalesces an online question stream under
  a :class:`~repro.core.config.BatchConfig` (``max_batch_size`` /
  ``max_wait``) policy, never holding a request past its admission
  deadline; every dispatch carries a :class:`BatchFormation` record
  (fill ratio, queue waits, deadline slack).
* the **vectorized engine path** —
  :meth:`repro.core.engine.MnnFastEngine.answer_batch` runs all hops
  on the full ``nq x ed`` question matrix through the
  baseline/column/sharded dataflows and returns per-question
  :class:`~repro.core.engine.AnswerResult` views plus batch-level
  :class:`~repro.core.stats.OpStats` showing the amortized traffic.
* the **batched service mode** —
  :meth:`repro.serving.server.QaServer.run_batched` forms batches with
  this batcher and charges memory streaming once per batch but compute
  per question; :class:`repro.serving.metrics.ServingMetrics` reports
  batch occupancy and per-request queueing percentiles.

``python -m repro batching`` and ``benchmarks/bench_batching.py``
sweep batch size against throughput and tail latency to reproduce the
Fig. 12-style amortization curve on the simulated substrate.
"""

from ..core.config import BatchConfig
from ..core.engine import BatchAnswer
from .batcher import (
    BatcherStats,
    BatchFormation,
    ContinuousBatcher,
    FormedBatch,
    QueuedQuestion,
    form_batches,
)

__all__ = [
    "BatchConfig",
    "BatchAnswer",
    "ContinuousBatcher",
    "BatchFormation",
    "BatcherStats",
    "FormedBatch",
    "QueuedQuestion",
    "form_batches",
]
