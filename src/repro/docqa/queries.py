"""Query synthesis with known supporting spans, and the qrels ledger.

Questions are built *from* the corpus: a query copies the word IDs of
one memory row (its **supporting span**), so the ground truth of which
rows answer it is known by construction — no annotation pass, no model
in the loop.  The ground truth is recorded in a qrels-style ledger
(``query_id -> {row_id: relevance}``, the TREC judgment format) with
graded relevance:

* ``2`` — a supporting-span row (the row the query was lifted from);
* ``1`` — another row of the same document (topically related through
  the shared document anchor, but not the answer span).

Evaluation metrics bind to a minimum relevance grade
(:func:`repro.docqa.evaluate.evaluate_retriever_runs` defaults to 2:
only supporting spans count as hits), so the graded ledger supports
both strict span-level and loose document-level scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from .corpus import DocqaCorpus

__all__ = ["DocqaQuery", "QrelsLedger", "generate_queries"]

#: Relevance grade of a supporting-span row.
RELEVANCE_SUPPORTING = 2
#: Relevance grade of a same-document (non-span) row.
RELEVANCE_SAME_DOC = 1


@dataclass(frozen=True)
class DocqaQuery:
    """One synthesized question.

    Attributes:
        query_id: stable identifier (dense, 0-based).
        doc_id: the document the question is about.
        words: ``(nw,)`` padded word IDs, ready for
            :meth:`~repro.core.engine.MnnFastEngine.answer`.
        supporting_rows: row IDs of the supporting span (relevance 2).
    """

    query_id: int
    doc_id: int
    words: np.ndarray
    supporting_rows: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.supporting_rows:
            raise ValueError(f"query {self.query_id} has no supporting rows")


@dataclass(frozen=True)
class QrelsLedger:
    """Graded relevance judgments: ``query_id -> {row_id: relevance}``.

    Attributes:
        judgments: the full judgment map.  Every query has at least one
            judged row; relevance grades are positive integers.
    """

    judgments: Mapping[int, Mapping[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for query_id, rows in self.judgments.items():
            if not rows:
                raise ValueError(f"query {query_id} has an empty judgment set")
            for row_id, relevance in rows.items():
                if relevance < 1:
                    raise ValueError(
                        f"relevance must be >= 1, got {relevance} for "
                        f"query {query_id} row {row_id}"
                    )

    def __len__(self) -> int:
        return len(self.judgments)

    def __iter__(self) -> Iterator[int]:
        return iter(self.judgments)

    def relevant_rows(self, query_id: int, min_relevance: int = 1) -> tuple[int, ...]:
        """Judged rows of one query at or above a relevance grade, sorted.

        Raises ``KeyError`` for unjudged queries (a missing judgment is
        a ledger bug, not an empty answer).
        """
        rows = self.judgments[query_id]
        return tuple(
            sorted(row for row, grade in rows.items() if grade >= min_relevance)
        )


def generate_queries(
    corpus: DocqaCorpus,
    num_queries: int,
    seed: int = 0,
) -> tuple[list[DocqaQuery], QrelsLedger]:
    """Synthesize questions with known supporting spans.

    Each query picks a document (cycling through the corpus so every
    document gets coverage before any repeats — the many-questions-
    per-document shape the workload generator leans on) and a uniform
    random row within it, then copies that row's word IDs as the
    question.  The supporting row is judged relevance 2; the rest of
    the document's rows relevance 1.

    The same ``(corpus, num_queries, seed)`` reproduces the queries and
    ledger exactly.

    Returns:
        ``(queries, qrels)`` — queries in ``query_id`` order.
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    rng = np.random.default_rng(seed)
    queries: list[DocqaQuery] = []
    judgments: dict[int, dict[int, int]] = {}
    for query_id in range(num_queries):
        doc_id = query_id % corpus.num_docs
        start, stop = corpus.row_range(doc_id)
        row_id = int(rng.integers(start, stop))
        queries.append(
            DocqaQuery(
                query_id=query_id,
                doc_id=doc_id,
                words=corpus.rows[row_id].copy(),
                supporting_rows=(row_id,),
            )
        )
        judgments[query_id] = {
            row: RELEVANCE_SUPPORTING if row == row_id else RELEVANCE_SAME_DOC
            for row in corpus.rows_of_doc(doc_id)
        }
    return queries, QrelsLedger(judgments=judgments)
