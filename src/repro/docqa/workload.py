"""Document-QA traffic shapes: many questions per document.

Real document-QA traffic is *session-shaped*: a reader opens a
document and asks several questions about it in a burst before moving
on.  That gives the stream two kinds of structure the serving stack
can exploit:

* **temporal clustering** — session bursts fill batches quickly
  (:func:`repro.batching.batcher.form_batches` sees tight arrival
  gaps inside a session);
* **document locality** — consecutive requests touch the same
  document's contiguous row span, i.e. the same memory chunks, which
  is exactly what the cluster tier's cache-affinity routing keys on
  (:func:`repro.cluster.workload.row_span_chunks`).

:func:`docqa_workload` generates the stream; the ``to_*`` adapters
project it onto the existing request containers — serving
(:class:`~repro.serving.requests.QuestionRequest` for
``QaServer.run_batched``) and cluster
(:class:`~repro.cluster.workload.ClusterRequest` for ``ClusterSim``).
A :class:`DocqaRequest` itself carries ``arrival``/``deadline``, so
the stream also feeds :func:`~repro.batching.batcher.form_batches`
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.workload import ClusterRequest, row_span_chunks
from ..core.numerics import PAD_ID
from ..serving.requests import QuestionRequest, Workload
from .corpus import DocqaCorpus
from .queries import DocqaQuery

__all__ = [
    "DocqaRequest",
    "docqa_workload",
    "to_serving_workload",
    "to_cluster_requests",
]


@dataclass(frozen=True)
class DocqaRequest:
    """One timed question about one document.

    Carries ``arrival`` and ``deadline``, so a stream of these plugs
    straight into :func:`~repro.batching.batcher.form_batches`.
    """

    arrival: float
    query: DocqaQuery
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")


def docqa_workload(
    queries: list[DocqaQuery],
    session_rate: float,
    questions_per_session: int = 4,
    intra_session_gap: float = 0.01,
    num_sessions: int | None = None,
    zipf_s: float = 1.1,
    deadline: float | None = None,
    seed: int = 0,
) -> list[DocqaRequest]:
    """Session-shaped request stream over synthesized queries.

    Sessions arrive as a Poisson process at ``session_rate`` per
    second; each session picks a document (Zipf-skewed popularity —
    a few hot documents dominate, the regime where affinity routing
    pays) and fires ``questions_per_session`` of that document's
    queries back-to-back with exponential gaps of mean
    ``intra_session_gap``.  Queries cycle within a document when a
    session asks for more than the document has.

    Args:
        queries: the synthesized question pool
            (:func:`~repro.docqa.queries.generate_queries`); every
            document with queries can be picked.
        session_rate: sessions per second (> 0).
        questions_per_session: questions each session asks (>= 1).
        intra_session_gap: mean seconds between a session's questions.
        num_sessions: sessions to generate (default: enough to offer
            every query once, ``ceil(len(queries) / per_session)``).
        zipf_s: document-popularity skew (0 = uniform).
        deadline: per-request latency budget (``None`` = none).
        seed: RNG seed; the same inputs reproduce the stream exactly.

    Returns:
        Requests sorted by arrival time.
    """
    if not queries:
        raise ValueError("need at least one query")
    if session_rate <= 0:
        raise ValueError(f"session_rate must be > 0, got {session_rate}")
    if questions_per_session < 1:
        raise ValueError(
            f"questions_per_session must be >= 1, got {questions_per_session}"
        )
    if intra_session_gap < 0:
        raise ValueError(
            f"intra_session_gap must be >= 0, got {intra_session_gap}"
        )
    by_doc: dict[int, list[DocqaQuery]] = {}
    for query in queries:
        by_doc.setdefault(query.doc_id, []).append(query)
    doc_ids = sorted(by_doc)
    if num_sessions is None:
        num_sessions = -(-len(queries) // questions_per_session)
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(doc_ids) + 1, dtype=float)
    weights = ranks**-zipf_s
    weights /= weights.sum()
    # Shuffle the rank->document assignment so popularity is not
    # correlated with store position.
    popularity = rng.permutation(len(doc_ids))

    requests: list[DocqaRequest] = []
    cursor = {doc_id: 0 for doc_id in doc_ids}
    time = 0.0
    for _ in range(num_sessions):
        time += rng.exponential(1.0 / session_rate)
        doc_id = doc_ids[popularity[rng.choice(len(doc_ids), p=weights)]]
        pool = by_doc[doc_id]
        t = time
        for i in range(questions_per_session):
            if i > 0 and intra_session_gap > 0:
                t += rng.exponential(intra_session_gap)
            query = pool[cursor[doc_id] % len(pool)]
            cursor[doc_id] += 1
            requests.append(
                DocqaRequest(arrival=t, query=query, deadline=deadline)
            )
    requests.sort(key=lambda r: r.arrival)
    return requests


def to_serving_workload(requests: list[DocqaRequest]) -> Workload:
    """Project a docqa stream onto the single-node serving simulator.

    Each request becomes a
    :class:`~repro.serving.requests.QuestionRequest` whose ``words``
    is the query's non-pad word count (the quantity the serving cost
    model embeds) — feed the result to
    :meth:`repro.serving.server.QaServer.run_batched`.
    """
    return Workload(
        requests=[
            QuestionRequest(
                arrival=request.arrival,
                words=max(1, int(np.count_nonzero(request.query.words != PAD_ID))),
                deadline=request.deadline,
            )
            for request in requests
        ]
    )


def to_cluster_requests(
    requests: list[DocqaRequest],
    corpus: DocqaCorpus,
    chunk_size: int,
    total_chunks: int | None = None,
    batch_size: int = 1,
) -> list[ClusterRequest]:
    """Project a docqa stream onto the cluster simulator.

    Each request's *topic* is its document, and its planned chunk set
    is the document's contiguous row span mapped onto the chunk grid
    (:func:`~repro.cluster.workload.row_span_chunks`) — so sessions
    about the same document hit the same chunks, and cache-affinity
    routing (:class:`~repro.cluster.router.CacheAffinityPolicy`) can
    keep them on the replica that already holds those chunks.
    """
    return [
        ClusterRequest(
            arrival=request.arrival,
            topic=request.query.doc_id,
            chunks=row_span_chunks(
                *corpus.row_range(request.query.doc_id),
                chunk_size=chunk_size,
                total_chunks=total_chunks,
            ),
            batch_size=batch_size,
            deadline=request.deadline,
        )
        for request in requests
    ]
