"""Document-QA workload with qrels-style retrieval evaluation.

The paper evaluates MnnFast on throughput and numerical fidelity; this
subsystem adds the *quality* axis for the approximations layered on
top (top-k retrieval, confidence-gated early exit): a document-QA
workload whose ground truth is known by construction, scored with
standard retrieval metrics.

* :mod:`repro.docqa.corpus` — chunk documents into provenance-tagged
  memory rows (``(doc_id, span)`` per row); deterministic synthetic
  corpus with planted anchor-word signal.
* :mod:`repro.docqa.queries` — synthesize questions from supporting
  spans and emit the graded qrels ledger
  (``query_id -> {row_id: relevance}``).
* :mod:`repro.docqa.evaluate` — rank each query's candidate rows by
  the final executed hop's attention, score recall@k / MRR / span-hit
  rate / attention mass against the ledger, and sweep engine configs
  (exact vs top-k vs early exit) over one shared network.
* :mod:`repro.docqa.workload` — session-shaped many-questions-per-
  document traffic, with adapters into the batching, serving, and
  cluster tiers.
"""

from .corpus import DocqaCorpus, RowProvenance, ingest_documents, synthetic_corpus
from .evaluate import (
    RetrievalEvaluation,
    RetrievalRun,
    default_docqa_configs,
    docqa_network,
    docqa_weights,
    evaluate_retriever_runs,
    run_retriever,
    sweep_docqa_configs,
)
from .queries import DocqaQuery, QrelsLedger, generate_queries
from .workload import (
    DocqaRequest,
    docqa_workload,
    to_cluster_requests,
    to_serving_workload,
)

__all__ = [
    "DocqaCorpus",
    "RowProvenance",
    "ingest_documents",
    "synthetic_corpus",
    "DocqaQuery",
    "QrelsLedger",
    "generate_queries",
    "RetrievalRun",
    "RetrievalEvaluation",
    "run_retriever",
    "evaluate_retriever_runs",
    "docqa_network",
    "docqa_weights",
    "default_docqa_configs",
    "sweep_docqa_configs",
    "DocqaRequest",
    "docqa_workload",
    "to_serving_workload",
    "to_cluster_requests",
]
