"""Score retrieval behaviour against qrels ground truth.

The engine under test is treated as a *retriever*: for each query the
rows it actually examined (recorded per hop by the top-k tier when
:attr:`~repro.core.config.TopKConfig.record_candidates` is on; every
row on exact paths) are ranked by the **final executed hop's**
attention distribution, and the ranking is scored against the qrels
ledger (:class:`~repro.docqa.queries.QrelsLedger`).

Ranking definition — the replayed hop recurrence: starting from the
embedded question ``u``, each executed hop computes the exact softmax
``p`` over that hop's candidate rows and updates ``u += p @ M_OUT``;
the final hop's ``p`` is the ranking.  The replay is self-consistent
(its own exact recurrence over the engine's recorded candidate sets
and per-query depth), so engine-side approximations reach the score
through exactly two channels: **which rows were candidates** (top-k
probing) and **how many hops ran** (confidence-gated early exit).  A
query the gate retires after hop 1 is ranked by hop 1's distribution;
a full-depth query by hop 2's — which is what makes the early-exit
span-hit comparison in ``benchmarks/bench_docqa.py`` a real
measurement rather than a tautology.

Metrics (per :func:`evaluate_retriever_runs`, qrels-style):

* ``recall_at_k`` — mean fraction of each query's relevant rows in the
  top-``k`` of the ranking;
* ``mrr`` — mean reciprocal rank of the first relevant row;
* ``span_hit_rate`` — fraction of queries with at least one relevant
  row in the top-``k``;
* ``mean_attention_mass`` — mean attention probability mass the final
  hop placed on relevant rows.

All four bind to a minimum relevance grade (default 2: supporting
spans only; 1 widens to same-document rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.config import EngineConfig, MemNNConfig
from ..core.engine import EngineWeights, MnnFastEngine
from ..core.numerics import softmax
from .corpus import DocqaCorpus
from .queries import DocqaQuery, QrelsLedger

__all__ = [
    "RetrievalRun",
    "RetrievalEvaluation",
    "run_retriever",
    "evaluate_retriever_runs",
    "docqa_network",
    "docqa_weights",
    "default_docqa_configs",
    "sweep_docqa_configs",
]


@dataclass(frozen=True)
class RetrievalRun:
    """One query's retrieval record.

    Attributes:
        query_id: the query scored.
        ranking: candidate row IDs of the final executed hop, ranked by
            attention probability (descending; ties broken by row ID).
        scores: attention probabilities aligned with ``ranking`` (the
            final hop's softmax over its candidate set — sums to 1).
        hops_run: hops the engine actually executed for this query.
        num_rows: total memory rows behind the engine.
        used_index: whether any executed hop went through the IVF
            index (``False`` on exact paths and under fallback).
    """

    query_id: int
    ranking: tuple[int, ...]
    scores: tuple[float, ...]
    hops_run: int
    num_rows: int
    used_index: bool

    @property
    def candidate_fraction(self) -> float:
        """Fraction of the memory the final hop's ranking covers."""
        return len(self.ranking) / self.num_rows if self.num_rows else 1.0


@dataclass(frozen=True)
class RetrievalEvaluation:
    """Aggregate qrels metrics over a batch of retrieval runs.

    Attributes:
        k: ranking cutoff the set metrics used.
        min_relevance: relevance grade a row needed to count as
            relevant (2 = supporting spans only).
        num_queries: runs scored.
        recall_at_k: mean per-query fraction of relevant rows ranked
            in the top ``k``.
        mrr: mean reciprocal rank of the first relevant row (0 when a
            query's ranking contains no relevant row at all).
        span_hit_rate: fraction of queries with >= 1 relevant row in
            the top ``k``.
        mean_attention_mass: mean final-hop attention mass on relevant
            rows.
        mean_hops: mean executed hops per query.
        mean_candidate_fraction: mean fraction of memory rows the
            final-hop ranking covered (1.0 on exact paths).
        runs: the per-query records the aggregates came from.
    """

    k: int
    min_relevance: int
    num_queries: int
    recall_at_k: float
    mrr: float
    span_hit_rate: float
    mean_attention_mass: float
    mean_hops: float
    mean_candidate_fraction: float
    runs: tuple[RetrievalRun, ...]


def _candidate_rows(stats, num_rows: int) -> np.ndarray:
    """The rows one hop's exact kernel examined, as sorted indices."""
    if stats is None or not stats.used_index:
        return np.arange(num_rows)
    if stats.candidates is None:
        raise ValueError(
            "the top-k tier ran without recording candidate rows; enable "
            "TopKConfig.record_candidates (with_topk(record_candidates=True)) "
            "before evaluating retrieval"
        )
    return np.asarray(stats.candidates, dtype=np.intp)


def run_retriever(
    engine: MnnFastEngine, queries: Sequence[DocqaQuery]
) -> list[RetrievalRun]:
    """Answer each query and record its final-hop retrieval ranking.

    Queries are answered **one at a time** so each run's candidate
    sets and executed depth are its own (the top-k tier probes per
    batch; a batched pass would blur per-query records).

    The engine must already hold the corpus rows
    (:meth:`~repro.core.engine.MnnFastEngine.store_story`).
    """
    m_in, m_out = engine.memories
    num_rows = int(m_in.shape[0])
    runs: list[RetrievalRun] = []
    for query in queries:
        result = engine.answer(query.words)
        tiers = result.tier_stats()
        trace = tiers["hops"]
        depth = (
            int(trace.hops_run[0]) if trace is not None else engine.config.hops
        )
        index_stats = tiers["index"]
        used_index = any(
            stats is not None and stats.used_index
            for stats in index_stats[:depth]
        )
        u, _, _ = engine.embed_question(query.words[None, :])
        ranking: tuple[int, ...] = ()
        scores: tuple[float, ...] = ()
        for hop in range(depth):
            stats = index_stats[hop] if hop < len(index_stats) else None
            candidates = _candidate_rows(stats, num_rows)
            p = softmax(u @ m_in[candidates].T)
            if hop == depth - 1:
                order = np.argsort(-p[0], kind="stable")
                ranking = tuple(int(candidates[i]) for i in order)
                scores = tuple(float(p[0, i]) for i in order)
            u = u + p @ m_out[candidates]
        runs.append(
            RetrievalRun(
                query_id=query.query_id,
                ranking=ranking,
                scores=scores,
                hops_run=depth,
                num_rows=num_rows,
                used_index=used_index,
            )
        )
    return runs


def evaluate_retriever_runs(
    runs: Sequence[RetrievalRun],
    qrels: QrelsLedger,
    k: int = 4,
    min_relevance: int = 2,
) -> RetrievalEvaluation:
    """Aggregate qrels metrics over per-query retrieval runs.

    Every run must have a judgment in the ledger with at least one row
    at ``min_relevance`` (an unjudged or judgment-free query would make
    the means vacuous, so it is an error rather than a silent skip).
    """
    if not runs:
        raise ValueError("no retrieval runs to evaluate")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    recalls: list[float] = []
    reciprocal_ranks: list[float] = []
    hits: list[float] = []
    masses: list[float] = []
    for run in runs:
        relevant = set(qrels.relevant_rows(run.query_id, min_relevance))
        if not relevant:
            raise ValueError(
                f"query {run.query_id} has no judged rows at relevance "
                f">= {min_relevance}"
            )
        top = set(run.ranking[:k])
        recalls.append(len(top & relevant) / len(relevant))
        hits.append(1.0 if top & relevant else 0.0)
        rank = next(
            (i + 1 for i, row in enumerate(run.ranking) if row in relevant),
            None,
        )
        reciprocal_ranks.append(1.0 / rank if rank is not None else 0.0)
        masses.append(
            sum(
                score
                for row, score in zip(run.ranking, run.scores)
                if row in relevant
            )
        )
    return RetrievalEvaluation(
        k=k,
        min_relevance=min_relevance,
        num_queries=len(runs),
        recall_at_k=float(np.mean(recalls)),
        mrr=float(np.mean(reciprocal_ranks)),
        span_hit_rate=float(np.mean(hits)),
        mean_attention_mass=float(np.mean(masses)),
        mean_hops=float(np.mean([run.hops_run for run in runs])),
        mean_candidate_fraction=float(
            np.mean([run.candidate_fraction for run in runs])
        ),
        runs=tuple(runs),
    )


def docqa_network(
    corpus: DocqaCorpus, embedding_dim: int = 32, hops: int = 2
) -> MemNNConfig:
    """The network shape a corpus needs (one memory row per corpus row)."""
    return MemNNConfig(
        embedding_dim=embedding_dim,
        num_sentences=corpus.num_rows,
        num_questions=1,
        vocab_size=len(corpus.vocabulary),
        max_words=corpus.max_words,
        hops=hops,
    )


def docqa_weights(
    network: MemNNConfig,
    seed: int = 7,
    scale: float = 0.35,
    out_scale: float = 0.2,
) -> EngineWeights:
    """Random weights with a damped output embedding — the
    trained-model surrogate for retrieval evaluation.

    A trained MemNN keeps its attention locked on the supporting facts
    across hops.  With *random* weights at equal scale the hop-2
    scores ``(u + o) . M_IN[r]`` are dominated by the ``o . M_IN[r]``
    term — an inner product of two independent random vectors, i.e.
    pure noise of the same magnitude as the hop-1 signal — and once
    the corpus holds ~1k rows the max over noise rows overtakes the
    supporting row, collapsing even the *exact* recall ceiling.
    Scaling the output embedding ``C`` to ``out_scale`` (below the
    input scale) keeps the hop recurrence live — ``u`` still moves,
    the early-exit gate still sees per-hop change — while the hop-1
    signal survives to the final hop, which is the regime a trained
    model operates in.  The pad row stays zero (scaling preserves it).
    """
    weights = EngineWeights.random(
        network, rng=np.random.default_rng(seed), scale=scale
    )
    weights.embedding_c *= out_scale / scale
    return weights


def default_docqa_configs(
    nprobe: int = 4,
    exit_threshold: float = 0.8,
    chunk_size: int = 256,
) -> dict[str, EngineConfig]:
    """The standard document-QA sweep: exact vs top-k vs early exit.

    All three share the MnnFast column dataflow, so the sweep isolates
    the retrieval-tier and adaptive-depth approximations.
    """
    base = EngineConfig.mnnfast(chunk_size=chunk_size)
    return {
        "exact": base,
        "topk": base.with_topk(
            nprobe=nprobe, min_rows=0, record_candidates=True
        ),
        "early_exit": base.with_early_exit(exit_threshold),
    }


def sweep_docqa_configs(
    corpus: DocqaCorpus,
    queries: Sequence[DocqaQuery],
    qrels: QrelsLedger,
    configs: Mapping[str, EngineConfig] | None = None,
    *,
    network: MemNNConfig | None = None,
    weights: EngineWeights | None = None,
    k: int = 4,
    min_relevance: int = 2,
    seed: int = 7,
) -> dict[str, RetrievalEvaluation]:
    """Run the same corpus + queries through several engine configs.

    Every config shares one network shape and one weight set (so the
    embedded memories are identical) and the comparison isolates the
    configs' retrieval/depth behaviour.  Top-k configs are forced to
    record candidate rows (the evaluator needs them).

    Args:
        corpus: the ingested document collection.
        queries: questions to score (:func:`~repro.docqa.queries.generate_queries`).
        qrels: ground-truth ledger for the queries.
        configs: name -> :class:`~repro.core.config.EngineConfig`
            (:func:`default_docqa_configs` by default).
        network: network shape (:func:`docqa_network` of the corpus by
            default).
        weights: model parameters (:func:`docqa_weights` of the
            network by default — peaked hop-1 attention, damped output
            embedding).
        k: ranking cutoff for the set metrics.
        min_relevance: relevance grade that counts as a hit.
        seed: weight seed when ``weights`` is not supplied.

    Returns:
        name -> :class:`RetrievalEvaluation`, in config order.
    """
    configs = dict(configs) if configs is not None else default_docqa_configs()
    network = network if network is not None else docqa_network(corpus)
    if network.num_sentences != corpus.num_rows:
        raise ValueError(
            f"network holds {network.num_sentences} sentences, corpus has "
            f"{corpus.num_rows} rows"
        )
    weights = (
        weights if weights is not None else docqa_weights(network, seed=seed)
    )
    evaluations: dict[str, RetrievalEvaluation] = {}
    for name, config in configs.items():
        if config.topk.enabled and not config.topk.record_candidates:
            config = config.with_topk(
                nprobe=config.topk.nprobe, record_candidates=True
            )
        engine = MnnFastEngine(network, weights=weights, engine_config=config)
        try:
            engine.store_story(corpus.rows)
            runs = run_retriever(engine, queries)
        finally:
            engine.close()
        evaluations[name] = evaluate_retriever_runs(
            runs, qrels, k=k, min_relevance=min_relevance
        )
    return evaluations
