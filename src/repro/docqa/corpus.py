"""Document ingestion: chunk documents into provenance-tagged memory rows.

The document-QA workload treats the memory network's sentence store as
a retrieval corpus: each document is tokenized
(:func:`repro.data.vocab.tokenize`), interned through a
:class:`~repro.data.vocab.Vocabulary`, and chunked into fixed-width
rows of ``max_words`` word IDs — exactly the ``(n, nw)`` layout
:meth:`~repro.core.engine.MnnFastEngine.store_story` embeds.  Every row
carries :class:`RowProvenance` back to its ``(doc_id, span)``, which is
what turns retrieval statistics (which rows did the top-k tier probe?
where did the attention mass land?) into scorable qrels judgments
(:mod:`repro.docqa.queries`, :mod:`repro.docqa.evaluate`).

A document's rows are **contiguous** in the store, in document order —
the locality that makes document-affine traffic map onto chunk-level
cache affinity in the cluster tier (:func:`repro.cluster.workload.row_span_chunks`).

Two ingestion paths:

* :func:`ingest_documents` — the general path: any iterable of raw
  text strings (or pre-tokenized word lists).
* :func:`synthetic_corpus` — a deterministic generator layering
  per-document and per-row anchor words over a Zipfian background
  stream (:class:`~repro.data.corpus.ZipfCorpus`), so queries built
  from a row's tokens have a planted, recoverable supporting span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.corpus import ZipfCorpus
from ..data.vocab import Vocabulary, tokenize

__all__ = [
    "RowProvenance",
    "DocqaCorpus",
    "ingest_documents",
    "synthetic_corpus",
]


@dataclass(frozen=True)
class RowProvenance:
    """Where one memory row came from.

    Attributes:
        row_id: the row's index in the corpus (== its row in the
            engine's memory matrices once stored).
        doc_id: index of the source document.
        span: ``[start, stop)`` token offsets within the source
            document's token stream covered by this row.
    """

    row_id: int
    doc_id: int
    span: tuple[int, int]

    def __post_init__(self) -> None:
        start, stop = self.span
        if not 0 <= start < stop:
            raise ValueError(f"span must satisfy 0 <= start < stop, got {self.span}")


@dataclass(frozen=True)
class DocqaCorpus:
    """A chunked document collection in engine-ready row form.

    Attributes:
        rows: ``(num_rows, max_words)`` padded word IDs — feed directly
            to :meth:`~repro.core.engine.MnnFastEngine.store_story`.
        provenance: one :class:`RowProvenance` per row, in row order.
        vocabulary: the (frozen) word <-> ID mapping the rows use.
        doc_row_ranges: per-document ``[start, stop)`` row ranges;
            documents occupy contiguous, ordered row blocks.
    """

    rows: np.ndarray
    provenance: tuple[RowProvenance, ...]
    vocabulary: Vocabulary
    doc_row_ranges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.rows.ndim != 2:
            raise ValueError(f"rows must be (n, nw), got shape {self.rows.shape}")
        if len(self.provenance) != len(self.rows):
            raise ValueError(
                f"{len(self.provenance)} provenance records for "
                f"{len(self.rows)} rows"
            )
        cursor = 0
        for doc_id, (start, stop) in enumerate(self.doc_row_ranges):
            if start != cursor or stop <= start:
                raise ValueError(
                    "doc_row_ranges must be contiguous, ordered, non-empty; "
                    f"doc {doc_id} has [{start}, {stop}) after row {cursor}"
                )
            cursor = stop
        if cursor != len(self.rows):
            raise ValueError(
                f"doc_row_ranges cover {cursor} rows, corpus has {len(self.rows)}"
            )
        for row_id, record in enumerate(self.provenance):
            if record.row_id != row_id:
                raise ValueError(
                    f"provenance[{row_id}] claims row_id {record.row_id}"
                )

    @property
    def num_rows(self) -> int:
        return int(self.rows.shape[0])

    @property
    def num_docs(self) -> int:
        return len(self.doc_row_ranges)

    @property
    def max_words(self) -> int:
        return int(self.rows.shape[1])

    def row_range(self, doc_id: int) -> tuple[int, int]:
        """``[start, stop)`` row indices of one document."""
        if not 0 <= doc_id < self.num_docs:
            raise IndexError(f"doc_id {doc_id} out of range [0, {self.num_docs})")
        return self.doc_row_ranges[doc_id]

    def rows_of_doc(self, doc_id: int) -> range:
        """Row indices of one document, in document order."""
        start, stop = self.row_range(doc_id)
        return range(start, stop)

    def doc_of_row(self, row_id: int) -> int:
        """The document a row came from."""
        if not 0 <= row_id < self.num_rows:
            raise IndexError(f"row_id {row_id} out of range [0, {self.num_rows})")
        return self.provenance[row_id].doc_id


def ingest_documents(
    documents: Sequence[str] | Sequence[Sequence[str]],
    max_words: int,
    vocabulary: Vocabulary | None = None,
) -> DocqaCorpus:
    """Chunk documents into ``max_words``-wide memory rows.

    Each document is tokenized (raw strings go through
    :func:`~repro.data.vocab.tokenize`; token lists are taken as-is),
    interned into the vocabulary, and split into consecutive rows of at
    most ``max_words`` word IDs (the final row of a document is padded).
    Rows are laid out document-by-document, so each document's rows are
    contiguous.

    Args:
        documents: raw text strings or pre-tokenized word lists; every
            document must produce at least one token.
        max_words: row width ``nw`` (the engine's BoW width).
        vocabulary: intern into this vocabulary (a fresh one by
            default).  The returned corpus's vocabulary is frozen.

    Returns:
        The chunked, provenance-tagged :class:`DocqaCorpus`.
    """
    if max_words < 1:
        raise ValueError(f"max_words must be >= 1, got {max_words}")
    if len(documents) == 0:
        raise ValueError("need at least one document")
    vocab = vocabulary if vocabulary is not None else Vocabulary()

    row_arrays: list[np.ndarray] = []
    provenance: list[RowProvenance] = []
    doc_ranges: list[tuple[int, int]] = []
    for doc_id, document in enumerate(documents):
        tokens = tokenize(document) if isinstance(document, str) else list(document)
        if not tokens:
            raise ValueError(f"document {doc_id} produced no tokens")
        start_row = len(row_arrays)
        for start in range(0, len(tokens), max_words):
            chunk = tokens[start : start + max_words]
            row_arrays.append(vocab.encode(chunk, width=max_words))
            provenance.append(
                RowProvenance(
                    row_id=len(provenance),
                    doc_id=doc_id,
                    span=(start, start + len(chunk)),
                )
            )
        doc_ranges.append((start_row, len(row_arrays)))
    vocab.freeze()
    return DocqaCorpus(
        rows=np.stack(row_arrays),
        provenance=tuple(provenance),
        vocabulary=vocab,
        doc_row_ranges=tuple(doc_ranges),
    )


def synthetic_corpus(
    num_docs: int = 16,
    rows_per_doc: int = 32,
    max_words: int = 8,
    background_vocab: int = 2_000,
    zipf_exponent: float = 1.0,
    seed: int = 0,
) -> DocqaCorpus:
    """A deterministic document collection with planted retrieval signal.

    Every row (one "sentence" of a document) carries three layers:

    * a **document anchor** word (``doc<d>``) shared by all of the
      document's rows — what ties same-document rows together (graded
      relevance 1 in the qrels);
    * a **fact anchor** word (``fact<d>.<r>``) unique to the row — the
      recoverable supporting-span signal (relevance 2);
    * ``max_words - 2`` **background** words drawn from a seeded
      Zipfian stream (:class:`~repro.data.corpus.ZipfCorpus`), the
      realistic word-frequency noise floor.

    The same ``seed`` reproduces the corpus byte-for-byte (rows,
    provenance, and vocabulary assignment are all derived from it).

    Args:
        num_docs: number of documents.
        rows_per_doc: rows (sentences) per document.
        max_words: row width; must be >= 3 to fit both anchors plus at
            least one background word.
        background_vocab: distinct background words.
        zipf_exponent: background word-frequency skew.
        seed: RNG seed for the background stream.
    """
    if num_docs < 1 or rows_per_doc < 1:
        raise ValueError(
            f"need num_docs >= 1 and rows_per_doc >= 1, got {num_docs}, {rows_per_doc}"
        )
    if max_words < 3:
        raise ValueError(f"max_words must be >= 3 for anchors + background, got {max_words}")
    stream = ZipfCorpus(
        vocab_size=background_vocab, exponent=zipf_exponent, seed=seed
    )
    fill = max_words - 2
    background = stream.sample(num_docs * rows_per_doc * fill)
    documents: list[list[str]] = []
    cursor = 0
    for doc_id in range(num_docs):
        tokens: list[str] = []
        for row in range(rows_per_doc):
            tokens.append(f"doc{doc_id}")
            tokens.append(f"fact{doc_id}.{row}")
            tokens.extend(f"w{int(w)}" for w in background[cursor : cursor + fill])
            cursor += fill
        documents.append(tokens)
    return ingest_documents(documents, max_words=max_words)
