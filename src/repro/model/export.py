"""Deploy a trained MemN2N into the inference engine.

Training (:mod:`repro.model`) and serving (:mod:`repro.core`) are
separate systems, as in the paper: the network is trained offline and
its weights are installed into the MnnFast inference engine.  With
adjacent tying the mapping is exact for any hop count:

* question/input embedding ``B = A_1 = E_0``,
* per-hop pairs ``A_k = E_{k-1}``, ``C_k = E_k``,
* answer matrix ``W^T = E_K``.

The only model feature the engine does not replicate is the temporal
encoding (a training-side device for ordered stories), so export
requires ``use_temporal_encoding=False``.
"""

from __future__ import annotations

from ..core.config import MemNNConfig
from ..core.engine import EngineWeights
from .memn2n import MemN2N

__all__ = ["to_engine_weights", "to_engine_config"]


def to_engine_weights(model: MemN2N) -> EngineWeights:
    """Extract :class:`EngineWeights` from a trained MemN2N.

    One-hop models export to plain layer-wise weights; multi-hop models
    export to adjacent-tied weights with one table per layer boundary.

    Raises:
        ValueError: for temporally-encoded models, whose inference the
            serving engine does not replicate.
    """
    if model.config.use_temporal_encoding:
        raise ValueError(
            "the serving engine has no temporal encoding; train with "
            "use_temporal_encoding=False to export"
        )
    if model.config.hops == 1:
        return EngineWeights(
            embedding_a=model.embeddings[0].copy(),
            embedding_c=model.embeddings[1].copy(),
            answer_weight=model.embeddings[1].copy(),  # W^T = E_K = E_1
        )
    return EngineWeights.adjacent([table.copy() for table in model.embeddings])


def to_engine_config(model: MemN2N, num_sentences: int) -> MemNNConfig:
    """Build the serving-side network shape for a trained model."""
    if num_sentences <= 0:
        raise ValueError("num_sentences must be positive")
    return MemNNConfig(
        embedding_dim=model.config.embedding_dim,
        num_sentences=num_sentences,
        vocab_size=model.config.vocab_size,
        max_words=model.config.max_words,
        hops=model.config.hops,
    )
