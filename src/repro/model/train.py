"""Training and evaluation harness for the NumPy MemN2N.

Provides what Figs. 6 and 7 need: train a model per bAbI-style task,
then measure (a) the trained attention distributions' sparsity and
(b) accuracy loss vs. computation reduction under zero-skipping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.babi import Example, build_vocabulary, generate_task, vectorize
from ..data.vocab import Vocabulary
from .memn2n import MemN2N, MemN2NConfig
from .optim import SGD, Adagrad

__all__ = ["Trainer", "TrainResult", "ZeroSkipEvaluation", "train_on_task", "train_jointly"]


@dataclass
class TrainResult:
    """Summary of one training run."""

    losses: list[float]
    train_accuracy: float
    test_accuracy: float


@dataclass
class ZeroSkipEvaluation:
    """One point of the Fig. 7 tradeoff curve."""

    threshold: float
    accuracy: float
    baseline_accuracy: float
    computation_reduction: float

    @property
    def accuracy_loss(self) -> float:
        """Relative loss in accuracy versus the exact model."""
        if self.baseline_accuracy == 0.0:
            return 0.0
        return max(0.0, 1.0 - self.accuracy / self.baseline_accuracy)


class Trainer:
    """Mini-batch trainer with the Sukhbaatar schedule."""

    def __init__(
        self,
        model: MemN2N,
        optimizer: SGD | Adagrad | None = None,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.model = model
        # Adagrad converges far faster than plain SGD on these small
        # vocabularies (its per-parameter rates handle the skewed word
        # frequencies); SGD with the Sukhbaatar schedule is available.
        self.optimizer = optimizer if optimizer is not None else Adagrad(0.1)
        self.batch_size = batch_size
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def fit(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        answers: np.ndarray,
        epochs: int = 30,
    ) -> list[float]:
        """Train; returns per-epoch mean losses."""
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        n = len(answers)
        losses = []
        for _ in range(epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                loss, grads, _ = self.model.loss_and_grads(
                    stories[idx], questions[idx], answers[idx]
                )
                self.optimizer.step(self.model.parameters(), grads)
                for table in self.model.embeddings:
                    table[0] = 0.0  # keep the pad row pinned
                epoch_loss += loss
                batches += 1
            self.optimizer.end_epoch()
            losses.append(epoch_loss / max(batches, 1))
        return losses

    def accuracy(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        answers: np.ndarray,
        skip_threshold: float = 0.0,
    ) -> float:
        predictions = self.model.predict(stories, questions, skip_threshold)
        return float((predictions == answers).mean())

    def evaluate_zero_skip(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        answers: np.ndarray,
        threshold: float,
    ) -> ZeroSkipEvaluation:
        """Measure one Fig. 7 operating point on held-out data."""
        baseline = self.accuracy(stories, questions, answers)
        state = self.model.forward(stories, questions, skip_threshold=threshold)
        predictions = np.argmax(state.logits, axis=-1)
        return ZeroSkipEvaluation(
            threshold=threshold,
            accuracy=float((predictions == answers).mean()),
            baseline_accuracy=baseline,
            computation_reduction=1.0 - state.kept_fraction,
        )


def train_on_task(
    task_id: int,
    train_examples: int = 600,
    test_examples: int = 100,
    epochs: int = 60,
    embedding_dim: int = 24,
    hops: int = 2,
    max_sentences: int = 20,
    max_words: int = 12,
    seed: int = 0,
    story_scale: float = 1.0,
) -> tuple[Trainer, dict[str, np.ndarray], Vocabulary, TrainResult]:
    """Generate a task, train a model on it, report accuracies.

    ``story_scale`` stretches story lengths toward the paper's
    50-sentence Fig. 6/7 regime (size ``max_sentences`` accordingly).

    Returns the trainer, the vectorized test split (keys ``stories``,
    ``questions``, ``answers``), the vocabulary, and the result summary.
    """
    train = generate_task(task_id, train_examples, seed=seed, story_scale=story_scale)
    test = generate_task(task_id, test_examples, seed=seed + 1, story_scale=story_scale)
    vocab = build_vocabulary(train + test)

    train_s, train_q, train_a = vectorize(train, vocab, max_words, max_sentences)
    test_s, test_q, test_a = vectorize(test, vocab, max_words, max_sentences)

    model = MemN2N(
        MemN2NConfig(
            vocab_size=len(vocab),
            embedding_dim=embedding_dim,
            hops=hops,
            max_sentences=max_sentences,
            max_words=max_words,
        ),
        rng=np.random.default_rng(seed),
    )
    trainer = Trainer(model, rng=np.random.default_rng(seed + 2))
    losses = trainer.fit(train_s, train_q, train_a, epochs=epochs)
    result = TrainResult(
        losses=losses,
        train_accuracy=trainer.accuracy(train_s, train_q, train_a),
        test_accuracy=trainer.accuracy(test_s, test_q, test_a),
    )
    test_split = {"stories": test_s, "questions": test_q, "answers": test_a}
    return trainer, test_split, vocab, result


def train_jointly(
    task_ids: tuple[int, ...] = tuple(range(1, 21)),
    examples_per_task: int = 150,
    test_examples_per_task: int = 40,
    epochs: int = 40,
    embedding_dim: int = 32,
    hops: int = 2,
    max_sentences: int = 20,
    max_words: int = 12,
    seed: int = 0,
) -> tuple[Trainer, dict[int, float], Vocabulary]:
    """Joint training over several task families with a shared model.

    The standard bAbI protocol (and the paper's Fig. 7 setting) trains
    on the union of tasks with one shared vocabulary.  Returns the
    trainer, per-task test accuracies, and the vocabulary.
    """
    if not task_ids:
        raise ValueError("need at least one task")
    train: list[Example] = []
    test_by_task: dict[int, list[Example]] = {}
    for task_id in task_ids:
        train += generate_task(task_id, examples_per_task, seed=seed)
        test_by_task[task_id] = generate_task(
            task_id, test_examples_per_task, seed=seed + 1
        )
    vocab = build_vocabulary(
        train + [e for examples in test_by_task.values() for e in examples]
    )

    rng = np.random.default_rng(seed)
    order = rng.permutation(len(train))
    train = [train[i] for i in order]
    train_s, train_q, train_a = vectorize(train, vocab, max_words, max_sentences)

    model = MemN2N(
        MemN2NConfig(
            vocab_size=len(vocab),
            embedding_dim=embedding_dim,
            hops=hops,
            max_sentences=max_sentences,
            max_words=max_words,
        ),
        rng=np.random.default_rng(seed),
    )
    trainer = Trainer(model, rng=np.random.default_rng(seed + 2))
    trainer.fit(train_s, train_q, train_a, epochs=epochs)

    accuracies = {}
    for task_id, examples in test_by_task.items():
        s, q, a = vectorize(examples, vocab, max_words, max_sentences)
        accuracies[task_id] = trainer.accuracy(s, q, a)
    return trainer, accuracies, vocab


def example_memory_usage(examples: list[Example]) -> float:
    """Mean sentences per story (sanity metric for memory sizing)."""
    if not examples:
        return 0.0
    return float(np.mean([e.num_sentences for e in examples]))
