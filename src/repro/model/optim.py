"""Optimizers and training schedule for the NumPy MemN2N.

Sukhbaatar et al.'s recipe: plain SGD with global gradient-norm
clipping at 40 and a learning rate that halves every 25 epochs;
Adagrad is provided as the common alternative for the larger joint
training runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["clip_by_global_norm", "SGD", "Adagrad"]


def clip_by_global_norm(grads: list[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm <= ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total


@dataclass
class SGD:
    """SGD with gradient clipping and step-wise LR annealing."""

    learning_rate: float = 0.01
    max_grad_norm: float = 40.0
    anneal_every: int = 25
    anneal_factor: float = 0.5
    _epoch: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 < self.anneal_factor <= 1:
            raise ValueError("anneal_factor must be in (0, 1]")

    @property
    def current_lr(self) -> float:
        halvings = self._epoch // self.anneal_every
        return self.learning_rate * (self.anneal_factor**halvings)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads length mismatch")
        clip_by_global_norm(grads, self.max_grad_norm)
        lr = self.current_lr
        for param, grad in zip(params, grads):
            param -= lr * grad
            if param.ndim == 2 and param.shape[0] > 1:
                pass  # embedding pad rows are re-pinned by the trainer

    def end_epoch(self) -> None:
        self._epoch += 1


@dataclass
class Adagrad:
    """Adagrad with gradient clipping."""

    learning_rate: float = 0.05
    max_grad_norm: float = 40.0
    epsilon: float = 1e-8
    _state: list[np.ndarray] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads length mismatch")
        clip_by_global_norm(grads, self.max_grad_norm)
        if self._state is None:
            self._state = [np.zeros_like(p) for p in params]
        for param, grad, accum in zip(params, grads, self._state):
            accum += grad * grad
            param -= self.learning_rate * grad / (np.sqrt(accum) + self.epsilon)

    def end_epoch(self) -> None:
        """Adagrad self-anneals; nothing to do."""
