"""Differentiable building blocks for the NumPy MemN2N.

Every function comes as a forward/backward pair with explicit caches —
no autograd framework, matching the repository's no-dependency rule.
Shapes use B = batch, S = memory slots, W = words/sentence, V = vocab,
D = embedding dim.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "embed_sum",
    "embed_sum_backward",
    "attention_softmax",
    "attention_softmax_backward",
    "softmax_cross_entropy",
]


def embed_sum(
    embedding: np.ndarray,
    tokens: np.ndarray,
    encoding: np.ndarray | None = None,
) -> np.ndarray:
    """Bag-of-words embedding: sum word vectors per sentence.

    Args:
        embedding: ``(V, D)`` table; row 0 is padding (kept at zero).
        tokens: ``(..., W)`` integer word IDs.
        encoding: optional ``(W, D)`` position-encoding multiplier.

    Returns:
        ``(..., D)`` summed vectors.
    """
    vectors = embedding[tokens]  # (..., W, D)
    mask = (tokens != 0)[..., None]
    vectors = vectors * mask
    if encoding is not None:
        vectors = vectors * encoding
    return vectors.sum(axis=-2)


def embed_sum_backward(
    grad_output: np.ndarray,
    grad_embedding: np.ndarray,
    tokens: np.ndarray,
    encoding: np.ndarray | None = None,
) -> None:
    """Accumulate d(loss)/d(embedding) for :func:`embed_sum` in place.

    Args:
        grad_output: ``(..., D)`` upstream gradient.
        grad_embedding: ``(V, D)`` gradient buffer to scatter into.
        tokens: the word IDs used in the forward pass.
        encoding: the same position encoding, if one was used.
    """
    width = tokens.shape[-1]
    grad_words = np.repeat(grad_output[..., None, :], width, axis=-2)  # (..., W, D)
    if encoding is not None:
        grad_words = grad_words * encoding
    mask = (tokens != 0)[..., None]
    grad_words = grad_words * mask
    np.add.at(grad_embedding, tokens.reshape(-1), grad_words.reshape(-1, grad_words.shape[-1]))
    grad_embedding[0] = 0.0  # padding row stays pinned


def attention_softmax(scores: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Masked softmax over memory slots.

    Args:
        scores: ``(B, S)`` raw attention scores.
        valid: ``(B, S)`` boolean mask of real (non-padding) slots.

    Returns:
        ``(B, S)`` probabilities; padding slots get exactly zero.
    """
    masked = np.where(valid, scores, -np.inf)
    shifted = masked - masked.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    exp = np.where(valid, exp, 0.0)
    return exp / exp.sum(axis=-1, keepdims=True)


def attention_softmax_backward(
    grad_probs: np.ndarray, probs: np.ndarray
) -> np.ndarray:
    """Jacobian-vector product of the softmax: ``p * (g - <g, p>)``.

    Padding slots have ``p = 0`` so they receive zero gradient
    automatically.
    """
    inner = (grad_probs * probs).sum(axis=-1, keepdims=True)
    return probs * (grad_probs - inner)


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean cross-entropy loss over a batch.

    Args:
        logits: ``(B, V)`` unnormalized scores.
        targets: ``(B,)`` integer class labels.

    Returns:
        ``(loss, grad_logits, probabilities)``.
    """
    batch = logits.shape[0]
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    loss = -float(log_probs[np.arange(batch), targets].mean())
    probs = np.exp(log_probs)
    grad = probs.copy()
    grad[np.arange(batch), targets] -= 1.0
    grad /= batch
    return loss, grad, probs
