"""Trainable end-to-end memory network (NumPy, manual backprop)."""

from .export import to_engine_config, to_engine_weights
from .memn2n import ForwardState, MemN2N, MemN2NConfig
from .optim import SGD, Adagrad, clip_by_global_norm
from .serialize import (
    load_engine_weights,
    load_model,
    save_engine_weights,
    save_model,
)
from .train import (
    Trainer,
    TrainResult,
    ZeroSkipEvaluation,
    train_jointly,
    train_on_task,
)

__all__ = [
    "to_engine_weights",
    "to_engine_config",
    "MemN2N",
    "MemN2NConfig",
    "ForwardState",
    "SGD",
    "Adagrad",
    "clip_by_global_norm",
    "Trainer",
    "TrainResult",
    "ZeroSkipEvaluation",
    "train_on_task",
    "train_jointly",
    "save_model",
    "load_model",
    "save_engine_weights",
    "load_engine_weights",
]
