"""End-to-end memory network (Sukhbaatar et al. 2015) in NumPy.

This is the network the paper accelerates (Fig. 2): BoW/position
encoding, input/output memory representations, multi-hop inference,
and a final linear answer layer — trained here with manual backprop so
the zero-skipping accuracy/computation tradeoff (Fig. 7) can be
measured on genuinely *trained* attention distributions.

Weight tying follows the paper's *adjacent* scheme: one embedding
table per "layer boundary" (``E_0 .. E_K`` for K hops) with
``A_k = E_{k-1}``, ``C_k = E_k``, question embedding ``B = E_0`` and
answer matrix ``W^T = E_K``.  Temporal encodings are tied the same
way.

Inference-time zero-skipping (§3.2) is available in :meth:`forward`
via ``skip_threshold``: attention entries below the threshold are
dropped from the output weighted sum without renormalization, exactly
as the MnnFast engines do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.numerics import position_encoding
from .layers import (
    attention_softmax,
    attention_softmax_backward,
    embed_sum,
    embed_sum_backward,
    softmax_cross_entropy,
)

__all__ = ["MemN2NConfig", "MemN2N", "ForwardState"]


@dataclass(frozen=True)
class MemN2NConfig:
    """Hyper-parameters of the trainable network."""

    vocab_size: int
    embedding_dim: int = 24
    hops: int = 2
    max_sentences: int = 20
    max_words: int = 12
    use_position_encoding: bool = True
    use_temporal_encoding: bool = True
    init_scale: float = 0.1

    def __post_init__(self) -> None:
        if self.vocab_size <= 1:
            raise ValueError("vocab_size must exceed the padding token")
        for name in ("embedding_dim", "hops", "max_sentences", "max_words"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass
class ForwardState:
    """Cache of one forward pass (inputs to the backward pass)."""

    stories: np.ndarray
    questions: np.ndarray
    valid: np.ndarray
    u: list[np.ndarray]
    memories: list[np.ndarray]
    outputs_mem: list[np.ndarray]
    probs: list[np.ndarray]
    logits: np.ndarray
    kept_fraction: float = 1.0


class MemN2N:
    """Trainable end-to-end memory network."""

    def __init__(self, config: MemN2NConfig, rng: np.random.Generator | None = None):
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(0)
        K, V, D, S = (
            config.hops,
            config.vocab_size,
            config.embedding_dim,
            config.max_sentences,
        )
        # Adjacent tying: E_0..E_K embedding tables, T_0..T_K temporal.
        self.embeddings = [
            rng.normal(0.0, config.init_scale, (V, D)) for _ in range(K + 1)
        ]
        for table in self.embeddings:
            table[0] = 0.0
        self.temporal = [
            rng.normal(0.0, config.init_scale, (S, D)) for _ in range(K + 1)
        ]
        self._encoding = (
            position_encoding(config.max_words, D)
            if config.use_position_encoding
            else None
        )

    # --- parameter plumbing -----------------------------------------------------

    def parameters(self) -> list[np.ndarray]:
        params = list(self.embeddings)
        if self.config.use_temporal_encoding:
            params += list(self.temporal)
        return params

    def zero_grads(self) -> list[np.ndarray]:
        return [np.zeros_like(p) for p in self.parameters()]

    # --- forward -------------------------------------------------------------------

    def forward(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        skip_threshold: float = 0.0,
    ) -> ForwardState:
        """Run the network.

        Args:
            stories: ``(B, S, W)`` padded word IDs.
            questions: ``(B, W)`` padded word IDs.
            skip_threshold: inference-time zero-skipping threshold;
                attention entries below it are dropped from the output
                weighted sum (not renormalized), as in §3.2.
        """
        stories, questions = self._check_inputs(stories, questions)
        cfg = self.config
        valid = (stories != 0).any(axis=-1)  # (B, S) real sentences

        u = [embed_sum(self.embeddings[0], questions, self._encoding)]
        memories, outputs_mem, probs = [], [], []
        kept_total, slots_total = 0, 0

        for k in range(cfg.hops):
            m = embed_sum(self.embeddings[k], stories, self._encoding)
            c = embed_sum(self.embeddings[k + 1], stories, self._encoding)
            if cfg.use_temporal_encoding:
                m = m + self.temporal[k][None, : stories.shape[1]]
                c = c + self.temporal[k + 1][None, : stories.shape[1]]
            m = m * valid[..., None]
            c = c * valid[..., None]

            scores = np.einsum("bd,bsd->bs", u[-1], m)
            p = attention_softmax(scores, valid)
            if skip_threshold > 0.0:
                keep = p >= skip_threshold
                weights = np.where(keep, p, 0.0)
                kept_total += int(np.count_nonzero(keep & valid))
                slots_total += int(np.count_nonzero(valid))
            else:
                weights = p
                kept_total += int(np.count_nonzero(valid))
                slots_total += int(np.count_nonzero(valid))
            o = np.einsum("bs,bsd->bd", weights, c)

            memories.append(m)
            outputs_mem.append(c)
            probs.append(p)
            u.append(u[-1] + o)

        logits = u[-1] @ self.embeddings[-1].T  # W^T = E_K
        return ForwardState(
            stories=stories,
            questions=questions,
            valid=valid,
            u=u,
            memories=memories,
            outputs_mem=outputs_mem,
            probs=probs,
            logits=logits,
            kept_fraction=kept_total / slots_total if slots_total else 1.0,
        )

    def predict(
        self, stories: np.ndarray, questions: np.ndarray, skip_threshold: float = 0.0
    ) -> np.ndarray:
        """Argmax answer IDs."""
        return np.argmax(self.forward(stories, questions, skip_threshold).logits, axis=-1)

    def attention(self, stories: np.ndarray, questions: np.ndarray, hop: int = 0) -> np.ndarray:
        """Attention probabilities of one hop (for Fig. 6)."""
        state = self.forward(stories, questions)
        if not 0 <= hop < len(state.probs):
            raise ValueError(f"hop must be in [0, {len(state.probs)}), got {hop}")
        return state.probs[hop]

    # --- loss + backward --------------------------------------------------------------

    def loss_and_grads(
        self,
        stories: np.ndarray,
        questions: np.ndarray,
        answers: np.ndarray,
    ) -> tuple[float, list[np.ndarray], ForwardState]:
        """Mean cross-entropy and gradients w.r.t. :meth:`parameters`."""
        state = self.forward(stories, questions)
        loss, grad_logits, _ = softmax_cross_entropy(state.logits, answers)

        cfg = self.config
        K = cfg.hops
        grad_emb = [np.zeros_like(e) for e in self.embeddings]
        grad_temp = [np.zeros_like(t) for t in self.temporal]

        # logits = u_K @ E_K^T
        grad_emb[K] += grad_logits.T @ state.u[-1]
        grad_u = grad_logits @ self.embeddings[K]

        for k in reversed(range(K)):
            m, c, p = state.memories[k], state.outputs_mem[k], state.probs[k]
            # u_{k+1} = u_k + o_k with o_k = p @ c.
            grad_o = grad_u
            grad_p = np.einsum("bd,bsd->bs", grad_o, c)
            grad_c = p[..., None] * grad_o[:, None, :]
            grad_scores = attention_softmax_backward(grad_p, p)
            grad_u_scores = np.einsum("bs,bsd->bd", grad_scores, m)
            grad_m = grad_scores[..., None] * state.u[k][:, None, :]

            grad_m = grad_m * state.valid[..., None]
            grad_c = grad_c * state.valid[..., None]
            if cfg.use_temporal_encoding:
                grad_temp[k][: grad_m.shape[1]] += grad_m.sum(axis=0)
                grad_temp[k + 1][: grad_c.shape[1]] += grad_c.sum(axis=0)
            embed_sum_backward(grad_m, grad_emb[k], state.stories, self._encoding)
            embed_sum_backward(grad_c, grad_emb[k + 1], state.stories, self._encoding)

            grad_u = grad_u + grad_u_scores

        embed_sum_backward(grad_u, grad_emb[0], state.questions, self._encoding)

        grads = grad_emb + (grad_temp if cfg.use_temporal_encoding else [])
        return loss, grads, state

    # --- helpers ------------------------------------------------------------------------

    def _check_inputs(
        self, stories: np.ndarray, questions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        stories = np.asarray(stories)
        questions = np.asarray(questions)
        cfg = self.config
        if stories.ndim != 3:
            raise ValueError(f"stories must be (B, S, W), got {stories.shape}")
        if questions.ndim != 2:
            raise ValueError(f"questions must be (B, W), got {questions.shape}")
        if stories.shape[0] != questions.shape[0]:
            raise ValueError("stories and questions batch sizes differ")
        if stories.shape[1] > cfg.max_sentences:
            raise ValueError(
                f"{stories.shape[1]} sentences exceed max_sentences={cfg.max_sentences}"
            )
        if stories.shape[2] != cfg.max_words or questions.shape[1] != cfg.max_words:
            raise ValueError(f"word dimension must be max_words={cfg.max_words}")
        if stories.max(initial=0) >= cfg.vocab_size or stories.min(initial=0) < 0:
            raise ValueError("story word IDs out of vocabulary range")
        return stories, questions
