"""Save and load trained models and engine weights (.npz).

Training a MemN2N takes minutes; serving it should not require
retraining.  Models round-trip through a single ``.npz`` archive
holding the config fields and every parameter table; engine weights
(including adjacent-tied hop tables) round-trip the same way.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.engine import EngineWeights
from .memn2n import MemN2N, MemN2NConfig

__all__ = ["save_model", "load_model", "save_engine_weights", "load_engine_weights"]

_CONFIG_FIELDS = (
    "vocab_size",
    "embedding_dim",
    "hops",
    "max_sentences",
    "max_words",
    "use_position_encoding",
    "use_temporal_encoding",
    "init_scale",
)


def save_model(model: MemN2N, path: str | Path) -> None:
    """Write a model (config + parameters) to an ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {}
    for name in _CONFIG_FIELDS:
        arrays[f"config/{name}"] = np.asarray(getattr(model.config, name))
    for index, table in enumerate(model.embeddings):
        arrays[f"embedding/{index}"] = table
    for index, table in enumerate(model.temporal):
        arrays[f"temporal/{index}"] = table
    np.savez(Path(path), **arrays)


def load_model(path: str | Path) -> MemN2N:
    """Restore a model saved with :func:`save_model`."""
    with np.load(Path(path)) as archive:
        kwargs = {}
        for name in _CONFIG_FIELDS:
            key = f"config/{name}"
            if key not in archive:
                raise ValueError(f"not a saved MemN2N: missing {key!r}")
            value = archive[key].item()
            kwargs[name] = (
                bool(value) if name.startswith("use_")
                else float(value) if name == "init_scale"
                else int(value)
            )
        config = MemN2NConfig(**kwargs)
        model = MemN2N(config)
        for index in range(config.hops + 1):
            model.embeddings[index][...] = archive[f"embedding/{index}"]
            model.temporal[index][...] = archive[f"temporal/{index}"]
    return model


def save_engine_weights(weights: EngineWeights, path: str | Path) -> None:
    """Write engine weights (layer-wise or adjacent) to ``.npz``."""
    arrays = {
        "embedding_a": weights.embedding_a,
        "embedding_c": weights.embedding_c,
        "answer_weight": weights.answer_weight,
    }
    if weights.hop_tables is not None:
        for index, table in enumerate(weights.hop_tables):
            arrays[f"hop/{index}"] = table
    np.savez(Path(path), **arrays)


def load_engine_weights(path: str | Path) -> EngineWeights:
    """Restore weights saved with :func:`save_engine_weights`."""
    with np.load(Path(path)) as archive:
        if "embedding_a" not in archive:
            raise ValueError("not a saved EngineWeights archive")
        hop_keys = sorted(
            (key for key in archive.files if key.startswith("hop/")),
            key=lambda key: int(key.split("/")[1]),
        )
        if hop_keys:
            return EngineWeights.adjacent([archive[key] for key in hop_keys])
        return EngineWeights(
            embedding_a=archive["embedding_a"],
            embedding_c=archive["embedding_c"],
            answer_weight=archive["answer_weight"],
        )
