"""A stride prefetcher model.

The paper's streaming optimization is *software* prefetching: the
column-based algorithm knows exactly which chunk it needs next.  Real
Xeons also ship a *hardware* stride prefetcher that detects sequential
streams on its own; this model lets the ablation benches quantify how
much of the streaming benefit generic hardware prefetching already
captures on CPUs (and, by omission, why the FPGA/GPU designs need the
explicit double-buffering — they have no such prefetcher).

The detector is the classic reference-prediction table: accesses are
grouped into regions; when a region exhibits a stable line stride, the
prefetcher issues ``degree`` prefetches ``distance`` strides ahead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["StridePrefetcher", "PrefetcherStats"]

#: Region granularity: streams are tracked per 4 KB page, like the
#: hardware's DCU/stream prefetchers.
_REGION_LINES = 64


@dataclass
class PrefetcherStats:
    observations: int = 0
    issued: int = 0
    streams_detected: int = 0


class _RegionState:
    __slots__ = ("last_line", "stride", "confidence")

    def __init__(self, line: int) -> None:
        self.last_line = line
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Reference-prediction-table stride prefetcher.

    Args:
        degree: lines prefetched per trigger.
        distance: how many strides ahead the prefetches land.
        table_size: tracked regions (LRU-replaced).
        trigger_confidence: consecutive same-stride accesses required
            before prefetching starts.
    """

    def __init__(
        self,
        degree: int = 4,
        distance: int = 2,
        table_size: int = 64,
        trigger_confidence: int = 2,
    ) -> None:
        if degree <= 0 or distance <= 0 or table_size <= 0:
            raise ValueError("degree, distance and table_size must be positive")
        if trigger_confidence < 1:
            raise ValueError("trigger_confidence must be at least 1")
        self.degree = degree
        self.distance = distance
        self.table_size = table_size
        self.trigger_confidence = trigger_confidence
        self.stats = PrefetcherStats()
        self._table: OrderedDict[int, _RegionState] = OrderedDict()

    def observe(self, line: int) -> list[int]:
        """Feed one demand line; returns the lines to prefetch now."""
        self.stats.observations += 1
        region = line // _REGION_LINES
        state = self._table.get(region)
        if state is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[region] = _RegionState(line)
            return []
        self._table.move_to_end(region)

        stride = line - state.last_line
        if stride == 0:
            return []
        if stride == state.stride:
            state.confidence += 1
        else:
            if state.stride != 0 and state.confidence >= self.trigger_confidence:
                pass  # stream ended; a new one may begin
            state.stride = stride
            state.confidence = 1
        state.last_line = line

        if state.confidence < self.trigger_confidence:
            return []
        if state.confidence == self.trigger_confidence:
            self.stats.streams_detected += 1
        base = line + state.stride * self.distance
        prefetches = [base + state.stride * i for i in range(self.degree)]
        prefetches = [p for p in prefetches if p >= 0]
        self.stats.issued += len(prefetches)
        return prefetches
