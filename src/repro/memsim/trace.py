"""Memory-access trace generators for the MemNN dataflows.

These generators reproduce, access by access, the traffic patterns the
paper analyzes: the baseline's inter-layer intermediate spills
(Fig. 5a), the column-based algorithm's chunk-resident buffers
(Fig. 5b), the streaming prefetch of upcoming chunks, and the embedding
operation's scattered dictionary lookups.

Addresses follow a flat :class:`MemoryLayout`; sequential passes over
large regions are emitted as block accesses (the hierarchy splits them
into cache lines), which keeps traces tractable at interesting scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.config import FLOAT_BYTES, ChunkConfig, MemNNConfig
from .hierarchy import Access, Prefetch

__all__ = [
    "MemoryLayout",
    "baseline_inference_trace",
    "column_inference_trace",
    "embedding_trace",
    "interleave",
]

#: Block size for sequential passes over large regions.
_PASS_BLOCK = 1024


def _blocks(base: int, num_bytes: int) -> Iterator[tuple[int, int]]:
    """Split a region into (address, size) blocks of ``_PASS_BLOCK``."""
    offset = 0
    while offset < num_bytes:
        size = min(_PASS_BLOCK, num_bytes - offset)
        yield base + offset, size
        offset += size


@dataclass(frozen=True)
class MemoryLayout:
    """Flat address map for one MemNN instance.

    Regions in order: ``M_IN``, ``M_OUT``, three full intermediates
    (used by the baseline), two chunk-sized buffers (used by the
    column-based algorithm), the embedding dictionary, and the output.
    """

    config: MemNNConfig
    chunk_size: int = 1000

    @property
    def row_bytes(self) -> int:
        return self.config.embedding_dim * FLOAT_BYTES

    @property
    def m_in_base(self) -> int:
        return 0

    @property
    def m_out_base(self) -> int:
        return self.m_in_base + self.config.memory_bytes

    @property
    def intermediate_base(self) -> int:
        return self.m_out_base + self.config.memory_bytes

    @property
    def chunk_buffer_base(self) -> int:
        return self.intermediate_base + 3 * self.config.intermediate_bytes

    @property
    def chunk_buffer_bytes(self) -> int:
        return self.chunk_size * self.config.num_questions * FLOAT_BYTES

    @property
    def embedding_base(self) -> int:
        return self.chunk_buffer_base + 2 * self.chunk_buffer_bytes

    @property
    def output_base(self) -> int:
        return self.embedding_base + self.config.embedding_matrix_bytes

    def m_in_row(self, i: int) -> int:
        return self.m_in_base + i * self.row_bytes

    def m_out_row(self, i: int) -> int:
        return self.m_out_base + i * self.row_bytes

    def intermediate(self, which: int) -> int:
        """Base of full intermediate #``which`` (0=T_IN, 1=P_exp, 2=P)."""
        if which not in (0, 1, 2):
            raise ValueError(f"which must be 0, 1 or 2, got {which}")
        return self.intermediate_base + which * self.config.intermediate_bytes

    def chunk_buffer(self, which: int) -> int:
        """Base of reused chunk buffer #``which`` (0=scores, 1=exp)."""
        if which not in (0, 1):
            raise ValueError(f"which must be 0 or 1, got {which}")
        return self.chunk_buffer_base + which * self.chunk_buffer_bytes

    def embedding_row(self, word_id: int) -> int:
        return self.embedding_base + word_id * self.row_bytes


def baseline_inference_trace(
    layout: MemoryLayout, stream: str = "inference"
) -> Iterator[Access]:
    """The baseline dataflow of Fig. 5(a), as memory traffic.

    Step 1 (inner product): stream M_IN row by row, write T_IN.
    Step 2 (softmax): two read+write passes over the full
    intermediates (exp into P_exp, normalize into P).
    Step 3 (weighted sum): read P, stream M_OUT, write the output.
    """
    cfg = layout.config
    inter_bytes = cfg.intermediate_bytes
    col_bytes = cfg.num_questions * FLOAT_BYTES  # one T column (all questions)

    # Inner product: read each M_IN row once, write the score column.
    for i in range(cfg.num_sentences):
        yield Access(layout.m_in_row(i), layout.row_bytes, stream=stream)
        yield Access(
            layout.intermediate(0) + i * col_bytes, col_bytes, write=True,
            stream=stream,
        )
    # Softmax pass 1: read T_IN, write P_exp.
    for addr, size in _blocks(layout.intermediate(0), inter_bytes):
        yield Access(addr, size, stream=stream)
    for addr, size in _blocks(layout.intermediate(1), inter_bytes):
        yield Access(addr, size, write=True, stream=stream)
    # Softmax pass 2: read P_exp (sum + normalize), write P.
    for addr, size in _blocks(layout.intermediate(1), inter_bytes):
        yield Access(addr, size, stream=stream)
    for addr, size in _blocks(layout.intermediate(2), inter_bytes):
        yield Access(addr, size, write=True, stream=stream)
    # Weighted sum: read P column + M_OUT row per sentence.
    for i in range(cfg.num_sentences):
        yield Access(
            layout.intermediate(2) + i * col_bytes, col_bytes, stream=stream
        )
        yield Access(layout.m_out_row(i), layout.row_bytes, stream=stream)
    yield Access(
        layout.output_base,
        cfg.num_questions * cfg.embedding_dim * FLOAT_BYTES,
        write=True,
        stream=stream,
    )


def column_inference_trace(
    layout: MemoryLayout,
    chunk: ChunkConfig,
    stream: str = "inference",
) -> Iterator[Access | Prefetch]:
    """The column-based dataflow of Fig. 5(b), as memory traffic.

    Per chunk: stream the chunk's M_IN rows, write scores into a small
    *reused* buffer, exp/accumulate through the second buffer, then
    stream the chunk's M_OUT rows for the weighted sum.  With
    ``chunk.streaming`` the next chunk's memory rows are prefetched
    while the current chunk computes, so demand reads hit in the LLC.
    """
    cfg = layout.config
    c = chunk.chunk_size
    buf_bytes = c * cfg.num_questions * FLOAT_BYTES

    starts = list(range(0, cfg.num_sentences, c))
    for index, start in enumerate(starts):
        rows = min(c, cfg.num_sentences - start)
        chunk_bytes = rows * layout.row_bytes

        if chunk.streaming and index + 1 < len(starts):
            nxt = starts[index + 1]
            nxt_rows = min(c, cfg.num_sentences - nxt)
            yield Prefetch(
                layout.m_in_row(nxt), nxt_rows * layout.row_bytes, stream=stream
            )
            yield Prefetch(
                layout.m_out_row(nxt), nxt_rows * layout.row_bytes, stream=stream
            )
        if chunk.streaming and index == 0:
            # The first chunk is prefetched before the loop begins.
            yield Prefetch(layout.m_in_row(start), chunk_bytes, stream=stream)
            yield Prefetch(layout.m_out_row(start), chunk_bytes, stream=stream)

        # Inner product over the chunk.
        yield Access(layout.m_in_row(start), chunk_bytes, stream=stream)
        used_buf = min(buf_bytes, rows * cfg.num_questions * FLOAT_BYTES)
        yield Access(layout.chunk_buffer(0), used_buf, write=True, stream=stream)
        # Partial softmax: read scores, write exponentials.
        yield Access(layout.chunk_buffer(0), used_buf, stream=stream)
        yield Access(layout.chunk_buffer(1), used_buf, write=True, stream=stream)
        # Weighted sum: read exponentials + the chunk's M_OUT rows.
        yield Access(layout.chunk_buffer(1), used_buf, stream=stream)
        yield Access(layout.m_out_row(start), chunk_bytes, stream=stream)

    # Lazy softmax + output store (nq x ed, tiny).
    yield Access(
        layout.output_base,
        cfg.num_questions * cfg.embedding_dim * FLOAT_BYTES,
        write=True,
        stream=stream,
    )


def embedding_trace(
    layout: MemoryLayout,
    word_ids: Sequence[int] | Iterable[int],
    stream: str = "embedding",
    bypass: bool = False,
) -> Iterator[Access]:
    """Embedding-operation traffic: one dictionary row per word.

    ``bypass=True`` models the non-temporal-instruction alternative of
    §3.3 — lookups go straight to DRAM without polluting the LLC.
    """
    for word_id in word_ids:
        yield Access(
            layout.embedding_row(int(word_id)),
            layout.row_bytes,
            stream=stream,
            bypass=bypass,
        )


def interleave(*traces: Iterable, granularity: int = 8) -> Iterator:
    """Round-robin interleave traces, ``granularity`` items at a time.

    Models simultaneously-executing threads sharing the LLC (the
    multi-tenant setting of §2.2.3).  Exhausted traces drop out.
    """
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    iterators = [iter(t) for t in traces]
    while iterators:
        still_alive = []
        for it in iterators:
            alive = True
            for _ in range(granularity):
                try:
                    yield next(it)
                except StopIteration:
                    alive = False
                    break
            if alive:
                still_alive.append(it)
        iterators = still_alive
