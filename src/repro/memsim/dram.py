"""Off-chip DRAM bandwidth/latency model.

The paper's CPU testbed uses DDR4-2400 with a variable number of
channels (Figs. 3 and 10 sweep 2/4/8 channels); the FPGA uses a 32-bit
DDR3 interface at 533 MHz (§5.1).  Both are captured by the same
channel-count x per-channel-bandwidth model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramModel", "DDR4_2400_CHANNEL_BW", "FPGA_DDR3_BW"]

#: One DDR4-2400 channel: 2400 MT/s x 8 bytes = 19.2 GB/s.
DDR4_2400_CHANNEL_BW = 19.2e9

#: The ZedBoard's DDR3 interface: 533 MT/s x 4 bytes ~= 2.13 GB/s (§5.1,
#: "DDR3 memory operating at 533MHz ... 32-bit effective width").
FPGA_DDR3_BW = 533e6 * 4


@dataclass(frozen=True)
class DramModel:
    """Multi-channel DRAM with a fixed access latency.

    Attributes:
        channels: number of memory channels.
        channel_bandwidth: bytes/second per channel.
        access_latency: seconds for an idle-bank random access.
    """

    channels: int = 4
    channel_bandwidth: float = DDR4_2400_CHANNEL_BW
    access_latency: float = 80e-9

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError(f"channels must be positive, got {self.channels}")
        if self.channel_bandwidth <= 0:
            raise ValueError("channel_bandwidth must be positive")
        if self.access_latency < 0:
            raise ValueError("access_latency must be non-negative")

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate bytes/second across all channels."""
        return self.channels * self.channel_bandwidth

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to stream ``num_bytes`` at peak aggregate bandwidth."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.peak_bandwidth

    def loaded_transfer_time(self, num_bytes: float, demand_fraction: float) -> float:
        """Seconds to stream ``num_bytes`` when this requester is entitled
        to only ``demand_fraction`` of the aggregate bandwidth (other
        co-runners consume the rest — the §2.2.3 contention setting)."""
        if not 0.0 < demand_fraction <= 1.0:
            raise ValueError(
                f"demand_fraction must be in (0, 1], got {demand_fraction}"
            )
        return num_bytes / (self.peak_bandwidth * demand_fraction)

    def random_access_time(self, accesses: int, bytes_per_access: float) -> float:
        """Seconds for latency-bound access patterns (embedding lookups):
        each access pays the latency, pipelined across channels, plus
        its transfer time."""
        if accesses < 0:
            raise ValueError("accesses must be non-negative")
        latency = accesses * self.access_latency / self.channels
        return latency + self.transfer_time(accesses * bytes_per_access)
