"""LLC + DRAM composition with per-stream accounting.

Feeds the cache-contention experiment (Fig. 4) and the off-chip access
counts (Fig. 11): traces carry a *stream* tag (``"inference"``,
``"embedding"``, ...) so the hierarchy can report which operation
caused which misses — exactly the separation MnnFast's embedding cache
enforces in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .block import lines_touched
from .cache import SetAssociativeCache
from .dram import DramModel
from .prefetcher import StridePrefetcher

__all__ = ["Access", "Prefetch", "MemoryHierarchy", "StreamSummary"]


@dataclass(frozen=True)
class Access:
    """One demand access in a trace."""

    address: int
    size: int
    write: bool = False
    stream: str = "inference"
    bypass: bool = False


@dataclass(frozen=True)
class Prefetch:
    """A software-prefetch directive (streaming optimization, §3.1)."""

    address: int
    size: int
    stream: str = "inference"


@dataclass
class StreamSummary:
    """Per-stream traffic summary after running a trace."""

    accesses: int = 0
    hits: int = 0
    demand_misses: int = 0
    writebacks: int = 0
    bypassed_lines: int = 0
    prefetch_fills: int = 0
    dram_bytes: int = 0

    @property
    def offchip_accesses(self) -> int:
        """Off-chip transactions as a hardware counter would see them:
        demand misses plus writebacks plus bypassed lines."""
        return self.demand_misses + self.writebacks + self.bypassed_lines

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class MemoryHierarchy:
    """A shared LLC in front of a DRAM model.

    An optional hardware :class:`StridePrefetcher` observes every
    demand line and fills detected streams ahead of use (its fills are
    charged as prefetch traffic, like the software streaming path).
    """

    def __init__(
        self,
        llc: SetAssociativeCache,
        dram: DramModel,
        prefetcher: StridePrefetcher | None = None,
    ) -> None:
        self.llc = llc
        self.dram = dram
        self.prefetcher = prefetcher
        self._streams: dict[str, StreamSummary] = {}

    def stream(self, name: str) -> StreamSummary:
        if name not in self._streams:
            self._streams[name] = StreamSummary()
        return self._streams[name]

    @property
    def streams(self) -> dict[str, StreamSummary]:
        return dict(self._streams)

    def access(self, item: Access) -> None:
        if self.prefetcher is not None and not item.bypass:
            outcome = self._access_with_prefetcher(item)
        else:
            outcome = self.llc.access(
                item.address,
                item.size,
                write=item.write,
                stream=item.stream,
                bypass=item.bypass,
            )
        summary = self.stream(item.stream)
        summary.accesses += 1
        summary.hits += outcome.hits
        summary.demand_misses += outcome.misses
        summary.writebacks += outcome.writebacks
        summary.bypassed_lines += outcome.bypassed
        summary.dram_bytes += outcome.dram_lines * self.llc.line_bytes

    def _access_with_prefetcher(self, item: Access):
        """Demand the access line by line, letting the hardware
        prefetcher run ahead of the stream: each observed line may pull
        upcoming lines in before they are demanded (which is exactly
        how a stride prefetcher hides a long sequential burst)."""
        from .cache import AccessOutcome

        outcome = AccessOutcome()
        summary = self.stream(item.stream)
        for line in lines_touched(item.address, item.size, self.llc.line_bytes):
            for target in self.prefetcher.observe(line):
                fills = self.llc.prefetch(
                    target * self.llc.line_bytes,
                    self.llc.line_bytes,
                    stream=item.stream,
                )
                summary.prefetch_fills += fills
                summary.dram_bytes += fills * self.llc.line_bytes
            line_outcome = self.llc.access(
                line * self.llc.line_bytes,
                self.llc.line_bytes,
                write=item.write,
                stream=item.stream,
            )
            outcome.hits += line_outcome.hits
            outcome.misses += line_outcome.misses
            outcome.writebacks += line_outcome.writebacks
        return outcome

    def prefetch(self, item: Prefetch) -> None:
        fills = self.llc.prefetch(item.address, item.size, stream=item.stream)
        summary = self.stream(item.stream)
        summary.prefetch_fills += fills
        # Prefetch traffic still crosses the pins, but does not count as
        # a demand (off-chip) access in the Fig. 11 sense.
        summary.dram_bytes += fills * self.llc.line_bytes

    def run_trace(self, trace: Iterable[Access | Prefetch]) -> dict[str, StreamSummary]:
        """Run a full trace; returns the per-stream summaries."""
        for item in trace:
            if isinstance(item, Prefetch):
                self.prefetch(item)
            elif isinstance(item, Access):
                self.access(item)
            else:
                raise TypeError(f"trace items must be Access/Prefetch, got {item!r}")
        return self.streams

    def total(self) -> StreamSummary:
        """Aggregate summary across all streams."""
        total = StreamSummary()
        for summary in self._streams.values():
            total.accesses += summary.accesses
            total.hits += summary.hits
            total.demand_misses += summary.demand_misses
            total.writebacks += summary.writebacks
            total.bypassed_lines += summary.bypassed_lines
            total.prefetch_fills += summary.prefetch_fills
            total.dram_bytes += summary.dram_bytes
        return total

    def amat(self, stream: str, hit_time: float = 10e-9) -> float:
        """Average memory access time for a stream (per line access)."""
        summary = self.stream(stream)
        line_ops = summary.hits + summary.demand_misses + summary.bypassed_lines
        if line_ops == 0:
            return hit_time
        miss_ops = summary.demand_misses + summary.bypassed_lines
        miss_ratio = miss_ops / line_ops
        return hit_time + miss_ratio * self.dram.access_latency
