"""The dedicated embedding cache of §3.3 / §4.2.

A small cache keyed by *word ID* (not by address) whose word size is a
full embedding vector: each entry holds a valid bit, the word-ID tag,
and ``32 * ed`` bits of state vector.  The paper implements it
direct-mapped on the FPGA; a set-associative variant is provided for
the geometry ablation in DESIGN.md §5.

The cache is *functional*: it can store the actual vectors (so the
engine's cached path provably returns bit-identical embeddings) while
simultaneously producing the hit/miss statistics the performance models
consume.  It implements the unified :class:`repro.core.cache.VectorCache`
protocol (``lookup``/``insert``); for pure trace simulation (Fig. 14)
:meth:`probe` skips the vector payload (the pre-unification ``touch``
spelling has been removed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.config import EmbeddingCacheConfig

__all__ = ["EmbeddingCache", "EmbeddingCacheStats"]


@dataclass
class EmbeddingCacheStats:
    hits: int = 0
    misses: int = 0
    conflict_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class EmbeddingCache:
    """Word-ID-keyed embedding-vector cache.

    Args:
        config: capacity / embedding-dimension geometry.
        associativity: 1 (paper's direct-mapped design) or higher for
            the ablation; must divide the entry count.
    """

    def __init__(
        self, config: EmbeddingCacheConfig, associativity: int = 1
    ) -> None:
        if associativity <= 0 or config.num_entries % associativity != 0:
            raise ValueError(
                f"associativity {associativity} must divide "
                f"{config.num_entries} entries"
            )
        self.config = config
        self.associativity = associativity
        self.num_sets = config.num_entries // associativity
        self.stats = EmbeddingCacheStats()
        # set index -> OrderedDict word_id -> vector (or None), LRU order.
        self._sets: list[OrderedDict[int, np.ndarray | None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    @property
    def num_entries(self) -> int:
        return self.config.num_entries

    # --- functional interface (engine VectorCache protocol) ---------------------

    def lookup(self, word_id: int) -> np.ndarray | None:
        """Return the cached vector for ``word_id`` or None on miss."""
        cache_set = self._set_for(word_id)
        if word_id in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(word_id)
            return cache_set[word_id]
        self.stats.misses += 1
        return None

    def insert(self, word_id: int, vector: np.ndarray | None = None) -> None:
        """Install a vector, evicting the set's LRU entry on conflict."""
        if vector is not None:
            vector = np.asarray(vector)
            if vector.shape != (self.config.embedding_dim,):
                raise ValueError(
                    f"vector must have shape ({self.config.embedding_dim},), "
                    f"got {vector.shape}"
                )
        cache_set = self._set_for(word_id)
        if word_id not in cache_set and len(cache_set) >= self.associativity:
            cache_set.popitem(last=False)
            self.stats.conflict_evictions += 1
        cache_set[word_id] = vector
        cache_set.move_to_end(word_id)

    # --- trace interface ---------------------------------------------------------

    def probe(self, word_id: int) -> bool:
        """Trace-mode access: probe and fill, return True on hit.

        Unlike the :class:`~repro.core.cache.TraceCacheMixin` default,
        this is implemented natively: trace entries are tag-only
        (``None`` payload), which a ``lookup``-based probe could not
        distinguish from a miss.
        """
        cache_set = self._set_for(word_id)
        if word_id in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(word_id)
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.associativity:
            cache_set.popitem(last=False)
            self.stats.conflict_evictions += 1
        cache_set[word_id] = None
        return False

    def simulate_stream(self, word_ids: Iterable[int]) -> EmbeddingCacheStats:
        """Run a whole word-ID stream; returns the cumulative stats."""
        for word_id in word_ids:
            self.probe(int(word_id))
        return self.stats

    def reset(self) -> None:
        """Invalidate all entries and clear statistics."""
        for cache_set in self._sets:
            cache_set.clear()
        self.stats = EmbeddingCacheStats()

    # --- internals ----------------------------------------------------------------

    def _set_for(self, word_id: int) -> OrderedDict:
        if word_id < 0:
            raise ValueError(f"word_id must be non-negative, got {word_id}")
        return self._sets[word_id % self.num_sets]
