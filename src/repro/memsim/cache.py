"""A trace-driven set-associative cache model.

Models the shared last-level cache whose contention the paper analyzes
in §2.2.3 and whose miss behaviour drives Figs. 4 and 11.  Write-back,
write-allocate, with LRU or FIFO replacement, plus a *bypass* access
path modelling non-temporal instructions (§3.3's cache-bypassing
alternative): bypassed accesses go straight to DRAM and never allocate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .block import is_power_of_two, lines_touched, set_index_and_tag

__all__ = ["AccessOutcome", "CacheStats", "SetAssociativeCache"]


@dataclass
class AccessOutcome:
    """Line-level result of a single (possibly multi-line) access."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    bypassed: int = 0

    @property
    def dram_lines(self) -> int:
        """Lines that had to travel to/from DRAM for this access."""
        return self.misses + self.writebacks + self.bypassed


@dataclass
class CacheStats:
    """Cumulative statistics, optionally partitioned by stream tag."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    bypassed: int = 0
    prefetch_fills: int = 0
    prefetched_hits: int = 0
    by_stream: dict = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0

    def _stream(self, stream: str) -> "CacheStats":
        if stream not in self.by_stream:
            self.by_stream[stream] = CacheStats()
        return self.by_stream[stream]


class _Line:
    """Resident line state (dirty + prefetched provenance)."""

    __slots__ = ("dirty", "prefetched")

    def __init__(self, dirty: bool = False, prefetched: bool = False) -> None:
        self.dirty = dirty
        self.prefetched = prefetched


class SetAssociativeCache:
    """Set-associative, write-back, write-allocate cache.

    Args:
        size_bytes: total capacity (power of two).
        line_bytes: cache-line size (power of two, default 64).
        associativity: ways per set; must divide the line count.
        policy: ``"lru"`` or ``"fifo"``.
    """

    _POLICIES = ("lru", "fifo")

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 64,
        associativity: int = 8,
        policy: str = "lru",
    ) -> None:
        if not is_power_of_two(size_bytes) or not is_power_of_two(line_bytes):
            raise ValueError("size_bytes and line_bytes must be powers of two")
        if size_bytes < line_bytes:
            raise ValueError("cache smaller than one line")
        num_lines = size_bytes // line_bytes
        if associativity <= 0 or num_lines % associativity != 0:
            raise ValueError(
                f"associativity {associativity} must divide line count {num_lines}"
            )
        if policy not in self._POLICIES:
            raise ValueError(f"policy must be one of {self._POLICIES}, got {policy!r}")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        self.policy = policy
        self.stats = CacheStats()
        # One OrderedDict per set: tag -> _Line, insertion order = age.
        self._sets: list[OrderedDict[int, _Line]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    # --- public API -----------------------------------------------------------

    def access(
        self,
        address: int,
        size: int = 1,
        write: bool = False,
        stream: str = "default",
        bypass: bool = False,
    ) -> AccessOutcome:
        """Perform a demand access; returns its line-level outcome.

        ``bypass=True`` models non-temporal loads/stores: the access
        neither probes nor allocates; every touched line is charged
        straight to DRAM.
        """
        outcome = AccessOutcome()
        per_stream = self.stats._stream(stream)
        for line in lines_touched(address, size, self.line_bytes):
            if bypass:
                outcome.bypassed += 1
                self.stats.bypassed += 1
                per_stream.bypassed += 1
                continue
            hit, writeback, was_prefetched = self._touch(line, write, demand=True)
            if hit:
                outcome.hits += 1
                self.stats.hits += 1
                per_stream.hits += 1
                if was_prefetched:
                    self.stats.prefetched_hits += 1
                    per_stream.prefetched_hits += 1
            else:
                outcome.misses += 1
                self.stats.misses += 1
                per_stream.misses += 1
            if writeback:
                outcome.writebacks += 1
                self.stats.writebacks += 1
                per_stream.writebacks += 1
        return outcome

    def prefetch(self, address: int, size: int = 1, stream: str = "default") -> int:
        """Fill lines ahead of demand (the streaming optimization §3.1).

        Returns the number of lines actually fetched (already-resident
        lines are skipped).  Prefetch fills are not demand misses: a
        later demand access to the line counts as a hit, which is how
        hardware counters see a well-timed software prefetch.
        """
        fills = 0
        per_stream = self.stats._stream(stream)
        for line in lines_touched(address, size, self.line_bytes):
            if not self._present(line):
                self._fill(line, dirty=False, prefetched=True)
                fills += 1
        self.stats.prefetch_fills += fills
        per_stream.prefetch_fills += fills
        return fills

    def contains(self, address: int) -> bool:
        """Is the line holding ``address`` resident?"""
        return self._present(address // self.line_bytes)

    def flush(self) -> int:
        """Drop all lines; returns the number of dirty lines written back."""
        writebacks = 0
        for cache_set in self._sets:
            writebacks += sum(1 for line in cache_set.values() if line.dirty)
            cache_set.clear()
        self.stats.writebacks += writebacks
        return writebacks

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    # --- internals --------------------------------------------------------------

    def _present(self, line: int) -> bool:
        set_idx, tag = set_index_and_tag(line, self.num_sets)
        return tag in self._sets[set_idx]

    def _touch(
        self, line: int, write: bool, demand: bool
    ) -> tuple[bool, bool, bool]:
        """Probe and update one line; returns (hit, writeback, was_prefetched)."""
        set_idx, tag = set_index_and_tag(line, self.num_sets)
        cache_set = self._sets[set_idx]
        if tag in cache_set:
            entry = cache_set[tag]
            was_prefetched = entry.prefetched
            if demand:
                entry.prefetched = False
            if write:
                entry.dirty = True
            if self.policy == "lru":
                cache_set.move_to_end(tag)
            return True, False, was_prefetched
        writeback = self._fill(line, dirty=write, prefetched=False)
        return False, writeback, False

    def _fill(self, line: int, dirty: bool, prefetched: bool) -> bool:
        """Allocate a line, evicting if needed; returns True on dirty evict."""
        set_idx, tag = set_index_and_tag(line, self.num_sets)
        cache_set = self._sets[set_idx]
        writeback = False
        if len(cache_set) >= self.associativity:
            _, victim = cache_set.popitem(last=False)
            writeback = victim.dirty
        cache_set[tag] = _Line(dirty=dirty, prefetched=prefetched)
        return writeback
