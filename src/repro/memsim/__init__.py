"""Trace-driven memory-hierarchy substrate.

Simulates the shared LLC, off-chip DRAM and the dedicated embedding
cache that the paper's CPU/FPGA analyses depend on (§2.2, §3.3).
"""

from .cache import AccessOutcome, CacheStats, SetAssociativeCache
from .dram import DDR4_2400_CHANNEL_BW, FPGA_DDR3_BW, DramModel
from .embedding_cache import EmbeddingCache, EmbeddingCacheStats
from .hierarchy import Access, MemoryHierarchy, Prefetch, StreamSummary
from .prefetcher import PrefetcherStats, StridePrefetcher
from .trace import (
    MemoryLayout,
    baseline_inference_trace,
    column_inference_trace,
    embedding_trace,
    interleave,
)

__all__ = [
    "SetAssociativeCache",
    "AccessOutcome",
    "CacheStats",
    "DramModel",
    "DDR4_2400_CHANNEL_BW",
    "FPGA_DDR3_BW",
    "EmbeddingCache",
    "EmbeddingCacheStats",
    "MemoryHierarchy",
    "StridePrefetcher",
    "PrefetcherStats",
    "Access",
    "Prefetch",
    "StreamSummary",
    "MemoryLayout",
    "baseline_inference_trace",
    "column_inference_trace",
    "embedding_trace",
    "interleave",
]
