"""Cache-line address arithmetic shared by the memory simulators."""

from __future__ import annotations

from typing import Iterator

__all__ = ["is_power_of_two", "line_index", "lines_touched", "set_index_and_tag"]


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def line_index(address: int, line_bytes: int) -> int:
    """Index of the cache line containing ``address``."""
    return address // line_bytes


def lines_touched(address: int, size: int, line_bytes: int) -> Iterator[int]:
    """All line indices an access of ``size`` bytes at ``address`` touches."""
    if size <= 0:
        raise ValueError(f"access size must be positive, got {size}")
    if address < 0:
        raise ValueError(f"address must be non-negative, got {address}")
    first = address // line_bytes
    last = (address + size - 1) // line_bytes
    return iter(range(first, last + 1))


def set_index_and_tag(line: int, num_sets: int) -> tuple[int, int]:
    """Map a line index to (set index, tag)."""
    return line % num_sets, line // num_sets
