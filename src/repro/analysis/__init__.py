"""Experiment drivers, one per paper figure (see DESIGN.md §4)."""

from .accuracy import TaskAccuracy, accuracy_table
from .contention import ContentionResult, contention_experiment, contention_sweep
from .early_exit import (
    EarlyExitPoint,
    EarlyExitSweep,
    early_exit_workload,
    sweep_early_exit,
)
from .offchip import OffchipResult, offchip_accesses
from .platforms import (
    embedding_cache_effectiveness,
    energy_comparison,
    fpga_latency_breakdown,
    gpu_multi_gpu_scaling,
    gpu_stream_scaling,
)
from .scalability import (
    algorithm_scalability,
    bandwidth_scalability,
    operation_breakdown,
    speedup_over_baseline,
)
from .sparsity import SparsityResult, probability_distribution
from .tradeoff import TradeoffCurve, TradeoffPoint, threshold_sweep

__all__ = [
    "accuracy_table",
    "TaskAccuracy",
    "EarlyExitPoint",
    "EarlyExitSweep",
    "early_exit_workload",
    "sweep_early_exit",
    "probability_distribution",
    "SparsityResult",
    "threshold_sweep",
    "TradeoffCurve",
    "TradeoffPoint",
    "bandwidth_scalability",
    "algorithm_scalability",
    "operation_breakdown",
    "speedup_over_baseline",
    "contention_experiment",
    "contention_sweep",
    "ContentionResult",
    "offchip_accesses",
    "OffchipResult",
    "gpu_stream_scaling",
    "gpu_multi_gpu_scaling",
    "fpga_latency_breakdown",
    "embedding_cache_effectiveness",
    "energy_comparison",
]
