"""Early-exit threshold sweep: hop savings vs full-depth agreement.

The confidence gate (:mod:`repro.core.early_exit`) trades hops for
answer fidelity; this driver measures the trade on the synthetic
topical workload the top-k tier already uses, in the regime where the
gate's extrapolation is sound:

* questions revisit stored sentences, so attention locks onto a row at
  hop 1 and stays there (:func:`early_exit_workload` keeps the
  ``M_OUT`` embedding scale small so the readout never perturbs the
  attention scores enough to move the argmax row);
* the answer layer's weight scale is large enough that the softmax
  margin actually separates confident from unconfident questions.

On that workload the sweep reports, per threshold: the mean/histogram
exit depth, the fraction of the hop budget saved, and the argmax
answer agreement against the full-depth engine — the curve the
benchmark's "agreement >= 0.98 at >= 1.3x throughput" acceptance point
lives on.  Shared by ``python -m repro earlyexit`` and
``benchmarks/bench_early_exit.py`` (which adds wall-clock timing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import EngineConfig, MemNNConfig
from ..core.engine import AnswerResult, EngineWeights, MnnFastEngine
from ..index.harness import synthetic_topical_workload

__all__ = [
    "EarlyExitPoint",
    "EarlyExitSweep",
    "early_exit_workload",
    "sweep_early_exit",
]

#: The gate thresholds the experiment sweeps (0 = gate disabled).
SWEEP_THRESHOLDS = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)


def early_exit_workload(
    config: MemNNConfig,
    num_questions: int,
    num_answers: int = 50,
    seed: int = 7,
    question_scale: float = 0.5,
    output_scale: float = 0.05,
    answer_scale: float = 2.0,
) -> tuple[EngineWeights, np.ndarray, np.ndarray]:
    """Weights + topical stories/questions in the gate's sound regime.

    The decoupled scales are the point: ``output_scale`` well below
    ``question_scale`` keeps each hop's readout ``o_k`` small relative
    to the question/memory alignment, so the attention row a question
    locks onto at hop 1 survives every later hop and the gate's
    terminal-state extrapolation ``u_k + remaining * o_k`` tracks the
    true full-depth state.  ``answer_scale`` spreads the answer logits
    so the softmax margin is informative rather than uniformly tiny.

    Returns:
        ``(weights, stories, questions)`` — feed the stories through
        ``store_story`` and answer the questions.
    """
    rng = np.random.default_rng(seed)
    stories, questions = synthetic_topical_workload(
        config, num_questions, rng=rng
    )
    shape = (config.vocab_size, config.embedding_dim)
    weights = EngineWeights(
        embedding_a=rng.normal(0.0, question_scale, shape),
        embedding_c=rng.normal(0.0, output_scale, shape),
        answer_weight=rng.normal(
            0.0, answer_scale, (num_answers, config.embedding_dim)
        ),
    )
    return weights, stories, questions


@dataclass
class EarlyExitPoint:
    """One threshold's measurements against the full-depth reference."""

    threshold: float
    mean_hops: float
    hops_saved_fraction: float
    exited_fraction: float
    agreement: float
    depth_histogram: dict[int, int]
    result: AnswerResult

    @property
    def mean_confidence(self) -> float:
        """Mean confidence over every gate check that ran (NaN-free)."""
        values = [
            c[np.isfinite(c)] for c in self.result.hop_trace.confidence
        ]
        flat = np.concatenate(values) if values else np.empty(0)
        return float(flat.mean()) if len(flat) else 0.0


@dataclass
class EarlyExitSweep:
    """The full threshold sweep plus the shared full-depth reference."""

    points: list[EarlyExitPoint]
    full_depth: AnswerResult
    hops: int
    num_questions: int

    def point_at(self, threshold: float) -> EarlyExitPoint:
        for point in self.points:
            if point.threshold == threshold:
                return point
        raise KeyError(f"no point at threshold {threshold}")


def sweep_early_exit(
    config: MemNNConfig | None = None,
    num_questions: int = 128,
    thresholds: tuple[float, ...] = SWEEP_THRESHOLDS,
    metric: str = "logit_margin",
    engine_config: EngineConfig | None = None,
    seed: int = 7,
) -> EarlyExitSweep:
    """Sweep the gate threshold on the calibrated topical workload.

    Every point shares weights, memories and questions with the
    full-depth reference (``engine_config`` with the gate disabled),
    so the agreement column isolates the gate's approximation — the
    same differential structure ``compare_topk_vs_exact`` uses for the
    retrieval tier.
    """
    if config is None:
        config = MemNNConfig(
            embedding_dim=32, num_sentences=2_000, max_words=8,
            vocab_size=500, hops=4,
        )
    base = engine_config if engine_config is not None else EngineConfig()
    weights, stories, questions = early_exit_workload(
        config, num_questions, seed=seed
    )

    def run(cfg: EngineConfig) -> AnswerResult:
        engine = MnnFastEngine(config, weights=weights, engine_config=cfg)
        engine.store_story(stories)
        return engine.answer(questions)

    full = run(base.with_early_exit(0.0))
    points = []
    for threshold in thresholds:
        result = run(base.with_early_exit(threshold, metric=metric))
        trace = result.hop_trace
        points.append(
            EarlyExitPoint(
                threshold=threshold,
                mean_hops=trace.mean_hops,
                hops_saved_fraction=trace.hops_saved_fraction,
                exited_fraction=trace.num_exited / trace.num_questions,
                agreement=float(
                    np.mean(result.answer_ids == full.answer_ids)
                ),
                depth_histogram=trace.depth_histogram(),
                result=result,
            )
        )
    return EarlyExitSweep(
        points=points,
        full_depth=full,
        hops=config.hops,
        num_questions=num_questions,
    )
