"""Figs. 3, 9 and 10: CPU scalability and per-operation latency.

Thin drivers over :class:`repro.perf.cpu.CpuModel` that produce
exactly the series each figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import CPU_CONFIG, MemNNConfig
from ..perf.cpu import ALGORITHMS, CpuModel

__all__ = [
    "bandwidth_scalability",
    "algorithm_scalability",
    "operation_breakdown",
    "speedup_over_baseline",
]


def bandwidth_scalability(
    config: MemNNConfig = CPU_CONFIG,
    channels: tuple[int, ...] = (2, 4, 8),
    max_threads: int = 24,
    algorithm: str = "baseline",
) -> dict[int, dict[int, float]]:
    """Fig. 3 (and Fig. 10 per algorithm): speedup vs. threads for each
    memory-channel configuration, normalized to the single-thread run
    of the same configuration."""
    return {
        ch: CpuModel().with_channels(ch).speedup_curve(
            config, algorithm, max_threads=max_threads
        )
        for ch in channels
    }


def algorithm_scalability(
    config: MemNNConfig = CPU_CONFIG,
    channels: int = 4,
    max_threads: int = 24,
) -> dict[str, dict[int, float]]:
    """Fig. 10 at one channel count: each algorithm's own speedup curve."""
    cpu = CpuModel().with_channels(channels)
    return {
        algorithm: cpu.speedup_curve(config, algorithm, max_threads=max_threads)
        for algorithm in ALGORITHMS
    }


def operation_breakdown(
    config: MemNNConfig = CPU_CONFIG,
    threads: int = 20,
) -> dict[str, dict[str, float]]:
    """Fig. 9(a): per-operation latency for each algorithm variant."""
    cpu = CpuModel()
    return {
        algorithm: cpu.run(config, algorithm, threads).phase_seconds
        for algorithm in ALGORITHMS
    }


def speedup_over_baseline(
    config: MemNNConfig = CPU_CONFIG,
    max_threads: int = 20,
) -> dict[str, dict[int, float]]:
    """Fig. 9(b): speedup of each variant over the baseline at equal
    thread counts."""
    cpu = CpuModel()
    return {
        algorithm: {
            threads: cpu.speedup_vs_baseline(config, algorithm, threads)
            for threads in range(1, max_threads + 1)
        }
        for algorithm in ALGORITHMS
        if algorithm != "baseline"
    }
