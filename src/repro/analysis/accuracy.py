"""Per-task accuracy of the trainable MemN2N over all 20 task families.

Not a paper figure per se, but the substrate-validation the rest of
the accuracy experiments stand on (Figs. 6-7 only mean something if
the model genuinely learns the tasks).  Mirrors the per-task tables of
Sukhbaatar et al. on our synthetic task generators.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.babi import TASK_NAMES
from ..model.train import train_on_task

__all__ = ["TaskAccuracy", "accuracy_table"]


@dataclass
class TaskAccuracy:
    """Accuracy of one trained task."""

    task_id: int
    name: str
    train_accuracy: float
    test_accuracy: float
    final_loss: float


def accuracy_table(
    task_ids: tuple[int, ...] = tuple(range(1, 21)),
    train_examples: int = 500,
    test_examples: int = 100,
    epochs: int = 40,
    seed: int = 0,
) -> list[TaskAccuracy]:
    """Train one model per task and report accuracies.

    Full 20-task runs take several minutes; pass a subset of
    ``task_ids`` for quicker sweeps.
    """
    results = []
    for task_id in task_ids:
        if task_id not in TASK_NAMES:
            raise ValueError(f"unknown task id {task_id}")
        _, _, _, result = train_on_task(
            task_id,
            train_examples=train_examples,
            test_examples=test_examples,
            epochs=epochs,
            seed=seed,
        )
        results.append(
            TaskAccuracy(
                task_id=task_id,
                name=TASK_NAMES[task_id],
                train_accuracy=result.train_accuracy,
                test_accuracy=result.test_accuracy,
                final_loss=result.losses[-1] if result.losses else 0.0,
            )
        )
    return results
