"""Fig. 11: off-chip memory accesses per algorithm variant.

Runs the three dataflows (baseline, column, column+streaming) through
the trace-driven LLC/DRAM simulator and counts off-chip transactions
(demand misses + writebacks), normalized to the baseline — the paper's
result is that the column-based algorithm turns the baseline's DRAM
traffic into LLC hits and streaming removes >60% of the off-chip
accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import ChunkConfig, MemNNConfig
from ..memsim import (
    DramModel,
    MemoryHierarchy,
    MemoryLayout,
    SetAssociativeCache,
    baseline_inference_trace,
    column_inference_trace,
)

__all__ = ["OffchipResult", "offchip_accesses"]

#: A test-scale analogue of the paper's setup: the LLC dwarfs one chunk
#: working set but cannot hold the baseline's full intermediates.
DEFAULT_CONFIG = MemNNConfig(
    embedding_dim=48, num_sentences=8000, num_questions=16, vocab_size=10_000
)


@dataclass
class OffchipResult:
    """Absolute and normalized off-chip access counts."""

    counts: dict[str, int]
    dram_bytes: dict[str, int]

    @property
    def normalized(self) -> dict[str, float]:
        baseline = self.counts["baseline"]
        return {name: count / baseline for name, count in self.counts.items()}


def offchip_accesses(
    config: MemNNConfig = DEFAULT_CONFIG,
    chunk_size: int = 500,
    llc_kb: int = 2048,
    line_bytes: int = 64,
) -> OffchipResult:
    """Count off-chip accesses for the three Fig. 11 variants."""
    variants = {
        "baseline": lambda layout: baseline_inference_trace(layout),
        "column": lambda layout: column_inference_trace(
            layout, ChunkConfig(chunk_size, streaming=False)
        ),
        "column_streaming": lambda layout: column_inference_trace(
            layout, ChunkConfig(chunk_size, streaming=True)
        ),
    }
    counts: dict[str, int] = {}
    dram_bytes: dict[str, int] = {}
    for name, make_trace in variants.items():
        layout = MemoryLayout(config, chunk_size=chunk_size)
        hierarchy = MemoryHierarchy(
            SetAssociativeCache(
                size_bytes=llc_kb * 1024, line_bytes=line_bytes, associativity=8
            ),
            DramModel(),
        )
        hierarchy.run_trace(make_trace(layout))
        summary = hierarchy.stream("inference")
        counts[name] = summary.offchip_accesses
        dram_bytes[name] = summary.dram_bytes
    return OffchipResult(counts=counts, dram_bytes=dram_bytes)
