"""Fig. 4: cache contention between inference and embedding operations.

Reproduces §2.2.3's experiment in the trace-driven cache simulator: an
inference worker (column-based, chunk-resident working set) shares the
LLC with a growing number of embedding workers streaming Zipfian word
lookups through a large dictionary.  The embedding traffic evicts the
inference worker's hot data; the slowdown is the AMAT ratio.

Also quantifies §3.3's two fixes:

* **bypass** — embedding lookups use non-temporal accesses, so the LLC
  stays clean but every lookup pays DRAM latency;
* **embedding cache** — lookups are served by the dedicated cache and
  never touch the LLC, removing the contention *and* the latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.config import EmbeddingCacheConfig, MemNNConfig
from ..data.corpus import ZipfCorpus
from ..memsim import (
    DramModel,
    EmbeddingCache,
    MemoryHierarchy,
    MemoryLayout,
    SetAssociativeCache,
    baseline_inference_trace,
    embedding_trace,
    interleave,
)

__all__ = ["ContentionResult", "contention_experiment", "contention_sweep"]

#: Three MemNN scales Fig. 4 evaluates (small / medium / large).  The
#: inference working set grows toward the LLC capacity — exactly the
#: regime where pollution hurts most (the paper's "impact increases
#: with the scale of MemNN").
DEFAULT_SCALES = {
    "small": MemNNConfig(embedding_dim=16, num_sentences=2000, num_questions=4,
                         vocab_size=30_000),
    "medium": MemNNConfig(embedding_dim=24, num_sentences=3000, num_questions=4,
                          vocab_size=30_000),
    "large": MemNNConfig(embedding_dim=32, num_sentences=3500, num_questions=4,
                         vocab_size=30_000),
}


@dataclass
class ContentionResult:
    """Inference-side cache behaviour under co-located embedding threads."""

    embedding_threads: int
    inference_hit_rate: float
    inference_amat: float
    relative_performance: float  # vs. the same setup with 0 embedding threads


def _run(
    config: MemNNConfig,
    embedding_threads: int,
    llc_kb: int,
    lookups_per_thread: int,
    mode: str,
    seed: int,
    passes: int = 3,
) -> tuple[float, float]:
    """Returns (inference hit rate, inference AMAT).

    The inference side runs ``passes`` consecutive question batches
    over the same knowledge database (the multi-tenant serving setting
    of §2.2.3); after the first pass its working set lives in the LLC,
    so the later passes are where embedding pollution shows up.
    """
    layout = MemoryLayout(config, chunk_size=500)
    hierarchy = MemoryHierarchy(
        SetAssociativeCache(size_bytes=llc_kb * 1024, line_bytes=64, associativity=8),
        DramModel(),
    )
    corpus = ZipfCorpus(vocab_size=config.vocab_size, seed=seed)
    embedding_cache = (
        EmbeddingCache(
            EmbeddingCacheConfig(
                size_bytes=64 * 1024, embedding_dim=config.embedding_dim
            )
        )
        if mode == "embedding_cache"
        else None
    )

    inference = itertools.chain.from_iterable(
        baseline_inference_trace(layout) for _ in range(passes)
    )
    embedding_streams = []
    for _ in range(embedding_threads):
        words = corpus.sample(lookups_per_thread)
        if embedding_cache is not None:
            # Dedicated cache: only its misses reach the shared system,
            # and those go straight to DRAM without touching the LLC.
            words = [w for w in words if not embedding_cache.probe(int(w))]
            embedding_streams.append(embedding_trace(layout, words, bypass=True))
        else:
            embedding_streams.append(
                embedding_trace(layout, words, bypass=(mode == "bypass"))
            )

    hierarchy.run_trace(interleave(inference, *embedding_streams, granularity=4))
    summary = hierarchy.stream("inference")
    return summary.hit_rate, hierarchy.amat("inference")


def contention_experiment(
    config: MemNNConfig,
    embedding_threads: int,
    llc_kb: int = 1024,
    lookups_per_thread: int = 20_000,
    mode: str = "shared",
    seed: int = 0,
) -> ContentionResult:
    """One Fig. 4 bar: inference performance with k embedding threads.

    ``mode``: ``"shared"`` (the problem), ``"bypass"`` or
    ``"embedding_cache"`` (the fixes).
    """
    modes = ("shared", "bypass", "embedding_cache")
    if mode not in modes:
        raise ValueError(f"mode must be one of {modes}, got {mode!r}")
    if embedding_threads < 0:
        raise ValueError("embedding_threads must be non-negative")
    hit_alone, amat_alone = _run(config, 0, llc_kb, lookups_per_thread, mode, seed)
    if embedding_threads == 0:
        return ContentionResult(0, hit_alone, amat_alone, 1.0)
    hit, amat = _run(config, embedding_threads, llc_kb, lookups_per_thread, mode, seed)
    return ContentionResult(
        embedding_threads=embedding_threads,
        inference_hit_rate=hit,
        inference_amat=amat,
        relative_performance=amat_alone / amat,
    )


def contention_sweep(
    scales: dict[str, MemNNConfig] | None = None,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8),
    mode: str = "shared",
    llc_kb: int = 1024,
    seed: int = 0,
) -> dict[str, dict[int, float]]:
    """The full Fig. 4 grid: relative inference performance per MemNN
    scale and embedding-thread count."""
    scales = scales if scales is not None else DEFAULT_SCALES
    return {
        name: {
            k: contention_experiment(
                config, k, llc_kb=llc_kb, mode=mode, seed=seed
            ).relative_performance
            for k in thread_counts
        }
        for name, config in scales.items()
    }
