"""Figs. 12-14 and §5.5: GPU, FPGA and energy experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import FPGA_CONFIG, GPU_CONFIG, MemNNConfig
from ..data.corpus import ZipfCorpus
from ..perf.energy import EnergyComparison, EnergyModel
from ..perf.fpga import FpgaModel
from ..perf.gpu import GpuModel

__all__ = [
    "gpu_stream_scaling",
    "gpu_multi_gpu_scaling",
    "fpga_latency_breakdown",
    "embedding_cache_effectiveness",
    "energy_comparison",
]

#: Fig. 14's cache-size sweep.
PAPER_CACHE_SIZES = (32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024)


def gpu_stream_scaling(
    config: MemNNConfig = GPU_CONFIG,
    stream_counts: tuple[int, ...] = (1, 2, 4, 8),
    model: GpuModel | None = None,
) -> dict[str, dict[int, float]]:
    """Fig. 12(a): latency and speedup vs. number of CUDA streams."""
    model = model if model is not None else GpuModel()
    baseline = model.run_baseline(config).total_seconds
    latency = {k: model.run_streams(config, k).total_seconds for k in stream_counts}
    return {
        "latency_seconds": latency,
        "speedup": {k: baseline / v for k, v in latency.items()},
    }


@dataclass
class MultiGpuPoint:
    """One GPU-count row of Fig. 12(b)."""

    gpus: int
    speedup: float
    worst_h2d_seconds: float
    ideal_h2d_seconds: float

    @property
    def h2d_contention_gap(self) -> float:
        return self.worst_h2d_seconds - self.ideal_h2d_seconds


def gpu_multi_gpu_scaling(
    config: MemNNConfig = GPU_CONFIG,
    gpu_counts: tuple[int, ...] = (1, 2, 3, 4),
    model: GpuModel | None = None,
) -> list[MultiGpuPoint]:
    """Fig. 12(b): multi-GPU speedup and the worst-vs-ideal H2D gap."""
    model = model if model is not None else GpuModel()
    baseline = model.run_baseline(config).total_seconds
    points = []
    for gpus in gpu_counts:
        shared = model.run_multi_gpu(config, gpus)
        ideal = model.run_multi_gpu(config, gpus, ideal_pcie=True)
        points.append(
            MultiGpuPoint(
                gpus=gpus,
                speedup=baseline / shared.total_seconds,
                worst_h2d_seconds=shared.worst_h2d,
                ideal_h2d_seconds=ideal.worst_h2d,
            )
        )
    return points


def fpga_latency_breakdown(
    config: MemNNConfig = FPGA_CONFIG,
    keep_rate: float = 0.03,
    model: FpgaModel | None = None,
) -> dict[str, float]:
    """Fig. 13: normalized latency of the four FPGA variants."""
    model = model if model is not None else FpgaModel()
    return model.latency_table(config, keep_rate=keep_rate)


def embedding_cache_effectiveness(
    num_lookups: int = 50_000,
    vocab_size: int = 22_000,
    zipf_exponent: float = 1.15,
    sizes_bytes: tuple[int, ...] = PAPER_CACHE_SIZES,
    embedding_dim: int = 256,
    associativity: int = 1,
    seed: int = 0,
    model: FpgaModel | None = None,
) -> dict[int, float]:
    """Fig. 14: embedding-latency reduction per cache size.

    The word stream is Zipfian over a COCA-scale vocabulary (see the
    substitution table); ``embedding_dim=256`` matches §5.4.2.  Word
    IDs are frequency-ordered (``shuffle_ids=False``) because real
    embedding dictionaries are built from frequency-sorted word lists —
    this is what lets the paper's *direct-mapped* cache keep the hot
    words in distinct sets.
    """
    model = model if model is not None else FpgaModel()
    corpus = ZipfCorpus(
        vocab_size=vocab_size, exponent=zipf_exponent, seed=seed, shuffle_ids=False
    )
    words = corpus.sample(num_lookups)
    return model.embedding_cache_sweep(
        words,
        sizes_bytes=sizes_bytes,
        embedding_dim=embedding_dim,
        associativity=associativity,
    )


def energy_comparison(
    config: MemNNConfig = FPGA_CONFIG,
    model: EnergyModel | None = None,
) -> EnergyComparison:
    """§5.5: CPU-MnnFast vs. FPGA-MnnFast energy per question."""
    model = model if model is not None else EnergyModel()
    return model.compare(config)
