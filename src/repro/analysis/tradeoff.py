"""Fig. 7: accuracy loss vs. computation reduction across skip thresholds.

Trains one model per bAbI-style task, then sweeps ``th_skip`` and
averages the relative accuracy loss and output-computation reduction
across tasks — the paper's headline numbers are ~97% reduction at
th=0.1 for 0.87% accuracy loss, and ~81% reduction at th=0.01 with no
loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.train import train_on_task

__all__ = ["TradeoffPoint", "TradeoffCurve", "threshold_sweep"]

#: The thresholds Fig. 7 sweeps.
PAPER_THRESHOLDS = (0.0001, 0.001, 0.01, 0.1, 0.5)


@dataclass
class TradeoffPoint:
    """One threshold's averaged results."""

    threshold: float
    accuracy_loss: float
    computation_reduction: float


@dataclass
class TradeoffCurve:
    """The full sweep plus per-task details."""

    points: list[TradeoffPoint]
    task_ids: tuple[int, ...]
    baseline_accuracies: dict[int, float]

    def point_at(self, threshold: float) -> TradeoffPoint:
        for point in self.points:
            if point.threshold == threshold:
                return point
        raise KeyError(f"no point at threshold {threshold}")


def threshold_sweep(
    task_ids: tuple[int, ...] = (1, 2, 6, 15, 16),
    thresholds: tuple[float, ...] = PAPER_THRESHOLDS,
    train_examples: int = 400,
    test_examples: int = 100,
    epochs: int = 30,
    seed: int = 0,
    story_scale: float = 1.0,
    max_sentences: int = 20,
) -> TradeoffCurve:
    """Run the Fig. 7 sweep.

    The paper averages over all 20 bAbI QA tasks; the default here
    trains a representative subset to keep runtime reasonable — pass
    ``task_ids=tuple(range(1, 21))`` for the full set.
    """
    if not task_ids:
        raise ValueError("need at least one task")
    per_threshold_loss = {th: [] for th in thresholds}
    per_threshold_reduction = {th: [] for th in thresholds}
    baselines = {}

    for task_id in task_ids:
        trainer, test, _, result = train_on_task(
            task_id,
            train_examples=train_examples,
            test_examples=test_examples,
            epochs=epochs,
            seed=seed,
            story_scale=story_scale,
            max_sentences=max_sentences,
        )
        baselines[task_id] = result.test_accuracy
        for threshold in thresholds:
            evaluation = trainer.evaluate_zero_skip(
                test["stories"], test["questions"], test["answers"], threshold
            )
            per_threshold_loss[threshold].append(evaluation.accuracy_loss)
            per_threshold_reduction[threshold].append(
                evaluation.computation_reduction
            )

    points = [
        TradeoffPoint(
            threshold=th,
            accuracy_loss=float(np.mean(per_threshold_loss[th])),
            computation_reduction=float(np.mean(per_threshold_reduction[th])),
        )
        for th in thresholds
    ]
    return TradeoffCurve(points=points, task_ids=task_ids, baseline_accuracies=baselines)
