"""Fig. 6: probability-value distribution of trained attention.

Trains a MemN2N on bAbI-style tasks (up to 50 story sentences, as in
the paper) and reports the distribution of p-vector values over a
batch of questions: the paper's observation is that *only a few
probability values are activated and the others are close to zero*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.train import train_on_task

__all__ = ["SparsityResult", "probability_distribution"]


@dataclass
class SparsityResult:
    """Distribution statistics of trained attention probabilities.

    Attributes:
        probabilities: ``(num_questions, num_sentences)`` p-vectors
            (one row per question — the transpose of Fig. 6's columns).
        task_id: task the model was trained on.
        test_accuracy: sanity check that the attention is meaningful.
    """

    probabilities: np.ndarray
    task_id: int
    test_accuracy: float

    @property
    def fraction_above(self) -> dict[float, float]:
        """Fraction of entries above common thresholds."""
        total = self.probabilities.size
        return {
            th: float((self.probabilities > th).sum()) / total
            for th in (0.01, 0.05, 0.1, 0.5)
        }

    @property
    def mean_max(self) -> float:
        """Mean of each question's peak probability."""
        return float(self.probabilities.max(axis=1).mean())

    @property
    def mean_entropy(self) -> float:
        """Mean attention entropy in bits (low = sparse)."""
        p = np.clip(self.probabilities, 1e-12, 1.0)
        return float((-p * np.log2(p)).sum(axis=1).mean())


def probability_distribution(
    task_id: int = 1,
    num_questions: int = 100,
    max_sentences: int = 50,
    train_examples: int = 400,
    epochs: int = 30,
    seed: int = 0,
    story_scale: float = 1.0,
) -> SparsityResult:
    """Train a model and collect its first-hop attention (Fig. 6).

    Fig. 6's setting: stories of up to 50 sentences (pass
    ``story_scale~=5`` with ``max_sentences=50``), probability vectors
    for 100 randomly chosen questions.
    """
    trainer, test, _, result = train_on_task(
        task_id,
        train_examples=train_examples,
        test_examples=max(num_questions, 1),
        epochs=epochs,
        max_sentences=max_sentences,
        seed=seed,
        story_scale=story_scale,
    )
    probabilities = trainer.model.attention(
        test["stories"][:num_questions], test["questions"][:num_questions]
    )
    return SparsityResult(
        probabilities=probabilities,
        task_id=task_id,
        test_accuracy=result.test_accuracy,
    )
