"""Cluster offered-load generation: skew, diurnal cycles, bursts.

Requests here are *planned* work: each carries the topic it asks
about and the global chunk set that topic's memory rows occupy — the
locality structure (bAbI stories about one task cluster in one region
of memory) that cache-affinity routing exploits.  Topic popularity is
Zipf-distributed, so a few topics dominate the stream and a bounded
LRU can win by specializing replicas.

Offered load is a piecewise-constant rate trace replayed as an
inhomogeneous Poisson process: :func:`diurnal_trace` sweeps a day's
sinusoid, :func:`burst_trace` steps a flash crowd onto a quiet
baseline — the two shapes the autoscaler benchmark replays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ClusterRequest",
    "RateSegment",
    "burst_trace",
    "diurnal_trace",
    "requests_from_trace",
    "row_span_chunks",
    "skewed_workload",
    "topic_chunks",
]


@dataclass(frozen=True)
class ClusterRequest:
    """One question batch offered to the cluster.

    Attributes:
        arrival: offered time (seconds from run start).
        topic: which topic the question asks about.
        chunks: global chunk indices the topic's rows occupy — the
            request's planned chunk set.
        batch_size: questions in the pass.
        deadline: end-to-end latency budget (``None`` = none).
    """

    arrival: float
    topic: int
    chunks: tuple[int, ...]
    batch_size: int = 1
    deadline: float | None = None


@dataclass(frozen=True)
class RateSegment:
    """Constant offered rate over ``[start, start + duration)``."""

    start: float
    duration: float
    rate: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")


def topic_chunks(
    topic: int, num_topics: int, chunks_per_topic: int, total_chunks: int
) -> tuple[int, ...]:
    """The contiguous chunk block topic ``topic`` occupies.

    Topics tile the store in ``chunks_per_topic``-sized blocks,
    wrapping modulo ``total_chunks`` — adjacent topics share no chunks
    until the tiling wraps, so distinct topics have distinct working
    sets (the property that makes affinity vs round-robin a fair
    comparison).
    """
    if not 0 <= topic < num_topics:
        raise ValueError(f"topic {topic} outside [0, {num_topics})")
    if chunks_per_topic < 1 or total_chunks < 1:
        raise ValueError("chunks_per_topic and total_chunks must be >= 1")
    base = (topic * chunks_per_topic) % total_chunks
    return tuple(
        (base + i) % total_chunks for i in range(min(chunks_per_topic, total_chunks))
    )


def row_span_chunks(
    start_row: int,
    stop_row: int,
    chunk_size: int,
    total_chunks: int | None = None,
) -> tuple[int, ...]:
    """Global chunk indices a contiguous row span ``[start_row, stop_row)``
    occupies.

    The document-side counterpart of :func:`topic_chunks`: where topics
    tile the store in fixed blocks, a document's rows occupy whatever
    span ingestion gave them
    (:meth:`repro.docqa.corpus.DocqaCorpus.row_range`), and this maps
    that span onto the chunk grid the cluster tier routes by.  Partial
    chunks at either end count in full — a request touching any row of
    a chunk streams the whole chunk.

    Args:
        start_row: first row of the span (inclusive).
        stop_row: one past the last row.
        chunk_size: rows per chunk.
        total_chunks: validate the span fits in this many chunks.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if not 0 <= start_row < stop_row:
        raise ValueError(
            f"need 0 <= start_row < stop_row, got [{start_row}, {stop_row})"
        )
    first = start_row // chunk_size
    last = (stop_row - 1) // chunk_size
    if total_chunks is not None and last >= total_chunks:
        raise ValueError(
            f"rows [{start_row}, {stop_row}) reach chunk {last}, store has "
            f"{total_chunks} chunks"
        )
    return tuple(range(first, last + 1))


def _zipf_weights(num_topics: int, s: float) -> np.ndarray:
    ranks = np.arange(1, num_topics + 1, dtype=float)
    weights = ranks**-s
    return weights / weights.sum()


def skewed_workload(
    num_requests: int,
    num_topics: int,
    chunks_per_topic: int,
    total_chunks: int,
    rate: float,
    zipf_s: float = 1.1,
    batch_size: int = 1,
    deadline: float | None = None,
    seed: int = 0,
) -> list[ClusterRequest]:
    """Poisson arrivals with Zipf-skewed topic popularity.

    ``zipf_s`` is the skew exponent: 0 is uniform, 1+ concentrates
    most of the stream on the first few topics (the hot-chunk regime
    where cache affinity pays).
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    arrivals = np.cumsum(gaps)
    topics = rng.choice(
        num_topics, size=num_requests, p=_zipf_weights(num_topics, zipf_s)
    )
    return [
        ClusterRequest(
            arrival=float(arrival),
            topic=int(topic),
            chunks=topic_chunks(
                int(topic), num_topics, chunks_per_topic, total_chunks
            ),
            batch_size=batch_size,
            deadline=deadline,
        )
        for arrival, topic in zip(arrivals, topics)
    ]


def diurnal_trace(
    duration: float,
    base_rate: float,
    peak_rate: float,
    period: float | None = None,
    segments: int = 24,
) -> list[RateSegment]:
    """A day-shaped offered-load curve, piecewise-constant.

    A raised sinusoid from ``base_rate`` (midnight trough) to
    ``peak_rate`` (midday peak) over ``period`` (defaults to the full
    ``duration``), sampled into ``segments`` constant steps.
    """
    if base_rate < 0 or peak_rate < base_rate:
        raise ValueError("need 0 <= base_rate <= peak_rate")
    if period is None:
        period = duration
    step = duration / segments
    out = []
    for i in range(segments):
        mid = (i + 0.5) * step
        phase = 2.0 * math.pi * (mid % period) / period
        level = 0.5 * (1.0 - math.cos(phase))  # 0 at trough, 1 at peak
        out.append(
            RateSegment(
                start=i * step,
                duration=step,
                rate=base_rate + (peak_rate - base_rate) * level,
            )
        )
    return out


def burst_trace(
    duration: float,
    base_rate: float,
    burst_rate: float,
    burst_start: float,
    burst_duration: float,
) -> list[RateSegment]:
    """A flash crowd: quiet baseline, a rate step, then quiet again."""
    if not 0 <= burst_start < duration:
        raise ValueError("burst_start must lie inside the trace")
    if burst_rate < base_rate:
        raise ValueError("burst_rate must be >= base_rate")
    burst_end = min(duration, burst_start + burst_duration)
    segments = []
    if burst_start > 0:
        segments.append(RateSegment(0.0, burst_start, base_rate))
    segments.append(
        RateSegment(burst_start, burst_end - burst_start, burst_rate)
    )
    if burst_end < duration:
        segments.append(
            RateSegment(burst_end, duration - burst_end, base_rate)
        )
    return segments


def requests_from_trace(
    trace: list[RateSegment],
    num_topics: int,
    chunks_per_topic: int,
    total_chunks: int,
    zipf_s: float = 1.1,
    batch_size: int = 1,
    deadline: float | None = None,
    seed: int = 0,
) -> list[ClusterRequest]:
    """Replay a rate trace as an inhomogeneous Poisson arrival stream
    with Zipf-skewed topics — the autoscaler benchmark's input."""
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(num_topics, zipf_s)
    requests: list[ClusterRequest] = []
    for segment in trace:
        if segment.rate <= 0:
            continue
        t = segment.start
        end = segment.start + segment.duration
        while True:
            t += rng.exponential(1.0 / segment.rate)
            if t >= end:
                break
            topic = int(rng.choice(num_topics, p=weights))
            requests.append(
                ClusterRequest(
                    arrival=t,
                    topic=topic,
                    chunks=topic_chunks(
                        topic, num_topics, chunks_per_topic, total_chunks
                    ),
                    batch_size=batch_size,
                    deadline=deadline,
                )
            )
    requests.sort(key=lambda r: r.arrival)
    return requests
