"""The cluster simulator: arrivals → router → replicas → ledgers.

An event-driven replay of an offered-load stream over a replica
fleet.  Each arrival is turned into an
:class:`~repro.core.plan.InferencePlan` (the planner half of the
planner/executor split — placement reasons about the pass without
running it), routed by the configured policy, and executed on the
chosen replica: its chunks stream through that replica's LRU and the
service time comes out of the replica's :class:`QaServer` cost model
plus the miss traffic.  Replicas serve FIFO, so each request's start
time is the replica's ``free_at`` horizon when it is placed.

Two placement modes:

* ``"replicated"`` — every replica holds the full store (zero-copy
  views of one shared base); the router picks exactly one.  This is
  the mode cache-affinity routing and the autoscaler operate in.
* ``"sharded"`` — the store is split into chunk-aligned contiguous
  shards, one per replica; every request fans out to *all* of them
  and completes at the slowest shard plus the cluster model's
  tree-reduce cost (§5.3: partials are ``nq × ed``, sync is
  negligible — now visible as a measured fraction, not a claim).

The autoscaler observes total backlog on a fixed tick; scale-ups add
a cold replica (empty LRU — new capacity pays its warm-up), scale-
downs drain the highest-id replica (it finishes its queue but the
router stops feeding it).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..core.config import ChunkConfig, EngineConfig, MemNNConfig
from ..core.plan import InferencePlan, plan_inference
from ..perf.cluster import ClusterModel
from ..serving.metrics import LatencySample
from ..serving.server import QaServer, ServerConfig
from ..serving.trace import RequestTrace
from ..store.base import RowSubsetStore
from ..store.resident import ResidentStore
from .autoscaler import Autoscaler
from .metrics import ClusterMetrics
from .replica import Replica
from .router import Router, RoutingPolicy
from .workload import ClusterRequest

__all__ = ["ClusterConfig", "ClusterSim"]

_MODES = ("replicated", "sharded")


@dataclass(frozen=True)
class ClusterConfig:
    """Geometry and policy of one simulated cluster.

    Attributes:
        num_rows: memory rows in the (logical) store.
        embedding_dim: embedding width.
        chunk_size: chunk geometry shared by plans, prefetchers and
            the serving cost model.
        hops: hops per question.
        replicas: initial replica count (shard count in sharded
            mode).
        mode: ``"replicated"`` or ``"sharded"`` (see module docs).
        resident_bytes: per-replica LRU byte budget; ``None``
            disables the RAM tier entirely (pure streaming — every
            chunk is a miss), matching
            :class:`~repro.store.prefetch.ChunkPrefetcher`.
        max_queue: per-replica backlog bound; arrivals routed to a
            full replica are shed.
        disk_bandwidth: backing-tier stream bandwidth (bytes/s) LRU
            misses are charged at.
        seed: seed for the store's contents (deterministic runs).
    """

    num_rows: int = 32_000
    embedding_dim: int = 32
    chunk_size: int = 500
    hops: int = 1
    replicas: int = 4
    mode: str = "replicated"
    resident_bytes: int | None = None
    max_queue: int = 64
    disk_bandwidth: float = 2e9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_rows < 1 or self.embedding_dim < 1:
            raise ValueError("store geometry must be positive")
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")

    @property
    def total_chunks(self) -> int:
        return -(-self.num_rows // self.chunk_size)


# Event ordering at equal times: departures free capacity before the
# autoscaler looks, and both before new arrivals are placed.
_DEPART, _TICK, _ARRIVAL = 0, 1, 2


class ClusterSim:
    """Replay a request stream over a routed, autoscaled fleet."""

    def __init__(
        self,
        config: ClusterConfig,
        policy: RoutingPolicy | str = "cache_affinity",
        autoscaler: Autoscaler | None = None,
        tick_interval: float = 1.0,
    ) -> None:
        if config.mode == "sharded" and autoscaler is not None:
            raise ValueError(
                "autoscaling operates on replicated fleets; a sharded "
                "fleet's size is its shard count"
            )
        if tick_interval <= 0:
            raise ValueError(
                f"tick_interval must be > 0, got {tick_interval}"
            )
        self.config = config
        self.router = Router(policy)
        self.autoscaler = autoscaler
        self.tick_interval = tick_interval
        self.cluster_model = ClusterModel()
        rng = np.random.default_rng(config.seed)
        shape = (config.num_rows, config.embedding_dim)
        self._base = ResidentStore(
            rng.standard_normal(shape), rng.standard_normal(shape)
        )
        self.replicas: list[Replica] = []
        if config.mode == "replicated":
            for _ in range(config.replicas):
                self._add_replica()
        else:
            self._build_shards()

    # --- fleet construction ---------------------------------------------------

    def _server(self, num_rows: int) -> QaServer:
        """The per-replica cost backend: this replica's rows, engine
        kept resident (the replica charges its own miss traffic)."""
        config = self.config
        return QaServer(
            ServerConfig(
                network=MemNNConfig(
                    embedding_dim=config.embedding_dim,
                    num_sentences=max(1, num_rows),
                    num_questions=1,
                    vocab_size=1000,
                    hops=config.hops,
                ),
                engine=EngineConfig(
                    chunk=ChunkConfig(chunk_size=config.chunk_size),
                ),
                workers=1,
                disk_bandwidth=config.disk_bandwidth,
            )
        )

    def _add_replica(self) -> Replica:
        """Grow the fleet by one cold full-copy replica."""
        replica = Replica(
            replica_id=len(self.replicas),
            server=self._server(self.config.num_rows),
            store=self._base,
            chunk_size=self.config.chunk_size,
            resident_bytes=self.config.resident_bytes,
        )
        self.replicas.append(replica)
        return replica

    def _build_shards(self) -> None:
        """Chunk-aligned contiguous shards, one replica each."""
        config = self.config
        chunks_per_shard = -(-config.total_chunks // config.replicas)
        for shard in range(config.replicas):
            first = shard * chunks_per_shard
            if first >= config.total_chunks:
                break
            last = min(first + chunks_per_shard, config.total_chunks)
            row_lo = first * config.chunk_size
            row_hi = min(last * config.chunk_size, config.num_rows)
            view = RowSubsetStore(self._base, range(row_lo, row_hi))
            self.replicas.append(
                Replica(
                    replica_id=shard,
                    server=self._server(row_hi - row_lo),
                    store=view,
                    chunk_size=config.chunk_size,
                    resident_bytes=config.resident_bytes,
                    chunk_base=first,
                )
            )

    # --- planning -------------------------------------------------------------

    def plan_request(self, request: ClusterRequest) -> InferencePlan:
        """The placement-facing plan of one request (pure)."""
        config = self.config
        return plan_inference(
            num_rows=config.num_rows,
            embedding_dim=config.embedding_dim,
            batch_size=request.batch_size,
            chunk_size=config.chunk_size,
            hops=config.hops,
            chunks=tuple(sorted(request.chunks)),
        )

    # --- the run --------------------------------------------------------------

    def run(self, requests: list[ClusterRequest]) -> ClusterMetrics:
        """Serve the stream to completion; returns reconciled metrics."""
        metrics = ClusterMetrics()
        events: list[tuple[float, int, int, object]] = []
        seq = 0
        for request in requests:
            heapq.heappush(
                events, (request.arrival, _ARRIVAL, seq, request)
            )
            seq += 1
        if self.autoscaler is not None and requests:
            horizon = max(r.arrival for r in requests)
            t = self.tick_interval
            while t <= horizon:
                heapq.heappush(events, (t, _TICK, seq, None))
                seq += 1
                t += self.tick_interval
        metrics.replica_trace.append((0.0, len(self._routable())))

        last_finish = 0.0
        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _DEPART:
                payload.backlog -= 1  # type: ignore[union-attr]
            elif kind == _TICK:
                self._autoscale(now, metrics)
            else:
                seq = self._arrive(now, payload, metrics, events, seq)
            last_finish = max(last_finish, now)

        metrics.simulated_seconds = max(
            last_finish, max((r.free_at for r in self.replicas), default=0.0)
        )
        metrics.replicas = {
            r.replica_id: r.metrics for r in self.replicas
        }
        if self.autoscaler is not None:
            metrics.decisions = list(self.autoscaler.decisions)
        metrics.reconcile()
        return metrics

    def _routable(self) -> list[Replica]:
        return [r for r in self.replicas if not r.draining]

    def _arrive(
        self,
        now: float,
        request: ClusterRequest,
        metrics: ClusterMetrics,
        events: list,
        seq: int,
    ) -> int:
        plan = self.plan_request(request)
        metrics.arrivals += 1
        if self.config.mode == "sharded":
            targets = self._routable()
            if any(r.backlog >= self.config.max_queue for r in targets):
                metrics.shed += 1
                return seq
            # Fan out to every shard; the request completes at the
            # slowest shard plus the tree-reduce of the partials.
            finishes = []
            starts = []
            passes = []
            for replica in targets:
                start = max(now, replica.free_at)
                executed = replica.execute(plan)
                replica.free_at = start + executed.seconds
                replica.backlog += 1
                heapq.heappush(
                    events, (replica.free_at, _DEPART, seq, replica)
                )
                seq += 1
                starts.append(start)
                finishes.append(replica.free_at)
                passes.append(executed)
            reduce_cost = self.cluster_model.reduce_seconds(
                MemNNConfig(
                    embedding_dim=self.config.embedding_dim,
                    num_sentences=self.config.num_rows,
                    num_questions=request.batch_size,
                    vocab_size=1000,
                ),
                len(targets),
            )
            finish = max(finishes) + reduce_cost
            for executed in passes:
                metrics.lru_hits += executed.lru_hits
                metrics.lru_misses += executed.lru_misses
            # The coordinator books the request on replica 0's ledger.
            self._settle(
                targets[0], request, now, min(starts), finish, metrics
            )
            return seq

        replica = self.router.route(plan, self.replicas)
        if replica.backlog >= self.config.max_queue:
            metrics.shed += 1
            return seq
        start = max(now, replica.free_at)
        replica.backlog += 1
        deadline_at = (
            request.arrival + request.deadline
            if request.deadline is not None
            else None
        )
        if deadline_at is not None and start >= deadline_at:
            # Expires while queued: it leaves the queue at its
            # deadline without consuming service time.
            replica.metrics.arrivals += 1
            replica.metrics.timed_out += 1
            trace = RequestTrace(
                request_id=metrics.arrivals - 1,
                kind="question",
                arrival=now,
            )
            trace.add_span("queue", now, deadline_at)
            trace.finish("timeout")
            replica.metrics.traces.append(trace)
            heapq.heappush(events, (deadline_at, _DEPART, seq, replica))
            return seq + 1
        executed = replica.execute(plan)
        metrics.lru_hits += executed.lru_hits
        metrics.lru_misses += executed.lru_misses
        finish = start + executed.seconds
        replica.free_at = finish
        heapq.heappush(events, (finish, _DEPART, seq, replica))
        self._settle(replica, request, now, start, finish, metrics)
        return seq + 1

    def _settle(
        self,
        replica: Replica,
        request: ClusterRequest,
        arrival: float,
        start: float,
        finish: float,
        metrics: ClusterMetrics,
    ) -> None:
        """Book one placed request's terminal outcome on a ledger."""
        ledger = replica.metrics
        ledger.arrivals += 1
        trace = RequestTrace(
            request_id=metrics.arrivals - 1, kind="question", arrival=arrival
        )
        trace.add_span("queue", arrival, start)
        trace.add_span("hop0", start, finish)
        deadline_at = (
            request.arrival + request.deadline
            if request.deadline is not None
            else None
        )
        if deadline_at is not None and finish > deadline_at:
            ledger.timed_out += 1
            trace.finish("timeout")
        else:
            ledger.completed += 1
            ledger.add(
                LatencySample(
                    kind="question",
                    arrival=arrival,
                    start=start,
                    finish=finish,
                )
            )
            trace.finish("completed")
        ledger.traces.append(trace)

    def _autoscale(self, now: float, metrics: ClusterMetrics) -> None:
        assert self.autoscaler is not None
        routable = self._routable()
        backlog = sum(r.backlog for r in routable)
        desired = self.autoscaler.observe(now, backlog, len(routable))
        if desired > len(routable):
            for _ in range(desired - len(routable)):
                # Reactivate a drained replica before paying for a
                # cold one (its LRU is still warm).
                drained = [r for r in self.replicas if r.draining]
                if drained:
                    drained[-1].draining = False
                else:
                    self._add_replica()
            metrics.replica_trace.append((now, len(self._routable())))
        elif desired < len(routable):
            victims = sorted(routable, key=lambda r: r.replica_id)
            for replica in victims[desired:]:
                replica.draining = True
            metrics.replica_trace.append((now, len(self._routable())))
