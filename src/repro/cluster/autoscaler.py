"""Backlog-driven replica autoscaling with hysteresis and cooldowns.

The control signal is mean backlog per routable replica — the same
queue-depth signal :class:`~repro.serving.policy.DegradationPolicy`
degrades quality on, but here the response is *capacity*: add a
replica when sustained backlog crosses the high watermark, retire one
when it falls below the low watermark.  The watermark gap is the
hysteresis band (no action inside it) and each direction has its own
cooldown, so a burst cannot flap the fleet: after any scaling action,
further scale-ups wait ``scale_up_cooldown`` and scale-downs wait
``scale_down_cooldown`` (conventionally much longer — adding capacity
is urgent, removing it is housekeeping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Autoscaler", "AutoscalerConfig", "ScalingDecision"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Autoscaling policy knobs.

    Attributes:
        min_replicas: floor (never drain below).
        max_replicas: ceiling (never grow above).
        high_watermark: mean backlog per replica that triggers a
            scale-up.
        low_watermark: mean backlog per replica below which a
            scale-down is allowed; must sit strictly under
            ``high_watermark`` (the gap is the hysteresis band).
        scale_up_cooldown: seconds after any action before the next
            scale-up.
        scale_down_cooldown: seconds after any action before the next
            scale-down.
        step: replicas added or removed per action.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    high_watermark: float = 4.0
    low_watermark: float = 1.0
    scale_up_cooldown: float = 5.0
    scale_down_cooldown: float = 30.0
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if not 0 <= self.low_watermark < self.high_watermark:
            raise ValueError(
                "watermarks must satisfy 0 <= low < high, got "
                f"low={self.low_watermark}, high={self.high_watermark}"
            )
        if self.scale_up_cooldown < 0 or self.scale_down_cooldown < 0:
            raise ValueError("cooldowns must be >= 0")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")


@dataclass(frozen=True)
class ScalingDecision:
    """One autoscaler observation that changed the replica count."""

    time: float
    backlog_per_replica: float
    replicas_before: int
    replicas_after: int

    @property
    def direction(self) -> int:
        """+1 scale-up, -1 scale-down."""
        return 1 if self.replicas_after > self.replicas_before else -1


@dataclass
class Autoscaler:
    """The hysteresis controller.  Feed it ``observe()`` at a fixed
    tick; it returns the desired replica count and records every
    change in ``decisions`` (the trace the benchmark plots against
    offered load)."""

    config: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    decisions: list[ScalingDecision] = field(default_factory=list)
    _last_action: float = float("-inf")

    def observe(
        self, now: float, total_backlog: int, replicas: int
    ) -> int:
        """Desired replica count given the current backlog.

        Args:
            now: observation time (seconds; monotone across calls).
            total_backlog: queued + in-service requests clusterwide.
            replicas: current routable replica count.
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        config = self.config
        signal = total_backlog / replicas
        desired = replicas
        if (
            signal > config.high_watermark
            and replicas < config.max_replicas
            and now - self._last_action >= config.scale_up_cooldown
        ):
            desired = min(config.max_replicas, replicas + config.step)
        elif (
            signal < config.low_watermark
            and replicas > config.min_replicas
            and now - self._last_action >= config.scale_down_cooldown
        ):
            desired = max(config.min_replicas, replicas - config.step)
        if desired != replicas:
            self._last_action = now
            self.decisions.append(
                ScalingDecision(
                    time=now,
                    backlog_per_replica=signal,
                    replicas_before=replicas,
                    replicas_after=desired,
                )
            )
        return desired
