"""One serving replica: a cost server + its store view + a live LRU.

A :class:`Replica` is the unit the cluster places work on.  It owns

* a :class:`~repro.serving.server.QaServer` as its *cost backend* —
  the same analytical model single-node serving uses, so cluster
  latencies and single-node latencies come from one place;
* a view of the memory store — the full store in replicated mode, a
  contiguous chunk-aligned shard in sharded mode (zero-copy
  :class:`~repro.store.base.RowSubsetStore` over the shared base); and
* a :class:`~repro.store.prefetch.ChunkPrefetcher` whose budgeted
  resident-chunk LRU is the replica's RAM tier.  Its *live contents*
  (:meth:`resident_chunks`) are what cache-affinity routing scores
  against, and every executed plan pulls its chunks through it, so
  routing decisions and cache state co-evolve.

Executing an :class:`~repro.core.plan.InferencePlan` charges

``compute · (rows touched / rows owned)  +  LRU-miss bytes / disk_bw``

— attention compute is linear in the rows actually scanned (the
column dataflow), and chunks the LRU could not hold stream from the
backing tier at the server's disk bandwidth.  That second term is the
latency cache affinity monetizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.plan import InferencePlan
from ..serving.metrics import ServingMetrics
from ..serving.server import QaServer
from ..store.base import MemoryStore
from ..store.prefetch import ChunkPrefetcher

__all__ = ["Replica", "ReplicaPass"]


@dataclass(frozen=True)
class ReplicaPass:
    """Accounting of one plan executed on one replica.

    Attributes:
        planned_chunks: chunks the plan named (globally).
        touched_chunks: the subset this replica owns and streamed.
        lru_hits: touched chunks served from the resident-chunk LRU.
        lru_misses: touched chunks that fell through to the backing
            tier.
        miss_bytes: bytes those misses streamed.
        seconds: modeled service time of the pass on this replica.
    """

    planned_chunks: int
    touched_chunks: int
    lru_hits: int
    lru_misses: int
    miss_bytes: int
    seconds: float

    @property
    def hit_rate(self) -> float:
        touched = self.lru_hits + self.lru_misses
        return self.lru_hits / touched if touched else 0.0


class Replica:
    """A serving replica: cost server, store view, live chunk LRU.

    Args:
        replica_id: stable identity (router tie-breaks on it).
        server: the cost backend; its network config must describe
            *this replica's* rows (the shard's row count in sharded
            mode), and its engine config should keep the store
            resident — the replica charges its own miss traffic, so a
            store-enabled engine would double-count the disk tier.
        store: the rows this replica serves.
        chunk_size: chunk geometry (must match the plans routed here).
        resident_bytes: LRU byte budget (``None`` = everything fits).
        chunk_base: global index of this replica's first chunk —
            ``0`` in replicated mode, the shard group's offset in
            sharded mode (shards must be chunk-aligned).
    """

    def __init__(
        self,
        replica_id: int,
        server: QaServer,
        store: MemoryStore,
        chunk_size: int,
        resident_bytes: int | None = None,
        chunk_base: int = 0,
    ) -> None:
        if chunk_base < 0:
            raise ValueError(f"chunk_base must be >= 0, got {chunk_base}")
        self.replica_id = replica_id
        self.server = server
        self.store = store
        self.chunk_size = chunk_size
        self.chunk_base = chunk_base
        self.prefetcher = ChunkPrefetcher(
            store, chunk_size, resident_bytes=resident_bytes
        )
        self.metrics = ServingMetrics()
        # Scheduling state the simulator maintains.
        self.backlog = 0
        self.free_at = 0.0
        self.draining = False
        self._base_seconds: dict[int, float] = {}

    # --- placement-facing views ----------------------------------------------

    @property
    def num_chunks(self) -> int:
        """Chunks this replica owns."""
        full, tail = divmod(self.store.num_rows, self.chunk_size)
        return full + (1 if tail else 0)

    def owned_chunks(self, plan: InferencePlan) -> list[int]:
        """The plan's chunks that fall in this replica's range, as
        global indices."""
        low, high = self.chunk_base, self.chunk_base + self.num_chunks
        return [c for c in plan.chunks if low <= c < high]

    def resident_chunks(self) -> frozenset[int]:
        """Global chunk indices currently in the LRU — the live cache
        view the affinity policy intersects with a plan's chunks."""
        return frozenset(
            self.chunk_base + c
            for c in self.prefetcher.resident_chunk_ids()
        )

    def affinity(self, plan: InferencePlan) -> float:
        """Fraction of the plan's chunks already resident here."""
        if not plan.chunks:
            return 0.0
        resident = self.resident_chunks()
        return sum(1 for c in plan.chunks if c in resident) / len(plan.chunks)

    # --- execution ------------------------------------------------------------

    def execute(self, plan: InferencePlan) -> ReplicaPass:
        """Stream the plan's chunks through the LRU and model the
        pass's service time."""
        hits = misses = 0
        miss_bytes = 0
        rows_touched = 0
        rows = self.store.num_rows
        for chunk in self.owned_chunks(plan):
            local = chunk - self.chunk_base
            start = local * self.chunk_size
            stop = min(start + self.chunk_size, rows)
            pair, lru_hit = self.prefetcher.fetch((start, stop))
            rows_touched += stop - start
            if lru_hit:
                hits += 1
            else:
                misses += 1
                miss_bytes += pair[0].nbytes + pair[1].nbytes
        compute = self._compute_seconds(plan.batch_size)
        if rows:
            compute *= rows_touched / rows
        stream = miss_bytes / self.server.config.disk_bandwidth
        return ReplicaPass(
            planned_chunks=plan.num_chunks,
            touched_chunks=hits + misses,
            lru_hits=hits,
            lru_misses=misses,
            miss_bytes=miss_bytes,
            seconds=compute + stream,
        )

    def _compute_seconds(self, batch_size: int) -> float:
        """Full-store inference cost at this batch size, memoized —
        the deterministic part of the cost backend (no embedding
        RNG)."""
        cached = self._base_seconds.get(batch_size)
        if cached is None:
            cached = self.server.inference_seconds(batch_size=batch_size)
            self._base_seconds[batch_size] = cached
        return cached
