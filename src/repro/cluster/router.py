"""Pluggable request routing over serving replicas.

Three policies, one interface: given an
:class:`~repro.core.plan.InferencePlan` (the planner/executor split's
placement-facing artifact) and the live replica set, pick where the
pass runs.

* :class:`RoundRobinPolicy` — the locality-blind baseline.
* :class:`LeastBacklogPolicy` — classic join-shortest-queue.
* :class:`CacheAffinityPolicy` — score each replica by how much of
  the plan's chunk set is already resident in its prefetcher LRU,
  discounted by backlog::

      score(r) = |plan.chunks ∩ resident(r)| / |plan.chunks|
                 − backlog_weight · backlog(r)

  The overlap term steers same-topic plans to the replica that paid
  to cache their chunks (Rae et al.'s locality lever at cluster
  scale); the backlog discount keeps a hot replica from absorbing
  the whole topic's queue.  Exact score ties — every *cold* chunk
  set scores 0 everywhere — break by rendezvous hashing the plan's
  chunk set with each replica id, so distinct cold topics spread
  deterministically across the fleet instead of stacking on one
  replica and thrashing its LRU.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from ..core.plan import InferencePlan
from .replica import Replica

__all__ = [
    "CacheAffinityPolicy",
    "LeastBacklogPolicy",
    "POLICIES",
    "Router",
    "RoundRobinPolicy",
    "RoutingPolicy",
]


class RoutingPolicy(Protocol):
    """Pick the replica a plan runs on.  ``replicas`` is non-empty
    and contains only routable (non-draining) replicas."""

    def choose(
        self, plan: InferencePlan, replicas: Sequence[Replica]
    ) -> Replica: ...


class RoundRobinPolicy:
    """Cycle through replicas in id order, ignoring plan and state."""

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, plan: InferencePlan, replicas: Sequence[Replica]
    ) -> Replica:
        ordered = sorted(replicas, key=lambda r: r.replica_id)
        chosen = ordered[self._next % len(ordered)]
        self._next += 1
        return chosen


class LeastBacklogPolicy:
    """Join the shortest queue; ties break to the lowest id."""

    def choose(
        self, plan: InferencePlan, replicas: Sequence[Replica]
    ) -> Replica:
        return min(replicas, key=lambda r: (r.backlog, r.replica_id))


class CacheAffinityPolicy:
    """Maximize plan-chunk overlap with the live LRU contents.

    Args:
        backlog_weight: queue-depth discount λ per queued request —
            ``0`` routes on overlap alone; the default trades one
            queued request against 10% of chunk overlap, enough to
            spill a hot topic onto a second replica under load
            instead of stacking its queue.
    """

    def __init__(self, backlog_weight: float = 0.1) -> None:
        if backlog_weight < 0:
            raise ValueError(
                f"backlog_weight must be >= 0, got {backlog_weight}"
            )
        self.backlog_weight = backlog_weight

    def score(self, plan: InferencePlan, replica: Replica) -> float:
        return (
            replica.affinity(plan)
            - self.backlog_weight * replica.backlog
        )

    @staticmethod
    def _rendezvous(plan: InferencePlan, replica: Replica) -> int:
        # Deterministic (int-tuple hashes ignore PYTHONHASHSEED):
        # gives each (chunk set, replica) pair a stable weight so
        # equal scores spread cold topics across the fleet.
        return hash((replica.replica_id, plan.chunks))

    def choose(
        self, plan: InferencePlan, replicas: Sequence[Replica]
    ) -> Replica:
        return max(
            replicas,
            key=lambda r: (
                self.score(plan, r),
                -r.backlog,
                self._rendezvous(plan, r),
            ),
        )


POLICIES: dict[str, Callable[[], RoutingPolicy]] = {
    "round_robin": RoundRobinPolicy,
    "least_backlog": LeastBacklogPolicy,
    "cache_affinity": CacheAffinityPolicy,
}


class Router:
    """Route plans to replicas through a pluggable policy.

    Args:
        policy: a :class:`RoutingPolicy` instance or a name from
            :data:`POLICIES`.
    """

    def __init__(self, policy: RoutingPolicy | str = "cache_affinity") -> None:
        if isinstance(policy, str):
            if policy not in POLICIES:
                raise ValueError(
                    f"unknown policy {policy!r}; pick one of "
                    f"{sorted(POLICIES)}"
                )
            policy = POLICIES[policy]()
        self.policy = policy

    def route(
        self, plan: InferencePlan, replicas: Sequence[Replica]
    ) -> Replica:
        """Pick the target replica among the routable (non-draining)
        ones.  Raises :class:`RuntimeError` when none are routable."""
        routable = [r for r in replicas if not r.draining]
        if not routable:
            raise RuntimeError("no routable replicas")
        return self.policy.choose(plan, routable)
