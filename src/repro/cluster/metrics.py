"""Cluster-wide metrics: per-replica ledgers reconciled into one view.

Each :class:`~repro.cluster.replica.Replica` keeps its own
:class:`~repro.serving.metrics.ServingMetrics` ledger (samples and
lifecycle counters for the requests *it* served); the cluster adds
router-level outcomes (shed before placement), LRU hit accounting,
and the autoscaler's replica-count trace.  :meth:`reconcile` enforces
the cross-ledger invariant — cluster arrivals equal router sheds plus
the sum over replicas of completed + timed-out — and then reconciles
every per-replica ledger with its own internal invariant, so a
bookkeeping bug in either layer fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..serving.metrics import ServingMetrics
from .autoscaler import ScalingDecision

__all__ = ["ClusterMetrics"]


@dataclass
class ClusterMetrics:
    """Aggregated results of one cluster run."""

    replicas: dict[int, ServingMetrics] = field(default_factory=dict)
    arrivals: int = 0
    shed: int = 0
    lru_hits: int = 0
    lru_misses: int = 0
    simulated_seconds: float = 0.0
    # (time, routable replica count) — stepped on every change.
    replica_trace: list[tuple[float, int]] = field(default_factory=list)
    decisions: list[ScalingDecision] = field(default_factory=list)

    # --- derived -------------------------------------------------------------

    @property
    def completed(self) -> int:
        return sum(m.completed for m in self.replicas.values())

    @property
    def timed_out(self) -> int:
        return sum(m.timed_out for m in self.replicas.values())

    @property
    def chunk_hit_rate(self) -> float:
        """Fraction of streamed chunks served from replica LRUs — the
        number cache-affinity routing exists to raise."""
        touched = self.lru_hits + self.lru_misses
        return self.lru_hits / touched if touched else 0.0

    @property
    def timeout_rate(self) -> float:
        return self.timed_out / self.arrivals if self.arrivals else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    def _samples(self, kind: str = "question"):
        return [
            s
            for m in self.replicas.values()
            for s in m.of_kind(kind)
        ]

    def latency_percentile(
        self, percentile: float, kind: str = "question"
    ) -> float:
        """Percentile of end-to-end latency pooled across replicas —
        reconciliation happens on the *samples*, not by averaging
        per-replica percentiles (which would be wrong under skewed
        placement)."""
        samples = self._samples(kind)
        if not samples:
            return 0.0
        return float(np.percentile([s.latency for s in samples], percentile))

    def percentiles(self, kind: str = "question") -> dict[str, float]:
        return {
            f"p{p:g}": self.latency_percentile(p, kind)
            for p in (50.0, 95.0, 99.0)
        }

    def throughput(self, kind: str = "question") -> float:
        if self.simulated_seconds <= 0:
            return 0.0
        return len(self._samples(kind)) / self.simulated_seconds

    def mean_replicas(self) -> float:
        """Time-weighted mean routable replica count over the run."""
        if not self.replica_trace:
            return 0.0
        total = 0.0
        for (t0, n), (t1, _) in zip(
            self.replica_trace, self.replica_trace[1:]
        ):
            total += n * (t1 - t0)
        last_t, last_n = self.replica_trace[-1]
        total += last_n * max(0.0, self.simulated_seconds - last_t)
        span = self.simulated_seconds - self.replica_trace[0][0]
        return total / span if span > 0 else float(last_n)

    # --- invariants ----------------------------------------------------------

    def reconcile(self) -> None:
        """Check the cluster ledger against the per-replica ledgers.

        Raises :class:`ValueError` on the first inconsistency.
        """
        placed = self.completed + self.timed_out
        if self.arrivals != placed + self.shed:
            raise ValueError(
                f"{self.arrivals} arrivals != {placed} placed + "
                f"{self.shed} shed"
            )
        for replica_id, metrics in self.replicas.items():
            if metrics.arrivals != (
                metrics.completed + metrics.shed + metrics.timed_out
            ):
                raise ValueError(
                    f"replica {replica_id} ledger does not balance"
                )
            metrics.reconcile()

    def summary(self) -> dict[str, float]:
        latency = self.percentiles()
        return {
            "arrivals": float(self.arrivals),
            "completed": float(self.completed),
            "shed": float(self.shed),
            "timed_out": float(self.timed_out),
            "timeout_rate": self.timeout_rate,
            "chunk_hit_rate": self.chunk_hit_rate,
            "throughput_rps": self.throughput(),
            "mean_replicas": self.mean_replicas(),
            **{f"latency_{k}": v for k, v in latency.items()},
        }
