"""Cluster serving: replicas, routing, autoscaling (§5.3 made real).

The scale-out subsystem over the single-node serving stack:

* :mod:`repro.cluster.replica` — a replica wraps a
  :class:`~repro.serving.server.QaServer` cost backend, its store
  view, and a live :class:`~repro.store.prefetch.ChunkPrefetcher`
  LRU.
* :mod:`repro.cluster.router` — pluggable placement: round-robin,
  least-backlog, and cache-affinity (plan chunks ∩ resident LRU).
* :mod:`repro.cluster.autoscaler` — backlog-driven replica scaling
  with hysteresis watermarks and per-direction cooldowns.
* :mod:`repro.cluster.workload` — Zipf-skewed topics over diurnal
  and burst offered-load traces.
* :mod:`repro.cluster.simulation` — the event-driven fleet replay
  (replicated routing or §5.3 sharded fan-out + tree reduce).
* :mod:`repro.cluster.metrics` — per-replica ledgers reconciled into
  cluster-wide percentiles.
"""

from .autoscaler import Autoscaler, AutoscalerConfig, ScalingDecision
from .metrics import ClusterMetrics
from .replica import Replica, ReplicaPass
from .router import (
    POLICIES,
    CacheAffinityPolicy,
    LeastBacklogPolicy,
    RoundRobinPolicy,
    Router,
    RoutingPolicy,
)
from .simulation import ClusterConfig, ClusterSim
from .workload import (
    ClusterRequest,
    RateSegment,
    burst_trace,
    diurnal_trace,
    requests_from_trace,
    row_span_chunks,
    skewed_workload,
    topic_chunks,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ScalingDecision",
    "ClusterMetrics",
    "Replica",
    "ReplicaPass",
    "Router",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastBacklogPolicy",
    "CacheAffinityPolicy",
    "POLICIES",
    "ClusterConfig",
    "ClusterSim",
    "ClusterRequest",
    "RateSegment",
    "burst_trace",
    "diurnal_trace",
    "requests_from_trace",
    "row_span_chunks",
    "skewed_workload",
    "topic_chunks",
]
