"""Vocabulary: word <-> integer ID mapping with a reserved pad token.

Word ID 0 is the padding token (see :data:`repro.core.numerics.PAD_ID`);
its embedding row is pinned to zero by the engines, which makes padded
bag-of-words sums exact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Vocabulary", "tokenize"]

PAD_TOKEN = "<pad>"

#: Characters stripped by :func:`tokenize` (sentence-level punctuation;
#: intra-word characters like hyphens and apostrophes are kept).
_PUNCTUATION = ".,;:!?\"()[]"


def tokenize(text: str) -> list[str]:
    """Split raw text into clean lowercase tokens.

    The minimal tokenizer the :class:`Vocabulary` docstring assumes:
    whitespace split, surrounding punctuation stripped, lowercased.
    Document ingestion (:mod:`repro.docqa.corpus`) runs plain text
    through this before interning; the bAbI generators emit clean
    tokens and skip it.
    """
    tokens = []
    for raw in text.split():
        token = raw.strip(_PUNCTUATION).lower()
        if token:
            tokens.append(token)
    return tokens


class Vocabulary:
    """A growable word <-> ID mapping.

    Words are lowercased; punctuation is expected to be stripped by the
    tokenizer (the bAbI generators emit clean tokens).
    """

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._word_to_id: dict[str, int] = {PAD_TOKEN: 0}
        self._id_to_word: list[str] = [PAD_TOKEN]
        self._frozen = False
        for word in words:
            self.add(word)

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._word_to_id

    def add(self, word: str) -> int:
        """Intern a word; returns its ID."""
        word = word.lower()
        if word in self._word_to_id:
            return self._word_to_id[word]
        if self._frozen:
            raise KeyError(f"vocabulary is frozen; unknown word {word!r}")
        word_id = len(self._id_to_word)
        self._word_to_id[word] = word_id
        self._id_to_word.append(word)
        return word_id

    def freeze(self) -> "Vocabulary":
        """Disallow further growth (use after indexing a training set)."""
        self._frozen = True
        return self

    def id_of(self, word: str) -> int:
        try:
            return self._word_to_id[word.lower()]
        except KeyError:
            raise KeyError(f"unknown word {word!r}") from None

    def word_of(self, word_id: int) -> str:
        if not 0 <= word_id < len(self._id_to_word):
            raise IndexError(f"word ID {word_id} out of range")
        return self._id_to_word[word_id]

    def encode(self, tokens: Sequence[str], width: int | None = None) -> np.ndarray:
        """Encode a token list as padded word IDs.

        Args:
            tokens: words to encode (interned if the vocab is not frozen).
            width: pad/validate to this length.
        """
        ids = [self.add(t) if not self._frozen else self.id_of(t) for t in tokens]
        if width is not None:
            if len(ids) > width:
                raise ValueError(f"{len(ids)} tokens exceed width {width}")
            ids = ids + [0] * (width - len(ids))
        return np.array(ids, dtype=np.int64)

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Decode IDs back to words, dropping padding."""
        return [self.word_of(int(i)) for i in ids if int(i) != 0]
