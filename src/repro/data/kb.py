"""Synthetic knowledge-base substrate (the WikiMovies-style setting).

The paper repeatedly motivates MnnFast with *large-scale* question
answering over knowledge sources like Wikipedia, citing Key-Value
Memory Networks [Miller et al. 2016] as the representative system.
That work evaluates on WikiMovies: a knowledge base of
(subject, relation, object) facts about films.  This module generates
an equivalent synthetic KB — films with directors, actors, genres,
years — plus natural-language-shaped questions over it, so the
key-value extension in :mod:`repro.core.kv` can be exercised at any
scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vocab import Vocabulary

__all__ = ["Fact", "KnowledgeBase", "KbQuestion", "generate_movie_kb"]

_DIRECTOR_POOL = (
    "bergman", "kurosawa", "varda", "hitchcock", "kubrick", "campion",
    "miyazaki", "tarkovsky", "fellini", "akerman",
)
_ACTOR_POOL = (
    "ullmann", "mifune", "hepburn", "stewart", "oshima", "deneuve",
    "poitier", "masina", "leaud", "karina", "grant", "bacall",
)
_GENRES = ("drama", "thriller", "comedy", "documentary", "animation", "noir")

#: relation -> question template (subject slot filled with the film);
#: each template contains its relation's surface keyword.
_QUESTION_TEMPLATES = {
    "directed_by": "who directed {film}",
    "starring": "who starred in {film}",
    "has_genre": "what genre is {film}",
    "release_year": "when was {film} released",
}


#: Surface form of each relation as it appears in questions; keys use
#: the same tokens so untrained BoW addressing has signal to match on
#: (real KV-MemNN keys are text windows sharing surface forms too).
RELATION_KEYWORDS = {
    "directed_by": ["directed"],
    "starring": ["starred"],
    "has_genre": ["genre"],
    "release_year": ["released"],
}


@dataclass(frozen=True)
class Fact:
    """One (subject, relation, object) triple."""

    subject: str
    relation: str
    obj: str

    def key_tokens(self) -> list[str]:
        """Tokens of the memory *key* (subject + relation surface words)."""
        return self.subject.split() + RELATION_KEYWORDS[self.relation]

    def value_token(self) -> str:
        """The memory *value*: the object entity (single token)."""
        return self.obj


@dataclass(frozen=True)
class KbQuestion:
    """A question over the KB.

    Attributes:
        tokens: question words.
        answer: the generated fact's object.
        valid_answers: every object valid for the (subject, relation)
            the question asks about — multi-valued relations like
            ``starring`` can have several correct answers.
        fact_index: index of the generating fact in the KB.
    """

    tokens: list[str]
    answer: str
    valid_answers: tuple[str, ...]
    fact_index: int


@dataclass
class KnowledgeBase:
    """A bag of facts plus the derived vocabulary."""

    facts: list[Fact] = field(default_factory=list)
    vocabulary: Vocabulary = field(default_factory=Vocabulary)

    def __len__(self) -> int:
        return len(self.facts)

    def index_words(self) -> None:
        for fact in self.facts:
            for token in fact.key_tokens():
                self.vocabulary.add(token)
            self.vocabulary.add(fact.value_token())

    def facts_about(self, subject: str) -> list[Fact]:
        return [f for f in self.facts if f.subject == subject]


def _film_title(rng: np.random.Generator, index: int) -> str:
    adjectives = ("silent", "crimson", "endless", "hidden", "broken",
                  "electric", "northern", "paper")
    nouns = ("mirror", "harbor", "garden", "letter", "voyage", "winter",
             "orchid", "signal")
    adjective = adjectives[int(rng.integers(len(adjectives)))]
    noun = nouns[int(rng.integers(len(nouns)))]
    return f"{adjective} {noun} {index}"


def generate_movie_kb(
    num_films: int = 200,
    seed: int = 0,
    questions_per_film: int = 1,
) -> tuple[KnowledgeBase, list[KbQuestion]]:
    """Generate a WikiMovies-like KB and questions over it.

    Every film gets a director, 1-3 actors, a genre and a year; each
    question asks one relation of one film (or an inverse question),
    and the correct answer is guaranteed unique for that question.

    Returns:
        ``(kb, questions)``.
    """
    if num_films <= 0:
        raise ValueError("num_films must be positive")
    if questions_per_film <= 0:
        raise ValueError("questions_per_film must be positive")
    rng = np.random.default_rng(seed)
    kb = KnowledgeBase()
    # film -> its facts' indices, for question generation.
    film_facts: dict[str, list[int]] = {}

    for index in range(num_films):
        film = _film_title(rng, index)
        director = _DIRECTOR_POOL[int(rng.integers(len(_DIRECTOR_POOL)))]
        year = str(int(rng.integers(1940, 2020)))
        genre = _GENRES[int(rng.integers(len(_GENRES)))]
        actors = rng.choice(
            len(_ACTOR_POOL), size=int(rng.integers(1, 4)), replace=False
        )
        triples = [
            Fact(film, "directed_by", director),
            Fact(film, "release_year", year),
            Fact(film, "has_genre", genre),
        ] + [Fact(film, "starring", _ACTOR_POOL[int(a)]) for a in actors]
        film_facts[film] = []
        for fact in triples:
            film_facts[film].append(len(kb.facts))
            kb.facts.append(fact)

    kb.index_words()

    questions: list[KbQuestion] = []
    films = sorted(film_facts)
    for film in films:
        indices = film_facts[film]
        chosen = rng.choice(len(indices), size=min(questions_per_film, len(indices)),
                            replace=False)
        for pick in chosen:
            fact_index = indices[int(pick)]
            fact = kb.facts[fact_index]
            template = _QUESTION_TEMPLATES[fact.relation]
            tokens = template.format(film=film).split()
            for token in tokens:
                kb.vocabulary.add(token)
            valid = tuple(
                kb.facts[i].obj
                for i in indices
                if kb.facts[i].relation == fact.relation
            )
            questions.append(
                KbQuestion(
                    tokens=tokens,
                    answer=fact.obj,
                    valid_answers=valid,
                    fact_index=fact_index,
                )
            )
    return kb, questions
