"""Dataset substrates: synthetic bAbI tasks and Zipfian word streams."""

from .babi import (
    Example,
    TASK_NAMES,
    build_vocabulary,
    generate_example,
    generate_mixed,
    generate_task,
    vectorize,
)
from .babi_format import dump_examples, dumps_examples, load_examples, loads_examples
from .corpus import ZipfCorpus
from .kb import Fact, KbQuestion, KnowledgeBase, generate_movie_kb
from .vocab import Vocabulary, tokenize

__all__ = [
    "dump_examples",
    "dumps_examples",
    "load_examples",
    "loads_examples",
    "Example",
    "TASK_NAMES",
    "generate_example",
    "generate_task",
    "generate_mixed",
    "build_vocabulary",
    "vectorize",
    "ZipfCorpus",
    "Vocabulary",
    "tokenize",
    "Fact",
    "KbQuestion",
    "KnowledgeBase",
    "generate_movie_kb",
]
