"""Zipfian word-frequency streams (the COCA substitute for Fig. 14).

§5.4.2 drives the embedding cache with word frequencies from the
Corpus of Contemporary American English.  Natural-language word
frequency is canonically Zipfian — rank-``r`` frequency proportional to
``1 / r^s`` with ``s`` close to 1 — so a seeded Zipf sampler over a
COCA-sized vocabulary exercises the cache identically (high locality
from few very frequent words, a long tail of rare ones).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfCorpus"]


class ZipfCorpus:
    """A word-ID stream with exact (truncated) Zipf rank frequencies.

    Args:
        vocab_size: number of distinct words (COCA-scale by default).
        exponent: Zipf exponent ``s`` (English is close to 1).
        seed: RNG seed for reproducible streams.
        shuffle_ids: assign random word IDs to ranks.  Real embedding
            dictionaries do not order words by frequency, and the
            paper's embedding cache is indexed by word ID — shuffling
            is what makes direct-mapped conflicts realistic.
    """

    def __init__(
        self,
        vocab_size: int = 25_000,
        exponent: float = 1.0,
        seed: int = 0,
        shuffle_ids: bool = True,
    ) -> None:
        if vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {vocab_size}")
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent}")
        self.vocab_size = vocab_size
        self.exponent = exponent
        self._rng = np.random.default_rng(seed)

        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        self._probabilities = weights / weights.sum()
        self._cumulative = np.cumsum(self._probabilities)

        if shuffle_ids:
            self._rank_to_id = self._rng.permutation(vocab_size)
        else:
            self._rank_to_id = np.arange(vocab_size)

    def probability_of_rank(self, rank: int) -> float:
        """Occurrence probability of the rank-``rank`` word (1-based)."""
        if not 1 <= rank <= self.vocab_size:
            raise ValueError(f"rank must be in [1, {self.vocab_size}], got {rank}")
        return float(self._probabilities[rank - 1])

    def top_mass(self, k: int) -> float:
        """Total probability mass of the ``k`` most frequent words —
        the upper bound on any k-entry cache's hit rate."""
        if not 0 <= k <= self.vocab_size:
            raise ValueError(f"k must be in [0, {self.vocab_size}], got {k}")
        return float(self._cumulative[k - 1]) if k else 0.0

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` word IDs from the Zipf distribution."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        uniform = self._rng.random(n)
        ranks = np.searchsorted(self._cumulative, uniform, side="right")
        return self._rank_to_id[ranks]

    def word_id_of_rank(self, rank: int) -> int:
        """Word ID assigned to a frequency rank (1-based)."""
        if not 1 <= rank <= self.vocab_size:
            raise ValueError(f"rank must be in [1, {self.vocab_size}], got {rank}")
        return int(self._rank_to_id[rank - 1])
