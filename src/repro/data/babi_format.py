"""Read and write the authentic bAbI text file format.

Facebook distributes the bAbI tasks as plain text where each line is

    <line-number> <sentence>

for story sentences, and

    <line-number> <question>\t<answer>\t<supporting line numbers>

for questions.  Line numbers restart at 1 for each new story.  This
module serializes the synthetic :class:`~repro.data.babi.Example`
values into exactly that format and parses it back, so the rest of the
pipeline (vectorization, training, zero-skip evaluation) can run
unchanged on the *real* bAbI files when they are available.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO

from .babi import Example

__all__ = ["dump_examples", "dumps_examples", "load_examples", "loads_examples"]


def dumps_examples(examples: Iterable[Example]) -> str:
    """Serialize examples to bAbI-format text.

    Each example becomes one self-contained story: its sentences at
    lines 1..n followed by the question line with answer and
    1-based supporting line numbers.
    """
    lines: list[str] = []
    for example in examples:
        for index, sentence in enumerate(example.story, start=1):
            lines.append(f"{index} {' '.join(sentence)} .")
        supporting = " ".join(str(i + 1) for i in example.supporting)
        question_number = len(example.story) + 1
        lines.append(
            f"{question_number} {' '.join(example.question)} ?"
            f"\t{example.answer}\t{supporting}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def dump_examples(examples: Iterable[Example], path: str | Path) -> None:
    """Write examples to a bAbI-format file."""
    Path(path).write_text(dumps_examples(examples), encoding="utf-8")


def loads_examples(text: str, task_id: int = 0) -> list[Example]:
    """Parse bAbI-format text into examples.

    Handles the real files' structure: a story may contain *several*
    questions, each of which becomes its own example carrying the
    story lines seen so far (question lines are part of the numbering
    but are not story sentences, matching the official format).

    Args:
        text: file contents.
        task_id: task number to stamp on the parsed examples (the real
            files encode it in the filename, not the contents).
    """
    examples: list[Example] = []
    story: list[list[str]] = []
    # Maps the file's 1-based line number to an index into ``story``
    # (question lines occupy numbers but are not story sentences).
    line_to_story_index: dict[int, int] = {}

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        number_text, _, rest = line.partition(" ")
        try:
            number = int(number_text)
        except ValueError as error:
            raise ValueError(f"malformed bAbI line (no number): {raw_line!r}") from error
        if number == 1:
            story = []
            line_to_story_index = {}

        if "\t" in rest:
            question_part, answer, *support_part = rest.split("\t")
            question = _tokenize(question_part)
            supporting = []
            if support_part and support_part[0].strip():
                for token in support_part[0].split():
                    referenced = int(token)
                    if referenced not in line_to_story_index:
                        raise ValueError(
                            f"supporting fact {referenced} refers to a "
                            f"non-story line: {raw_line!r}"
                        )
                    supporting.append(line_to_story_index[referenced])
            examples.append(
                Example(
                    story=[list(s) for s in story],
                    question=question,
                    answer=answer.strip(),
                    supporting=supporting,
                    task_id=task_id,
                )
            )
        else:
            line_to_story_index[number] = len(story)
            story.append(_tokenize(rest))
    return examples


def load_examples(path: str | Path, task_id: int = 0) -> list[Example]:
    """Parse a bAbI-format file into examples."""
    return loads_examples(Path(path).read_text(encoding="utf-8"), task_id=task_id)


def _tokenize(text: str) -> list[str]:
    """Lowercase and strip the trailing punctuation bAbI files carry."""
    tokens = []
    for token in text.strip().split():
        token = token.strip().lower().strip(".?!,")
        if token:
            tokens.append(token)
    return tokens
