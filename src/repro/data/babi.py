"""Synthetic bAbI-style question-answering tasks (Weston et al. 2015).

The paper's accuracy/sparsity results (Figs. 6 and 7) are measured on
Facebook's 20 bAbI tasks.  bAbI itself is template-generated synthetic
data; this module regenerates the same *task structures* from seeded
simulations so the trained memory network exhibits the same
sparse-attention behaviour zero-skipping exploits (see DESIGN.md §2).

Every task is a generator function producing :class:`Example` values:
a tokenized story, a question, a single answer token (multi-answer
tasks join with commas, exactly as bAbI does), and the indices of the
supporting facts.

All twenty task families are implemented:

====  =========================  ====  =========================
 1    single supporting fact      11   basic coreference
 2    two supporting facts        12   conjunction
 3    three supporting facts      13   compound coreference
 4    two-argument relations      14   time reasoning
 5    three-argument relations    15   basic deduction
 6    yes/no questions            16   basic induction
 7    counting                    17   positional reasoning
 8    lists / sets                18   size reasoning
 9    simple negation             19   path finding
10    indefinite knowledge        20   agent's motivation
====  =========================  ====  =========================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vocab import Vocabulary

__all__ = [
    "Example",
    "SCALABLE_TASKS",
    "TASK_NAMES",
    "generate_example",
    "generate_task",
    "generate_mixed",
    "build_vocabulary",
    "vectorize",
]

ACTORS = ("mary", "john", "daniel", "sandra", "fred", "bill", "julie", "jeff")
LOCATIONS = (
    "kitchen", "bathroom", "bedroom", "garden", "office", "hallway",
    "park", "school", "cinema",
)
OBJECTS = ("football", "apple", "milk", "book", "knife")
MOVE_VERBS = ("went to", "moved to", "travelled to", "journeyed to")
GRAB_VERBS = ("grabbed", "took", "picked up")
DROP_VERBS = ("dropped", "discarded", "put down")
NUMBER_WORDS = ("none", "one", "two", "three", "four", "five")

TASK_NAMES = {
    1: "single-supporting-fact",
    2: "two-supporting-facts",
    3: "three-supporting-facts",
    4: "two-arg-relations",
    5: "three-arg-relations",
    6: "yes-no-questions",
    7: "counting",
    8: "lists-sets",
    9: "simple-negation",
    10: "indefinite-knowledge",
    11: "basic-coreference",
    12: "conjunction",
    13: "compound-coreference",
    14: "time-reasoning",
    15: "basic-deduction",
    16: "basic-induction",
    17: "positional-reasoning",
    18: "size-reasoning",
    19: "path-finding",
    20: "agents-motivation",
}


@dataclass
class Example:
    """One story/question/answer triple.

    Attributes:
        story: tokenized sentences, oldest first.
        question: tokenized question.
        answer: the answer token (comma-joined when multi-valued).
        supporting: indices into ``story`` of the facts that determine
            the answer.
        task_id: which bAbI task family generated it.
    """

    story: list[list[str]]
    question: list[str]
    answer: str
    supporting: list[int]
    task_id: int

    @property
    def num_sentences(self) -> int:
        return len(self.story)


def _sentence(text: str) -> list[str]:
    return text.split()


def _choice(rng: np.random.Generator, items) -> object:
    return items[int(rng.integers(len(items)))]


def _distinct(rng: np.random.Generator, items, k: int) -> list:
    idx = rng.choice(len(items), size=k, replace=False)
    return [items[int(i)] for i in idx]


# --- location world (tasks 1-3, 6-13) -----------------------------------------------


@dataclass
class _World:
    """Mutable actor/object state driven by the generators."""

    locations: dict[str, str] = field(default_factory=dict)
    holding: dict[str, list[str]] = field(default_factory=dict)
    object_site: dict[str, str] = field(default_factory=dict)
    # Story indices of the facts that currently determine each answer.
    actor_fact: dict[str, int] = field(default_factory=dict)
    object_facts: dict[str, list[int]] = field(default_factory=dict)

    def move(self, actor: str, location: str, index: int) -> None:
        self.locations[actor] = location
        self.actor_fact[actor] = index
        for obj in self.holding.get(actor, []):
            self.object_site[obj] = location
            self.object_facts[obj] = self.object_facts.get(obj, []) + [index]

    def grab(self, actor: str, obj: str, index: int) -> None:
        self.holding.setdefault(actor, []).append(obj)
        self.object_site[obj] = self.locations[actor]
        self.object_facts[obj] = [index, self.actor_fact[actor]]

    def drop(self, actor: str, obj: str, index: int) -> None:
        self.holding[actor].remove(obj)
        # The object stays where it was dropped; that fact plus the
        # actor's position fact pin it down.
        self.object_facts[obj] = [index, self.actor_fact[actor]]


def _simulate_moves(
    rng: np.random.Generator,
    length: int,
    with_objects: bool = False,
) -> tuple[list[list[str]], _World]:
    """Random walk of actors (optionally carrying objects)."""
    world = _World()
    actors = _distinct(rng, ACTORS, 4)
    story: list[list[str]] = []
    for index in range(length):
        actor = _choice(rng, actors)
        can_grab = (
            with_objects
            and actor in world.locations
            and len(world.holding.get(actor, [])) < 2
            and len(world.object_site) < len(OBJECTS)
        )
        can_drop = with_objects and world.holding.get(actor)
        roll = rng.random()
        if can_grab and roll < 0.3:
            taken = set()
            for held in world.holding.values():
                taken.update(held)
            taken.update(world.object_site)
            obj = _choice(rng, [o for o in OBJECTS if o not in taken])
            story.append(_sentence(f"{actor} {_choice(rng, GRAB_VERBS)} the {obj}"))
            world.grab(actor, obj, index)
        elif can_drop and roll < 0.45:
            obj = _choice(rng, world.holding[actor])
            story.append(_sentence(f"{actor} {_choice(rng, DROP_VERBS)} the {obj}"))
            world.drop(actor, obj, index)
        else:
            location = _choice(rng, LOCATIONS[:6])
            story.append(_sentence(f"{actor} {_choice(rng, MOVE_VERBS)} the {location}"))
            world.move(actor, location, index)
    return story, world




def _scaled(rng: np.random.Generator, lo: int, hi: int, scale: float) -> int:
    """Random story length in [lo, hi) stretched by ``scale``."""
    if scale <= 0:
        raise ValueError(f"story_scale must be positive, got {scale}")
    return max(1, int(round(int(rng.integers(lo, hi)) * scale)))

# --- the twenty tasks ------------------------------------------------------------


def _task_1(rng: np.random.Generator, story_scale: float = 1.0) -> Example:
    """Where is actor X?  One move sentence answers it."""
    story, world = _simulate_moves(rng, _scaled(rng, 4, 11, story_scale))
    actor = _choice(rng, sorted(world.locations))
    return Example(
        story=story,
        question=_sentence(f"where is {actor}"),
        answer=world.locations[actor],
        supporting=[world.actor_fact[actor]],
        task_id=1,
    )


def _task_2(rng: np.random.Generator, story_scale: float = 1.0) -> Example:
    """Where is object O?  Needs the grab fact and the holder's move."""
    while True:
        story, world = _simulate_moves(
            rng, _scaled(rng, 6, 14, story_scale), with_objects=True
        )
        placed = sorted(world.object_site)
        if placed:
            obj = _choice(rng, placed)
            return Example(
                story=story,
                question=_sentence(f"where is the {obj}"),
                answer=world.object_site[obj],
                supporting=sorted(set(world.object_facts[obj]))[-2:],
                task_id=2,
            )


def _task_3(rng: np.random.Generator) -> Example:
    """Where was object O before location L?  Needs three facts: the
    grab plus the two moves that carried the object through ``loc_b``
    into ``loc_c``."""
    actor = _choice(rng, ACTORS[:4])
    obj = _choice(rng, OBJECTS)
    loc_a, loc_b, loc_c = _distinct(rng, LOCATIONS[:6], 3)
    distractors, _ = _simulate_moves(rng, int(rng.integers(2, 6)))
    story = list(distractors)
    base = len(story)
    story.append(_sentence(f"{actor} {_choice(rng, MOVE_VERBS)} the {loc_a}"))
    story.append(_sentence(f"{actor} {_choice(rng, GRAB_VERBS)} the {obj}"))
    story.append(_sentence(f"{actor} {_choice(rng, MOVE_VERBS)} the {loc_b}"))
    story.append(_sentence(f"{actor} {_choice(rng, MOVE_VERBS)} the {loc_c}"))
    return Example(
        story=story,
        question=_sentence(f"where was the {obj} before the {loc_c}"),
        answer=loc_b,
        supporting=[base + 1, base + 2, base + 3],
        task_id=3,
    )


_DIRECTIONS = {"north": "south", "south": "north", "east": "west", "west": "east"}


def _task_4(rng: np.random.Generator) -> Example:
    """Two-argument relations: what is north of the bedroom?"""
    loc_a, loc_b, loc_c = _distinct(rng, LOCATIONS[:6], 3)
    d1, d2 = _distinct(rng, sorted(_DIRECTIONS), 2)
    story = [
        _sentence(f"the {loc_a} is {d1} of the {loc_b}"),
        _sentence(f"the {loc_c} is {d2} of the {loc_b}"),
    ]
    if rng.random() < 0.5:
        question = _sentence(f"what is {d1} of the {loc_b}")
        answer, supporting = loc_a, [0]
    else:
        question = _sentence(f"what is the {loc_a} {d1} of")
        answer, supporting = loc_b, [0]
    return Example(story, question, answer, supporting, task_id=4)


def _task_5(rng: np.random.Generator) -> Example:
    """Three-argument relations: who gave the cake to Fred?"""
    gifts = ("cake", "football", "apple", "milk")
    story = []
    events = []
    for _ in range(int(rng.integers(2, 5))):
        giver, receiver = _distinct(rng, ACTORS[:5], 2)
        obj = _choice(rng, gifts)
        story.append(_sentence(f"{giver} gave the {obj} to {receiver}"))
        events.append((giver, obj, receiver))
    index = int(rng.integers(len(events)))
    giver, obj, receiver = events[index]
    kind = rng.random()
    if kind < 1 / 3:
        question, answer = f"who gave the {obj} to {receiver}", giver
    elif kind < 2 / 3:
        question, answer = f"what did {giver} give to {receiver}", obj
    else:
        question, answer = f"who did {giver} give the {obj} to", receiver
    # Ask about the last matching event so the answer is unique.
    for later in range(len(events) - 1, index, -1):
        g, o, r = events[later]
        if (kind < 1 / 3 and (o, r) == (obj, receiver)) or (
            1 / 3 <= kind < 2 / 3 and (g, r) == (giver, receiver)
        ) or (kind >= 2 / 3 and (g, o) == (giver, obj)):
            index = later
            answer = g if kind < 1 / 3 else o if kind < 2 / 3 else r
            break
    return Example(story, _sentence(question), answer, [index], task_id=5)


def _task_6(rng: np.random.Generator, story_scale: float = 1.0) -> Example:
    """Yes/no: is actor X in location L?"""
    story, world = _simulate_moves(rng, _scaled(rng, 4, 10, story_scale))
    actor = _choice(rng, sorted(world.locations))
    actual = world.locations[actor]
    if rng.random() < 0.5:
        asked, answer = actual, "yes"
    else:
        asked = _choice(rng, [l for l in LOCATIONS[:6] if l != actual])
        answer = "no"
    return Example(
        story,
        _sentence(f"is {actor} in the {asked}"),
        answer,
        [world.actor_fact[actor]],
        task_id=6,
    )


def _task_7(rng: np.random.Generator, story_scale: float = 1.0) -> Example:
    """Counting: how many objects is X carrying?"""
    story, world = _simulate_moves(
        rng, _scaled(rng, 6, 14, story_scale), with_objects=True
    )
    actor = _choice(rng, sorted(world.locations))
    count = len(world.holding.get(actor, []))
    supporting = [
        i for i, s in enumerate(story)
        if s[0] == actor and " ".join(s[1:-2]) in GRAB_VERBS + DROP_VERBS
    ]
    return Example(
        story,
        _sentence(f"how many objects is {actor} carrying"),
        NUMBER_WORDS[count],
        supporting or [world.actor_fact[actor]],
        task_id=7,
    )


def _task_8(rng: np.random.Generator, story_scale: float = 1.0) -> Example:
    """Lists/sets: what is X carrying?  (comma-joined answer)"""
    story, world = _simulate_moves(
        rng, _scaled(rng, 6, 14, story_scale), with_objects=True
    )
    actor = _choice(rng, sorted(world.locations))
    held = world.holding.get(actor, [])
    answer = ",".join(sorted(held)) if held else "nothing"
    supporting = [
        i for i, s in enumerate(story)
        if s[0] == actor and " ".join(s[1:-2]) in GRAB_VERBS + DROP_VERBS
    ]
    return Example(
        story,
        _sentence(f"what is {actor} carrying"),
        answer,
        supporting or [world.actor_fact[actor]],
        task_id=8,
    )


def _task_9(rng: np.random.Generator, story_scale: float = 1.0) -> Example:
    """Simple negation: X is no longer in the kitchen."""
    actors = _distinct(rng, ACTORS[:5], 3)
    story: list[list[str]] = []
    state: dict[str, tuple[str, bool, int]] = {}  # actor -> (loc, present?, idx)
    for _ in range(_scaled(rng, 4, 9, story_scale)):
        actor = _choice(rng, actors)
        if actor in state and state[actor][1] and rng.random() < 0.35:
            loc = state[actor][0]
            story.append(_sentence(f"{actor} is no longer in the {loc}"))
            state[actor] = (loc, False, len(story) - 1)
        else:
            loc = _choice(rng, LOCATIONS[:6])
            story.append(_sentence(f"{actor} is in the {loc}"))
            state[actor] = (loc, True, len(story) - 1)
    actor = _choice(rng, sorted(state))
    loc, present, index = state[actor]
    answer = "yes" if present else "no"
    return Example(
        story, _sentence(f"is {actor} in the {loc}"), answer, [index], task_id=9
    )


def _task_10(rng: np.random.Generator) -> Example:
    """Indefinite knowledge: X is either in the A or the B -> maybe."""
    actors = _distinct(rng, ACTORS[:5], 3)
    story: list[list[str]] = []
    state: dict[str, tuple[tuple[str, ...], int]] = {}
    for _ in range(int(rng.integers(3, 8))):
        actor = _choice(rng, actors)
        if rng.random() < 0.5:
            pair = tuple(_distinct(rng, LOCATIONS[:6], 2))
            story.append(
                _sentence(f"{actor} is either in the {pair[0]} or the {pair[1]}")
            )
            state[actor] = (pair, len(story) - 1)
        else:
            loc = _choice(rng, LOCATIONS[:6])
            story.append(_sentence(f"{actor} is in the {loc}"))
            state[actor] = ((loc,), len(story) - 1)
    actor = _choice(rng, sorted(state))
    places, index = state[actor]
    roll = rng.random()
    if len(places) == 1:
        if roll < 0.5:
            asked, answer = places[0], "yes"
        else:
            asked = _choice(rng, [l for l in LOCATIONS[:6] if l not in places])
            answer = "no"
    else:
        if roll < 0.5:
            asked, answer = _choice(rng, places), "maybe"
        else:
            asked = _choice(rng, [l for l in LOCATIONS[:6] if l not in places])
            answer = "no"
    return Example(
        story, _sentence(f"is {actor} in the {asked}"), answer, [index], task_id=10
    )


def _task_11(rng: np.random.Generator) -> Example:
    """Basic coreference: afterwards she went to the garden."""
    actor = _choice(rng, ACTORS[:6])
    pronoun = "she" if actor in ("mary", "sandra", "julie") else "he"
    loc_a, loc_b = _distinct(rng, LOCATIONS[:6], 2)
    others, _ = _simulate_moves(rng, int(rng.integers(1, 4)))
    story = list(others)
    base = len(story)
    story.append(_sentence(f"{actor} {_choice(rng, MOVE_VERBS)} the {loc_a}"))
    story.append(_sentence(f"afterwards {pronoun} {_choice(rng, MOVE_VERBS)} the {loc_b}"))
    return Example(
        story,
        _sentence(f"where is {actor}"),
        loc_b,
        [base, base + 1],
        task_id=11,
    )


def _task_12(rng: np.random.Generator, story_scale: float = 1.0) -> Example:
    """Conjunction: Mary and John went to the office."""
    story: list[list[str]] = []
    state: dict[str, tuple[str, int]] = {}
    for _ in range(_scaled(rng, 3, 7, story_scale)):
        pair = _distinct(rng, ACTORS[:6], 2)
        loc = _choice(rng, LOCATIONS[:6])
        story.append(
            _sentence(f"{pair[0]} and {pair[1]} {_choice(rng, MOVE_VERBS)} the {loc}")
        )
        for actor in pair:
            state[actor] = (loc, len(story) - 1)
    actor = _choice(rng, sorted(state))
    loc, index = state[actor]
    return Example(story, _sentence(f"where is {actor}"), loc, [index], task_id=12)


def _task_13(rng: np.random.Generator) -> Example:
    """Compound coreference: then they went to the garden."""
    pair = _distinct(rng, ACTORS[:6], 2)
    loc_a, loc_b = _distinct(rng, LOCATIONS[:6], 2)
    others, _ = _simulate_moves(rng, int(rng.integers(1, 4)))
    story = list(others)
    base = len(story)
    story.append(
        _sentence(f"{pair[0]} and {pair[1]} {_choice(rng, MOVE_VERBS)} the {loc_a}")
    )
    story.append(_sentence(f"then they {_choice(rng, MOVE_VERBS)} the {loc_b}"))
    actor = _choice(rng, pair)
    return Example(
        story, _sentence(f"where is {actor}"), loc_b, [base, base + 1], task_id=13
    )


_TIME_SLOTS = ("yesterday", "this morning", "this afternoon", "this evening")


def _task_14(rng: np.random.Generator) -> Example:
    """Time reasoning: where was X yesterday?"""
    actor = _choice(rng, ACTORS[:6])
    slots = list(_TIME_SLOTS)
    locs = _distinct(rng, LOCATIONS[3:9], len(slots))
    order = rng.permutation(len(slots))
    story = []
    slot_index = {}
    for position in order:
        slot, loc = slots[int(position)], locs[int(position)]
        story.append(_sentence(f"{slot} {actor} {_choice(rng, MOVE_VERBS)} the {loc}"))
        slot_index[slot] = len(story) - 1
    asked = int(rng.integers(len(slots)))
    slot, answer = slots[asked], locs[asked]
    return Example(
        story,
        _sentence(f"where was {actor} {slot}"),
        answer,
        [slot_index[slot]],
        task_id=14,
    )


_SPECIES = ("mice", "cats", "wolves", "sheep")
_FEARS = {"mice": "cats", "sheep": "wolves", "cats": "wolves", "wolves": "mice"}
_SINGULAR = {"mice": "mouse", "cats": "cat", "wolves": "wolf", "sheep": "sheep"}
_PET_NAMES = ("gertrude", "emily", "winona", "jessica")


def _task_15(rng: np.random.Generator) -> Example:
    """Basic deduction: Gertrude is a mouse; mice fear cats."""
    story = [
        _sentence(f"{species} are afraid of {_FEARS[species]}")
        for species in _SPECIES
    ]
    assignments = {}
    for name in _PET_NAMES:
        species = _choice(rng, _SPECIES)
        story.append(_sentence(f"{name} is a {_SINGULAR[species]}"))
        assignments[name] = (species, len(story) - 1)
    name = _choice(rng, _PET_NAMES)
    species, index = assignments[name]
    rule_index = _SPECIES.index(species)
    return Example(
        story,
        _sentence(f"what is {name} afraid of"),
        _FEARS[species],
        [rule_index, index],
        task_id=15,
    )


_BIRDS = ("swan", "lion", "frog", "rhino")
_COLORS = ("white", "yellow", "green", "gray")
_EXEMPLARS = ("lily", "bernhard", "greg", "brian")


def _task_16(rng: np.random.Generator) -> Example:
    """Basic induction: Lily is a swan; Lily is white; Bernhard is a swan."""
    species_color = {
        species: color
        for species, color in zip(_BIRDS, rng.permutation(_COLORS))
    }
    story = []
    witness_facts = {}
    for name, species in zip(_EXEMPLARS[:-1], _BIRDS[:-1]):
        story.append(_sentence(f"{name} is a {species}"))
        story.append(_sentence(f"{name} is {species_color[species]}"))
        witness_facts[species] = [len(story) - 2, len(story) - 1]
    target = _EXEMPLARS[-1]
    species = _choice(rng, _BIRDS[:-1])
    story.append(_sentence(f"{target} is a {species}"))
    supporting = witness_facts[species] + [len(story) - 1]
    return Example(
        story,
        _sentence(f"what color is {target}"),
        species_color[species],
        supporting,
        task_id=16,
    )


_SHAPES = ("triangle", "square", "circle", "rectangle")


def _task_17(rng: np.random.Generator) -> Example:
    """Positional reasoning over a 2-D arrangement of shapes."""
    shapes = _distinct(rng, _SHAPES, 3)
    positions = {shapes[0]: (0, 0)}
    story = []
    for prev, shape in zip(shapes, shapes[1:]):
        dx, dy = 0, 0
        relation = _choice(rng, ("above", "below", "left of", "right of"))
        if relation == "above":
            dy = 1
        elif relation == "below":
            dy = -1
        elif relation == "left of":
            dx = -1
        else:
            dx = 1
        px, py = positions[prev]
        positions[shape] = (px + dx, py + dy)
        story.append(_sentence(f"the {shape} is {relation} the {prev}"))
    a, b = _distinct(rng, shapes, 2)
    relation = _choice(rng, ("above", "below", "left of", "right of"))
    (ax, ay), (bx, by) = positions[a], positions[b]
    truth = {
        "above": ay > by,
        "below": ay < by,
        "left of": ax < bx,
        "right of": ax > bx,
    }[relation]
    return Example(
        story,
        _sentence(f"is the {a} {relation} the {b}"),
        "yes" if truth else "no",
        list(range(len(story))),
        task_id=17,
    )


_CONTAINERS = ("box", "suitcase", "chest", "chocolate", "crate")


def _task_18(rng: np.random.Generator) -> Example:
    """Size reasoning: does the chocolate fit in the box?"""
    order = list(rng.permutation(_CONTAINERS))  # big -> small
    story = [
        _sentence(f"the {big} is bigger than the {small}")
        for big, small in zip(order, order[1:])
    ]
    a, b = _distinct(rng, order, 2)
    fits = order.index(a) > order.index(b)  # a smaller than b -> fits
    question = _sentence(f"does the {a} fit in the {b}")
    lo, hi = sorted((order.index(a), order.index(b)))
    return Example(
        story,
        question,
        "yes" if fits else "no",
        list(range(lo, hi)),
        task_id=18,
    )


_GRID_MOVES = {"north": (0, 1), "south": (0, -1), "east": (1, 0), "west": (-1, 0)}
_MOVE_LETTER = {"north": "n", "south": "s", "east": "e", "west": "w"}


def _task_19(rng: np.random.Generator) -> Example:
    """Path finding: how do you go from the kitchen to the office?"""
    rooms = _distinct(rng, LOCATIONS[:6], 3)
    positions = {rooms[0]: (0, 0)}
    story = []
    for prev, room in zip(rooms, rooms[1:]):
        direction = _choice(rng, sorted(_GRID_MOVES))
        dx, dy = _GRID_MOVES[direction]
        px, py = positions[prev]
        candidate = (px + dx, py + dy)
        while candidate in positions.values():
            direction = _choice(rng, sorted(_GRID_MOVES))
            dx, dy = _GRID_MOVES[direction]
            candidate = (px + dx, py + dy)
        positions[room] = candidate
        story.append(_sentence(f"the {room} is {direction} of the {prev}"))
    start, goal = rooms[0], rooms[2]
    (sx, sy), (gx, gy) = positions[start], positions[goal]
    moves = []
    dx, dy = gx - sx, gy - sy
    moves.extend(["e" if dx > 0 else "w"] * abs(dx))
    moves.extend(["n" if dy > 0 else "s"] * abs(dy))
    return Example(
        story,
        _sentence(f"how do you go from the {start} to the {goal}"),
        ",".join(moves),
        list(range(len(story))),
        task_id=19,
    )


_MOTIVES = {
    "hungry": ("kitchen", "apple"),
    "thirsty": ("kitchen", "milk"),
    "tired": ("bedroom", "bed"),
    "bored": ("garden", "football"),
}


def _task_20(rng: np.random.Generator) -> Example:
    """Agent's motivation: why did John go to the kitchen?"""
    actor = _choice(rng, ACTORS[:6])
    motive = _choice(rng, sorted(_MOTIVES))
    place, thing = _MOTIVES[motive]
    story = [
        _sentence(f"{actor} is {motive}"),
        _sentence(f"{actor} {_choice(rng, MOVE_VERBS)} the {place}"),
        _sentence(f"{actor} {_choice(rng, GRAB_VERBS)} the {thing}"),
    ]
    kind = rng.random()
    if kind < 1 / 3:
        question = f"why did {actor} go to the {place}"
        answer, supporting = motive, [0]
    elif kind < 2 / 3:
        question = f"why did {actor} get the {thing}"
        answer, supporting = motive, [0]
    else:
        story = story[:1]
        question = f"where will {actor} go"
        answer, supporting = place, [0]
    return Example(story, _sentence(question), answer, supporting, task_id=20)


_GENERATORS = {
    1: _task_1, 2: _task_2, 3: _task_3, 4: _task_4, 5: _task_5,
    6: _task_6, 7: _task_7, 8: _task_8, 9: _task_9, 10: _task_10,
    11: _task_11, 12: _task_12, 13: _task_13, 14: _task_14, 15: _task_15,
    16: _task_16, 17: _task_17, 18: _task_18, 19: _task_19, 20: _task_20,
}


# --- public API -----------------------------------------------------------------


#: Tasks whose story length scales with ``story_scale`` (the others have
#: structurally fixed story shapes, e.g. the four deduction rules).
SCALABLE_TASKS = frozenset({1, 2, 6, 7, 8, 9, 12})


def generate_example(
    task_id: int, rng: np.random.Generator, story_scale: float = 1.0
) -> Example:
    """Generate a single example of one task family.

    Args:
        story_scale: stretch factor for the story length of the
            :data:`SCALABLE_TASKS` (the paper's Fig. 6 uses stories of
            up to 50 sentences; scale ~4 reaches that regime).
    """
    if task_id not in _GENERATORS:
        raise ValueError(f"task_id must be 1..20, got {task_id}")
    if story_scale <= 0:
        raise ValueError(f"story_scale must be positive, got {story_scale}")
    if task_id in SCALABLE_TASKS:
        return _GENERATORS[task_id](rng, story_scale=story_scale)
    return _GENERATORS[task_id](rng)


def generate_task(
    task_id: int, num_examples: int, seed: int = 0, story_scale: float = 1.0
) -> list[Example]:
    """Generate a deterministic set of examples for one task."""
    if num_examples < 0:
        raise ValueError("num_examples must be non-negative")
    rng = np.random.default_rng((seed, task_id))
    return [
        generate_example(task_id, rng, story_scale=story_scale)
        for _ in range(num_examples)
    ]


def generate_mixed(
    num_examples: int, seed: int = 0, task_ids: tuple[int, ...] | None = None
) -> list[Example]:
    """Round-robin examples across task families (the joint setting)."""
    task_ids = task_ids if task_ids is not None else tuple(range(1, 21))
    rng = np.random.default_rng(seed)
    return [
        generate_example(task_ids[i % len(task_ids)], rng)
        for i in range(num_examples)
    ]


def build_vocabulary(examples: list[Example]) -> Vocabulary:
    """Index every word (and answer token) in a set of examples."""
    vocab = Vocabulary()
    for example in examples:
        for sentence in example.story:
            for token in sentence:
                vocab.add(token)
        for token in example.question:
            vocab.add(token)
        vocab.add(example.answer)
    return vocab


def vectorize(
    examples: list[Example],
    vocab: Vocabulary,
    max_words: int,
    max_sentences: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Encode examples as padded integer arrays for the model/engine.

    Stories longer than ``max_sentences`` keep their most recent
    sentences (the MemN2N convention of capping memory at the last N
    sentences).

    Returns:
        ``(stories, questions, answers)`` with shapes
        ``(n, max_sentences, max_words)``, ``(n, max_words)``, ``(n,)``.
    """
    n = len(examples)
    stories = np.zeros((n, max_sentences, max_words), dtype=np.int64)
    questions = np.zeros((n, max_words), dtype=np.int64)
    answers = np.zeros(n, dtype=np.int64)
    for row, example in enumerate(examples):
        recent = example.story[-max_sentences:]
        for s, sentence in enumerate(recent):
            stories[row, s] = vocab.encode(sentence, width=max_words)
        questions[row] = vocab.encode(example.question, width=max_words)
        answers[row] = vocab.add(example.answer) if example.answer not in vocab \
            else vocab.id_of(example.answer)
    return stories, questions, answers
