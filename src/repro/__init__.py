"""MnnFast reproduction: a fast and scalable system architecture for
memory-augmented neural networks (Jang, Kim, Jo, Lee & Kim, ISCA 2019).

The package layout mirrors the paper:

* :mod:`repro.core` — the contribution: baseline MemNN, the
  column-based algorithm with lazy softmax, zero-skipping, and the
  :class:`~repro.core.engine.MnnFastEngine` facade.
* :mod:`repro.store` — the tiered memory store: RAM/disk backing for
  ``M_IN``/``M_OUT`` with a budgeted chunk LRU and double-buffered
  background prefetch (out-of-core inference).
* :mod:`repro.memsim` — trace-driven LLC/DRAM/embedding-cache models.
* :mod:`repro.perf` — CPU / GPU / FPGA / energy platform models.
* :mod:`repro.data` — synthetic bAbI tasks and Zipfian word streams.
* :mod:`repro.model` — a trainable NumPy end-to-end memory network.
* :mod:`repro.batching` — continuous question batching: the serving-side
  ``nq`` amortization lever (deadline-aware batcher + vectorized
  multi-question engine path + batched service mode).
* :mod:`repro.serving` — a multi-tenant QA serving simulator.
* :mod:`repro.analysis` — one experiment driver per paper figure.
* :mod:`repro.report` — plain-text tables for the benchmark harness.
* :mod:`repro.cli` — ``python -m repro <experiment>`` regeneration.
"""

from .batching import (
    BatchAnswer,
    BatcherStats,
    BatchFormation,
    ContinuousBatcher,
    FormedBatch,
    form_batches,
)
from .core import (
    BaselineMemNN,
    BatchConfig,
    ChunkConfig,
    ColumnMemNN,
    EngineConfig,
    EngineWeights,
    MemNNConfig,
    MnnFastEngine,
    PartialOutput,
    ShardedMemNN,
    ShardPlan,
    StoreConfig,
    ZeroSkipConfig,
    merge_partials,
    partition_memory,
)
from .data import Vocabulary, ZipfCorpus, generate_mixed, generate_task
from .store import ChunkPrefetcher, MmapStore, ResidentStore, StoreStats
from .memsim import EmbeddingCache, MemoryHierarchy, SetAssociativeCache
from .model import MemN2N, MemN2NConfig, Trainer, train_on_task
from .perf import CpuModel, EnergyModel, FpgaModel, GpuModel

__version__ = "1.0.0"

__all__ = [
    "MnnFastEngine",
    "EngineConfig",
    "EngineWeights",
    "MemNNConfig",
    "BatchConfig",
    "ChunkConfig",
    "ZeroSkipConfig",
    "BatchAnswer",
    "ContinuousBatcher",
    "BatchFormation",
    "BatcherStats",
    "FormedBatch",
    "form_batches",
    "BaselineMemNN",
    "ColumnMemNN",
    "PartialOutput",
    "ShardedMemNN",
    "ShardPlan",
    "merge_partials",
    "partition_memory",
    "StoreConfig",
    "ResidentStore",
    "MmapStore",
    "ChunkPrefetcher",
    "StoreStats",
    "CpuModel",
    "GpuModel",
    "FpgaModel",
    "EnergyModel",
    "EmbeddingCache",
    "SetAssociativeCache",
    "MemoryHierarchy",
    "generate_task",
    "generate_mixed",
    "Vocabulary",
    "ZipfCorpus",
    "MemN2N",
    "MemN2NConfig",
    "Trainer",
    "train_on_task",
    "__version__",
]
