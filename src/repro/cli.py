"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig13                # one experiment
    python -m repro fig7 --quick         # smaller training budget
    python -m repro all                  # every model-based experiment

Each command prints the same paper-vs-measured tables the benchmark
harness produces; the heavyweight trained experiments (fig6, fig7)
accept ``--quick`` to shrink their training budget.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .analysis import (
    accuracy_table,
    algorithm_scalability,
    bandwidth_scalability,
    contention_sweep,
    embedding_cache_effectiveness,
    energy_comparison,
    fpga_latency_breakdown,
    gpu_multi_gpu_scaling,
    gpu_stream_scaling,
    offchip_accesses,
    operation_breakdown,
    probability_distribution,
    speedup_over_baseline,
    threshold_sweep,
)
from .core.config import TABLE1
from .report import (
    format_overload_comparison,
    format_percent,
    format_series,
    format_serving_summary,
    format_speedup,
    format_stage_breakdown,
    format_table,
)
from .serving import run_overload_experiment

__all__ = ["main", "EXPERIMENTS"]


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = [
        [
            platform,
            entry["config"].embedding_dim,
            f"{entry['database_sentences']:,}",
            entry["chunk_size"] or "variable",
        ]
        for platform, entry in TABLE1.items()
    ]
    print(format_table(
        ["platform", "embedding dim", "database", "chunk"],
        rows,
        title="Table 1 — memory network configurations",
    ))


def _cmd_fig3(args: argparse.Namespace) -> None:
    curves = bandwidth_scalability(channels=(2, 4, 8), max_threads=24)
    print("Fig. 3 — baseline speedup vs threads per memory-channel config")
    for channels, curve in curves.items():
        print(format_series(f"{channels}-channel", curve))


def _cmd_fig4(args: argparse.Namespace) -> None:
    grid = contention_sweep(thread_counts=(1, 2, 4, 8))
    rows = [
        [scale] + [f"{series[k]:.2f}" for k in (1, 2, 4, 8)]
        for scale, series in grid.items()
    ]
    print(format_table(
        ["scale", "1 emb", "2 emb", "4 emb", "8 emb"],
        rows,
        title="Fig. 4 — relative inference performance under embedding threads",
    ))


def _cmd_fig6(args: argparse.Namespace) -> None:
    budget = (200, 15) if args.quick else (400, 30)
    result = probability_distribution(
        task_id=1, num_questions=100, max_sentences=20,
        train_examples=budget[0], epochs=budget[1],
    )
    print("Fig. 6 — trained attention sparsity")
    for threshold, fraction in result.fraction_above.items():
        print(f"  entries above {threshold}: {format_percent(fraction)}")
    print(f"  mean per-question peak: {result.mean_max:.3f}")
    print(f"  test accuracy (sanity): {format_percent(result.test_accuracy)}")


def _cmd_fig7(args: argparse.Namespace) -> None:
    budget = (250, 15, (1, 15)) if args.quick else (400, 30, (1, 2, 6, 15, 16))
    curve = threshold_sweep(
        task_ids=budget[2], train_examples=budget[0], epochs=budget[1],
    )
    rows = [
        [p.threshold, format_percent(p.computation_reduction),
         format_percent(p.accuracy_loss)]
        for p in curve.points
    ]
    print(format_table(
        ["th_skip", "compute reduction", "accuracy loss"],
        rows,
        title="Fig. 7 — zero-skipping tradeoff "
        "(paper: 97% reduction / 0.87% loss at th=0.1)",
    ))


def _cmd_fig9(args: argparse.Namespace) -> None:
    breakdown = operation_breakdown(threads=20)
    base = breakdown["baseline"]
    rows = [
        [alg] + [f"{breakdown[alg][ph] / base[ph]:.2f}"
                 for ph in ("inner_product", "softmax", "weighted_sum")]
        for alg in breakdown
    ]
    print(format_table(
        ["variant", "inner", "softmax", "weighted"],
        rows,
        title="Fig. 9(a) — per-op latency normalized to baseline",
    ))
    speedups = speedup_over_baseline(max_threads=20)["mnnfast"]
    average = sum(speedups.values()) / len(speedups)
    print(
        f"Fig. 9(b) — MnnFast {format_speedup(speedups[20])} @20t "
        f"(paper 5.38x), avg {format_speedup(average)} (paper 4.02x)"
    )


def _cmd_fig10(args: argparse.Namespace) -> None:
    curves = algorithm_scalability(channels=4, max_threads=24)
    print("Fig. 10 — per-algorithm speedup at 4 channels")
    for algorithm, curve in curves.items():
        print(format_series(algorithm, {t: curve[t] for t in (1, 4, 8, 16, 24)}))


def _cmd_fig11(args: argparse.Namespace) -> None:
    result = offchip_accesses()
    rows = [
        [name, count, f"{result.normalized[name]:.3f}"]
        for name, count in result.counts.items()
    ]
    print(format_table(
        ["variant", "off-chip accesses", "normalized"],
        rows,
        title="Fig. 11 — off-chip accesses (paper: streaming removes >60%)",
    ))


def _cmd_fig12(args: argparse.Namespace) -> None:
    streams = gpu_stream_scaling(stream_counts=(1, 2, 4, 8))["speedup"]
    print(format_series("Fig. 12(a) stream speedup", streams))
    points = gpu_multi_gpu_scaling(gpu_counts=(1, 2, 3, 4))
    rows = [
        [p.gpus, format_speedup(p.speedup),
         f"{p.worst_h2d_seconds * 1e3:.2f} ms",
         f"{p.ideal_h2d_seconds * 1e3:.2f} ms"]
        for p in points
    ]
    print(format_table(
        ["GPUs", "speedup", "worst H2D", "ideal H2D"],
        rows,
        title="Fig. 12(b) — multi-GPU scaling (paper: 4.34x at 4 GPUs)",
    ))


def _cmd_fig13(args: argparse.Namespace) -> None:
    table = fpga_latency_breakdown()
    rows = [[name, f"{value:.3f}"] for name, value in table.items()]
    print(format_table(
        ["variant", "normalized latency"],
        rows,
        title="Fig. 13 — FPGA latency (paper: MnnFast up to 2.01x)",
    ))
    print(f"measured MnnFast speedup: {format_speedup(1 / table['mnnfast'])}")


def _cmd_fig14(args: argparse.Namespace) -> None:
    reductions = embedding_cache_effectiveness(num_lookups=50_000)
    paper = {32: "34.5%", 64: "41.7%", 128: "47.7%", 256: "53.1%"}
    rows = [
        [f"{size // 1024} KB", format_percent(value), paper[size // 1024]]
        for size, value in reductions.items()
    ]
    print(format_table(
        ["cache size", "measured reduction", "paper"],
        rows,
        title="Fig. 14 — embedding-cache latency reduction",
    ))


def _cmd_energy(args: argparse.Namespace) -> None:
    comparison = energy_comparison()
    print("§5.5 — energy per question")
    print(f"  CPU  MnnFast: {comparison.cpu_joules * 1e6:8.1f} uJ")
    print(f"  FPGA MnnFast: {comparison.fpga_joules * 1e6:8.1f} uJ")
    print(
        f"  ratio: {comparison.efficiency_ratio:.2f}x (paper: up to 6.54x)"
    )


def _cmd_serving(args: argparse.Namespace) -> None:
    duration = 0.02 if args.quick else 0.05
    result = run_overload_experiment(duration=duration)
    print(
        f"§2.2.3 — serving at {result.offered_rate:,.0f} questions/s "
        f"(2x the {result.saturating_rate:,.0f}/s saturation point, "
        f"{result.duration * 1e3:.0f} ms of arrivals)"
    )
    runs = {"no-policy": result.no_policy, "degraded": result.degraded}
    print(format_serving_summary(runs))
    print()
    print(
        format_overload_comparison(
            "no-policy", result.no_policy, "degraded", result.degraded
        )
    )
    print()
    print(format_stage_breakdown(runs))


def _cmd_sharded(args: argparse.Namespace) -> None:
    import numpy as np

    from .core import (
        EngineConfig,
        EngineWeights,
        MemNNConfig,
        MnnFastEngine,
    )
    from .serving import QaServer, ServerConfig

    config = MemNNConfig(
        embedding_dim=32, num_sentences=5000, num_questions=8,
        vocab_size=2000, max_words=8,
    )
    rng = np.random.default_rng(0)
    weights = EngineWeights.random(config, rng=rng)
    story = rng.integers(1, config.vocab_size, size=(2000, config.max_words))
    questions = rng.integers(1, config.vocab_size, size=(8, config.max_words))

    def run(engine_config):
        engine = MnnFastEngine(config, weights, engine_config=engine_config)
        engine.store_story(story)
        return engine.answer(questions)

    reference = run(EngineConfig(algorithm="column"))
    rows = []
    for num_shards in (1, 2, 4, 8):
        for policy in ("contiguous", "strided"):
            result = run(EngineConfig.sharded(num_shards, policy))
            delta = float(np.abs(result.logits - reference.logits).max())
            agree = bool(
                np.array_equal(result.answer_ids, reference.answer_ids)
            )
            rows.append([num_shards, policy, f"{delta:.2e}", agree])
    print(format_table(
        ["shards", "policy", "max |Δlogit| vs column", "answers agree"],
        rows,
        title="Sharded lazy-softmax attention — exact-merge differential check",
    ))

    print()
    latency_rows = []
    for num_shards in (1, 2, 4, 8):
        engine = (
            EngineConfig(algorithm="column")
            if num_shards == 1
            else EngineConfig.sharded(num_shards)
        )
        server = QaServer(ServerConfig(engine=engine))
        hop = server.hop_seconds()
        plan = server.shard_plan()
        merge = server.shard_merge_seconds(plan) if plan is not None else 0.0
        latency_rows.append([
            num_shards,
            f"{hop * 1e3:.3f} ms",
            f"{merge * 1e6:.2f} us",
            format_percent(merge / hop if hop else 0.0),
        ])
    print(format_table(
        ["shards", "hop latency", "merge cost", "merge share"],
        latency_rows,
        title="Serving fan-out model — max-of-shards compute + exact-merge cost",
    ))


def _cmd_parallel(args: argparse.Namespace) -> None:
    import os

    import numpy as np

    from .core import ColumnMemNN, EngineConfig, ExecutionConfig, ShardedMemNN

    ns = 20_000 if args.quick else 100_000
    ed, nq, repeats = 48, 16, 3
    rng = np.random.default_rng(0)
    m_in = rng.normal(size=(ns, ed))
    m_out = rng.normal(size=(ns, ed))
    u = m_in[rng.integers(0, ns, size=nq)] * 2.0

    def best_of(solver):
        solver.output(u)  # warm-up (BLAS thread spin-up, page faults)
        times, result = [], None
        for _ in range(repeats):
            result = solver.output(u)
            times.append(result.elapsed_seconds)
        return min(times), result

    reference_seconds, reference = best_of(ColumnMemNN(m_in, m_out))

    rows = []
    configs = [("column serial f64", EngineConfig())]
    for workers in (1, 2, 4):
        configs.append((
            f"sharded process x{workers}", EngineConfig.parallel(workers)
        ))
    configs.append((
        "sharded thread x4", EngineConfig.parallel(4, backend="thread")
    ))
    configs.append((
        "sharded serial K=4", EngineConfig.sharded(num_shards=4)
    ))
    configs.append(("sharded fused K=4", EngineConfig.fused(4)))
    configs.append((
        "column f32",
        EngineConfig(execution=ExecutionConfig(dtype="float32")),
    ))
    for label, engine_config in configs:
        if engine_config.algorithm == "sharded":
            solver = ShardedMemNN(
                m_in, m_out,
                num_shards=engine_config.num_shards,
                policy=engine_config.shard_policy,
                chunk=engine_config.chunk,
                dtype=np.dtype(engine_config.execution.dtype),
                execution=engine_config.execution,
            )
        else:
            solver = ColumnMemNN(
                m_in, m_out,
                chunk=engine_config.chunk,
                dtype=np.dtype(engine_config.execution.dtype),
            )
        seconds, result = best_of(solver)
        delta = float(np.abs(result.output - reference.output).max())
        rows.append([
            label,
            f"{seconds * 1e3:.1f} ms",
            format_speedup(reference_seconds / seconds),
            f"{delta:.2e}",
        ])
        solver.close()
    print(format_table(
        ["configuration", "wall-clock", "vs column serial", "max |Δo|"],
        rows,
        title=(
            f"Parallel execution backend at ns={ns:,}, ed={ed}, nq={nq} "
            f"({os.cpu_count()} CPU(s) visible; process scaling needs cores)"
        ),
    ))


def _cmd_store(args: argparse.Namespace) -> None:
    import tempfile
    from pathlib import Path

    import numpy as np

    from .core import ColumnMemNN, EngineConfig, ShardedMemNN
    from .serving import QaServer, ServerConfig
    from .store import MmapStore

    ns = 20_000 if args.quick else 60_000
    ed, nq = 48, 16
    rng = np.random.default_rng(0)
    m_in = rng.normal(size=(ns, ed))
    m_out = rng.normal(size=(ns, ed))
    u = m_in[rng.integers(0, ns, size=nq)] * 2.0
    footprint = m_in.nbytes + m_out.nbytes
    budget = footprint // 8

    reference = ColumnMemNN(m_in, m_out).output(u).output

    with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
        store = MmapStore.save(Path(tmp) / "memories", m_in, m_out)
        variants = [
            ("resident arrays", ColumnMemNN(m_in, m_out)),
            ("mmap demand (depth 0)", ColumnMemNN(store=store)),
            (
                "mmap prefetch depth 2 + LRU",
                ColumnMemNN(
                    store=store, resident_bytes=budget, prefetch_depth=2
                ),
            ),
            (
                "mmap sharded K=4 + prefetch",
                ShardedMemNN(
                    store=store, num_shards=4,
                    resident_bytes=budget, prefetch_depth=2,
                ),
            ),
        ]
        rows = []
        for label, solver in variants:
            result = solver.output(u)
            delta = float(np.abs(result.output - reference).max())
            stats = result.tier_stats()["store"]
            if stats is None:
                rows.append([label, f"{delta:.2e}", "-", "-", "-", "-"])
            else:
                rows.append([
                    label,
                    f"{delta:.2e}",
                    f"{stats.disk_bytes / 1e6:.1f} MB",
                    f"{stats.ram_bytes / 1e6:.1f} MB",
                    format_percent(stats.prefetch_coverage),
                    f"{stats.stall_seconds * 1e3:.2f} ms",
                ])
        print(format_table(
            ["configuration", "max |Δo| vs resident", "disk bytes",
             "RAM bytes", "prefetch coverage", "stall"],
            rows,
            title=(
                f"Out-of-core memory store at ns={ns:,}, ed={ed} "
                f"({footprint / 1e6:.0f} MB footprint, "
                f"{budget / 1e6:.0f} MB RAM budget)"
            ),
        ))

    print()
    latency_rows = []
    for label, engine in [
        ("resident", EngineConfig()),
        ("out-of-core, no prefetch",
         EngineConfig.out_of_core(resident_bytes=None, prefetch_depth=0)),
        ("out-of-core, prefetch depth 2",
         EngineConfig.out_of_core(resident_bytes=None)),
        ("out-of-core, prefetch + 32 MB LRU", EngineConfig.out_of_core()),
    ]:
        server = QaServer(ServerConfig(engine=engine))
        hop = server.hop_seconds()
        disk = server.disk_stream_seconds()
        latency_rows.append([
            label,
            f"{hop * 1e3:.3f} ms",
            f"{disk * 1e3:.3f} ms",
            "overlapped" if engine.store.prefetch_depth > 0 and disk else (
                "serialized" if disk else "-"
            ),
        ])
    print(format_table(
        ["configuration", "hop latency", "disk stream", "disk vs compute"],
        latency_rows,
        title="Serving cost model — disk tier charged against disk_bandwidth",
    ))


def _cmd_topk(args: argparse.Namespace) -> None:
    import numpy as np

    from .core import EngineConfig, EngineWeights, MemNNConfig
    from .index import compare_topk_vs_exact, synthetic_topical_workload
    from .serving import QaServer, ServerConfig

    ns = 8_192 if args.quick else 32_768
    nq = 8
    config = MemNNConfig(
        embedding_dim=32, num_sentences=ns, num_questions=nq,
        vocab_size=4_000, max_words=8, hops=2,
    )
    rng = np.random.default_rng(0)
    weights = EngineWeights.random(config, rng=rng, scale=0.35)
    stories, questions = synthetic_topical_workload(config, nq, rng=rng)

    rows = []
    for nprobe in (2, 4, 8, 16):
        cfg = EngineConfig(algorithm="column").with_topk(
            nprobe=nprobe, min_rows=0
        )
        comparison = compare_topk_vs_exact(
            config, questions, cfg, weights=weights, stories=stories
        )
        rows.append([
            nprobe,
            format_percent(comparison.answer_agreement),
            f"{comparison.mean_recall:.4f}",
            f"{comparison.min_recall:.4f}",
            format_percent(comparison.mean_candidate_fraction),
        ])
    print(format_table(
        ["nprobe", "answer agreement", "mean recall", "min recall",
         "rows examined"],
        rows,
        title=(
            f"Top-k tier vs exact column kernel at ns={ns:,} "
            f"(topical workload, batch={nq}, nlist~sqrt(ns))"
        ),
    ))

    print()
    network = MemNNConfig(
        embedding_dim=48, num_sentences=200_000, num_questions=1,
        vocab_size=30_000,
    )
    latency_rows = []
    for label, engine in [
        ("exact mnnfast", EngineConfig.mnnfast()),
        ("+ top-k nprobe=8", EngineConfig.mnnfast().with_topk(nprobe=8)),
        ("+ top-k nprobe=32", EngineConfig.mnnfast().with_topk(nprobe=32)),
    ]:
        server = QaServer(ServerConfig(network=network, engine=engine))
        latency_rows.append([
            label,
            f"{server.hop_seconds(batch_size=1) * 1e3:.3f} ms",
            f"{server.hop_seconds(batch_size=8) * 1e3:.3f} ms",
            f"{server.hop_seconds(batch_size=64) * 1e3:.3f} ms",
            f"{server.probe_gather_seconds(batch_size=1) * 1e6:.1f} us",
        ])
    print(format_table(
        ["configuration", "hop (batch 1)", "hop (batch 8)", "hop (batch 64)",
         "probe+gather (b=1)"],
        latency_rows,
        title=(
            f"Serving cost model at ns={network.num_sentences:,} — "
            "candidates union across the batch, so big batches converge "
            "on the exact scan"
        ),
    ))


def _cmd_earlyexit(args: argparse.Namespace) -> None:
    from .analysis import sweep_early_exit
    from .serving import QaServer, ServerConfig
    from .core import EngineConfig, MemNNConfig

    num_questions = 64 if args.quick else 128
    sweep = sweep_early_exit(num_questions=num_questions)
    rows = []
    for point in sweep.points:
        rows.append([
            f"{point.threshold:g}",
            f"{point.mean_hops:.2f} / {sweep.hops}",
            format_percent(point.hops_saved_fraction),
            format_percent(point.exited_fraction),
            format_percent(point.agreement),
        ])
    print(format_table(
        ["threshold", "mean hops", "hops saved", "exited", "agreement"],
        rows,
        title=(
            "Confidence-gated early exit (logit-margin gate, topical "
            f"workload, {num_questions} questions)"
        ),
    ))

    print()
    network = MemNNConfig(
        embedding_dim=48, num_sentences=50_000, num_questions=1,
        vocab_size=30_000, hops=4,
    )
    latency_rows = []
    for exit_threshold in (0.0, 0.05, 0.2, 0.4):
        server = QaServer(ServerConfig(
            network=network,
            engine=EngineConfig.mnnfast().with_early_exit(exit_threshold),
        ))
        survivors = server.expected_hop_survivors(
            64, exit_threshold=exit_threshold
        )
        latency_rows.append([
            f"{exit_threshold:g}",
            " ".join(str(s) for s in survivors),
            f"{server.inference_seconds(batch_size=64) * 1e3:.3f} ms",
            f"{server.inference_seconds(batch_size=1) * 1e3:.3f} ms",
        ])
    print(format_table(
        ["exit threshold", "survivors/hop (batch 64)",
         "batch-64 inference", "batch-1 inference"],
        latency_rows,
        title=(
            "Serving cost model — ragged-depth batches charge each hop "
            "at its expected survivor count"
        ),
    ))


def _cmd_batching(args: argparse.Namespace) -> None:
    import numpy as np

    from .core import (
        EngineConfig,
        EngineWeights,
        MemNNConfig,
        MnnFastEngine,
    )
    from .serving import QaServer, ServerConfig, generate_workload

    # --- engine amortization: one batched pass vs a sequential loop -------
    max_nq = 8 if args.quick else 16
    config = MemNNConfig(
        embedding_dim=32, num_sentences=4000, num_questions=1,
        vocab_size=2000, max_words=8,
    )
    rng = np.random.default_rng(0)
    weights = EngineWeights.random(config, rng=rng)
    story = rng.integers(1, config.vocab_size, size=(1500, config.max_words))
    engine = MnnFastEngine(
        config, weights, engine_config=EngineConfig.batched(max_nq)
    )
    engine.store_story(story)

    rows = []
    nq = 1
    while nq <= max_nq:
        questions = rng.integers(
            1, config.vocab_size, size=(nq, config.max_words)
        )
        batched = engine.answer_batch(questions)
        solo_bytes = sum(
            engine.answer(questions[i : i + 1]).stats.bytes_read
            for i in range(nq)
        )
        delta = max(
            float(
                np.abs(r.logits - batched.batch.logits[i : i + 1]).max()
            )
            for i, r in enumerate(batched.results)
        )
        rows.append([
            nq,
            f"{batched.batch.stats.bytes_read / 1e6:.2f} MB",
            f"{solo_bytes / 1e6:.2f} MB",
            f"{solo_bytes / max(1, batched.batch.stats.bytes_read):.2f}x",
            f"{delta:.2e}",
        ])
        nq *= 2
    print(format_table(
        ["batch nq", "batched bytes", "sequential bytes", "amortization",
         "max |Δlogit| vs views"],
        rows,
        title="answer_batch — M_IN/M_OUT streamed once per batch (§5, Fig. 12)",
    ))

    print()
    # --- serving sweep: batch size vs throughput and tail latency ---------
    duration = 0.1 if args.quick else 0.3
    rate, workers = 120_000.0, 8
    sweep_rows = []
    bs = 1
    while bs <= max_nq:
        server = QaServer(ServerConfig(
            engine=EngineConfig.batched(bs, max_wait=2e-3), workers=workers,
        ))
        workload = generate_workload(
            question_rate=rate, story_rate=50.0, duration=duration, seed=7,
        )
        metrics = server.run_batched(workload)
        sweep_rows.append([
            bs,
            format_percent(metrics.batch_occupancy),
            f"{metrics.throughput('question'):,.0f}/s",
            f"{metrics.latency_percentile(50) * 1e3:.2f} ms",
            f"{metrics.latency_percentile(99) * 1e3:.2f} ms",
            f"{metrics.queueing_percentile(99) * 1e3:.2f} ms",
        ])
        bs *= 2
    print(format_table(
        ["max batch", "occupancy", "throughput", "p50", "p99",
         "queueing p99"],
        sweep_rows,
        title=(
            f"Continuous batching at {rate:,.0f} questions/s offered, "
            f"{workers} workers — amortization vs batching delay"
        ),
    ))


def _cmd_cluster(args: argparse.Namespace) -> None:
    from .cluster import (
        Autoscaler,
        AutoscalerConfig,
        ClusterConfig,
        ClusterSim,
        burst_trace,
        requests_from_trace,
        skewed_workload,
    )

    chunk_bytes = 2 * 500 * 32 * 8
    def config(replicas: int) -> ClusterConfig:
        return ClusterConfig(
            num_rows=32_000, embedding_dim=32, chunk_size=500,
            replicas=replicas, resident_bytes=10 * chunk_bytes,
            disk_bandwidth=2e8,
        )

    # --- routing policies on the hot-chunk-skewed workload ----------------
    num_requests = 300 if args.quick else 1_500
    total_chunks = config(4).total_chunks
    requests = skewed_workload(
        num_requests=num_requests, num_topics=8, chunks_per_topic=8,
        total_chunks=total_chunks, rate=150.0, seed=11,
    )
    rows = []
    for policy in ("round_robin", "least_backlog", "cache_affinity"):
        metrics = ClusterSim(config(4), policy=policy).run(requests)
        rows.append([
            policy,
            format_percent(metrics.chunk_hit_rate),
            f"{metrics.latency_percentile(50) * 1e3:.3f} ms",
            f"{metrics.latency_percentile(95) * 1e3:.3f} ms",
            f"{metrics.throughput():,.0f}/s",
        ])
    print(format_table(
        ["policy", "chunk hit-rate", "p50", "p95", "throughput"],
        rows,
        title=(
            f"Routing over 4 replicas, Zipf-skewed topics "
            f"({num_requests} requests, 10-chunk LRU per replica)"
        ),
    ))

    print()
    # --- autoscaler vs static fleet under a flash crowd -------------------
    duration = 21.0 if args.quick else 30.0
    trace = burst_trace(
        duration=duration, base_rate=20.0, burst_rate=300.0,
        burst_start=duration / 3, burst_duration=duration / 3,
    )
    burst_requests = requests_from_trace(
        trace, num_topics=8, chunks_per_topic=8,
        total_chunks=total_chunks, deadline=0.10, seed=23,
    )
    scale_rows = []
    for label, autoscaler in (
        ("static", None),
        ("autoscaled", Autoscaler(AutoscalerConfig(
            min_replicas=2, max_replicas=10,
            high_watermark=3.0, low_watermark=0.5,
            scale_up_cooldown=1.0, scale_down_cooldown=8.0,
        ))),
    ):
        metrics = ClusterSim(
            config(2), policy="least_backlog",
            autoscaler=autoscaler, tick_interval=0.5,
        ).run(burst_requests)
        scale_rows.append([
            label,
            str(metrics.timed_out),
            format_percent(metrics.timeout_rate),
            f"{metrics.mean_replicas():.2f}",
            str(len(metrics.decisions)),
        ])
    print(format_table(
        ["fleet", "timeouts", "timeout rate", "mean replicas", "decisions"],
        scale_rows,
        title=(
            f"Flash crowd 20→300 rps ({len(burst_requests)} requests, "
            "100 ms deadline, floor 2 replicas)"
        ),
    ))


def _cmd_docqa(args: argparse.Namespace) -> None:
    from .batching.batcher import form_batches
    from .cluster import ClusterConfig, ClusterSim
    from .core.config import BatchConfig
    from .docqa import (
        default_docqa_configs,
        docqa_workload,
        generate_queries,
        sweep_docqa_configs,
        synthetic_corpus,
        to_cluster_requests,
    )

    num_docs = 8 if args.quick else 16
    rows_per_doc = 16 if args.quick else 64
    num_queries = 16 if args.quick else 48
    corpus = synthetic_corpus(
        num_docs=num_docs, rows_per_doc=rows_per_doc, max_words=8, seed=3
    )
    queries, qrels = generate_queries(corpus, num_queries=num_queries, seed=5)

    # --- retrieval quality: exact vs top-k vs early exit ------------------
    evaluations = sweep_docqa_configs(
        corpus, queries, qrels, default_docqa_configs(nprobe=4), k=4
    )
    rows = []
    for name, ev in evaluations.items():
        rows.append([
            name,
            f"{ev.recall_at_k:.3f}",
            f"{ev.mrr:.3f}",
            format_percent(ev.span_hit_rate),
            f"{ev.mean_attention_mass:.3f}",
            f"{ev.mean_hops:.2f}",
            format_percent(ev.mean_candidate_fraction),
        ])
    print(format_table(
        ["config", "recall@4", "MRR", "span hit", "attn mass", "mean hops",
         "rows examined"],
        rows,
        title=(
            f"Document-QA qrels sweep — {corpus.num_docs} docs x "
            f"{rows_per_doc} rows, {len(queries)} queries, "
            "supporting spans (relevance 2)"
        ),
    ))

    print()
    # --- traffic shape: session bursts vs uniform arrivals ----------------
    questions_per_session = 4
    session_rate = 20.0
    policy = BatchConfig(max_batch_size=8, max_wait=0.02)
    sessioned = docqa_workload(
        queries, session_rate=session_rate,
        questions_per_session=questions_per_session,
        intra_session_gap=0.002,
        num_sessions=12 if args.quick else 32, seed=11,
    )
    uniform = docqa_workload(
        queries, session_rate=session_rate * questions_per_session,
        questions_per_session=1, num_sessions=len(sessioned), seed=11,
    )
    shape_rows = []
    for label, stream in (("sessioned", sessioned), ("uniform", uniform)):
        batches = form_batches(stream, policy)
        fill = sum(b.size for b in batches) / (
            len(batches) * policy.max_batch_size
        )
        shape_rows.append([
            label,
            str(len(stream)),
            str(len(batches)),
            format_percent(fill),
            f"{sum(b.size for b in batches) / len(batches):.2f}",
        ])
    print(format_table(
        ["arrivals", "requests", "batches", "batch fill", "mean size"],
        shape_rows,
        title=(
            f"Session traffic through the batcher — "
            f"{questions_per_session} questions/session at "
            f"{session_rate:g} sessions/s (batch cap "
            f"{policy.max_batch_size}, 20 ms wait)"
        ),
    ))

    print()
    # --- document locality through cache-affinity routing -----------------
    chunk_size = 8
    chunk_bytes = 2 * chunk_size * 32 * 8
    cluster_stream = docqa_workload(
        queries, session_rate=150.0,
        questions_per_session=questions_per_session,
        num_sessions=75 if args.quick else 250, seed=19,
    )
    config = ClusterConfig(
        num_rows=corpus.num_rows, embedding_dim=32, chunk_size=chunk_size,
        replicas=4, resident_bytes=3 * rows_per_doc // chunk_size * chunk_bytes,
        disk_bandwidth=2e8,
    )
    requests = to_cluster_requests(
        cluster_stream, corpus, chunk_size=chunk_size,
        total_chunks=config.total_chunks,
    )
    routing_rows = []
    for routing in ("round_robin", "cache_affinity"):
        metrics = ClusterSim(config, policy=routing).run(requests)
        routing_rows.append([
            routing,
            format_percent(metrics.chunk_hit_rate),
            f"{metrics.latency_percentile(50) * 1e3:.3f} ms",
            f"{metrics.latency_percentile(95) * 1e3:.3f} ms",
        ])
    print(format_table(
        ["policy", "chunk hit-rate", "p50", "p95"],
        routing_rows,
        title=(
            f"Document-affine sessions over 4 replicas "
            f"({len(requests)} requests, docs span "
            f"{rows_per_doc // chunk_size} chunks, 3-doc LRU per replica)"
        ),
    ))


def _cmd_accuracy(args: argparse.Namespace) -> None:
    task_ids = (1, 4, 15, 20) if args.quick else tuple(range(1, 21))
    rows = [
        [r.task_id, r.name, format_percent(r.train_accuracy),
         format_percent(r.test_accuracy)]
        for r in accuracy_table(task_ids=task_ids, train_examples=350, epochs=30)
    ]
    print(format_table(
        ["task", "name", "train acc", "test acc"],
        rows,
        title="Per-task MemN2N accuracy (substrate validation)",
    ))


EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], None]]] = {
    "table1": ("Table 1 — evaluation configurations", _cmd_table1),
    "fig3": ("Fig. 3 — memory-bandwidth scalability limits", _cmd_fig3),
    "fig4": ("Fig. 4 — embedding/inference cache contention", _cmd_fig4),
    "fig6": ("Fig. 6 — attention sparsity (trains a model)", _cmd_fig6),
    "fig7": ("Fig. 7 — zero-skipping tradeoff (trains models)", _cmd_fig7),
    "fig9": ("Fig. 9 — CPU performance of MnnFast", _cmd_fig9),
    "fig10": ("Fig. 10 — CPU scalability per algorithm", _cmd_fig10),
    "fig11": ("Fig. 11 — off-chip memory accesses", _cmd_fig11),
    "fig12": ("Fig. 12 — GPU stream / multi-GPU scaling", _cmd_fig12),
    "fig13": ("Fig. 13 — FPGA latency breakdown", _cmd_fig13),
    "fig14": ("Fig. 14 — embedding-cache effectiveness", _cmd_fig14),
    "energy": ("§5.5 — CPU vs FPGA energy efficiency", _cmd_energy),
    "serving": ("§2.2.3 — overload serving with graceful degradation",
                _cmd_serving),
    "sharded": ("§3.1 scale-out — sharded attention exact-merge check",
                _cmd_sharded),
    "parallel": ("§3.1 execution backend — process/thread/fused/dtype "
                 "wall-clock sweep", _cmd_parallel),
    "batching": ("§5 nq amortization — continuous batching sweep",
                 _cmd_batching),
    "store": ("out-of-core memory store — tiered RAM/disk streaming check",
              _cmd_store),
    "topk": ("sublinear top-k retrieval tier — recall/agreement sweep",
             _cmd_topk),
    "earlyexit": ("confidence-gated early exit — hop savings vs agreement",
                  _cmd_earlyexit),
    "cluster": ("cluster serving — affinity routing + backlog autoscaling",
                _cmd_cluster),
    "docqa": ("document-QA workload — qrels retrieval quality sweep",
              _cmd_docqa),
    "accuracy": ("per-task MemN2N accuracy (trains 20 models)", _cmd_accuracy),
}

#: Experiments cheap enough for ``repro all`` to run by default.
_FAST = ("table1", "fig3", "fig9", "fig10", "fig11", "fig12", "fig13",
         "fig14", "energy", "serving", "sharded", "parallel", "batching",
         "store", "topk", "earlyexit", "cluster", "docqa")


def _cmd_list(args: argparse.Namespace) -> None:
    print("Available experiments:")
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name:8s} {description}")
    print("  all      every fast experiment (add --trained for fig6/fig7)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the MnnFast paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see `repro list`), 'all', or 'list'",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink training budgets for fig6/fig7",
    )
    parser.add_argument(
        "--trained", action="store_true",
        help="with 'all': also run the experiments that train models",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        _cmd_list(args)
        return 0
    if args.experiment == "all":
        names = list(_FAST) + (["fig6", "fig7"] if args.trained else [])
        for name in names:
            print(f"\n=== {name}: {EXPERIMENTS[name][0]} ===")
            EXPERIMENTS[name][1](args)
        return 0
    if args.experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}; try `repro list`"
        )
    EXPERIMENTS[args.experiment][1](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
