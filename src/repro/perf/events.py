"""A minimal discrete-event simulation kernel.

The GPU model (Fig. 12) needs genuine concurrency semantics — CUDA
streams whose kernels overlap, DMA engines that serialize copies, and a
PCIe interconnect whose bandwidth is processor-shared among concurrent
transfers.  This module provides a small generator-based DES in the
style of SimPy:

* processes are generators that ``yield`` commands;
* :class:`Resource` is a counted FIFO resource (``Acquire``/``Release``);
* :class:`SharedBandwidth` models a link whose active transfers each
  progress at ``capacity / n_active`` — the equal-share model of PCIe
  contention the paper describes in §5.3.

The serving stack additionally needs *failure* semantics:

* ``Acquire(resource, timeout=...)`` is deadline-aware — the process
  resumes with ``True`` when granted, or ``False`` if the timeout
  expires while it is still queued (it is then removed from the wait
  queue without consuming a unit);
* :meth:`Simulator.cancel` throws :class:`Cancelled` into a process at
  its suspension point.  The generator may catch it, yield cleanup
  commands (typically ``Release``) and finish normally — the SimPy
  interrupt idiom.  Every scheduled wakeup is epoch-guarded, so stale
  timers left behind by a cancellation can never double-step a
  process.

Example::

    sim = Simulator()
    link = SharedBandwidth(sim, capacity=12e9)

    def worker(nbytes):
        yield Transfer(link, nbytes)

    sim.spawn(worker(1e9))
    sim.spawn(worker(1e9))
    sim.run()           # both finish at t = 2/12 s (shared bandwidth)
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

__all__ = [
    "Simulator",
    "WaitFor",
    "Process",
    "Resource",
    "SharedBandwidth",
    "Timeout",
    "Acquire",
    "Release",
    "Transfer",
    "Cancelled",
]


class Cancelled(Exception):
    """Thrown into a process's generator by :meth:`Simulator.cancel`.

    The generator may catch it to run cleanup (including yielding
    further commands such as ``Release``) before finishing.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


# --- commands a process may yield ------------------------------------------------


@dataclass(frozen=True)
class Timeout:
    """Suspend the process for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")


@dataclass(frozen=True)
class Acquire:
    """Block until one unit of ``resource`` is granted.

    With a ``timeout`` the wait is deadline-aware: the yield resumes
    with ``True`` on a grant and ``False`` if the timeout expires while
    the process is still queued (the process is removed from the wait
    queue and no unit is consumed).  Without a timeout the resumed
    value is still ``True``, so ``yield Acquire(r)`` callers may simply
    ignore it.
    """

    resource: "Resource"
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {self.timeout}")


@dataclass(frozen=True)
class Release:
    """Return one unit of ``resource``."""

    resource: "Resource"


@dataclass(frozen=True)
class Transfer:
    """Move ``nbytes`` across a :class:`SharedBandwidth` link."""

    link: "SharedBandwidth"
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {self.nbytes}")


@dataclass(frozen=True)
class WaitFor:
    """Block until another process finishes (a join)."""

    process: "Process"


class Process:
    """A running generator inside the simulator."""

    def __init__(self, sim: "Simulator", generator: Generator, name: str) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name
        self.done = False
        self.cancelled = False
        self.finish_time: Optional[float] = None
        self._waiters: list["Process"] = []
        # Wakeup epoch: every actual resume bumps it, so any other
        # pending wakeup for this process (a raced grant, a stale
        # timer, anything scheduled before a cancellation) becomes
        # stale and is dropped by the epoch guard.
        self._epoch = 0
        self._waiting_on: Optional["Resource"] = None
        self._transferring_on: Optional["SharedBandwidth"] = None

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else (
            "done" if self.done else "running"
        )
        return f"Process({self.name}, {state})"


class Simulator:
    """Event loop: schedules callbacks, steps processes."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._active = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def spawn(self, generator: Generator, name: str = "process") -> Process:
        """Register a generator as a process, started at the current time."""
        process = Process(self, generator, name)
        self._active += 1
        self.schedule(0.0, self._wakeup(process, None))
        return process

    def cancel(self, process: Process, reason: str = "cancelled") -> bool:
        """Cancel a process at its current suspension point.

        :class:`Cancelled` is thrown into the generator, which may
        catch it and yield cleanup commands before finishing.  Pending
        wakeups are invalidated and the process is removed from any
        resource wait queue or shared-bandwidth transfer it is part of.

        Returns ``False`` (and does nothing) if the process already
        finished — cancelling a completed process is a harmless no-op.
        """
        if process.done:
            return False
        process.cancelled = True
        process._epoch += 1  # invalidate every pending wakeup
        if process._waiting_on is not None:
            queue = process._waiting_on._waiting
            if process in queue:
                queue.remove(process)
            process._waiting_on = None
        if process._transferring_on is not None:
            process._transferring_on._abort(process)
        try:
            command = process.generator.throw(Cancelled(reason))
        except (StopIteration, Cancelled):
            self._finish(process)
            return True
        # The generator caught the cancellation and yielded a cleanup
        # command: keep stepping it like any live process.
        self._dispatch(process, command)
        return True

    def run(self, until: float | None = None) -> float:
        """Drain the event queue (optionally up to time ``until``).

        Returns the simulation time when the loop stops.
        """
        while self._heap:
            time, _, callback = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            callback()
        return self.now

    # --- process stepping ---------------------------------------------------------

    def _wakeup(self, process: Process, value) -> Callable[[], None]:
        """An epoch-guarded resume callback for ``process``.

        The callback only steps the process if no other resume (or a
        cancellation) happened since it was created — the guard that
        makes cancellation and ``Acquire`` timeouts race-free.
        """
        epoch = process._epoch

        def callback() -> None:
            if process.done or process._epoch != epoch:
                return
            self._step(process, value)

        return callback

    def _finish(self, process: Process) -> None:
        process.done = True
        process.finish_time = self.now
        self._active -= 1
        for waiter in process._waiters:
            self.schedule(0.0, self._wakeup(waiter, None))
        process._waiters.clear()
        process.generator.close()

    def _step(self, process: Process, value) -> None:
        if process.done:
            return
        process._epoch += 1  # this resume invalidates all other wakeups
        try:
            command = process.generator.send(value)
        except StopIteration:
            self._finish(process)
            return
        self._dispatch(process, command)

    def _dispatch(self, process: Process, command) -> None:
        if isinstance(command, Timeout):
            self.schedule(command.delay, self._wakeup(process, None))
        elif isinstance(command, Acquire):
            command.resource._acquire(process, timeout=command.timeout)
        elif isinstance(command, Release):
            command.resource._release()
            self.schedule(0.0, self._wakeup(process, None))
        elif isinstance(command, Transfer):
            command.link._start(process, command.nbytes)
        elif isinstance(command, WaitFor):
            if command.process.done:
                self.schedule(0.0, self._wakeup(process, None))
            else:
                command.process._waiters.append(process)
        else:
            raise TypeError(f"process {process.name} yielded {command!r}")


class Resource:
    """Counted resource with a FIFO wait queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: list[Process] = []

    @property
    def queue_depth(self) -> int:
        """Processes currently blocked waiting for a unit."""
        return len(self._waiting)

    def _acquire(self, process: Process, timeout: float | None = None) -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            self.sim.schedule(0.0, self.sim._wakeup(process, True))
            return
        process._waiting_on = self
        self._waiting.append(process)
        if timeout is not None:
            epoch = process._epoch

            def expire() -> None:
                if process.done or process._epoch != epoch:
                    return  # granted or cancelled in the meantime
                if process._waiting_on is not self:
                    return  # grant already scheduled this timestamp
                self._waiting.remove(process)
                process._waiting_on = None
                self.sim._step(process, False)

            self.sim.schedule(timeout, expire)

    def _release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self.in_use -= 1
        while self._waiting:
            waiter = self._waiting.pop(0)
            if waiter.done:  # defensive: cancellation removes waiters
                continue
            waiter._waiting_on = None
            self.in_use += 1
            self.sim.schedule(0.0, self.sim._wakeup(waiter, True))
            break


@dataclass
class _ActiveTransfer:
    process: Process
    remaining: float
    total: float

    @property
    def finished(self) -> bool:
        # Floating-point residue must not strand a transfer: anything
        # within a relative hair of done is done.
        return self.remaining <= max(1e-6, 1e-9 * self.total)


class SharedBandwidth:
    """A link whose capacity is equally shared by active transfers.

    With ``n`` concurrent transfers each progresses at ``capacity / n``
    bytes/second; completion times are recomputed whenever the active
    set changes.  This is the standard processor-sharing model of a
    PCIe interconnect under contention (§5.3).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        name: str = "link",
        per_transfer_cap: float | None = None,
    ) -> None:
        """``per_transfer_cap`` bounds any single transfer's rate even
        when the link is otherwise idle (e.g. one GPU's x16 slot cannot
        exceed its own link speed no matter how idle the root complex
        is)."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if per_transfer_cap is not None and per_transfer_cap <= 0:
            raise ValueError("per_transfer_cap must be positive")
        self.sim = sim
        self.capacity = capacity
        self.per_transfer_cap = per_transfer_cap
        self.name = name
        self.bytes_moved = 0.0
        self._active: list[_ActiveTransfer] = []
        self._last_update = 0.0
        self._wakeup_seq = 0

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def _rate(self) -> float:
        if not self._active:
            return 0.0
        share = self.capacity / len(self._active)
        if self.per_transfer_cap is not None:
            share = min(share, self.per_transfer_cap)
        return share

    def _advance(self) -> None:
        """Progress all active transfers up to the current time."""
        elapsed = self.sim.now - self._last_update
        if elapsed > 0 and self._active:
            rate = self._rate()
            for transfer in self._active:
                moved = min(transfer.remaining, rate * elapsed)
                transfer.remaining -= moved
                self.bytes_moved += moved
        self._last_update = self.sim.now

    def _start(self, process: Process, nbytes: float) -> None:
        self._advance()
        if nbytes <= 0:
            self.sim.schedule(0.0, self.sim._wakeup(process, None))
            return
        process._transferring_on = self
        self._active.append(_ActiveTransfer(process, float(nbytes), float(nbytes)))
        self._reschedule()

    def _abort(self, process: Process) -> None:
        """Drop a cancelled process's in-flight transfer."""
        self._advance()
        self._active = [t for t in self._active if t.process is not process]
        process._transferring_on = None
        self._reschedule()

    def _reschedule(self) -> None:
        """Schedule a wakeup at the earliest projected completion."""
        if not self._active:
            return
        self._wakeup_seq += 1
        token = self._wakeup_seq
        rate = self._rate()
        soonest = min(t.remaining for t in self._active) / rate
        self.sim.schedule(soonest, lambda: self._complete(token))

    def _complete(self, token: int) -> None:
        if token != self._wakeup_seq:
            return  # stale wakeup: the active set changed since
        self._advance()
        finished = [t for t in self._active if t.finished]
        self._active = [t for t in self._active if not t.finished]
        for transfer in finished:
            transfer.process._transferring_on = None
            self.sim.schedule(0.0, self.sim._wakeup(transfer.process, None))
        self._reschedule()
