"""Platform performance models (CPU, GPU, FPGA, energy).

Each model turns the closed-form operation costs of
:mod:`repro.core.stats` into time on a specific machine, reproducing
the paper's evaluation figures without the original hardware (the
substitution table in DESIGN.md §2 explains why this preserves the
relevant behaviour).
"""

from .cluster import ClusterModel, ClusterRunResult
from .cpu import ALGORITHMS, CpuModel, CpuRunResult
from .energy import EnergyComparison, EnergyModel
from .events import (
    Acquire,
    Process,
    Release,
    Resource,
    SharedBandwidth,
    Simulator,
    Timeout,
    Transfer,
    WaitFor,
)
from .fpga import EmbeddingLatency, FpgaLatency, FpgaModel
from .gpu import GpuModel, GpuRunResult
from .roofline import MachineRates, phase_time

__all__ = [
    "CpuModel",
    "CpuRunResult",
    "ClusterModel",
    "ClusterRunResult",
    "ALGORITHMS",
    "GpuModel",
    "GpuRunResult",
    "FpgaModel",
    "FpgaLatency",
    "EmbeddingLatency",
    "EnergyModel",
    "EnergyComparison",
    "MachineRates",
    "phase_time",
    "Simulator",
    "Process",
    "Resource",
    "SharedBandwidth",
    "Timeout",
    "Acquire",
    "Release",
    "Transfer",
    "WaitFor",
]
