"""Roofline-style phase timing shared by the CPU and FPGA models.

A phase is characterized by its arithmetic (FLOPs), its off-chip
traffic (DRAM bytes) and its on-chip traffic (cache bytes).  Execution
time follows the classic roofline: the phase is limited by whichever of
compute throughput, DRAM bandwidth or cache bandwidth it exhausts —
summed when the machine cannot overlap them (the baseline), rolled into
a ``max`` when it can (the streaming optimization, §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stats import PhaseCost

__all__ = ["MachineRates", "phase_time"]


@dataclass(frozen=True)
class MachineRates:
    """Sustained rates of one execution context.

    Attributes:
        flops_per_second: arithmetic throughput of the active workers.
        dram_bandwidth: off-chip bytes/second available to them.
        cache_bandwidth: on-chip (LLC/BRAM) bytes/second.
    """

    flops_per_second: float
    dram_bandwidth: float
    cache_bandwidth: float = float("inf")

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")
        if self.dram_bandwidth <= 0:
            raise ValueError("dram_bandwidth must be positive")
        if self.cache_bandwidth <= 0:
            raise ValueError("cache_bandwidth must be positive")


def phase_time(cost: PhaseCost, rates: MachineRates, overlap: bool) -> float:
    """Seconds to execute one phase.

    Args:
        cost: the phase's FLOP/byte footprint.
        rates: the machine context executing it.
        overlap: True when memory transfers hide behind computation
            (streaming / double-buffering); False for the baseline's
            compute-then-stall behaviour.
    """
    compute = cost.flops / rates.flops_per_second
    dram = cost.dram_bytes / rates.dram_bandwidth
    cache = cost.cache_bytes / rates.cache_bandwidth
    if overlap:
        return max(compute, dram, cache)
    return compute + dram + cache
