"""Multicore CPU performance model (Figs. 3, 9, 10 and §5.2).

Models the paper's testbed — a 24-core dual-socket Xeon with DDR4-2400
on a configurable number of channels — as a roofline over the
closed-form phase costs of :mod:`repro.core.stats`:

* the **baseline** executes each phase to completion, stalling on its
  DRAM traffic (intermediate spills included), so its speedup saturates
  once the added threads exhaust the memory channels (Fig. 3);
* the **column-based algorithm** eliminates the spills (intermediates
  stay in the LLC), which moves the saturation point out (Fig. 10a);
* **streaming** overlaps the remaining compulsory M_IN/M_OUT traffic
  with computation, approaching ideal scaling (Fig. 10b);
* **zero-skipping** removes ~(skip ratio) of the weighted-sum work on
  top (full MnnFast, Figs. 9 and 10c).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.config import ChunkConfig, MemNNConfig
from ..core.stats import PHASES, baseline_phase_costs, column_phase_costs
from ..memsim.dram import DramModel
from .roofline import MachineRates, phase_time

__all__ = ["CpuModel", "CpuRunResult", "ALGORITHMS"]

#: Algorithm variants evaluated in §5.2, in presentation order.
ALGORITHMS = ("baseline", "column", "column_streaming", "mnnfast")

#: Zero-skip compute reduction at the paper's th=0.1 operating point (§3.2).
PAPER_SKIP_RATIO = 0.97


@dataclass
class CpuRunResult:
    """Timing of one inference pass on the CPU model."""

    algorithm: str
    threads: int
    phase_seconds: dict[str, float]

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def throughput(self) -> float:
        """Inference passes per second."""
        return 1.0 / self.total_seconds


@dataclass(frozen=True)
class CpuModel:
    """A dual-socket Xeon-class machine.

    Attributes:
        cores: hardware cores available (paper: 24).
        flops_per_core: sustained GEMM FLOPs of one core (AVX2 FMA at
            ~2.4 GHz gives ~38 GFLOP/s sustained).
        dram: the memory system; ``channels`` is swept in Figs. 3/10.
        llc_bandwidth: aggregate on-chip bandwidth for chunk-resident
            intermediates.
    """

    cores: int = 24
    flops_per_core: float = 38.4e9
    dram: DramModel = field(default_factory=lambda: DramModel(channels=4))
    llc_bandwidth: float = 400e9

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.flops_per_core <= 0 or self.llc_bandwidth <= 0:
            raise ValueError("rates must be positive")

    def with_channels(self, channels: int) -> "CpuModel":
        return replace(self, dram=replace(self.dram, channels=channels))

    # --- timing --------------------------------------------------------------------

    def rates(self, threads: int) -> MachineRates:
        if not 1 <= threads <= self.cores:
            raise ValueError(
                f"threads must be in [1, {self.cores}], got {threads}"
            )
        return MachineRates(
            flops_per_second=threads * self.flops_per_core,
            dram_bandwidth=self.dram.peak_bandwidth,
            cache_bandwidth=self.llc_bandwidth,
        )

    def run(
        self,
        config: MemNNConfig,
        algorithm: str,
        threads: int,
        chunk: ChunkConfig | None = None,
        skip_ratio: float = PAPER_SKIP_RATIO,
    ) -> CpuRunResult:
        """Time one inference pass for a given algorithm variant.

        ``algorithm`` is one of :data:`ALGORITHMS`; ``skip_ratio`` only
        applies to ``"mnnfast"``.
        """
        if algorithm not in ALGORITHMS:
            raise ValueError(f"algorithm must be one of {ALGORITHMS}, got {algorithm!r}")
        chunk = chunk if chunk is not None else ChunkConfig()
        if algorithm != "baseline":
            # §4.1.1: the column-based implementation parallelizes at
            # chunk granularity (one worker per chunk), so a database
            # with fewer chunks than threads leaves cores idle.
            threads = min(threads, chunk.num_chunks(config.num_sentences))
        rates = self.rates(threads)

        if algorithm == "baseline":
            costs = baseline_phase_costs(config)
            overlap = False
        elif algorithm == "column":
            costs = column_phase_costs(config, chunk, skip_ratio=0.0)
            overlap = False
        elif algorithm == "column_streaming":
            costs = column_phase_costs(config, chunk, skip_ratio=0.0)
            overlap = True
        else:  # mnnfast = column + streaming + zero-skipping
            costs = column_phase_costs(config, chunk, skip_ratio=skip_ratio)
            overlap = True

        phase_seconds = {
            phase: phase_time(costs[phase], rates, overlap) for phase in PHASES
        }
        return CpuRunResult(algorithm, threads, phase_seconds)

    # --- experiment drivers -----------------------------------------------------------

    def speedup_curve(
        self,
        config: MemNNConfig,
        algorithm: str,
        max_threads: int | None = None,
        chunk: ChunkConfig | None = None,
    ) -> dict[int, float]:
        """Speedup vs. this algorithm's own single-thread run (Figs. 3/10)."""
        max_threads = max_threads if max_threads is not None else self.cores
        single = self.run(config, algorithm, 1, chunk=chunk).total_seconds
        return {
            threads: single / self.run(config, algorithm, threads, chunk=chunk).total_seconds
            for threads in range(1, max_threads + 1)
        }

    def speedup_vs_baseline(
        self,
        config: MemNNConfig,
        algorithm: str,
        threads: int,
        chunk: ChunkConfig | None = None,
    ) -> float:
        """Speedup of a variant over the baseline at equal thread count
        (the Fig. 9b presentation)."""
        base = self.run(config, "baseline", threads, chunk=chunk).total_seconds
        other = self.run(config, algorithm, threads, chunk=chunk).total_seconds
        return base / other

    def saturation_point(
        self, config: MemNNConfig, algorithm: str, tolerance: float = 0.05
    ) -> int:
        """First thread count after which adding a thread improves
        throughput by less than ``tolerance`` (the Fig. 3 saturation)."""
        previous = self.run(config, algorithm, 1).throughput
        for threads in range(2, self.cores + 1):
            current = self.run(config, algorithm, threads).throughput
            if current < previous * (1.0 + tolerance):
                return threads - 1
            previous = current
        return self.cores
