"""FPGA accelerator cycle model (Fig. 8 architecture; Figs. 13-14).

Models the ZedBoard Zynq-7020 implementation of §4.2: a 100 MHz
pipeline (dot product -> partial softmax -> weighted sum) fed by a
32-bit DDR3 interface, with the dedicated embedding cache in front of
the embedding stage.

Timing structure per variant (matching Fig. 13's four bars):

* **baseline** — layer-by-layer execution with full intermediate
  round-trips through DDR3, and short row-granular bursts that waste
  part of the interface's bandwidth;
* **column** — chunked execution: intermediates stay in BRAM and the
  memory streams in long chunk-sized bursts, but loads and compute
  still alternate;
* **column + streaming** — double buffering overlaps the next chunk's
  loads with the current chunk's compute;
* **MnnFast** — adds zero-skipping: when every exponential in a chunk
  falls below ``th_skip`` the chunk's M_OUT rows are neither loaded
  nor multiplied (§4.2's group-granular skip: because lanes execute in
  lockstep, a chunk is only skipped when *all* of its values are).

The default calibration constants (lanes, burst efficiencies, question
batch) were chosen so the relative contribution of each effect matches
Fig. 13; they are plain dataclass fields so the ablation benches can
sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.config import (
    FLOAT_BYTES,
    EmbeddingCacheConfig,
    FPGA_CONFIG,
    MemNNConfig,
)
from ..memsim.dram import FPGA_DDR3_BW, DramModel
from ..memsim.embedding_cache import EmbeddingCache

__all__ = ["FpgaModel", "FpgaLatency", "EmbeddingLatency", "FpgaResources", "ZYNQ_7020"]


@dataclass(frozen=True)
class FpgaResources:
    """Programmable-logic resources of a target device."""

    dsp_slices: int
    bram_kbytes: int
    luts: int

    def fits(self, usage: "FpgaResources") -> bool:
        return (
            usage.dsp_slices <= self.dsp_slices
            and usage.bram_kbytes <= self.bram_kbytes
            and usage.luts <= self.luts
        )


#: The ZedBoard's Zynq-7020 PL fabric: 220 DSP48 slices, 140 x 36 Kb
#: BRAM (630 KB), 53 200 LUTs.
ZYNQ_7020 = FpgaResources(dsp_slices=220, bram_kbytes=630, luts=53_200)


@dataclass
class FpgaLatency:
    """Latency decomposition of one inference on the FPGA model."""

    memory_seconds: float
    compute_seconds: float
    overlapped: bool

    @property
    def total_seconds(self) -> float:
        if self.overlapped:
            return max(self.memory_seconds, self.compute_seconds)
        return self.memory_seconds + self.compute_seconds


@dataclass
class EmbeddingLatency:
    """Latency of an embedding-operation word stream (Fig. 14)."""

    total_seconds: float
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class FpgaModel:
    """Zynq-7020-class accelerator.

    Attributes:
        clock_hz: programmable-logic clock (paper: 100 MHz).
        dram: the DDR3 interface (32-bit @ 533 MHz by default).
        lanes: sentences processed per cycle by the dot-product and
            weighted-sum units (bounded by the 220 DSP slices).
        num_questions: question vectors batched per inference pass.
        baseline_burst_efficiency: fraction of DDR3 bandwidth the
            baseline's short row-granular bursts sustain.
        chunk_burst_efficiency: fraction sustained by chunk-length
            bursts.
        chunk_size: sentences per chunk (Table 1: 25).
        bram_read_bytes_per_cycle: on-chip vector read width, used by
            the embedding-cache hit path.
    """

    clock_hz: float = 100e6
    dram: DramModel = field(
        default_factory=lambda: DramModel(
            channels=1, channel_bandwidth=FPGA_DDR3_BW, access_latency=100e-9
        )
    )
    lanes: int = 4
    num_questions: int = 3
    baseline_burst_efficiency: float = 0.85
    chunk_burst_efficiency: float = 0.95
    chunk_size: int = 25
    bram_read_bytes_per_cycle: int = 64

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.lanes <= 0 or self.chunk_size <= 0:
            raise ValueError("clock_hz, lanes and chunk_size must be positive")
        for name in ("baseline_burst_efficiency", "chunk_burst_efficiency"):
            eff = getattr(self, name)
            if not 0.0 < eff <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {eff}")

    # --- building blocks ------------------------------------------------------------

    def _cycles(self, count: float) -> float:
        return count / self.clock_hz

    def _mem_seconds(self, num_bytes: float, efficiency: float) -> float:
        return num_bytes / (self.dram.peak_bandwidth * efficiency)

    def compute_seconds(self, config: MemNNConfig, keep_fraction: float = 1.0) -> float:
        """Pipeline compute time: inner product, exp, weighted sum, and
        the final lazy-softmax division."""
        nq, ns = self.num_questions, config.num_sentences
        inner = nq * ns / self.lanes
        exponent = nq * ns / self.lanes  # exp units are ganged with the lanes
        weighted = nq * ns * keep_fraction / self.lanes
        division = nq * config.embedding_dim
        return self._cycles(inner + exponent + weighted + division)

    def chunk_skip_fraction(self, keep_rate: float) -> float:
        """Probability a whole chunk is skipped (all rows below th_skip).

        §4.2: lanes run in lockstep, so M_OUT work is skipped only when
        every exponential in the chunk misses the threshold.
        """
        if not 0.0 <= keep_rate <= 1.0:
            raise ValueError(f"keep_rate must be in [0, 1], got {keep_rate}")
        return (1.0 - keep_rate) ** self.chunk_size

    # --- Fig. 13: inference latency per variant ----------------------------------------

    def run(
        self,
        config: MemNNConfig = FPGA_CONFIG,
        variant: str = "mnnfast",
        keep_rate: float = 0.03,
    ) -> FpgaLatency:
        """Latency of one inference pass.

        Args:
            config: network shape (Table 1 FPGA column by default).
            variant: ``"baseline"`` / ``"column"`` / ``"column_streaming"``
                / ``"mnnfast"``.
            keep_rate: fraction of probability rows above ``th_skip``
                (bAbI-style attention keeps ~3% at th=0.1, Fig. 7).
        """
        variants = ("baseline", "column", "column_streaming", "mnnfast")
        if variant not in variants:
            raise ValueError(f"variant must be one of {variants}, got {variant!r}")
        memories = 2 * config.memory_bytes
        intermediates = 6 * config.num_sentences * self.num_questions * FLOAT_BYTES

        if variant == "baseline":
            memory = self._mem_seconds(
                memories + intermediates, self.baseline_burst_efficiency
            )
            return FpgaLatency(memory, self.compute_seconds(config), overlapped=False)

        if variant == "column":
            memory = self._mem_seconds(memories, self.chunk_burst_efficiency)
            return FpgaLatency(memory, self.compute_seconds(config), overlapped=False)

        if variant == "column_streaming":
            memory = self._mem_seconds(memories, self.chunk_burst_efficiency)
            memory += self._first_chunk_seconds(config)  # pipeline fill
            return FpgaLatency(memory, self.compute_seconds(config), overlapped=True)

        # mnnfast: streaming + zero-skipping at chunk granularity.
        skip = self.chunk_skip_fraction(keep_rate)
        m_out_kept = config.memory_bytes * (1.0 - skip)
        memory = self._mem_seconds(
            config.memory_bytes + m_out_kept, self.chunk_burst_efficiency
        )
        memory += self._first_chunk_seconds(config)
        compute = self.compute_seconds(config, keep_fraction=1.0 - skip)
        return FpgaLatency(memory, compute, overlapped=True)

    def _first_chunk_seconds(self, config: MemNNConfig) -> float:
        first_chunk = min(self.chunk_size, config.num_sentences)
        return self._mem_seconds(
            2 * first_chunk * config.embedding_dim * FLOAT_BYTES,
            self.chunk_burst_efficiency,
        )

    def latency_table(
        self, config: MemNNConfig = FPGA_CONFIG, keep_rate: float = 0.03
    ) -> dict[str, float]:
        """Fig. 13's four bars, normalized to the baseline."""
        baseline = self.run(config, "baseline", keep_rate).total_seconds
        return {
            variant: self.run(config, variant, keep_rate).total_seconds / baseline
            for variant in ("baseline", "column", "column_streaming", "mnnfast")
        }

    # --- resource estimation (why Table 1 scales the FPGA down) -------------------------

    def resource_usage(
        self,
        config: MemNNConfig = FPGA_CONFIG,
        embedding_cache_bytes: int = 0,
    ) -> FpgaResources:
        """Estimate PL resource usage of this design point.

        First-order HLS accounting: each lane multiplies-accumulates a
        full ``ed``-wide row per cycle (one DSP per dimension), the exp
        units ride lookup tables, and BRAM holds the chunk buffers, the
        double-buffered chunk staging, and the embedding cache.
        """
        dsp = self.lanes * config.embedding_dim  # MAC array
        dsp += self.lanes * 4  # exponential units (piecewise-poly eval)
        chunk_bytes = self.chunk_size * config.embedding_dim * FLOAT_BYTES
        bram_bytes = (
            2 * self.chunk_size * self.num_questions * FLOAT_BYTES  # score/exp
            + 4 * chunk_bytes  # double-buffered M_IN/M_OUT staging
            + self.num_questions * config.embedding_dim * FLOAT_BYTES  # O_tmp
            + embedding_cache_bytes
        )
        luts = 2_000 + 350 * self.lanes + config.embedding_dim * 40
        return FpgaResources(
            dsp_slices=dsp,
            bram_kbytes=-(-bram_bytes // 1024),
            luts=luts,
        )

    def fits_device(
        self,
        config: MemNNConfig = FPGA_CONFIG,
        device: FpgaResources = ZYNQ_7020,
        embedding_cache_bytes: int = 0,
    ) -> bool:
        """Does this design point fit the target device?"""
        return device.fits(self.resource_usage(config, embedding_cache_bytes))

    # --- Fig. 14: embedding cache -------------------------------------------------------

    def embedding_latency(
        self,
        word_ids: Sequence[int],
        embedding_dim: int = 256,
        cache: EmbeddingCache | None = None,
    ) -> EmbeddingLatency:
        """Latency of embedding a word stream with/without the cache.

        A hit reads the vector from BRAM; a miss pays the DDR3 access
        latency plus the vector transfer (and fills the cache).
        """
        vector_bytes = embedding_dim * FLOAT_BYTES
        hit_seconds = self._cycles(vector_bytes / self.bram_read_bytes_per_cycle)
        miss_seconds = (
            self.dram.access_latency
            + self._mem_seconds(vector_bytes, self.chunk_burst_efficiency)
            + hit_seconds  # the fetched vector still feeds the adder tree
        )
        if cache is None:
            total = len(word_ids) * miss_seconds
            return EmbeddingLatency(total, hits=0, misses=len(word_ids))

        hits = misses = 0
        total = 0.0
        for word_id in word_ids:
            if cache.probe(int(word_id)):
                hits += 1
                total += hit_seconds
            else:
                misses += 1
                total += miss_seconds
        return EmbeddingLatency(total, hits, misses)

    def embedding_cache_sweep(
        self,
        word_ids: Sequence[int],
        sizes_bytes: Sequence[int] = (32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024),
        embedding_dim: int = 256,
        associativity: int = 1,
    ) -> dict[int, float]:
        """Fig. 14: latency reduction vs. "No Cache" for each cache size."""
        no_cache = self.embedding_latency(word_ids, embedding_dim).total_seconds
        reductions = {}
        for size in sizes_bytes:
            cache = EmbeddingCache(
                EmbeddingCacheConfig(size_bytes=size, embedding_dim=embedding_dim),
                associativity=associativity,
            )
            cached = self.embedding_latency(word_ids, embedding_dim, cache)
            reductions[size] = 1.0 - cached.total_seconds / no_cache
        return reductions
