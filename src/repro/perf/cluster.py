"""Multi-node scale-out model (§5.3, closing remark).

The paper observes that multi-GPU scaling is ultimately limited by the
host's shared PCIe bandwidth, and that "this problem can be resolved
by using multiple nodes to isolate the memory accesses via PCIe", with
negligible synchronization overhead because each node's result is just
a partial weighted sum of size ``nq x ed``.

This model makes that argument quantitative: ``nodes`` machines each
run the multi-GPU model over their shard of the memory (each node has
its *own* host PCIe, so cross-node contention disappears), then the
``O(nq x ed)`` partials are tree-reduced over the cluster network.
The mergeability that makes this correct is
:class:`repro.core.column.PartialOutput` — tested to be associative
and commutative — so the reduce is exact, not approximate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..core.config import FLOAT_BYTES, MemNNConfig
from ..core.sharded import ShardPlan
from .gpu import GpuModel

__all__ = ["ClusterModel", "ClusterRunResult"]


@dataclass
class ClusterRunResult:
    """Timing decomposition of one cluster-wide inference."""

    nodes: int
    gpus_per_node: int
    compute_seconds: float
    reduce_seconds: float

    def __post_init__(self) -> None:
        # Fail here with the caller's numbers in hand rather than deep
        # inside GpuModel with a cryptic per-GPU shard error.
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}"
            )

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.reduce_seconds

    @property
    def total_gpus(self) -> int:
        return self.nodes * self.gpus_per_node

    @property
    def sync_fraction(self) -> float:
        """Share of the run spent synchronizing (paper: negligible)."""
        return self.reduce_seconds / self.total_seconds if self.total_seconds else 0.0


@dataclass(frozen=True)
class ClusterModel:
    """A cluster of multi-GPU nodes connected by a commodity network.

    Attributes:
        gpu: the per-node GPU model (each node gets its own host PCIe).
        network_bandwidth: node-to-node bytes/second (10 GbE default).
        network_latency: per-message latency.
    """

    gpu: GpuModel = field(default_factory=GpuModel)
    network_bandwidth: float = 1.25e9
    network_latency: float = 50e-6

    def __post_init__(self) -> None:
        if self.network_bandwidth <= 0 or self.network_latency < 0:
            raise ValueError("network parameters must be positive")

    def partial_bytes(self, config: MemNNConfig) -> int:
        """Wire size of one node's partial: the weighted-sum numerator
        (nq x ed), the denominator (nq) and the running max (nq)."""
        nq, ed = config.num_questions, config.embedding_dim
        return (nq * ed + 2 * nq) * FLOAT_BYTES

    def reduce_seconds(self, config: MemNNConfig, nodes: int) -> float:
        """Tree reduction of the partials across the cluster."""
        if nodes <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nodes))
        per_round = (
            self.network_latency
            + self.partial_bytes(config) / self.network_bandwidth
        )
        return rounds * per_round

    def shard_plan(
        self, config: MemNNConfig, nodes: int, policy: str = "contiguous"
    ) -> ShardPlan:
        """The cross-node memory partition — the same
        :class:`~repro.core.sharded.ShardPlan` the numerical
        :class:`~repro.core.sharded.ShardedMemNN` executes, so the
        timing model and the numerics agree on shard geometry."""
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        return ShardPlan(config.num_sentences, nodes, policy)

    def run(
        self,
        config: MemNNConfig,
        nodes: int,
        gpus_per_node: int = 4,
        shard_policy: str = "contiguous",
    ) -> ClusterRunResult:
        """Cluster-wide inference over an evenly sharded memory.

        Each node processes its shard of the plan with its own PCIe
        and GPUs; nodes run concurrently, so the compute phase
        finishes when the *largest* shard does.
        """
        if gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {gpus_per_node}"
            )
        plan = self.shard_plan(config, nodes, shard_policy)
        shard_sentences = max(1, plan.max_shard_rows)
        shard = replace(config, num_sentences=shard_sentences)
        node_result = self.gpu.run_multi_gpu(shard, gpus_per_node)
        return ClusterRunResult(
            nodes=nodes,
            gpus_per_node=gpus_per_node,
            compute_seconds=node_result.total_seconds,
            reduce_seconds=self.reduce_seconds(config, nodes),
        )

    def speedup_curve(
        self,
        config: MemNNConfig,
        node_counts: tuple[int, ...] = (1, 2, 4, 8),
        gpus_per_node: int = 4,
    ) -> dict[int, float]:
        """Speedup over the single-GPU baseline per node count."""
        baseline = self.gpu.run_baseline(config).total_seconds
        return {
            nodes: baseline / self.run(config, nodes, gpus_per_node).total_seconds
            for nodes in node_counts
        }
