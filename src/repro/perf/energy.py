"""CPU-vs-FPGA energy-efficiency comparison (§5.5).

The paper measures package power with ``turbostat`` on the CPU and
takes the Vivado post-bitstream power report for the FPGA, then
compares energy per equal quantity of question-answering work.  Here
both platforms run their MnnFast variant on the same network
configuration through their respective timing models, and energy is
``power x time``.

Power defaults: at the small matched configuration the column-based
CPU implementation runs on few effective threads (one worker per
chunk, §4.1.1), so the measured package+DRAM power sits well below
TDP — ~100 W for a dual-socket Xeon E5-2650 v4 with a mostly idle
thread pool; a Zynq-7020 design reports ~2.5 W in Vivado.  The CPU
additionally sustains only a fraction of its theoretical bandwidth on
this access pattern (``cpu_bandwidth_efficiency``) and pays a
per-batch dispatch overhead (``cpu_dispatch_overhead``: thread-pool
wakeup + BLAS dispatch).  All constants are plain fields, swept by the
sensitivity bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import FPGA_CONFIG, MemNNConfig
from .cpu import CpuModel
from .fpga import FpgaModel

__all__ = ["EnergyModel", "EnergyComparison"]


@dataclass
class EnergyComparison:
    """Energy per question on both platforms."""

    cpu_seconds: float
    fpga_seconds: float
    cpu_joules: float
    fpga_joules: float

    @property
    def efficiency_ratio(self) -> float:
        """How many times less energy the FPGA spends per question."""
        return self.cpu_joules / self.fpga_joules


@dataclass(frozen=True)
class EnergyModel:
    """Energy comparison harness.

    Attributes:
        cpu_power_watts: package + DRAM power under load.
        fpga_power_watts: Vivado-reported total on-chip power.
        cpu_bandwidth_efficiency: fraction of peak DRAM bandwidth the
            CPU sustains on the MemNN access pattern.
        cpu_threads: worker threads used for the CPU measurement.
    """

    cpu: CpuModel = field(default_factory=CpuModel)
    fpga: FpgaModel = field(default_factory=FpgaModel)
    cpu_power_watts: float = 100.0
    fpga_power_watts: float = 2.5
    cpu_bandwidth_efficiency: float = 0.8
    cpu_threads: int = 20
    cpu_dispatch_overhead: float = 7.5e-6

    def __post_init__(self) -> None:
        if self.cpu_power_watts <= 0 or self.fpga_power_watts <= 0:
            raise ValueError("power draws must be positive")
        if not 0.0 < self.cpu_bandwidth_efficiency <= 1.0:
            raise ValueError("cpu_bandwidth_efficiency must be in (0, 1]")

    def compare(
        self, config: MemNNConfig = FPGA_CONFIG, keep_rate: float = 0.03
    ) -> EnergyComparison:
        """Run MnnFast on both platform models over the same network.

        Both process ``fpga.num_questions`` questions over the same
        story database ("resize the network configuration for both
        platforms to process the same quantity of question answering
        tasks", §5.5).
        """
        questions = self.fpga.num_questions
        cpu_config = MemNNConfig(
            embedding_dim=config.embedding_dim,
            num_sentences=config.num_sentences,
            num_questions=questions,
            vocab_size=config.vocab_size,
            max_words=config.max_words,
            hops=config.hops,
        )
        cpu_result = self.cpu.run(cpu_config, "mnnfast", threads=self.cpu_threads)
        cpu_seconds = (
            cpu_result.total_seconds / self.cpu_bandwidth_efficiency
            + self.cpu_dispatch_overhead
        )

        fpga_seconds = self.fpga.run(config, "mnnfast", keep_rate).total_seconds

        return EnergyComparison(
            cpu_seconds=cpu_seconds / questions,
            fpga_seconds=fpga_seconds / questions,
            cpu_joules=self.cpu_power_watts * cpu_seconds / questions,
            fpga_joules=self.fpga_power_watts * fpga_seconds / questions,
        )
