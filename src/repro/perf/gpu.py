"""GPU performance model: CUDA streams and multi-GPU scaling (Fig. 12).

Built on the discrete-event kernel in :mod:`repro.perf.events`, this
model encodes exactly the overlap rules the paper observes in §5.3:

* kernel/kernel and kernel/memcpy executions overlap;
* memcpy/memcpy does **not** overlap within one GPU (a single DMA
  engine drives the host link, "each memcpy function uses the full
  PCI-e bandwidth");
* across GPUs, copies proceed concurrently but share the host's PCIe
  bandwidth (processor sharing), so per-GPU H2D latency stretches as
  GPUs are added — the worst-vs-ideal gap of Fig. 12(b).

The column-based algorithm is what makes streams/GPUs independent in
the first place: each worker computes a partial weighted sum over its
chunk shard and the ``ed x nq``-sized merge is negligible (§3.1).

Zero-skipping is deliberately *not* part of the GPU pipeline: §4.1.2
explains that a warp only completes early if all its threads skip, and
that compacting the sparse matrix costs about as much as the weighted
sum it would save.  :meth:`GpuModel.zero_skip_estimate` quantifies that
argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import MemNNConfig
from .events import (
    Acquire,
    Release,
    Resource,
    SharedBandwidth,
    Simulator,
    Transfer,
    WaitFor,
)

__all__ = ["GpuModel", "GpuRunResult"]


@dataclass
class GpuRunResult:
    """Timeline of one GPU-model run."""

    total_seconds: float
    h2d_seconds: list[float] = field(default_factory=list)
    kernel_seconds: list[float] = field(default_factory=list)

    @property
    def worst_h2d(self) -> float:
        return max(self.h2d_seconds) if self.h2d_seconds else 0.0


@dataclass(frozen=True)
class GpuModel:
    """A TITAN Xp-class multi-GPU server.

    Attributes:
        effective_flops: sustained FLOPs of one GPU on the skinny
            MemNN GEMMs (a small fraction of the 12 TFLOP/s peak).
        pcie_link_bandwidth: one x16 link's sustained H2D bandwidth.
        host_aggregate_bandwidth: total host-side PCIe bandwidth the
            GPUs share (root complex / host memory limit).
        kernel_launch_overhead: per-kernel launch latency.
    """

    effective_flops: float = 0.6e12
    pcie_link_bandwidth: float = 12e9
    host_aggregate_bandwidth: float = 36e9
    kernel_launch_overhead: float = 10e-6

    def __post_init__(self) -> None:
        if min(
            self.effective_flops,
            self.pcie_link_bandwidth,
            self.host_aggregate_bandwidth,
        ) <= 0:
            raise ValueError("bandwidths and throughput must be positive")

    # --- workload characterization ------------------------------------------------

    def copy_bytes(self, config: MemNNConfig) -> int:
        """H2D payload: both memory matrices (questions are negligible)."""
        return 2 * config.memory_bytes

    def kernel_flops(self, config: MemNNConfig) -> float:
        """Inner product + softmax + weighted sum arithmetic."""
        ns, nq, ed = config.num_sentences, config.num_questions, config.embedding_dim
        return 2.0 * nq * ns * ed + 3.0 * nq * ns + 2.0 * nq * ns * ed

    # --- single-GPU: baseline and multi-stream (Fig. 12a) --------------------------

    def run_baseline(self, config: MemNNConfig) -> GpuRunResult:
        """Baseline: synchronous copies then kernels, nothing overlaps."""
        copy = self.copy_bytes(config) / self.pcie_link_bandwidth
        kernels = self.kernel_flops(config) / self.effective_flops
        overhead = 3 * self.kernel_launch_overhead
        return GpuRunResult(
            total_seconds=copy + kernels + overhead,
            h2d_seconds=[copy],
            kernel_seconds=[kernels],
        )

    def run_streams(self, config: MemNNConfig, num_streams: int) -> GpuRunResult:
        """Column-based algorithm across ``num_streams`` CUDA streams.

        Each stream copies and processes its shard of the memory;
        copies serialize on the single DMA engine while kernels overlap
        with later streams' copies.
        """
        if num_streams <= 0:
            raise ValueError(f"num_streams must be positive, got {num_streams}")
        sim = Simulator()
        dma = Resource(sim, capacity=1, name="dma")
        pcie = SharedBandwidth(
            sim,
            capacity=self.pcie_link_bandwidth,
            per_transfer_cap=self.pcie_link_bandwidth,
        )
        compute = SharedBandwidth(sim, capacity=self.effective_flops, name="sms")

        bytes_per_stream = self.copy_bytes(config) / num_streams
        flops_per_stream = self.kernel_flops(config) / num_streams
        h2d_times: list[float] = []
        kernel_times: list[float] = []

        def stream_worker():
            start = sim.now
            yield Acquire(dma)
            yield Transfer(pcie, bytes_per_stream)
            yield Release(dma)
            h2d_times.append(sim.now - start)
            kernel_start = sim.now
            yield Transfer(compute, flops_per_stream)
            kernel_times.append(sim.now - kernel_start)

        for _ in range(num_streams):
            sim.spawn(stream_worker(), name="stream")
        total = sim.run() + 3 * self.kernel_launch_overhead
        return GpuRunResult(total, h2d_times, kernel_times)

    # --- multi-GPU (Fig. 12b) -------------------------------------------------------

    def run_multi_gpu(
        self, config: MemNNConfig, num_gpus: int, ideal_pcie: bool = False
    ) -> GpuRunResult:
        """Distribute the memory across GPUs (partial-sum scale-out).

        ``ideal_pcie=True`` reproduces the paper's case (B): the
        hypothetical machine where H2D copies never contend, isolating
        the PCIe-contention penalty.
        """
        if num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {num_gpus}")
        sim = Simulator()
        aggregate = (
            num_gpus * self.pcie_link_bandwidth
            if ideal_pcie
            else self.host_aggregate_bandwidth
        )
        host_link = SharedBandwidth(
            sim, capacity=aggregate, per_transfer_cap=self.pcie_link_bandwidth
        )
        bytes_per_gpu = self.copy_bytes(config) / num_gpus
        flops_per_gpu = self.kernel_flops(config) / num_gpus
        h2d_times = [0.0] * num_gpus
        kernel_times = [0.0] * num_gpus

        def gpu_worker(gpu_id: int):
            # Within each GPU the copy is itself chunked into streams,
            # so kernels overlap the GPU's own tail copies; the GPU
            # finishes when its last chunk's kernels drain.
            start = sim.now
            compute = SharedBandwidth(sim, capacity=self.effective_flops)
            chunk_bytes = bytes_per_gpu / 4
            chunk_flops = flops_per_gpu / 4

            def chunk_kernels():
                yield Transfer(compute, chunk_flops)

            copy_start = sim.now
            kernels = []
            for _ in range(4):
                yield Transfer(host_link, chunk_bytes)
                kernels.append(sim.spawn(chunk_kernels(), name=f"gpu{gpu_id}-kernel"))
            h2d_times[gpu_id] = sim.now - copy_start
            for kernel in kernels:
                yield WaitFor(kernel)
            kernel_times[gpu_id] = sim.now - start

        for gpu_id in range(num_gpus):
            sim.spawn(gpu_worker(gpu_id), name=f"gpu{gpu_id}")
        total = sim.run() + 3 * self.kernel_launch_overhead
        return GpuRunResult(total, h2d_times, kernel_times)

    # --- zero-skipping on GPUs (§4.1.2) ----------------------------------------------

    def zero_skip_estimate(
        self, config: MemNNConfig, skip_ratio: float = 0.97
    ) -> dict[str, float]:
        """Why zero-skipping does not pay on GPUs.

        Returns the weighted-sum kernel time, the time after pruning,
        and the DeftNN-style compaction overhead the paper measured to
        be "comparable to weighted sum's latency" — netting out to no
        improvement (or worse).
        """
        if not 0.0 <= skip_ratio <= 1.0:
            raise ValueError("skip_ratio must be in [0, 1]")
        ns, nq, ed = config.num_sentences, config.num_questions, config.embedding_dim
        weighted = 2.0 * nq * ns * ed / self.effective_flops
        pruned = weighted * (1.0 - skip_ratio)
        compaction = weighted  # transformation latency ~ weighted sum (§4.1.2)
        return {
            "weighted_sum_seconds": weighted,
            "pruned_seconds": pruned,
            "compaction_seconds": compaction,
            "net_seconds": pruned + compaction,
            "net_speedup": weighted / (pruned + compaction),
        }
