"""Plain-text reporting helpers for the benchmark harness."""

from .tables import format_percent, format_series, format_speedup, format_table

__all__ = ["format_table", "format_series", "format_percent", "format_speedup"]
