"""Plain-text reporting helpers for the benchmark harness."""

from .serving import (
    format_overload_comparison,
    format_serving_summary,
    format_stage_breakdown,
)
from .tables import format_percent, format_series, format_speedup, format_table

__all__ = [
    "format_table",
    "format_series",
    "format_percent",
    "format_speedup",
    "format_serving_summary",
    "format_stage_breakdown",
    "format_overload_comparison",
]
