"""Plain-text rendering of experiment results.

The benchmark harness prints each figure's rows/series through these
helpers so paper-vs-measured comparisons read the same everywhere.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_percent", "format_speedup"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, series: Mapping[object, float], value_format: str = "{:.2f}"
) -> str:
    """Render one named series as ``name: k1=v1 k2=v2 ...``."""
    body = " ".join(
        f"{key}={value_format.format(value)}" for key, value in series.items()
    )
    return f"{name}: {body}"


def format_percent(value: float) -> str:
    """``0.345`` -> ``'34.5%'``."""
    return f"{100.0 * value:.1f}%"


def format_speedup(value: float) -> str:
    """``2.013`` -> ``'2.01x'``."""
    return f"{value:.2f}x"
