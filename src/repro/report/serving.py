"""Rendering of serving-run metrics: lifecycle summaries, per-stage
latency breakdowns, and side-by-side overload comparisons.

Everything here consumes :class:`repro.serving.ServingMetrics` and
renders through :func:`repro.report.tables.format_table`, so the
serving experiment reads like the paper-figure reports.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..serving.metrics import ServingMetrics
from ..serving.trace import STAGE_GROUPS
from .tables import format_percent, format_table

__all__ = [
    "format_serving_summary",
    "format_stage_breakdown",
    "format_overload_comparison",
]


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}us"


def format_serving_summary(
    runs: Mapping[str, ServingMetrics], title: str = "Serving summary"
) -> str:
    """One row per named run: outcomes, latency percentiles, degradation."""
    rows = []
    for name, metrics in runs.items():
        pct = metrics.percentiles("question")
        rows.append(
            [
                name,
                metrics.arrivals,
                metrics.completed,
                format_percent(metrics.shed_rate),
                format_percent(metrics.timeout_rate),
                metrics.retries,
                _us(pct["p50"]),
                _us(pct["p95"]),
                _us(pct["p99"]),
                metrics.degradation_peak_level,
            ]
        )
    return format_table(
        [
            "run", "arrivals", "completed", "shed", "timeout", "retries",
            "p50", "p95", "p99", "peak_degr",
        ],
        rows,
        title=title,
    )


def format_stage_breakdown(
    runs: Mapping[str, ServingMetrics],
    kind: str = "question",
    title: str | None = None,
) -> str:
    """Mean seconds per lifecycle stage group, one row per named run.

    The queueing / embed / inference / backoff decomposition comes from
    the span traces of *completed* requests, so the rows sum to the
    mean served latency of each run.
    """
    rows = []
    for name, metrics in runs.items():
        breakdown = metrics.stage_breakdown(kind)
        total = sum(breakdown.values())
        rows.append(
            [name]
            + [_us(breakdown[group]) for group in STAGE_GROUPS]
            + [_us(total)]
        )
    return format_table(
        ["run", *STAGE_GROUPS, "total"],
        rows,
        title=title
        if title is not None
        else f"Per-stage latency breakdown ({kind}s, mean over completed)",
    )


def format_overload_comparison(
    baseline_name: str,
    baseline: ServingMetrics,
    treated_name: str,
    treated: ServingMetrics,
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> str:
    """Side-by-side robustness comparison of two runs of one workload."""
    def ratio(new: float, old: float) -> str:
        return f"{new / old:.2f}x" if old > 0 else "n/a"

    rows = [
        [
            "shed rate",
            format_percent(baseline.shed_rate),
            format_percent(treated.shed_rate),
            ratio(treated.shed_rate, baseline.shed_rate),
        ],
        [
            "timeout rate",
            format_percent(baseline.timeout_rate),
            format_percent(treated.timeout_rate),
            ratio(treated.timeout_rate, baseline.timeout_rate),
        ],
        [
            "completed",
            baseline.completed,
            treated.completed,
            ratio(float(treated.completed), float(baseline.completed)),
        ],
    ]
    for p in percentiles:
        old = baseline.latency_percentile(p)
        new = treated.latency_percentile(p)
        rows.append([f"p{p:g} latency", _us(old), _us(new), ratio(new, old)])
    rows.append(
        [
            "mean latency",
            _us(baseline.mean_latency()),
            _us(treated.mean_latency()),
            ratio(treated.mean_latency(), baseline.mean_latency()),
        ]
    )
    return format_table(
        ["metric", baseline_name, treated_name, "ratio"],
        rows,
        title=f"Overload comparison: {treated_name} vs {baseline_name}",
    )
