# Developer entry points.  `make check` is the tier-1 gate: lint (when
# ruff is available) plus the unit/integration test suite.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test test-fast test-slowest bench bench-smoke bench-core serving

check: lint test

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff)"; \
	fi

test:
	$(PYTHON) -m pytest -x -q

# Skip the slow (model-training) tests for a quick local loop.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Where does the suite's time go?  Top 15 slowest test phases.  Set
# PYTEST_MAX_TEST_SECONDS (as CI does) to fail any single test that
# exceeds the budget — the runaway-test gate lives in tests/conftest.py.
test-slowest:
	$(PYTHON) -m pytest -q --durations=15

bench:
	$(PYTHON) -m pytest benchmarks -q

# Reduced-scale batching/serving/core/store benches (seconds, not
# minutes) — the CI gate for the BENCH_*.json emission path.  The
# validator then checks every emitted artifact parses and carries a
# payload.
bench-smoke:
	BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_batching.py benchmarks/bench_serving.py benchmarks/bench_parallel_speedup.py benchmarks/bench_store_streaming.py benchmarks/bench_topk_recall.py benchmarks/bench_early_exit.py benchmarks/bench_cluster.py benchmarks/bench_docqa.py -q
	$(PYTHON) benchmarks/validate_artifacts.py

# Full-scale core-engine trajectory (serial vs thread/process/fused
# backends) + artifact validation.  On a >= 4-CPU host this enforces
# the multicore acceptance gates; below that BENCH_core.json records
# an explicit parallel_gate.skipped_reason.
bench-core:
	$(PYTHON) -m pytest benchmarks/bench_parallel_speedup.py -q
	$(PYTHON) benchmarks/validate_artifacts.py

serving:
	$(PYTHON) -m repro serving
