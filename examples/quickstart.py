"""Quickstart: train a tiny memory network and serve it with MnnFast.

Mirrors Fig. 1 of the paper: a short story is stored in memory, a
question arrives, and the network reasons out the answer.  The model
is trained on synthetic single-supporting-fact stories, its weights
are deployed into the MnnFast inference engine, and the same question
is answered by both the baseline dataflow and the fully optimized
MnnFast dataflow — with identical answers but very different
operation counts.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import EngineConfig, MnnFastEngine
from repro.data import build_vocabulary, generate_task, vectorize
from repro.model import (
    MemN2N,
    MemN2NConfig,
    Trainer,
    to_engine_config,
    to_engine_weights,
)

MAX_WORDS, MAX_SENTENCES = 12, 20


def train_model(seed: int = 0):
    """Train a one-hop MemN2N on single-supporting-fact stories."""
    print("Training a one-hop memory network on synthetic bAbI task 1 ...")
    train = generate_task(1, 600, seed=seed)
    vocab = build_vocabulary(train)
    stories, questions, answers = vectorize(train, vocab, MAX_WORDS, MAX_SENTENCES)

    model = MemN2N(
        MemN2NConfig(
            vocab_size=len(vocab),
            embedding_dim=24,
            hops=1,
            max_sentences=MAX_SENTENCES,
            max_words=MAX_WORDS,
            use_temporal_encoding=False,  # exact export to the engine
        ),
        rng=np.random.default_rng(seed),
    )
    trainer = Trainer(model, rng=np.random.default_rng(seed + 1))
    trainer.fit(stories, questions, answers, epochs=60)
    accuracy = trainer.accuracy(stories, questions, answers)
    print(f"  training accuracy: {accuracy:.1%}")
    return model, vocab


def main() -> None:
    model, vocab = train_model()

    # --- Fig. 1: store a story, ask a question -----------------------------------
    story = [
        "mary went to the kitchen",
        "john moved to the garden",
        "mary travelled to the office",
        "daniel went to the bathroom",
    ]
    question = "where is mary"

    story_ids = np.stack([vocab.encode(s.split(), width=MAX_WORDS) for s in story])
    question_ids = vocab.encode(question.split(), width=MAX_WORDS)[None, :]

    weights = to_engine_weights(model)
    results = {}
    for name, engine_config in {
        "baseline": EngineConfig.baseline(),
        "mnnfast": EngineConfig.mnnfast(chunk_size=2, threshold=0.01),
    }.items():
        engine = MnnFastEngine(
            to_engine_config(model, num_sentences=len(story)),
            weights,
            engine_config=engine_config,
        )
        engine.store_story(story_ids)
        results[name] = engine.answer(question_ids)

    print("\nStory:")
    for line in story:
        print(f"  {line}")
    print(f"Question: {question}?")
    for name, result in results.items():
        answer = vocab.word_of(int(result.answer_ids[0]))
        print(f"\n[{name}] answer: {answer}")
        print(f"  intermediate footprint: {result.stats.intermediate_bytes} bytes")
        print(f"  softmax divisions:      {result.stats.divisions}")
        print(
            "  weighted-sum rows:      "
            f"{result.stats.rows_computed} computed, "
            f"{result.stats.rows_skipped} skipped"
        )

    assert (
        results["baseline"].answer_ids[0] == results["mnnfast"].answer_ids[0]
    ), "the optimizations must not change the answer"
    print("\nBaseline and MnnFast agree; MnnFast did strictly less work.")


if __name__ == "__main__":
    main()
