"""Train memory networks on the synthetic bAbI tasks and sweep zero-skipping.

Reproduces the data side of the paper's Figs. 6 and 7 end-to-end at
example scale: train a MemN2N per task, inspect the sparsity of its
attention, then sweep the skip threshold and print the
accuracy-vs-computation tradeoff.

Run:  python examples/train_babi.py [task_id ...]
"""

import sys

import numpy as np

from repro.data import TASK_NAMES
from repro.model import train_on_task
from repro.report import format_percent, format_table

THRESHOLDS = (0.001, 0.01, 0.1, 0.5)


def run_task(task_id: int) -> None:
    name = TASK_NAMES[task_id]
    print(f"\n=== Task {task_id}: {name} ===")
    trainer, test, vocab, result = train_on_task(
        task_id, train_examples=500, test_examples=100, epochs=40
    )
    print(
        f"trained: loss {result.losses[0]:.2f} -> {result.losses[-1]:.3f}, "
        f"train acc {result.train_accuracy:.1%}, test acc {result.test_accuracy:.1%}"
    )

    # Attention sparsity (Fig. 6).
    attention = trainer.model.attention(test["stories"], test["questions"])
    above = float((attention > 0.1).sum()) / attention.size
    peak = float(attention.max(axis=1).mean())
    print(
        f"attention: {above:.1%} of entries above 0.1, "
        f"mean per-question peak {peak:.2f}"
    )

    # Zero-skipping sweep (Fig. 7).
    rows = []
    for threshold in THRESHOLDS:
        evaluation = trainer.evaluate_zero_skip(
            test["stories"], test["questions"], test["answers"], threshold
        )
        rows.append(
            [
                threshold,
                format_percent(evaluation.computation_reduction),
                format_percent(evaluation.accuracy),
                format_percent(evaluation.accuracy_loss),
            ]
        )
    print(
        format_table(
            ["th_skip", "compute reduction", "accuracy", "relative loss"],
            rows,
        )
    )


def main() -> None:
    task_ids = [int(arg) for arg in sys.argv[1:]] or [1, 15]
    for task_id in task_ids:
        if task_id not in TASK_NAMES:
            raise SystemExit(f"unknown task {task_id}; choose 1..20")
        run_task(task_id)


if __name__ == "__main__":
    main()
