"""Key-value memory QA: the paper's large-scale motivation, executable.

MnnFast's intro motivates the system with large-scale question
answering over knowledge sources, citing Key-Value Memory Networks as
the representative architecture.  This example builds a synthetic
WikiMovies-style knowledge base, then answers questions with the full
stack: key hashing (inverted index) to preselect candidates, the
column-based lazy-softmax scan over the surviving keys, and
zero-skipping in the value read.

Run:  python examples/kv_wikimovies.py
"""

import time

from repro.core import ZeroSkipConfig
from repro.core.kv import KVMnnFast
from repro.data import generate_movie_kb
from repro.report import format_percent, format_table


def main() -> None:
    print("Building a synthetic WikiMovies-style knowledge base ...")
    kb, questions = generate_movie_kb(num_films=2000, seed=0)
    print(f"  {len(kb):,} facts, {len(questions):,} questions, "
          f"{len(kb.vocabulary):,} vocabulary words\n")

    engine = KVMnnFast(
        kb, zero_skip=ZeroSkipConfig(threshold=0.001, mode="probability")
    )

    # A few sample questions end-to-end.
    for question in questions[:3]:
        answer = engine.answer(question.tokens)
        print(f"Q: {' '.join(question.tokens)}?")
        print(
            f"A: {answer.answer_token} "
            f"(scanned {answer.candidates_scanned:,} of "
            f"{answer.total_slots:,} slots; "
            f"hashing skipped {format_percent(answer.hashing_reduction)})"
        )
    print()

    # Accuracy + hashing effectiveness over the full question set.
    start = time.perf_counter()
    correct = scanned = skipped_rows = 0
    for question in questions:
        answer = engine.answer(question.tokens)
        correct += answer.answer_token in question.valid_answers
        scanned += answer.candidates_scanned
        skipped_rows += answer.stats.rows_skipped
    elapsed = time.perf_counter() - start

    rows = [
        ["retrieval accuracy", format_percent(correct / len(questions))],
        ["mean slots scanned",
         f"{scanned / len(questions):,.0f} of {len(kb):,}"],
        ["key-hashing reduction",
         format_percent(1 - scanned / (len(questions) * len(kb)))],
        ["value reads zero-skipped", f"{skipped_rows:,}"],
        ["wall clock", f"{elapsed:.2f} s for {len(questions):,} questions"],
    ]
    print(format_table(["metric", "value"], rows,
                       title="KV-MemNN + MnnFast over the full question set"))


if __name__ == "__main__":
    main()
