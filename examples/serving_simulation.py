"""Multi-tenant serving: the paper's story, end to end.

Simulates a QA server under a mixed workload — question answering
(inference) while other tenants ingest stories (embedding) — and
sweeps the offered load.  Three deployments are compared:

* baseline MemNN,
* MnnFast (column-based + streaming + zero-skipping),
* MnnFast with the dedicated embedding cache (§3.3).

Past the baseline's saturation point its latency explodes while
MnnFast keeps serving; the embedding cache removes the residual
contention penalty from co-located ingestion.

Run:  python examples/serving_simulation.py
"""

from repro.core import EmbeddingCacheConfig, EngineConfig
from repro.report import format_table
from repro.serving import QaServer, ServerConfig, generate_workload

DEPLOYMENTS = {
    "baseline": ServerConfig(engine=EngineConfig.baseline()),
    "mnnfast": ServerConfig(engine=EngineConfig.mnnfast()),
    "mnnfast+cache": ServerConfig(
        engine=EngineConfig.mnnfast(),
        embedding_cache=EmbeddingCacheConfig(size_bytes=64 * 1024, embedding_dim=48),
    ),
}

QUESTION_RATES = (2_000, 10_000, 20_000, 40_000)
STORY_RATE = 2_000
SENTENCES_PER_STORY = 100  # heavy ingestion: ~700 words/request
DURATION = 0.2  # simulated seconds per operating point


def main() -> None:
    print(
        "Sweeping offered load (questions/s) with "
        f"{STORY_RATE} story-ingests/s of background embedding work ...\n"
    )
    rows = []
    for rate in QUESTION_RATES:
        workload = generate_workload(
            question_rate=rate, story_rate=STORY_RATE, duration=DURATION,
            sentences_per_story=SENTENCES_PER_STORY, seed=7,
        )
        cells = [f"{rate:,}/s"]
        for config in DEPLOYMENTS.values():
            metrics = QaServer(config, seed=11).run(workload)
            cells.append(
                f"{metrics.throughput():,.0f}/s "
                f"p95 {metrics.latency_percentile(95) * 1e3:.2f}ms"
            )
        rows.append(cells)

    print(
        format_table(
            ["offered load"] + list(DEPLOYMENTS),
            rows,
            title="Question throughput and p95 latency per deployment "
            "(4 workers, 20k-sentence database)",
        )
    )
    print(
        "\nThe baseline saturates first (its inference does ~4x the work); "
        "the embedding cache removes the co-tenant contention penalty on "
        "top of MnnFast's algorithmic gains."
    )


if __name__ == "__main__":
    main()
