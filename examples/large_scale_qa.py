"""Large-scale question answering: where the column-based algorithm wins.

The paper's motivation (§2.2) is the *large-scale* regime: hundreds of
thousands to hundreds of millions of story sentences, where the
baseline's ``nq x ns`` intermediates dwarf any cache.  This example
runs a 400k-sentence knowledge base through the three dataflows,
measures real NumPy wall-clock plus the operation statistics, and
finishes with the scale-out pattern of §3.1: shard the memory across
workers, merge their mergeable partial outputs, and verify the result
is bit-identical.

Run:  python examples/large_scale_qa.py
"""

import time

import numpy as np

from repro import (
    BaselineMemNN,
    ChunkConfig,
    ColumnMemNN,
    ZeroSkipConfig,
    merge_partials,
    partition_memory,
)

NS, ED, NQ = 400_000, 48, 16


def build_workload(seed: int = 0):
    print(f"Building a {NS:,}-sentence knowledge base (ed={ED}, nq={NQ}) ...")
    rng = np.random.default_rng(seed)
    m_in = rng.normal(size=(NS, ED))
    m_out = rng.normal(size=(NS, ED))
    # Questions correlated with a handful of memory rows, so attention
    # is sparse the way trained attention is (Fig. 6).
    u = m_in[rng.integers(0, NS, size=NQ)] * 2.0
    return m_in, m_out, u


def timed(label, fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    print(f"  {label:<28s} {elapsed * 1e3:8.1f} ms", end="")
    return result, elapsed


def main() -> None:
    m_in, m_out, u = build_workload()

    print("\nOne inference pass per dataflow:")
    baseline = BaselineMemNN(m_in, m_out)
    base_result, _ = timed("baseline (Fig. 5a)", baseline.output, u)
    print(
        f"   | intermediates {base_result.stats.intermediate_bytes / 1e6:7.1f} MB"
        f" | divisions {base_result.stats.divisions:,}"
    )

    column = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    col_result, _ = timed("column-based (Fig. 5b)", column.output, u)
    print(
        f"   | intermediates {col_result.stats.intermediate_bytes / 1e3:7.1f} KB"
        f" | divisions {col_result.stats.divisions:,}"
    )

    skip = ZeroSkipConfig(threshold=1e-4, mode="probability")
    mnn_result, _ = timed("mnnfast (column+zero-skip)", column.output, u, zero_skip=skip)
    print(
        f"   | rows skipped {mnn_result.stats.rows_skipped:,}"
        f" ({mnn_result.stats.skip_ratio:.1%})"
    )

    np.testing.assert_allclose(col_result.output, base_result.output, rtol=1e-9)
    print("\nColumn-based output matches the baseline exactly (Eq. 4 == Eq. 3).")

    # --- scale-out: shard, compute partials, merge (§3.1) --------------------------
    print("\nScale-out across 4 workers (the multi-GPU pattern of §5.3):")
    shards = list(
        partition_memory(m_in, m_out, parts=4, chunk=ChunkConfig(chunk_size=1000))
    )
    partials = []
    for worker, shard in enumerate(shards):
        partial, stats = shard.partial_output(u)
        partials.append(partial)
        print(
            f"  worker {worker}: {shard.num_sentences:,} sentences, "
            f"partial state {partial.weighted.nbytes + partial.denom.nbytes:,} bytes"
        )
    merged = merge_partials(partials).finalize()
    np.testing.assert_allclose(merged, base_result.output, rtol=1e-9)
    print(
        "  merged 4 partial outputs -> identical result; synchronization "
        f"payload is O(nq x ed) = {partials[0].weighted.nbytes:,} bytes per worker."
    )


if __name__ == "__main__":
    main()
