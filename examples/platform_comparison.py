"""Tour of the platform models: CPU, GPU, FPGA, and energy (§5).

Runs every platform model on its Table 1 configuration and prints the
headline numbers the paper reports in its evaluation, side by side
with the paper's values.

Run:  python examples/platform_comparison.py
"""

from repro.analysis import (
    energy_comparison,
    fpga_latency_breakdown,
    gpu_multi_gpu_scaling,
    gpu_stream_scaling,
    speedup_over_baseline,
)
from repro.report import format_speedup, format_table


def cpu_section() -> None:
    print("\n--- CPU (Fig. 9) ---")
    speedups = speedup_over_baseline(max_threads=20)["mnnfast"]
    average = sum(speedups.values()) / len(speedups)
    print(
        f"MnnFast over baseline: {format_speedup(speedups[20])} at 20 threads "
        f"(paper 5.38x), {format_speedup(average)} average (paper 4.02x)"
    )


def gpu_section() -> None:
    print("\n--- GPU (Fig. 12) ---")
    streams = gpu_stream_scaling(stream_counts=(1, 4, 16))["speedup"]
    print(
        f"CUDA streams: {format_speedup(streams[4])} at 4 streams, "
        f"{format_speedup(streams[16])} at 16 (paper: ~1.33x, plateaus)"
    )
    points = gpu_multi_gpu_scaling(gpu_counts=(1, 2, 4))
    rows = [
        [p.gpus, format_speedup(p.speedup), f"{p.worst_h2d_seconds * 1e3:.2f} ms",
         f"{p.ideal_h2d_seconds * 1e3:.2f} ms"]
        for p in points
    ]
    print(format_table(["GPUs", "speedup", "worst H2D", "ideal H2D"], rows))
    print("(paper: 4.34x at 4 GPUs; the H2D gap is the PCIe contention)")


def fpga_section() -> None:
    print("\n--- FPGA (Fig. 13) ---")
    table = fpga_latency_breakdown()
    rows = [
        [name, f"{value:.3f}"]
        for name, value in table.items()
    ]
    print(format_table(["variant", "normalized latency"], rows))
    print(
        f"MnnFast speedup: {format_speedup(1 / table['mnnfast'])} "
        "(paper: up to 2.01x)"
    )


def energy_section() -> None:
    print("\n--- Energy (§5.5) ---")
    comparison = energy_comparison()
    print(
        f"CPU:  {comparison.cpu_seconds * 1e6:6.2f} us/question, "
        f"{comparison.cpu_joules * 1e6:7.1f} uJ/question"
    )
    print(
        f"FPGA: {comparison.fpga_seconds * 1e6:6.2f} us/question, "
        f"{comparison.fpga_joules * 1e6:7.1f} uJ/question"
    )
    print(
        f"FPGA is {comparison.efficiency_ratio:.2f}x more energy-efficient "
        "(paper: up to 6.54x)"
    )


def main() -> None:
    cpu_section()
    gpu_section()
    fpga_section()
    energy_section()


if __name__ == "__main__":
    main()
