"""Serving robustness under overload: shed requests or shed compute?

Drives one question stream at 2x the server's saturating rate through
two otherwise-identical deployments:

* **no-policy** — bounded admission queue + 5 ms deadline: the only
  overload response is dropping requests;
* **degraded** — the same, plus the graceful-degradation policy: as
  queue depth crosses its high watermark the server tightens the
  zero-skipping threshold and cuts attention hops (3 -> 1), trading a
  little fidelity for ~3x service-time headroom, and restores full
  fidelity once the queue drains.

The per-request span trace (enqueue -> admit -> embed -> per-hop
inference -> respond/shed/timeout) feeds the per-stage breakdown that
shows *where* the latency went.

A second section shows the retry-with-backoff path: clients that
re-submit shed requests instead of giving up.

Run:  python examples/serving_overload_demo.py
"""

from repro.report import (
    format_overload_comparison,
    format_serving_summary,
    format_stage_breakdown,
)
from repro.serving import (
    AdmissionConfig,
    QaServer,
    RetryConfig,
    ServerConfig,
    generate_workload,
    run_overload_experiment,
)
from repro.serving.overload import overload_config, overload_network


def main() -> None:
    result = run_overload_experiment(duration=0.05)
    print(
        f"Offered {result.offered_rate:,.0f} questions/s — 2x the "
        f"{result.saturating_rate:,.0f}/s saturation point of a 4-worker, "
        "3-hop MnnFast server.\n"
    )
    runs = {"no-policy": result.no_policy, "degraded": result.degraded}
    print(format_serving_summary(runs))
    print()
    print(
        format_overload_comparison(
            "no-policy", result.no_policy, "degraded", result.degraded
        )
    )
    print()
    print(format_stage_breakdown(runs))
    print(
        "\nThe degradation policy engaged (peak level "
        f"{result.degraded.degradation_peak_level}; still at level "
        f"{result.degraded.degradation_final_level} at the end, since the "
        "overload is sustained): shedding compute beat shedding requests "
        "on every axis.\n"
    )

    # --- retries: clients that re-submit instead of giving up ---------------
    workload = generate_workload(
        question_rate=result.offered_rate, story_rate=0.0, duration=0.05, seed=7
    )
    retry_config = ServerConfig(
        network=overload_network(),
        engine=overload_config(False).engine,
        workers=4,
        deadline=5e-3,
        admission=AdmissionConfig(max_queue=32),
        retry=RetryConfig(max_retries=2, backoff_base=1e-3),
    )
    retried = QaServer(retry_config).run(workload)
    print(
        format_serving_summary(
            {"no-policy": result.no_policy, "retry x2": retried},
            title="Retry-with-backoff vs give-up (same stream)",
        )
    )
    print(
        f"\n{retried.retries} retries converted part of the shed traffic "
        f"into completions ({retried.completed} vs "
        f"{result.no_policy.completed}) at the cost of backoff latency."
    )


if __name__ == "__main__":
    main()
