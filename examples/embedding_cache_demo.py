"""Embedding cache demo: §3.3's dedicated cache, functionally and in time.

Two views of the same idea:

1. *Functional*: attach the word-ID-keyed cache to the inference
   engine's question path and watch hit rates climb as vocabulary
   locality kicks in — with bit-identical embeddings.
2. *Performance*: stream a Zipfian (COCA-substitute) word sequence
   through caches of the paper's four sizes and print the Fig. 14
   latency-reduction ladder.

Run:  python examples/embedding_cache_demo.py
"""

import numpy as np

from repro import EmbeddingCache, MemNNConfig, MnnFastEngine, ZipfCorpus
from repro.analysis import embedding_cache_effectiveness
from repro.core.config import EmbeddingCacheConfig
from repro.report import format_percent, format_table


def functional_demo() -> None:
    print("--- Functional: the engine's cached question path ---")
    config = MemNNConfig(
        embedding_dim=32, num_sentences=500, vocab_size=5000, max_words=8
    )
    engine = MnnFastEngine(config)
    rng = np.random.default_rng(0)
    engine.store_story(rng.integers(1, 5000, size=(200, 8)))

    cache = EmbeddingCache(
        EmbeddingCacheConfig(size_bytes=32 * 1024, embedding_dim=32)
    )
    corpus = ZipfCorpus(vocab_size=4999, seed=1, shuffle_ids=False)

    for batch in range(5):
        words = corpus.sample(8 * 16) + 1  # word IDs 1..4999
        questions = words.reshape(16, 8)
        result = engine.answer(questions, cache=cache)
        total = result.cache_hits + result.cache_misses
        print(
            f"  batch {batch}: {result.cache_hits}/{total} cached lookups "
            f"({result.cache_hits / total:.0%} hit rate)"
        )
    print(f"  cumulative hit rate: {cache.stats.hit_rate:.1%}")


def performance_demo() -> None:
    print("\n--- Performance: Fig. 14's cache-size ladder ---")
    reductions = embedding_cache_effectiveness(num_lookups=50_000)
    paper = {32: 0.345, 64: 0.417, 128: 0.477, 256: 0.531}
    rows = [
        [f"{size // 1024} KB", format_percent(value),
         format_percent(paper[size // 1024])]
        for size, value in reductions.items()
    ]
    print(format_table(["cache size", "measured reduction", "paper"], rows))


def main() -> None:
    functional_demo()
    performance_demo()


if __name__ == "__main__":
    main()
