"""Fig. 12: scalability of the column-based algorithm on GPU.

Paper results: (a) multiple CUDA streams overlap kernels with copies
for ~1.33x, then plateau because memcpys serialize on one PCIe link;
(b) multiple GPUs scale much better (4.34x at 4 GPUs over the
baseline) but the worst-vs-ideal H2D gap grows with GPU count as the
copies contend for host PCIe bandwidth.
"""

from repro.analysis import gpu_multi_gpu_scaling, gpu_stream_scaling
from repro.report import format_speedup, format_table


def test_fig12a_cuda_streams(benchmark, report):
    result = benchmark(gpu_stream_scaling, stream_counts=(1, 2, 4, 8, 16))

    rows = [
        [k, f"{result['latency_seconds'][k] * 1e3:.2f} ms",
         format_speedup(result["speedup"][k])]
        for k in (1, 2, 4, 8, 16)
    ]
    report(
        format_table(
            ["streams", "latency", "speedup"],
            rows,
            title="Fig. 12(a) — multi-stream scaling "
            "(paper: ~1.33x then plateau on the memcpy critical path)",
        )
    )

    benchmark.extra_info["speedup_by_streams"] = {
        k: round(v, 3) for k, v in result["speedup"].items()
    }
    assert 1.15 <= result["speedup"][8] <= 1.5
    assert result["speedup"][16] - result["speedup"][8] < 0.05  # plateau


def test_fig12b_multi_gpu(benchmark, report):
    points = benchmark(gpu_multi_gpu_scaling, gpu_counts=(1, 2, 3, 4))

    rows = [
        [p.gpus, format_speedup(p.speedup),
         f"{p.worst_h2d_seconds * 1e3:.2f} ms",
         f"{p.ideal_h2d_seconds * 1e3:.2f} ms",
         f"{p.h2d_contention_gap * 1e3:.2f} ms"]
        for p in points
    ]
    report(
        format_table(
            ["GPUs", "speedup", "worst H2D", "ideal H2D (case B)", "gap"],
            rows,
            title="Fig. 12(b) — multi-GPU scaling "
            "(paper: 4.34x at 4 GPUs; H2D worst-vs-ideal gap grows)",
        )
    )

    benchmark.extra_info["speedup_4gpu"] = round(points[-1].speedup, 2)
    gaps = [p.h2d_contention_gap for p in points]
    assert gaps == sorted(gaps)  # contention grows with GPU count
    assert 3.0 <= points[-1].speedup <= 5.0  # paper: 4.34x
    assert points[-1].speedup > 2.5 * points[0].speedup  # scales well
