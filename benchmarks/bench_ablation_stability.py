"""Ablation: lazy-softmax numerical stability (DESIGN.md §5).

The paper's Eq. (4) exponentiates raw scores; this repository defaults
to an online running-max rescaling.  The ablation measures the
rescaling's runtime overhead and demonstrates the failure mode it
prevents.
"""

import numpy as np
import pytest

from repro.core import ChunkConfig, ColumnMemNN, softmax
from repro.report import format_table


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2)
    ns, ed = 100_000, 48
    return rng.normal(size=(ns, ed)), rng.normal(size=(ns, ed)), rng.normal(size=(8, ed))


def test_stable_mode(benchmark, workload):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    result = benchmark(engine.output, u, stable=True)
    assert np.all(np.isfinite(result.output))


def test_unstable_paper_mode(benchmark, workload):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    result = benchmark(engine.output, u, stable=False)
    assert np.all(np.isfinite(result.output))  # safe at this score range


def test_stability_failure_mode(benchmark, report):
    """Large scores: the paper-faithful mode overflows, ours does not."""

    def run():
        rng = np.random.default_rng(3)
        m_in = rng.normal(size=(4096, 16)) * 100.0
        m_out = rng.normal(size=(4096, 16))
        u = rng.normal(size=(4, 16)) * 10.0
        engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=256))
        with np.errstate(over="ignore", invalid="ignore"):
            unstable = engine.output(u, stable=False).output
        stable = engine.output(u, stable=True).output
        exact = softmax(u @ m_in.T) @ m_out
        return (
            bool(np.all(np.isfinite(unstable))),
            float(np.abs(stable - exact).max()),
        )

    unstable_finite, stable_error = benchmark(run)
    report(
        format_table(
            ["mode", "finite output", "max abs error vs exact"],
            [
                ["paper Eq. (4)", unstable_finite, "overflow"],
                ["online softmax (ours)", True, f"{stable_error:.2e}"],
            ],
            title="Ablation — lazy-softmax stability at large score magnitudes",
        )
    )
    assert not unstable_finite  # the paper-faithful form overflows here
    assert stable_error < 1e-6
