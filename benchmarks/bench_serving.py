"""Extension bench: multi-tenant serving under load (§2.2.3 end to end).

Sweeps the offered question load across the three deployments and
reports throughput and tail latency — the system-level consequence of
the paper's optimizations.

Writes ``BENCH_serving.json`` (see :mod:`emit`); ``BENCH_SMOKE``
shrinks the run for the CI gate.
"""

from emit import emit, smoke_mode

from repro.core import EmbeddingCacheConfig, EngineConfig
from repro.report import format_table
from repro.serving import QaServer, ServerConfig, generate_workload

ENGINES = {"baseline": EngineConfig.baseline, "mnnfast": EngineConfig.mnnfast}

RATE = 30_000  # past the baseline's saturation point
DURATION = 0.05 if smoke_mode() else 0.2


def _run(algorithm: str, use_cache: bool):
    workload = generate_workload(
        question_rate=RATE, story_rate=1000, duration=DURATION, seed=5
    )
    config = ServerConfig(
        engine=ENGINES[algorithm](),
        embedding_cache=(
            EmbeddingCacheConfig(size_bytes=64 * 1024, embedding_dim=48)
            if use_cache
            else None
        ),
    )
    return QaServer(config, seed=9).run(workload)


def test_serving_baseline(benchmark):
    metrics = benchmark.pedantic(
        _run, args=("baseline", False), iterations=1, rounds=2
    )
    benchmark.extra_info["throughput"] = round(metrics.throughput(), 1)
    benchmark.extra_info["p95_ms"] = round(
        metrics.latency_percentile(95) * 1e3, 2
    )


def test_serving_mnnfast(benchmark, report):
    metrics = benchmark.pedantic(
        _run, args=("mnnfast", True), iterations=1, rounds=2
    )
    baseline = _run("baseline", False)
    report(
        format_table(
            ["deployment", "throughput", "p95 latency"],
            [
                ["baseline",
                 f"{baseline.throughput():,.0f}/s",
                 f"{baseline.latency_percentile(95) * 1e3:.2f} ms"],
                ["mnnfast + embedding cache",
                 f"{metrics.throughput():,.0f}/s",
                 f"{metrics.latency_percentile(95) * 1e3:.2f} ms"],
            ],
            title=f"Serving at {RATE:,} questions/s offered "
            "(4 workers, co-tenant story ingestion)",
        )
    )
    benchmark.extra_info["throughput"] = round(metrics.throughput(), 1)
    emit("serving", {
        "offered_rate": RATE,
        "duration": DURATION,
        "deployments": {
            "baseline": {
                "throughput": baseline.throughput(),
                "p95_ms": baseline.latency_percentile(95) * 1e3,
            },
            "mnnfast_embcache": {
                "throughput": metrics.throughput(),
                "p95_ms": metrics.latency_percentile(95) * 1e3,
            },
        },
    })
    # MnnFast must sustain the load the baseline cannot.
    assert metrics.throughput() > 1.5 * baseline.throughput()
    assert metrics.latency_percentile(95) < baseline.latency_percentile(95)
