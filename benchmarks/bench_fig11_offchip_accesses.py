"""Fig. 11: the number of off-chip memory accesses on CPU.

Paper result: the column-based algorithm converts the baseline's
off-chip DRAM accesses into LLC hits, and adding data streaming
eliminates more than 60% of the off-chip accesses.
"""

from repro.analysis import offchip_accesses
from repro.report import format_percent, format_table


def test_fig11_offchip_accesses(benchmark, report):
    result = benchmark(offchip_accesses)

    normalized = result.normalized
    rows = [
        [
            name,
            result.counts[name],
            f"{normalized[name]:.3f}",
            f"{result.dram_bytes[name] / 1e6:.1f} MB",
        ]
        for name in ("baseline", "column", "column_streaming")
    ]
    report(
        format_table(
            ["variant", "off-chip accesses", "normalized", "DRAM traffic"],
            rows,
            title="Fig. 11 — off-chip accesses normalized to baseline "
            "(paper: column+streaming removes >60%; off-chip accesses are "
            "demand misses + writebacks, as hardware counters report them)",
        )
    )

    benchmark.extra_info["normalized"] = {
        k: round(v, 3) for k, v in normalized.items()
    }
    assert normalized["column"] < 1.0
    assert normalized["column_streaming"] < 0.4  # paper: >60% eliminated
    assert result.dram_bytes["column"] < result.dram_bytes["baseline"]
