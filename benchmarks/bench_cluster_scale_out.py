"""Extension bench: multi-node scale-out (§5.3's closing argument).

Quantifies the paper's remark that multiple nodes resolve the PCIe
contention and that synchronizing the O(nq x ed) partial weighted sums
is negligible.
"""

from repro.core.config import GPU_CONFIG
from repro.perf.cluster import ClusterModel
from repro.report import format_percent, format_speedup, format_table

PAPER_SCALE = GPU_CONFIG.scaled(10_000_000)


def test_cluster_scale_out(benchmark, report):
    cluster = ClusterModel()

    def sweep():
        return {
            nodes: cluster.run(PAPER_SCALE, nodes=nodes, gpus_per_node=4)
            for nodes in (1, 2, 4, 8)
        }

    results = benchmark(sweep)
    single = results[1].total_seconds
    rows = [
        [
            result.nodes,
            result.total_gpus,
            format_speedup(single / result.total_seconds),
            format_percent(result.sync_fraction),
        ]
        for result in results.values()
    ]
    report(
        format_table(
            ["nodes", "GPUs", "speedup vs 1 node", "sync overhead"],
            rows,
            title="Multi-node scale-out (paper §5.3: per-node PCIe isolation, "
            "negligible partial-sum synchronization)",
        )
    )

    benchmark.extra_info["speedup_8_nodes"] = round(
        single / results[8].total_seconds, 2
    )
    # Near-linear node scaling with tiny sync cost.
    assert single / results[8].total_seconds > 6.0
    assert all(r.sync_fraction < 0.01 for r in results.values())
