"""Machine-readable benchmark artifacts.

Benchmarks print paper-vs-measured tables for humans; :func:`emit`
additionally writes the headline numbers to ``BENCH_<name>.json`` at
the repository root so downstream tooling (CI trend lines, the
roadmap's acceptance checks) can diff runs without scraping stdout.

Smoke mode: setting the ``BENCH_SMOKE`` environment variable asks
benchmarks to shrink their sweeps to a few-second CI gate
(``make bench-smoke``); :func:`smoke_mode` is the single switch they
consult, and emitted artifacts record which mode produced them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["emit", "smoke_mode"]

#: Repository root — benchmarks live in <root>/benchmarks/.
REPO_ROOT = Path(__file__).resolve().parent.parent


def smoke_mode() -> bool:
    """True when ``BENCH_SMOKE`` is set (reduced-scale CI sweeps)."""
    return bool(os.environ.get("BENCH_SMOKE"))


def emit(name: str, payload: dict[str, Any]) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    ``payload`` must be JSON-serializable; a ``smoke`` key recording
    the current mode is added so full and reduced-scale artifacts are
    distinguishable.
    """
    out = dict(payload)
    out.setdefault("smoke", smoke_mode())
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    return path
