"""Core-engine wall-clock trajectory: serial vs parallel backends.

This is the repo's *measured* core-engine series (every prior BENCH
artifact times the serving/batching layers).  It runs the ns=200k,
ed=48, nq=16 workload of ``bench_algorithms.py`` through:

* ``seed_column`` — a faithful reimplementation of the pre-optimization
  chunk loop (fresh allocations per chunk, all-ones keep-mask multiply,
  unconditional rescale), kept here as the fixed baseline the
  kernel-optimized series is measured against;
* ``column_serial`` — today's allocation-free float64 kernel;
* ``column_f32`` — the float32 compute path (half the streamed bytes);
* ``sharded_serial`` / ``sharded_thread_K`` — the K=4 sharded engine,
  serial vs the thread backend at 1/2/4 workers.  The thread series is
  the *measured counterexample* (0.79-0.99x vs serial — the GIL-bound
  chunk bookkeeping serializes the pool); it carries no speedup gate;
* ``sharded_process_K`` — the process backend at 1/2/4 workers: worker
  processes mmap the spilled store and compute zero-copy shard
  partials, bit-identical to serial;
* ``fused_serial`` — the batchxshard tile kernel (one score GEMM per
  tile across all shards);
* ``fused_f32`` — the tile kernel on the float32 compute path (the
  fused x dtype composition);
* ``multicore_f32_process_4`` — the composed headline: float32 compute
  plus the 4-worker process backend (the README quickstart config).

Genuine multicore speedup requires physical cores, so the parallel
acceptance gates activate only when ``os.cpu_count() >= GATE_CPUS``;
below that the emitted ``BENCH_core.json`` carries an explicit
``parallel_gate.skipped_reason`` (and ``validate_artifacts.py`` treats
anything else as a hard failure — no vacuous passes on small runners).
The artifact also records the visible CPU count and the BLAS
implementation/thread ceiling (:func:`repro.core.thread_limits
.blas_thread_info`) so a regression report names the machine class it
measured.

Writes ``BENCH_core.json`` (see :mod:`emit`); ``BENCH_SMOKE`` shrinks
the story size for the CI gate.
"""

import os
import time

import numpy as np

from emit import emit, smoke_mode

from repro.core import (
    ChunkConfig,
    ColumnMemNN,
    ExecutionConfig,
    PartialOutput,
    ShardedMemNN,
)
from repro.core.thread_limits import blas_thread_info
from repro.report import format_table

NS = 20_000 if smoke_mode() else 200_000
ED, NQ = 48, 16
CHUNK = 1000
WORKER_SWEEP = (1, 2, 4)
NUM_SHARDS = 4
REPEATS = 3 if smoke_mode() else 5
#: Measurement-noise allowance on the kernel-optimized acceptance.
NOISE = 0.10
#: Physical cores required before the parallel gates activate.
GATE_CPUS = 4
#: The headline the multicore series must beat: the best single-core
#: speedup vs seed recorded before the process backend existed
#: (column_f32 at 1.38x, BENCH_core.json of PR 8).
BASELINE_HEADLINE = 1.38


def _seed_partial_output(m_in, m_out, u, chunk_size):
    """The pre-optimization column chunk loop, verbatim semantics:
    fresh ``(nq, c)`` allocations every chunk, an all-ones boolean
    keep-mask multiplied into the exponentials, and the running-max
    rescale applied unconditionally."""
    nq, ed = u.shape
    ns = m_in.shape[0]
    log_max = np.full(nq, -np.inf)
    denom = np.zeros(nq)
    acc = np.zeros((nq, ed))
    for start in range(0, ns, chunk_size):
        chunk_in = m_in[start : start + chunk_size]
        chunk_out = m_out[start : start + chunk_size]
        scores = u @ chunk_in.T
        chunk_max = scores.max(axis=1)
        new_max = np.maximum(log_max, chunk_max)
        with np.errstate(invalid="ignore"):
            scale = np.where(np.isneginf(log_max), 0.0, np.exp(log_max - new_max))
        exp_scores = np.exp(scores - new_max[:, None])
        denom = denom * scale + exp_scores.sum(axis=1)
        acc *= scale[:, None]
        log_max = new_max
        keep = np.ones_like(scores, dtype=bool)
        acc += (exp_scores * keep) @ chunk_out
    return PartialOutput(weighted=acc, denom=denom, log_max=log_max)


def _best_of(fn):
    """(min wall-clock seconds, last result) over REPEATS after warm-up."""
    fn()
    best, result = float("inf"), None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _run_series(m_in, m_out, u):
    chunk = ChunkConfig(chunk_size=CHUNK)
    series = {}
    outputs = {}

    seed_seconds, seed_partial = _best_of(
        lambda: _seed_partial_output(m_in, m_out, u, CHUNK)
    )
    series["seed_column"] = seed_seconds
    outputs["seed_column"] = seed_partial.finalize()

    solvers = {
        "column_serial": ColumnMemNN(m_in, m_out, chunk=chunk),
        "column_f32": ColumnMemNN(m_in, m_out, chunk=chunk, dtype=np.float32),
        "sharded_serial": ShardedMemNN(
            m_in, m_out, num_shards=NUM_SHARDS, chunk=chunk
        ),
        "fused_serial": ShardedMemNN(
            m_in,
            m_out,
            num_shards=NUM_SHARDS,
            chunk=chunk,
            execution=ExecutionConfig(fused=True),
        ),
        "fused_f32": ShardedMemNN(
            m_in,
            m_out,
            num_shards=NUM_SHARDS,
            chunk=chunk,
            dtype=np.float32,
            execution=ExecutionConfig(fused=True, dtype="float32"),
        ),
    }
    for workers in WORKER_SWEEP:
        solvers[f"sharded_thread_{workers}"] = ShardedMemNN(
            m_in,
            m_out,
            num_shards=NUM_SHARDS,
            chunk=chunk,
            execution=ExecutionConfig(backend="thread", num_workers=workers),
        )
        solvers[f"sharded_process_{workers}"] = ShardedMemNN(
            m_in,
            m_out,
            num_shards=NUM_SHARDS,
            chunk=chunk,
            execution=ExecutionConfig(backend="process", num_workers=workers),
        )
    solvers["multicore_f32_process_4"] = ShardedMemNN(
        m_in,
        m_out,
        num_shards=NUM_SHARDS,
        chunk=chunk,
        dtype=np.float32,
        execution=ExecutionConfig(
            backend="process", num_workers=4, dtype="float32"
        ),
    )
    for name, solver in solvers.items():
        seconds, result = _best_of(lambda s=solver: s.output(u))
        series[name] = seconds
        outputs[name] = result.output
        solver.close()
    # Re-time the ratio-gated single-core trio back to back after the
    # sweep and keep each series' faster measurement: the seed runs
    # first and the kernels minutes later, so sustained machine load
    # arriving mid-sweep would otherwise skew the seed/serial/f32
    # ratios the acceptance asserts on.  Back-to-back re-measurement
    # puts all three in the same load window.
    retime = {
        "seed_column": lambda: _seed_partial_output(m_in, m_out, u, CHUNK),
        "column_serial": ColumnMemNN(m_in, m_out, chunk=chunk).output,
        "column_f32": ColumnMemNN(
            m_in, m_out, chunk=chunk, dtype=np.float32
        ).output,
    }
    for name, fn in retime.items():
        again, _ = _best_of(
            fn if name == "seed_column" else (lambda f=fn: f(u))
        )
        series[name] = min(series[name], again)
    return series, outputs


def test_parallel_execution_trajectory(benchmark, report):
    rng = np.random.default_rng(0)
    m_in = rng.normal(size=(NS, ED))
    m_out = rng.normal(size=(NS, ED))
    # Peaked scores, matching bench_algorithms.py's workload.
    u = m_in[rng.integers(0, NS, size=NQ)] * 2.0

    series, outputs = benchmark.pedantic(
        lambda: _run_series(m_in, m_out, u), iterations=1, rounds=1
    )

    # Every path computes the same attention output; the process
    # backend is additionally *bitwise* equal to its serial twin.
    reference = outputs["seed_column"]
    for name, output in outputs.items():
        tolerance = 1e-5 if "f32" in name else 1e-10
        np.testing.assert_allclose(
            output, reference, rtol=tolerance, atol=tolerance,
            err_msg=f"{name} diverged from the seed kernel",
        )
    for workers in WORKER_SWEEP:
        np.testing.assert_array_equal(
            outputs[f"sharded_process_{workers}"],
            outputs["sharded_serial"],
            err_msg=f"process backend at {workers} workers is not "
            "bit-identical to serial",
        )

    cpu_count = os.cpu_count() or 1
    blas = blas_thread_info()
    seed = series["seed_column"]
    speedups = {name: seed / seconds for name, seconds in series.items()}
    threaded_vs_serial = {
        workers: series["sharded_serial"] / series[f"sharded_thread_{workers}"]
        for workers in WORKER_SWEEP
    }
    process_vs_serial = {
        workers: series["sharded_serial"] / series[f"sharded_process_{workers}"]
        for workers in WORKER_SWEEP
    }
    fused_vs_serial = series["sharded_serial"] / series["fused_serial"]

    report(format_table(
        ["series", "wall-clock", "speedup vs seed"],
        [[name, f"{seconds * 1e3:.1f} ms", f"{speedups[name]:.2f}x"]
         for name, seconds in series.items()],
        title=(
            f"Core-engine wall-clock at ns={NS:,}, ed={ED}, nq={NQ} "
            f"({cpu_count} CPU(s), BLAS {blas['implementation']})"
        ),
    ))

    gated = cpu_count >= GATE_CPUS
    parallel_gate = {"required_cpus": GATE_CPUS}
    if gated:
        parallel_gate["process_vs_serial"] = {
            str(k): round(v, 3) for k, v in process_vs_serial.items()
        }
        parallel_gate["fused_vs_serial"] = round(fused_vs_serial, 3)
        parallel_gate["baseline_headline"] = BASELINE_HEADLINE
        parallel_gate["headline_speedup"] = round(max(speedups.values()), 3)
    else:
        parallel_gate["skipped_reason"] = (
            f"only {cpu_count} CPU(s) visible; parallel speedup gates "
            f"require >= {GATE_CPUS} physical cores"
        )

    emit("core", {
        "workload": {"ns": NS, "ed": ED, "nq": NQ, "chunk": CHUNK,
                     "num_shards": NUM_SHARDS, "repeats": REPEATS},
        "cpu_count": cpu_count,
        "blas": blas,
        "worker_blas_threads": ExecutionConfig(
            backend="process", num_workers=4
        ).worker_blas_threads(),
        "series_seconds": {k: round(v, 6) for k, v in series.items()},
        "speedup_vs_seed": {k: round(v, 3) for k, v in speedups.items()},
        "threaded_vs_serial": {
            str(k): round(v, 3) for k, v in threaded_vs_serial.items()
        },
        "process_vs_serial": {
            str(k): round(v, 3) for k, v in process_vs_serial.items()
        },
        "fused_vs_serial": round(fused_vs_serial, 3),
        "parallel_gate": parallel_gate,
        "headline_speedup": round(max(speedups.values()), 3),
    })

    benchmark.extra_info["headline_speedup"] = round(max(speedups.values()), 3)
    benchmark.extra_info["cpu_count"] = cpu_count

    # Acceptance: the kernel-optimized serial loop beats the seed loop
    # (identical arithmetic, fewer allocations and no mask multiply),
    # and the float32 path beats float64 (half the streamed bytes).
    assert speedups["column_serial"] >= 1.0 - NOISE, (
        f"kernel-optimized column loop slower than seed: "
        f"{speedups['column_serial']:.2f}x"
    )
    assert series["column_f32"] <= series["column_serial"] * (1.0 + NOISE), (
        "float32 compute path slower than float64: "
        f"{series['column_f32'] * 1e3:.1f} ms vs "
        f"{series['column_serial'] * 1e3:.1f} ms"
    )
    # The thread backend carries no speedup gate (measured 0.79-0.99x
    # vs serial); only a sanity floor that one worker is pool-overhead
    # -free-ish.
    assert threaded_vs_serial[1] >= 0.5
    if gated:
        # The real multicore gates: process and fused never lose to
        # serial, and the composed multicore headline beats the best
        # pre-process-backend number.
        for workers, ratio in process_vs_serial.items():
            assert ratio >= 1.0 - NOISE, (
                f"process backend at {workers} workers regressed vs "
                f"serial: {ratio:.2f}x on {cpu_count} CPUs"
            )
        assert fused_vs_serial >= 1.0 - NOISE, (
            f"fused tile kernel slower than per-shard loop: "
            f"{fused_vs_serial:.2f}x"
        )
        assert max(speedups.values()) > BASELINE_HEADLINE, (
            f"multicore headline {max(speedups.values()):.2f}x does not "
            f"beat the single-core baseline {BASELINE_HEADLINE}x"
        )
