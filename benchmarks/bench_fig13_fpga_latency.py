"""Fig. 13: latency reduction of FPGA-based MnnFast.

Paper results: the column-based algorithm reduces latency by 27.6%,
streaming brings it to 38.2%, and full MnnFast (with zero-skipping)
reaches up to 2.01x.
"""

from repro.analysis import fpga_latency_breakdown
from repro.report import format_percent, format_speedup, format_table

PAPER = {"column": 0.724, "column_streaming": 0.618, "mnnfast": 1 / 2.01}


def test_fig13_fpga_latency(benchmark, report):
    table = benchmark(fpga_latency_breakdown)

    rows = [
        [
            name,
            f"{table[name]:.3f}",
            f"{PAPER.get(name, 1.0):.3f}",
            format_percent(1.0 - table[name]),
        ]
        for name in ("baseline", "column", "column_streaming", "mnnfast")
    ]
    report(
        format_table(
            ["variant", "normalized latency", "paper", "reduction"],
            rows,
            title="Fig. 13 — FPGA latency normalized to baseline "
            f"(measured MnnFast speedup {format_speedup(1 / table['mnnfast'])}, "
            "paper 2.01x)",
        )
    )

    benchmark.extra_info["normalized_latency"] = {
        k: round(v, 3) for k, v in table.items()
    }
    assert table["baseline"] > table["column"] > table["column_streaming"]
    assert table["column_streaming"] > table["mnnfast"]
    assert abs(table["column"] - PAPER["column"]) < 0.08
    assert 1.7 <= 1.0 / table["mnnfast"] <= 2.5  # paper: up to 2.01x
