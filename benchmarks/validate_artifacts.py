"""Validate the BENCH_*.json artifacts the benchmark suite emits.

Every benchmark that calls :func:`emit.emit` leaves a machine-readable
``BENCH_<name>.json`` at the repository root; downstream tooling (CI
trend lines, the roadmap's acceptance checks) diffs those files across
runs.  A benchmark that silently emits an empty or unparseable
artifact would poison that pipeline without failing any test — this
validator is the ``make bench-smoke`` gate that catches it:

* every ``BENCH_*.json`` parses as a JSON object;
* it records the ``smoke`` key :func:`emit.emit` guarantees (so full
  and reduced-scale artifacts are distinguishable);
* it carries at least one non-empty payload key beyond ``smoke``
  (headline numbers, series, workload — an artifact with nothing but
  the mode flag measured nothing).

Run directly (``python benchmarks/validate_artifacts.py``) or let
``make bench-smoke`` / CI invoke it after the smoke benches.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Repository root — artifacts live at <root>/BENCH_<name>.json.
REPO_ROOT = Path(__file__).resolve().parent.parent


def _empty(value) -> bool:
    """True for payload values that carry no measurement."""
    return value is None or value == {} or value == [] or value == ""


def validate_artifact(path: Path) -> list[str]:
    """Problems with one artifact (empty list = valid)."""
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        return [f"not valid JSON: {error}"]
    if not isinstance(payload, dict):
        return [f"expected a JSON object, got {type(payload).__name__}"]
    problems = []
    if "smoke" not in payload:
        problems.append("missing the 'smoke' mode key emit() guarantees")
    content = {
        key: value for key, value in payload.items()
        if key != "smoke" and not _empty(value)
    }
    if not content:
        problems.append("no non-empty payload keys besides 'smoke'")
    return problems


def main(root: Path | None = None) -> int:
    """Validate every ``BENCH_*.json`` under ``root`` (repo root by
    default).  Returns a process exit code; prints one line per file.
    """
    root = root if root is not None else REPO_ROOT
    artifacts = sorted(root.glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts found under {root}", file=sys.stderr)
        return 1
    failed = 0
    for path in artifacts:
        problems = validate_artifact(path)
        if problems:
            failed += 1
            for problem in problems:
                print(f"FAIL {path.name}: {problem}")
        else:
            print(f"ok   {path.name}")
    if failed:
        print(f"{failed}/{len(artifacts)} artifacts invalid", file=sys.stderr)
        return 1
    print(f"{len(artifacts)} artifacts valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
