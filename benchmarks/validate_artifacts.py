"""Validate the BENCH_*.json artifacts the benchmark suite emits.

Every benchmark that calls :func:`emit.emit` leaves a machine-readable
``BENCH_<name>.json`` at the repository root; downstream tooling (CI
trend lines, the roadmap's acceptance checks) diffs those files across
runs.  A benchmark that silently emits an empty or unparseable
artifact would poison that pipeline without failing any test — this
validator is the ``make bench-smoke`` gate that catches it:

* every ``BENCH_*.json`` parses as a JSON object;
* it records the ``smoke`` key :func:`emit.emit` guarantees (so full
  and reduced-scale artifacts are distinguishable);
* it carries at least one non-empty payload key beyond ``smoke``
  (headline numbers, series, workload — an artifact with nothing but
  the mode flag measured nothing);
* artifacts with a registered schema (:data:`SCHEMAS`) additionally
  satisfy it — ``BENCH_topk.json`` must carry the sublinearity
  evidence (an ``ns_sweep`` of >= 3 increasing sizes spanning >= 64x)
  and the held ``recall_floor``.

Run directly (``python benchmarks/validate_artifacts.py``) or let
``make bench-smoke`` / CI invoke it after the smoke benches.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Repository root — artifacts live at <root>/BENCH_<name>.json.
REPO_ROOT = Path(__file__).resolve().parent.parent


def _empty(value) -> bool:
    """True for payload values that carry no measurement."""
    return value is None or value == {} or value == [] or value == ""


#: Sweep-point keys the top-k trajectory needs to be diffable.
_TOPK_POINT_KEYS = {"ns", "topk_seconds", "exact_seconds", "agreement",
                    "mean_recall"}

#: Minimum size span of the top-k sweep (the sublinearity acceptance
#: is meaningless over a narrow range).
_TOPK_MIN_SPAN = 64


def _validate_topk(payload: dict) -> list[str]:
    """Schema of ``BENCH_topk.json`` (the ISSUE 6 acceptance artifact):
    an ``ns_sweep`` of at least three increasing memory sizes, the
    largest at least 64x the smallest, each point carrying the timing
    and quality fields, plus the ``recall_floor`` the sweep held."""
    sweep = payload.get("ns_sweep")
    if not isinstance(sweep, list) or len(sweep) < 3:
        return ["ns_sweep must be a list of at least 3 sweep points"]
    problems = []
    for point in sweep:
        if not isinstance(point, dict) or not _TOPK_POINT_KEYS <= point.keys():
            problems.append(
                "every ns_sweep point needs the keys "
                + "/".join(sorted(_TOPK_POINT_KEYS))
            )
            break
    sizes = [p.get("ns", 0) for p in sweep if isinstance(p, dict)]
    if len(sizes) == len(sweep):
        if sizes[0] <= 0 or sizes != sorted(sizes):
            problems.append("ns_sweep sizes must be positive and increasing")
        elif sizes[-1] < _TOPK_MIN_SPAN * sizes[0]:
            problems.append(
                f"ns_sweep must span >= {_TOPK_MIN_SPAN}x "
                f"(got {sizes[0]}..{sizes[-1]})"
            )
    floor = payload.get("recall_floor")
    if not isinstance(floor, (int, float)) or not 0.0 < floor <= 1.0:
        problems.append("recall_floor must be a number in (0, 1]")
    return problems


#: Sweep-point keys the early-exit trajectory needs to be diffable.
_EARLYEXIT_POINT_KEYS = {"threshold", "seconds", "agreement", "mean_hops",
                         "speedup_vs_full"}


def _validate_earlyexit(payload: dict) -> list[str]:
    """Schema of ``BENCH_earlyexit.json`` (the ISSUE 7 acceptance
    artifact): a ``threshold_sweep`` starting at the disabled gate
    (threshold 0) with increasing thresholds, each point carrying the
    timing and quality fields; a non-null ``best_qualifying`` point
    that actually clears both emitted floors; and the paired overload
    counters showing the exit-armed server timed out no more requests
    than the full-depth one."""
    problems = []
    sweep = payload.get("threshold_sweep")
    if not isinstance(sweep, list) or len(sweep) < 4:
        return ["threshold_sweep must be a list of at least 4 sweep points"]
    for point in sweep:
        if (
            not isinstance(point, dict)
            or not _EARLYEXIT_POINT_KEYS <= point.keys()
        ):
            problems.append(
                "every threshold_sweep point needs the keys "
                + "/".join(sorted(_EARLYEXIT_POINT_KEYS))
            )
            break
    thresholds = [p.get("threshold") for p in sweep if isinstance(p, dict)]
    if len(thresholds) == len(sweep) and all(
        isinstance(t, (int, float)) for t in thresholds
    ):
        if thresholds[0] != 0.0:
            problems.append(
                "threshold_sweep must start at 0 (the full-depth reference)"
            )
        if thresholds != sorted(thresholds):
            problems.append("threshold_sweep thresholds must be increasing")
    agreement_floor = payload.get("agreement_floor")
    speedup_floor = payload.get("speedup_floor")
    if not isinstance(agreement_floor, (int, float)) or not (
        0.0 < agreement_floor <= 1.0
    ):
        problems.append("agreement_floor must be a number in (0, 1]")
    if not isinstance(speedup_floor, (int, float)) or speedup_floor < 1.0:
        problems.append("speedup_floor must be a number >= 1")
    best = payload.get("best_qualifying")
    if not isinstance(best, dict):
        problems.append(
            "best_qualifying must be a sweep point (no threshold cleared "
            "both floors)"
        )
    elif isinstance(agreement_floor, (int, float)) and isinstance(
        speedup_floor, (int, float)
    ):
        if not (
            best.get("agreement", 0) >= agreement_floor
            and best.get("speedup_vs_full", 0) >= speedup_floor
        ):
            problems.append(
                "best_qualifying does not clear the emitted floors"
            )
    overload = payload.get("overload")
    if not isinstance(overload, dict):
        problems.append("missing the paired overload run")
    else:
        full = overload.get("full_depth", {})
        armed = overload.get("exit_armed", {})
        if not (
            isinstance(full, dict)
            and isinstance(armed, dict)
            and isinstance(full.get("timed_out"), int)
            and isinstance(armed.get("timed_out"), int)
        ):
            problems.append(
                "overload must carry full_depth/exit_armed timed_out counts"
            )
        elif armed["timed_out"] > full["timed_out"]:
            problems.append(
                "exit-armed server timed out more requests than full depth"
            )
    return problems


#: Per-policy keys the routing comparison needs to be diffable.
_CLUSTER_POLICY_KEYS = {"chunk_hit_rate", "latency_p50", "latency_p95",
                        "throughput_rps", "completed"}


def _validate_cluster(payload: dict) -> list[str]:
    """Schema of ``BENCH_cluster.json`` (the ISSUE 8 acceptance
    artifact): a routing comparison where cache-affinity strictly
    beats round-robin on chunk hit-rate *and* p50 latency on the
    skewed workload, and a burst replay where the autoscaled fleet
    times out strictly fewer requests than the static baseline while
    recording a non-empty decision trace."""
    problems = []
    routing = payload.get("routing")
    policies = routing.get("policies") if isinstance(routing, dict) else None
    if not isinstance(policies, dict):
        return ["routing.policies must map policy names to summaries"]
    for name in ("round_robin", "cache_affinity"):
        point = policies.get(name)
        if not isinstance(point, dict) or not _CLUSTER_POLICY_KEYS <= point.keys():
            problems.append(
                f"routing.policies.{name} needs the keys "
                + "/".join(sorted(_CLUSTER_POLICY_KEYS))
            )
    if not problems:
        affinity = policies["cache_affinity"]
        rr = policies["round_robin"]
        if not affinity["chunk_hit_rate"] > rr["chunk_hit_rate"]:
            problems.append(
                "cache-affinity must strictly beat round-robin on chunk "
                "hit-rate"
            )
        if not affinity["latency_p50"] < rr["latency_p50"]:
            problems.append(
                "cache-affinity must strictly beat round-robin on p50 "
                "latency"
            )
    autoscaler = payload.get("autoscaler")
    burst = autoscaler.get("burst") if isinstance(autoscaler, dict) else None
    if not isinstance(burst, dict):
        problems.append("missing the autoscaler burst replay")
        return problems
    static = burst.get("static", {})
    autoscaled = burst.get("autoscaled", {})
    if not (
        isinstance(static, dict)
        and isinstance(autoscaled, dict)
        and isinstance(static.get("timed_out"), int)
        and isinstance(autoscaled.get("timed_out"), int)
    ):
        problems.append(
            "burst must carry static/autoscaled timed_out counts"
        )
    else:
        if autoscaled["timed_out"] >= static["timed_out"]:
            problems.append(
                "autoscaled fleet must time out strictly fewer requests "
                "than the static baseline"
            )
        if not autoscaled.get("decisions"):
            problems.append(
                "autoscaled burst run must record scaling decisions"
            )
    return problems


#: Series the core-engine trajectory must have timed to be diffable.
_CORE_REQUIRED_SERIES = {
    "seed_column", "column_serial", "sharded_serial", "fused_serial",
    "fused_f32",
    "sharded_process_1", "sharded_process_2", "sharded_process_4",
}

#: Machine-description keys the core artifact must record so a
#: regression report names the machine class it measured.
_CORE_BLAS_KEYS = {"implementation", "max_threads", "control"}

#: Measurement-noise allowance on the parallel ratios (mirrors the
#: benchmark's own acceptance).
_CORE_NOISE = 0.10


def _validate_core(payload: dict) -> list[str]:
    """Schema of ``BENCH_core.json`` (the ISSUE 9 acceptance artifact):
    the serial/thread/process/fused wall-clock series plus the machine
    description (CPU count, BLAS implementation, effective worker
    thread limit), and a ``parallel_gate`` that is *either* enforced —
    process and fused never lose to serial, the multicore headline
    beats the recorded single-core baseline — or explicitly skipped
    with a ``skipped_reason`` naming the too-small CPU count.  A
    sub-``required_cpus`` runner must not pass the gate vacuously."""
    problems = []
    cpu_count = payload.get("cpu_count")
    if not isinstance(cpu_count, int) or cpu_count < 1:
        problems.append("cpu_count must be a positive integer")
    blas = payload.get("blas")
    if not isinstance(blas, dict) or not _CORE_BLAS_KEYS <= blas.keys():
        problems.append(
            "blas must record " + "/".join(sorted(_CORE_BLAS_KEYS))
        )
    if "worker_blas_threads" not in payload:
        problems.append("missing worker_blas_threads (effective per-worker "
                        "BLAS thread limit)")
    series = payload.get("series_seconds")
    if not isinstance(series, dict) or not _CORE_REQUIRED_SERIES <= series.keys():
        problems.append(
            "series_seconds must time "
            + "/".join(sorted(_CORE_REQUIRED_SERIES))
        )
    gate = payload.get("parallel_gate")
    if not isinstance(gate, dict) or not isinstance(
        gate.get("required_cpus"), int
    ):
        return problems + ["parallel_gate must carry required_cpus"]
    skipped = gate.get("skipped_reason")
    if skipped is not None:
        # An explicit skip is only honest on a runner that actually
        # lacks the cores; otherwise it hides a regression.
        if not isinstance(skipped, str) or not skipped:
            problems.append("parallel_gate.skipped_reason must be a "
                            "non-empty string")
        if isinstance(cpu_count, int) and cpu_count >= gate["required_cpus"]:
            problems.append(
                f"parallel_gate skipped on a {cpu_count}-CPU host that "
                f"meets required_cpus={gate['required_cpus']}"
            )
        return problems
    ratios = gate.get("process_vs_serial")
    if not isinstance(ratios, dict) or not ratios:
        problems.append(
            "enforced parallel_gate must carry process_vs_serial ratios"
        )
    else:
        for workers, ratio in sorted(ratios.items()):
            if not isinstance(ratio, (int, float)) or ratio < 1.0 - _CORE_NOISE:
                problems.append(
                    f"process backend at {workers} workers lost to serial: "
                    f"{ratio}"
                )
    fused = gate.get("fused_vs_serial")
    if not isinstance(fused, (int, float)) or fused < 1.0 - _CORE_NOISE:
        problems.append(f"fused tile kernel lost to the per-shard loop: {fused}")
    headline = gate.get("headline_speedup")
    baseline = gate.get("baseline_headline")
    if not (
        isinstance(headline, (int, float))
        and isinstance(baseline, (int, float))
        and headline > baseline
    ):
        problems.append(
            f"multicore headline {headline} must beat the recorded "
            f"single-core baseline {baseline}"
        )
    return problems


#: Metric keys every docqa config summary must carry.
_DOCQA_CONFIG_KEYS = {"recall_at_k", "mrr", "span_hit_rate",
                      "mean_attention_mass", "runs"}


def _validate_docqa(payload: dict) -> list[str]:
    """Schema of ``BENCH_docqa.json`` (the ISSUE 10 acceptance
    artifact): qrels metric summaries for the exact / top-k /
    early-exit configs, each having scored at least one query; the
    emitted gates actually held — the calibrated top-k point clears
    the recall floor *without* examining the whole memory (a
    candidate fraction of 1.0 means the tier degenerated to an exact
    scan and the recall gate passed vacuously), and the early-exit
    span-hit delta stays within tolerance while the gate genuinely
    fired (mean hops below the configured depth)."""
    problems = []
    configs = payload.get("configs")
    if not isinstance(configs, dict):
        return ["configs must map config names to qrels metric summaries"]
    for name in ("exact", "topk", "early_exit"):
        point = configs.get(name)
        if not isinstance(point, dict) or not _DOCQA_CONFIG_KEYS <= point.keys():
            problems.append(
                f"configs.{name} needs the keys "
                + "/".join(sorted(_DOCQA_CONFIG_KEYS))
            )
        elif not (isinstance(point["runs"], int) and point["runs"] >= 1):
            problems.append(f"configs.{name} scored no queries (runs < 1)")
    gates = payload.get("gates")
    if not isinstance(gates, dict):
        return problems + ["missing the gates block"]
    floor = gates.get("recall_floor")
    tolerance = gates.get("span_hit_tolerance")
    if not isinstance(floor, (int, float)) or not 0.0 < floor <= 1.0:
        problems.append("gates.recall_floor must be a number in (0, 1]")
    if not isinstance(tolerance, (int, float)) or tolerance < 0:
        problems.append("gates.span_hit_tolerance must be a number >= 0")
    if problems:
        return problems
    topk = configs["topk"]
    if not topk["recall_at_k"] >= floor:
        problems.append(
            f"calibrated top-k recall {topk['recall_at_k']} is below the "
            f"floor {floor}"
        )
    fraction = topk.get("mean_candidate_fraction")
    if not isinstance(fraction, (int, float)) or not fraction < 1.0:
        problems.append(
            "top-k candidate fraction must be < 1.0 — at 1.0 the tier "
            "examined the whole memory and the recall gate is vacuous"
        )
    if not isinstance(payload.get("calibrated_nprobe"), int):
        problems.append("missing calibrated_nprobe (the ladder's pick)")
    delta = payload.get("span_hit_delta")
    if not isinstance(delta, (int, float)) or delta > tolerance:
        problems.append(
            f"early-exit span-hit delta {delta} exceeds the tolerance "
            f"{tolerance}"
        )
    hops = payload.get("workload", {}).get("hops")
    early_hops = configs["early_exit"].get("mean_hops")
    if not (
        isinstance(hops, int)
        and isinstance(early_hops, (int, float))
        and early_hops < hops
    ):
        problems.append(
            "early-exit mean hops must be below the configured depth — "
            "a gate that never fires makes the span-hit comparison vacuous"
        )
    return problems


#: Artifact-specific schema checks, keyed by file name.
SCHEMAS = {
    "BENCH_topk.json": _validate_topk,
    "BENCH_earlyexit.json": _validate_earlyexit,
    "BENCH_cluster.json": _validate_cluster,
    "BENCH_core.json": _validate_core,
    "BENCH_docqa.json": _validate_docqa,
}


def validate_artifact(path: Path) -> list[str]:
    """Problems with one artifact (empty list = valid)."""
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        return [f"not valid JSON: {error}"]
    if not isinstance(payload, dict):
        return [f"expected a JSON object, got {type(payload).__name__}"]
    problems = []
    if "smoke" not in payload:
        problems.append("missing the 'smoke' mode key emit() guarantees")
    content = {
        key: value for key, value in payload.items()
        if key != "smoke" and not _empty(value)
    }
    if not content:
        problems.append("no non-empty payload keys besides 'smoke'")
    schema = SCHEMAS.get(path.name)
    if schema is not None:
        problems.extend(schema(payload))
    return problems


def main(root: Path | None = None) -> int:
    """Validate every ``BENCH_*.json`` under ``root`` (repo root by
    default).  Returns a process exit code; prints one line per file.
    """
    root = root if root is not None else REPO_ROOT
    artifacts = sorted(root.glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts found under {root}", file=sys.stderr)
        return 1
    failed = 0
    for path in artifacts:
        problems = validate_artifact(path)
        if problems:
            failed += 1
            for problem in problems:
                print(f"FAIL {path.name}: {problem}")
        else:
            print(f"ok   {path.name}")
    if failed:
        print(f"{failed}/{len(artifacts)} artifacts invalid", file=sys.stderr)
        return 1
    print(f"{len(artifacts)} artifacts valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
