"""§5.5: energy-efficiency comparison between CPU and FPGA MnnFast.

Paper result: on a matched question-answering workload, FPGA-based
MnnFast improves energy efficiency by up to 6.54x over CPU-based
MnnFast.
"""

from repro.analysis import energy_comparison
from repro.report import format_table


def test_sec55_energy_efficiency(benchmark, report):
    comparison = benchmark(energy_comparison)

    rows = [
        ["CPU MnnFast", f"{comparison.cpu_seconds * 1e6:.2f} us",
         f"{comparison.cpu_joules * 1e6:.1f} uJ"],
        ["FPGA MnnFast", f"{comparison.fpga_seconds * 1e6:.2f} us",
         f"{comparison.fpga_joules * 1e6:.1f} uJ"],
    ]
    report(
        format_table(
            ["platform", "time / question", "energy / question"],
            rows,
            title="§5.5 — energy per question "
            f"(measured ratio {comparison.efficiency_ratio:.2f}x, "
            "paper: up to 6.54x)",
        )
    )

    benchmark.extra_info["efficiency_ratio"] = round(
        comparison.efficiency_ratio, 2
    )
    assert comparison.fpga_joules < comparison.cpu_joules
    assert 5.0 <= comparison.efficiency_ratio <= 8.0  # paper: up to 6.54x
