"""Ablation: why zero-skipping is omitted from the GPU pipeline.

§4.1.2: a warp only finishes early when *all* its threads skip, and
compacting the sparse matrix costs about as much as the weighted sum
it would save.  This bench quantifies the argument with the GPU model.
"""

from repro.core.config import GPU_CONFIG
from repro.perf import GpuModel
from repro.report import format_speedup, format_table


def test_gpu_zero_skip_estimate(benchmark, report):
    estimate = benchmark(GpuModel().zero_skip_estimate, GPU_CONFIG, 0.97)

    report(
        format_table(
            ["component", "seconds"],
            [
                ["weighted sum (dense)", f"{estimate['weighted_sum_seconds']:.2e}"],
                ["weighted sum (pruned 97%)", f"{estimate['pruned_seconds']:.2e}"],
                ["matrix compaction (DeftNN-style)",
                 f"{estimate['compaction_seconds']:.2e}"],
                ["net (pruned + compaction)", f"{estimate['net_seconds']:.2e}"],
            ],
            title="Ablation — GPU zero-skipping "
            f"(net speedup {format_speedup(estimate['net_speedup'])}; "
            "paper: ineffective or harmful on GPUs)",
        )
    )
    assert estimate["net_speedup"] <= 1.0
