"""Fig. 10: scalability of the column-based algorithm on CPU.

Paper results: (a) the column-based algorithm saturates around 10
threads on a 4-channel system, later than the baseline (~4 threads);
(b)/(c) adding data streaming reaches near-ideal scaling.
"""

from repro.analysis import algorithm_scalability
from repro.core.config import CPU_CONFIG
from repro.perf.cpu import CpuModel
from repro.report import format_table


def test_fig10_cpu_scalability(benchmark, report):
    curves4 = benchmark(algorithm_scalability, channels=4, max_threads=24)
    curves8 = algorithm_scalability(channels=8, max_threads=24)

    saturation = {
        alg: CpuModel().with_channels(4).saturation_point(CPU_CONFIG, alg)
        for alg in ("baseline", "column", "column_streaming")
    }
    rows = [
        [alg, f"{curves4[alg][8]:.1f}x", f"{curves4[alg][24]:.1f}x",
         f"{curves8[alg][24]:.1f}x", saturation.get(alg, "-")]
        for alg in curves4
    ]
    report(
        format_table(
            ["variant", "4ch @8t", "4ch @24t", "8ch @24t", "saturation (4ch)"],
            rows,
            title="Fig. 10 — per-algorithm speedup curves "
            "(ideal @24t = 24.0x; paper: column saturates ~10t at 4ch, "
            "streaming reaches near-ideal)",
        )
    )

    benchmark.extra_info["saturation_points"] = saturation
    # Column saturates later than baseline; streaming approaches ideal
    # once the channels can feed it (Fig. 10b/c are 8-channel plots).
    assert saturation["column"] > saturation["baseline"]
    assert curves4["column_streaming"][24] > curves4["column"][24]
    assert curves8["column_streaming"][24] > 0.8 * 24
