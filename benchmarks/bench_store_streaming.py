"""Out-of-core memory store: wall-clock of streaming M_IN/M_OUT from disk.

The tiered store's claim is §3.1 applied across the memory hierarchy:
because the column kernel touches one chunk at a time, memories larger
than the RAM budget can live on disk and stream through a
double-buffered chunk pipeline — and with prefetching the disk loads
hide behind compute, so the out-of-core pass approaches resident
speed.  This benchmark measures that trajectory on a footprint
deliberately larger than the configured resident budget:

* ``resident`` — today's in-RAM arrays (the reference);
* ``mmap_demand`` — the same memories on disk, each chunk fetched
  synchronously when the kernel asks (prefetch off);
* ``mmap_prefetch`` — depth-2 background prefetch plus the budgeted
  chunk LRU (the double-buffered overlap).

Every path is exact (the store serves the identical bytes), so the
differential acceptance is 1e-10, and the overlap acceptance is
``prefetch-on <= prefetch-off`` within measurement noise.

Writes ``BENCH_store.json`` (see :mod:`emit`); ``BENCH_SMOKE`` shrinks
the story size for the CI gate.
"""

import time

import numpy as np

from emit import emit, smoke_mode

from repro.core import ChunkConfig, ColumnMemNN
from repro.report import format_table
from repro.store import MmapStore

NS = 30_000 if smoke_mode() else 150_000
ED, NQ = 48, 16
CHUNK = 2000
PREFETCH_DEPTH = 2
REPEATS = 3 if smoke_mode() else 5
#: Measurement-noise allowance on the overlap acceptance (disk and
#: page-cache timing are noisier than pure compute).
NOISE = 0.15


def _best_of(fn):
    """(min wall-clock seconds, last result) over REPEATS after warm-up."""
    fn()
    best, result = float("inf"), None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_store_streaming_trajectory(benchmark, report, tmp_path):
    rng = np.random.default_rng(0)
    m_in = rng.normal(size=(NS, ED))
    m_out = rng.normal(size=(NS, ED))
    u = m_in[rng.integers(0, NS, size=NQ)] * 2.0
    footprint = m_in.nbytes + m_out.nbytes
    budget = footprint // 8  # the RAM tier holds 1/8 of the memories

    chunk = ChunkConfig(chunk_size=CHUNK)
    store = MmapStore.save(tmp_path / "memories", m_in, m_out)
    solvers = {
        "resident": ColumnMemNN(m_in, m_out, chunk=chunk),
        "mmap_demand": ColumnMemNN(store=store, chunk=chunk, prefetch_depth=0),
        "mmap_prefetch": ColumnMemNN(
            store=store, chunk=chunk,
            resident_bytes=budget, prefetch_depth=PREFETCH_DEPTH,
        ),
    }

    def run_series():
        series, outputs = {}, {}
        for name, solver in solvers.items():
            seconds, result = _best_of(lambda s=solver: s.output(u))
            series[name] = seconds
            outputs[name] = result.output
        return series, outputs

    series, outputs = benchmark.pedantic(run_series, iterations=1, rounds=1)

    # Exact equivalence: the store serves the identical bytes.
    for name, output in outputs.items():
        np.testing.assert_allclose(
            output, outputs["resident"], rtol=1e-10, atol=1e-10,
            err_msg=f"{name} diverged from the resident path",
        )

    stats = {
        name: solvers[name].store_stats.snapshot()
        for name in ("mmap_demand", "mmap_prefetch")
    }
    prefetch_speedup = series["mmap_demand"] / series["mmap_prefetch"]
    resident_ratio = series["resident"] / series["mmap_prefetch"]

    report(format_table(
        ["series", "wall-clock", "disk bytes", "coverage", "stall"],
        [
            [
                name,
                f"{seconds * 1e3:.1f} ms",
                f"{stats[name].disk_bytes / 1e6:.0f} MB"
                if name in stats else "-",
                f"{stats[name].prefetch_coverage:.0%}"
                if name in stats else "-",
                f"{stats[name].stall_seconds * 1e3:.1f} ms"
                if name in stats else "-",
            ]
            for name, seconds in series.items()
        ],
        title=(
            f"Out-of-core streaming at ns={NS:,}, ed={ED}, nq={NQ} "
            f"({footprint / 1e6:.0f} MB footprint, "
            f"{budget / 1e6:.0f} MB budget)"
        ),
    ))

    emit("store", {
        "workload": {"ns": NS, "ed": ED, "nq": NQ, "chunk": CHUNK,
                     "prefetch_depth": PREFETCH_DEPTH, "repeats": REPEATS},
        "footprint_bytes": footprint,
        "resident_budget_bytes": budget,
        "out_of_core": footprint > budget,
        "series_seconds": {k: round(v, 6) for k, v in series.items()},
        "store_stats": {
            name: {
                "disk_bytes": s.disk_bytes,
                "ram_bytes": s.ram_bytes,
                "prefetch_coverage": round(s.prefetch_coverage, 4),
                "prefetch_hit_rate": round(s.prefetch_hit_rate, 4),
                "stall_seconds": round(s.stall_seconds, 6),
                "chunks_served": s.chunks_served,
            }
            for name, s in stats.items()
        },
        "headline_prefetch_speedup": round(prefetch_speedup, 3),
        "resident_vs_prefetch": round(resident_ratio, 3),
    })

    benchmark.extra_info["headline_prefetch_speedup"] = round(
        prefetch_speedup, 3
    )

    # Acceptance: the workload is genuinely out-of-core, the prefetch
    # pipeline covered every chunk, and the overlap did not make the
    # pass slower than demand fetching.
    assert footprint > budget
    assert stats["mmap_prefetch"].prefetch_coverage == 1.0
    assert stats["mmap_demand"].prefetch_coverage == 0.0
    assert series["mmap_prefetch"] <= series["mmap_demand"] * (1.0 + NOISE), (
        f"prefetch-on slower than prefetch-off: "
        f"{series['mmap_prefetch'] * 1e3:.1f} ms vs "
        f"{series['mmap_demand'] * 1e3:.1f} ms"
    )
