"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured comparison (visible with ``pytest -s``);
the headline numbers also land in each benchmark's ``extra_info`` so
they appear in ``--benchmark-json`` exports.
"""

import sys
from pathlib import Path

import pytest

# Allow running the harness from a fresh checkout without an installed
# package (e.g. offline environments where editable installs fail).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


@pytest.fixture
def report():
    """Print a block to real stdout so it survives pytest capture."""

    def _print(text: str) -> None:
        sys.stdout.write("\n" + text + "\n")

    return _print
