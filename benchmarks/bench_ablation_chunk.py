"""Ablation: chunk-size sensitivity of the column-based algorithm.

DESIGN.md §5: the chunk size trades intermediate footprint against
per-chunk overhead.  The paper fixes 1000 sentences on CPU (Table 1);
this ablation sweeps the knob on both the FPGA cycle model and the
real NumPy implementation.
"""

import numpy as np
import pytest

from repro.core import ChunkConfig, ColumnMemNN
from repro.core.config import CPU_CONFIG
from repro.perf.cpu import CpuModel
from repro.report import format_table

CHUNKS = (100, 1000, 10_000)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(1)
    ns, ed = 100_000, 48
    return rng.normal(size=(ns, ed)), rng.normal(size=(ns, ed)), rng.normal(size=(8, ed))


@pytest.mark.parametrize("chunk_size", CHUNKS)
def test_chunk_size_numpy(benchmark, workload, chunk_size):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk_size))
    result = benchmark(engine.output, u)
    benchmark.extra_info["intermediate_bytes"] = result.stats.intermediate_bytes
    assert result.output.shape == (8, 48)


def test_chunk_size_model_footprint(benchmark, report):
    """Intermediate footprint and model latency across chunk sizes."""

    def sweep():
        cpu = CpuModel()
        rows = {}
        for chunk_size in CHUNKS:
            run = cpu.run(
                CPU_CONFIG, "column_streaming", threads=20,
                chunk=ChunkConfig(chunk_size=chunk_size),
            )
            footprint = 2 * CPU_CONFIG.num_questions * chunk_size * 4
            rows[chunk_size] = (footprint, run.total_seconds)
        return rows

    rows = benchmark(sweep)
    report(
        format_table(
            ["chunk size", "intermediate footprint", "model latency"],
            [
                [c, f"{fp / 1024:.0f} KB", f"{t * 1e3:.3f} ms"]
                for c, (fp, t) in rows.items()
            ],
            title="Ablation — chunk-size sweep (paper default: 1000)",
        )
    )
    # Footprint grows linearly with chunk size.
    footprints = [fp for fp, _ in rows.values()]
    assert footprints == sorted(footprints)
