"""Extension bench: continuous batching amortization (§5, Fig. 12 style).

Sweeps the batcher's ``max_batch_size`` at a fixed story size and
offered load past single-question saturation: the column-based
algorithm streams ``M_IN``/``M_OUT`` once per batch, so throughput
must rise monotonically with batch size until the pool turns
compute-bound, while batching delay shows up in the latency
percentiles — the amortization-vs-latency tradeoff curve.

Writes ``BENCH_batching.json`` (see :mod:`emit`); ``BENCH_SMOKE``
shrinks the sweep for the CI gate.
"""

from emit import emit, smoke_mode

from repro.core import EngineConfig
from repro.report import format_table
from repro.serving import QaServer, ServerConfig, generate_workload

#: Offered load past even the batch-8 pool's capacity, so every sweep
#: point is saturated and throughput reflects service capacity.
RATE = 120_000
WORKERS = 8
STORY_RATE = 50
BATCH_SIZES = (1, 2, 4) if smoke_mode() else (1, 2, 4, 8, 16)
DURATION = 0.05 if smoke_mode() else 0.3
#: Throughput may only dip by measurement noise between sweep points.
MONOTONE_TOLERANCE = 0.02


def _sweep():
    points = []
    for batch_size in BATCH_SIZES:
        config = ServerConfig(
            engine=EngineConfig.batched(batch_size, max_wait=2e-3),
            workers=WORKERS,
        )
        workload = generate_workload(
            question_rate=RATE, story_rate=STORY_RATE,
            duration=DURATION, seed=7,
        )
        metrics = QaServer(config, seed=9).run_batched(workload)
        points.append({
            "max_batch_size": batch_size,
            "throughput": metrics.throughput("question"),
            "p50_ms": metrics.latency_percentile(50) * 1e3,
            "p99_ms": metrics.latency_percentile(99) * 1e3,
            "queueing_p99_ms": metrics.queueing_percentile(99) * 1e3,
            "batch_occupancy": metrics.batch_occupancy,
            "mean_batch_size": metrics.mean_batch_size,
            "batches": len(metrics.batches),
        })
    return points


def test_batching_amortization_curve(benchmark, report):
    points = benchmark.pedantic(_sweep, iterations=1, rounds=1)

    report(
        format_table(
            ["max batch", "throughput", "p50", "p99", "occupancy"],
            [
                [p["max_batch_size"],
                 f"{p['throughput']:,.0f}/s",
                 f"{p['p50_ms']:.2f} ms",
                 f"{p['p99_ms']:.2f} ms",
                 f"{p['batch_occupancy']:.2f}"]
                for p in points
            ],
            title=f"Continuous batching at {RATE:,} questions/s offered "
            f"({WORKERS} workers, story ingestion co-tenant)",
        )
    )

    emit("batching", {
        "offered_rate": RATE,
        "workers": WORKERS,
        "duration": DURATION,
        "sweep": points,
    })

    benchmark.extra_info["max_throughput"] = round(
        max(p["throughput"] for p in points), 1
    )

    # The headline acceptance: amortizing the memory stream over the
    # batch buys monotonically increasing throughput with batch size.
    for previous, current in zip(points, points[1:]):
        assert current["throughput"] >= previous["throughput"] * (
            1.0 - MONOTONE_TOLERANCE
        ), (
            f"throughput fell from {previous['throughput']:,.0f}/s at "
            f"batch {previous['max_batch_size']} to "
            f"{current['throughput']:,.0f}/s at "
            f"batch {current['max_batch_size']}"
        )
    assert points[-1]["throughput"] > 2.0 * points[0]["throughput"]
