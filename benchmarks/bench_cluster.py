"""Extension bench: cluster serving (ISSUE 8 acceptance).

Two claims, one artifact:

1. **Cache-affinity routing beats round-robin** on a hot-chunk-skewed
   workload (Zipf topic popularity, each topic a contiguous chunk
   block, per-replica LRU budget well under the hot set).  Affinity
   keeps same-topic plans on the replica that already cached their
   chunks, so it must win on *both* cluster chunk hit-rate and p50
   latency — strictly (the validator gates on it).  Least-backlog
   rides along as the locality-blind load-aware reference.

2. **Backlog-driven autoscaling absorbs a flash crowd**: replaying
   the same burst trace (quiet baseline → rate step → quiet) against
   a static fleet and an autoscaled one, the autoscaler must keep
   deadline timeouts strictly below the static baseline while
   returning to the floor after the burst (its decision + replica
   traces land in the artifact next to the offered-load trace).  A
   diurnal replay records the day-shaped tracking behaviour.

Writes ``BENCH_cluster.json`` (see :mod:`emit`); ``BENCH_SMOKE``
shrinks the request streams for the CI gate.
"""

from emit import emit, smoke_mode

from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    ClusterConfig,
    ClusterSim,
    burst_trace,
    diurnal_trace,
    requests_from_trace,
    skewed_workload,
)
from repro.report import format_table

# --- shared geometry -----------------------------------------------------------

NUM_ROWS, ED, CHUNK = 32_000, 32, 500
CHUNK_BYTES = 2 * CHUNK * ED * 8  # M_IN + M_OUT, float64
#: LRU budget: ~1.25 topics' worth of chunks — small enough that a
#: replica serving every topic thrashes, the regime affinity wins in.
LRU_BUDGET = 10 * CHUNK_BYTES
NUM_TOPICS, CHUNKS_PER_TOPIC = 8, 8
DISK_BW = 2e8  # backing-tier stream bandwidth misses are charged at

ROUTING_REQUESTS = 300 if smoke_mode() else 2_000
ROUTING_RATE = 150.0
ROUTING_REPLICAS = 4

# Long enough past the burst for the scale-down cooldown (8 s) to
# elapse, so the come-back-down assertion holds in both modes.
BURST_DURATION = 21.0 if smoke_mode() else 30.0
BURST_BASE, BURST_RATE = 20.0, 300.0
DEADLINE = 0.10
SCALE_FLOOR, SCALE_CEILING = 2, 10

POLICIES = ("round_robin", "least_backlog", "cache_affinity")


def _config(replicas: int) -> ClusterConfig:
    return ClusterConfig(
        num_rows=NUM_ROWS,
        embedding_dim=ED,
        chunk_size=CHUNK,
        replicas=replicas,
        resident_bytes=LRU_BUDGET,
        disk_bandwidth=DISK_BW,
    )


def _autoscaler() -> Autoscaler:
    return Autoscaler(
        AutoscalerConfig(
            min_replicas=SCALE_FLOOR,
            max_replicas=SCALE_CEILING,
            high_watermark=3.0,
            low_watermark=0.5,
            scale_up_cooldown=1.0,
            scale_down_cooldown=8.0,
        )
    )


def _policy_summary(metrics) -> dict:
    return {
        "chunk_hit_rate": round(metrics.chunk_hit_rate, 4),
        "latency_p50": metrics.latency_percentile(50),
        "latency_p95": metrics.latency_percentile(95),
        "throughput_rps": round(metrics.throughput(), 2),
        "completed": metrics.completed,
        "shed": metrics.shed,
    }


def _scaling_summary(metrics) -> dict:
    return {
        "timed_out": metrics.timed_out,
        "timeout_rate": round(metrics.timeout_rate, 4),
        "completed": metrics.completed,
        "shed": metrics.shed,
        "mean_replicas": round(metrics.mean_replicas(), 2),
        "replica_trace": [[t, n] for t, n in metrics.replica_trace],
        "decisions": [
            {
                "time": d.time,
                "before": d.replicas_before,
                "after": d.replicas_after,
                "signal": round(d.backlog_per_replica, 2),
            }
            for d in metrics.decisions
        ],
    }


def test_cluster_serving(report):
    total_chunks = _config(ROUTING_REPLICAS).total_chunks

    # --- claim 1: routing policies on the skewed workload ---------------------
    requests = skewed_workload(
        num_requests=ROUTING_REQUESTS,
        num_topics=NUM_TOPICS,
        chunks_per_topic=CHUNKS_PER_TOPIC,
        total_chunks=total_chunks,
        rate=ROUTING_RATE,
        seed=11,
    )
    routing = {}
    for policy in POLICIES:
        sim = ClusterSim(_config(ROUTING_REPLICAS), policy=policy)
        routing[policy] = _policy_summary(sim.run(requests))

    report(
        format_table(
            ["policy", "chunk hit-rate", "p50 (ms)", "p95 (ms)", "rps"],
            [
                [
                    policy,
                    f"{row['chunk_hit_rate']:.1%}",
                    f"{row['latency_p50'] * 1e3:.3f}",
                    f"{row['latency_p95'] * 1e3:.3f}",
                    f"{row['throughput_rps']:.0f}",
                ]
                for policy, row in routing.items()
            ],
            title=(
                f"Routing policies, Zipf-skewed topics "
                f"({ROUTING_REQUESTS} requests, {ROUTING_REPLICAS} replicas, "
                f"LRU {LRU_BUDGET // CHUNK_BYTES} chunks/replica)"
            ),
        )
    )

    affinity, rr = routing["cache_affinity"], routing["round_robin"]
    assert affinity["chunk_hit_rate"] > rr["chunk_hit_rate"]
    assert affinity["latency_p50"] < rr["latency_p50"]

    # --- claim 2: autoscaler vs static fleet under a burst --------------------
    trace = burst_trace(
        duration=BURST_DURATION,
        base_rate=BURST_BASE,
        burst_rate=BURST_RATE,
        burst_start=BURST_DURATION / 3,
        burst_duration=BURST_DURATION / 3,
    )
    burst_requests = requests_from_trace(
        trace,
        num_topics=NUM_TOPICS,
        chunks_per_topic=CHUNKS_PER_TOPIC,
        total_chunks=total_chunks,
        deadline=DEADLINE,
        seed=23,
    )
    static = ClusterSim(
        _config(SCALE_FLOOR), policy="least_backlog"
    ).run(burst_requests)
    autoscaled = ClusterSim(
        _config(SCALE_FLOOR),
        policy="least_backlog",
        autoscaler=_autoscaler(),
        tick_interval=0.5,
    ).run(burst_requests)

    report(
        format_table(
            ["fleet", "timeouts", "timeout rate", "mean replicas"],
            [
                [
                    "static",
                    str(static.timed_out),
                    f"{static.timeout_rate:.1%}",
                    f"{static.mean_replicas():.2f}",
                ],
                [
                    "autoscaled",
                    str(autoscaled.timed_out),
                    f"{autoscaled.timeout_rate:.1%}",
                    f"{autoscaled.mean_replicas():.2f}",
                ],
            ],
            title=(
                f"Flash crowd ({BURST_BASE:g}→{BURST_RATE:g} rps, "
                f"{len(burst_requests)} requests, {DEADLINE * 1e3:.0f} ms "
                f"deadline, floor {SCALE_FLOOR} replicas)"
            ),
        )
    )

    assert autoscaled.timed_out < static.timed_out
    assert autoscaled.decisions, "the burst must trigger scaling actions"
    # The fleet must come back down after the burst drains.
    assert autoscaled.replica_trace[-1][1] < max(
        n for _, n in autoscaled.replica_trace
    )

    # --- diurnal tracking (recorded, not gated) -------------------------------
    day = diurnal_trace(
        duration=BURST_DURATION,
        base_rate=BURST_BASE,
        peak_rate=BURST_RATE / 2,
    )
    diurnal_requests = requests_from_trace(
        day,
        num_topics=NUM_TOPICS,
        chunks_per_topic=CHUNKS_PER_TOPIC,
        total_chunks=total_chunks,
        deadline=DEADLINE,
        seed=37,
    )
    diurnal = ClusterSim(
        _config(SCALE_FLOOR),
        policy="least_backlog",
        autoscaler=_autoscaler(),
        tick_interval=0.5,
    ).run(diurnal_requests)

    emit(
        "cluster",
        {
            "routing": {
                "workload": {
                    "num_requests": ROUTING_REQUESTS,
                    "num_topics": NUM_TOPICS,
                    "chunks_per_topic": CHUNKS_PER_TOPIC,
                    "total_chunks": total_chunks,
                    "rate_rps": ROUTING_RATE,
                    "replicas": ROUTING_REPLICAS,
                    "lru_chunks_per_replica": LRU_BUDGET // CHUNK_BYTES,
                },
                "policies": routing,
            },
            "autoscaler": {
                "burst": {
                    "offered_trace": [
                        [s.start, s.rate] for s in trace
                    ],
                    "num_requests": len(burst_requests),
                    "deadline_seconds": DEADLINE,
                    "static": _scaling_summary(static),
                    "autoscaled": _scaling_summary(autoscaled),
                },
                "diurnal": {
                    "offered_trace": [
                        [s.start, round(s.rate, 2)] for s in day
                    ],
                    "num_requests": len(diurnal_requests),
                    **_scaling_summary(diurnal),
                },
            },
        },
    )
