"""Fig. 7 at the paper's story scale (50-sentence stories).

The quick Fig. 7 bench uses short stories; this one matches the
paper's setting — stories of up to 50 sentences — where the attention
mass concentrates on a smaller *fraction* of the memory and the
reduction approaches the paper's 97%.

Measured reference: 94.0% output-computation reduction at th=0.1 with
zero accuracy loss, 85.9% at th=0.01 (paper: 97%/0.87% loss and
81%/no loss).  Trains one model (~2 minutes).
"""

from repro.model import train_on_task
from repro.report import format_percent, format_table


def _run():
    trainer, test, _, result = train_on_task(
        1,
        train_examples=800,
        test_examples=100,
        epochs=60,
        story_scale=5.0,
        max_sentences=50,
        embedding_dim=32,
    )
    points = {}
    for threshold in (0.01, 0.1):
        points[threshold] = trainer.evaluate_zero_skip(
            test["stories"], test["questions"], test["answers"], threshold
        )
    return result, points


def test_fig07_paper_scale(benchmark, report):
    result, points = benchmark.pedantic(_run, iterations=1, rounds=1)

    paper = {0.01: ("81%", "0%"), 0.1: ("97%", "0.87%")}
    rows = [
        [
            threshold,
            format_percent(evaluation.computation_reduction),
            paper[threshold][0],
            format_percent(evaluation.accuracy_loss),
            paper[threshold][1],
        ]
        for threshold, evaluation in points.items()
    ]
    report(
        format_table(
            ["th_skip", "reduction", "paper", "acc loss", "paper loss"],
            rows,
            title="Fig. 7 at paper story scale (50-sentence stories, "
            f"model test accuracy {format_percent(result.test_accuracy)})",
        )
    )

    benchmark.extra_info["reduction_at_0.1"] = round(
        points[0.1].computation_reduction, 3
    )
    assert points[0.1].computation_reduction > 0.85
    assert points[0.1].accuracy_loss < 0.05
    assert points[0.01].computation_reduction > 0.7
    assert points[0.01].accuracy_loss < 0.02
