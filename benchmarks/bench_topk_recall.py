"""Top-k retrieval tier: sublinear attention time at a held recall floor.

The tier's claim (ISSUE 6) is complementary to MnnFast's zero-skipping
(§3.2, Fig. 6): the attention mass of a MANN concentrates on a few
memory rows, so an IVF index over ``M_IN`` can *retrieve* candidate
rows in ``O(nlist·ed)`` and hand only those to the exact lazy-softmax
column kernel — ``O(candidates·ed)`` instead of ``O(ns·ed)`` per pass,
sublinear in ``ns`` at the default ``nlist ≈ √ns`` sizing.

This benchmark sweeps the memory size over a 64x range on a topical
workload (:func:`repro.index.harness.synthetic_topical_workload` — the
concentrated-attention regime Fig. 6 documents).  At each size it
first **calibrates the operating point**: ``nprobe`` is walked up a
ladder until both quality floors hold (answer agreement with the
exact engine >= 0.99, mean attention-mass recall >= 0.95) — the
ANN-benchmarks methodology, because a fixed ``nprobe`` probes an
ever-smaller *fraction* of the growing ``nlist ≈ √ns`` cluster table
and cannot hold recall across a 64x sweep.  It then measures, at the
calibrated point:

* **attention wall-clock**, solver-level (index already built, recall
  measurement off), exact column kernel vs. the top-k tier, over
  small question batches — candidates are a *batch union*, so small
  batches are where the tier's candidate set stays tight;
* the quality metrics themselves (agreement via engine answers,
  recall via a separate ``measure_recall`` engine, so the timed path
  never pays the full-scan audit).

Acceptance: the floors hold at every size, and the top-k time grows
sublinearly — the largest/smallest time ratio stays under half the
64x size ratio.

Writes ``BENCH_topk.json`` (see :mod:`emit`); ``BENCH_SMOKE`` shrinks
the sweep for the CI gate.
"""

import time

import numpy as np

from emit import emit, smoke_mode

from repro.core import ChunkConfig, ColumnMemNN, EngineConfig, EngineWeights, MemNNConfig
from repro.core.engine import MnnFastEngine
from repro.index import TopKMemNN
from repro.index.harness import synthetic_topical_workload
from repro.report import format_table

#: Memory sizes swept — largest is 64x the smallest in both modes.
SIZES = (1_024, 8_192, 65_536) if smoke_mode() else (4_096, 32_768, 262_144)
#: ed=64: the workload's sqrt(ns) topics (512 at the largest size) need
#: the dimensions to separate — at ed=32 centroid inner products
#: overlap enough that holding the floors forces nprobe up the ladder
#: with ns, i.e. a constant probed *fraction* and no sublinearity.
ED, NW, VOCAB = 64, 8, 4_000
#: Extra Lloyd iterations align clusters to topics at the largest
#: sizes; build cost is off the timed path (the index is reused).
KMEANS_ITERS = 12
#: Questions per kernel pass: the tier unions candidates across the
#: batch, so sublinear serving lives at small batch sizes.
NQ_BATCH = 8
NUM_BATCHES = 16  # 128 questions per size for the agreement statistic
#: Calibration ladder: smallest nprobe that holds both floors wins.
NPROBE_LADDER = (4, 8, 16, 32, 64)
REPEATS = 3 if smoke_mode() else 5
WEIGHT_SCALE = 0.35  # peaked-attention operating point (cf. Fig. 6)

RECALL_FLOOR = 0.95
AGREEMENT_FLOOR = 0.99
#: Sublinearity acceptance: t(max)/t(min) under half the ns ratio.
SUBLINEAR_FACTOR = 0.5


def _best_of(fn):
    """Min wall-clock seconds over REPEATS after one warm-up call."""
    fn()
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _quality_at(nprobe, config, weights, stories, batches):
    """(agreement, recalls, fractions) of the tier at one nprobe."""
    base = EngineConfig(algorithm="column")
    exact_engine = MnnFastEngine(config, weights, engine_config=base)
    topk_engine = MnnFastEngine(
        config, weights,
        engine_config=base.with_topk(
            nprobe=nprobe, min_rows=0, measure_recall=True,
            kmeans_iters=KMEANS_ITERS,
        ),
    )
    for engine in (exact_engine, topk_engine):
        engine.store_story(stories)
    agree = 0
    recalls, fractions = [], []
    for batch in batches:
        exact = exact_engine.answer(batch)
        topk = topk_engine.answer(batch)
        agree += int(np.sum(exact.answer_ids == topk.answer_ids))
        for s in topk.tier_stats()["index"]:
            if s is not None:
                fractions.append(s.candidate_fraction)
                if s.recall is not None:
                    recalls.append(s.recall)
    total = sum(len(batch) for batch in batches)
    return agree / total, recalls, fractions, exact_engine


def _measure_size(ns: int) -> dict:
    config = MemNNConfig(
        embedding_dim=ED, num_sentences=ns, num_questions=NQ_BATCH,
        vocab_size=VOCAB, max_words=NW, hops=1,
    )
    rng = np.random.default_rng(ns)
    weights = EngineWeights.random(config, rng=rng, scale=WEIGHT_SCALE)
    stories, questions = synthetic_topical_workload(
        config, NQ_BATCH * NUM_BATCHES, rng=rng
    )
    batches = [
        questions[i * NQ_BATCH:(i + 1) * NQ_BATCH] for i in range(NUM_BATCHES)
    ]

    # --- calibrate nprobe to the quality floors -------------------------
    for nprobe in NPROBE_LADDER:
        agreement, recalls, fractions, exact_engine = _quality_at(
            nprobe, config, weights, stories, batches
        )
        if agreement >= AGREEMENT_FLOOR and np.mean(recalls) >= RECALL_FLOOR:
            break
    else:
        raise AssertionError(
            f"ns={ns}: no nprobe in {NPROBE_LADDER} holds agreement >= "
            f"{AGREEMENT_FLOOR} and recall >= {RECALL_FLOOR} "
            f"(last: {agreement:.3f} / {np.mean(recalls):.3f})"
        )

    # --- wall-clock, solver-level (index pre-built, recall audit off) ---
    m_in, m_out = exact_engine.memories
    chunk = ChunkConfig()
    topk_cfg = EngineConfig(algorithm="column").with_topk(
        nprobe=nprobe, min_rows=0, kmeans_iters=KMEANS_ITERS
    )
    exact_solver = ColumnMemNN(m_in, m_out, chunk=chunk)
    topk_solver = TopKMemNN(m_in, m_out, config=topk_cfg.topk, chunk=chunk)
    u_batches = [exact_engine.embed_question(batch)[0] for batch in batches]

    def run(solver):
        for u in u_batches:
            solver.output(u)

    exact_seconds = _best_of(lambda: run(exact_solver))
    topk_seconds = _best_of(lambda: run(topk_solver))
    index = topk_solver.index

    return {
        "ns": ns,
        "nlist": index.nlist if index is not None else 0,
        "nprobe": nprobe,
        "exact_seconds": round(exact_seconds, 6),
        "topk_seconds": round(topk_seconds, 6),
        "speedup": round(exact_seconds / topk_seconds, 3),
        "candidate_fraction": round(float(np.mean(fractions)), 4),
        "agreement": round(agreement, 4),
        "mean_recall": round(float(np.mean(recalls)), 6),
        "min_recall": round(float(np.min(recalls)), 6),
    }


def test_topk_sublinear_at_recall_floor(benchmark, report):
    sweep = benchmark.pedantic(
        lambda: [_measure_size(ns) for ns in SIZES], iterations=1, rounds=1
    )

    report(format_table(
        ["ns", "nlist", "nprobe", "exact", "topk", "speedup", "cand frac",
         "agree", "recall (mean/min)"],
        [
            [
                f"{row['ns']:,}",
                row["nlist"],
                row["nprobe"],
                f"{row['exact_seconds'] * 1e3:.1f} ms",
                f"{row['topk_seconds'] * 1e3:.1f} ms",
                f"{row['speedup']:.2f}x",
                f"{row['candidate_fraction']:.3f}",
                f"{row['agreement']:.3f}",
                f"{row['mean_recall']:.4f} / {row['min_recall']:.4f}",
            ]
            for row in sweep
        ],
        title=(
            f"Top-k tier vs exact column kernel, nprobe calibrated to "
            f"agreement >= {AGREEMENT_FLOOR} and recall >= {RECALL_FLOOR} "
            f"(topical workload, batch={NQ_BATCH}, "
            f"{NQ_BATCH * NUM_BATCHES} questions/size)"
        ),
    ))

    ns_ratio = SIZES[-1] / SIZES[0]
    t_ratio = sweep[-1]["topk_seconds"] / sweep[0]["topk_seconds"]
    exact_ratio = sweep[-1]["exact_seconds"] / sweep[0]["exact_seconds"]

    emit("topk", {
        "workload": {
            "ed": ED, "nw": NW, "vocab": VOCAB, "nq_batch": NQ_BATCH,
            "num_batches": NUM_BATCHES, "nprobe_ladder": list(NPROBE_LADDER),
            "kmeans_iters": KMEANS_ITERS, "hops": 1, "repeats": REPEATS,
            "weight_scale": WEIGHT_SCALE,
        },
        "recall_floor": RECALL_FLOOR,
        "agreement_floor": AGREEMENT_FLOOR,
        "ns_sweep": sweep,
        "ns_ratio": ns_ratio,
        "topk_time_ratio": round(t_ratio, 3),
        "exact_time_ratio": round(exact_ratio, 3),
        "headline_speedup_at_max": sweep[-1]["speedup"],
    })
    benchmark.extra_info["topk_time_ratio"] = round(t_ratio, 3)
    benchmark.extra_info["headline_speedup_at_max"] = sweep[-1]["speedup"]

    # Acceptance: quality floors hold at every size (the calibration
    # guarantees it or raises)...
    for row in sweep:
        assert row["agreement"] >= AGREEMENT_FLOOR, row
        assert row["mean_recall"] >= RECALL_FLOOR, row
    # ...and at those held floors the tier's time grows sublinearly
    # while the exact kernel's tracks ns.
    assert t_ratio <= SUBLINEAR_FACTOR * ns_ratio, (
        f"top-k time ratio {t_ratio:.1f} over a {ns_ratio:.0f}x size "
        f"sweep is not sublinear"
    )
    assert sweep[-1]["speedup"] > 1.0, "top-k slower than exact at max size"
