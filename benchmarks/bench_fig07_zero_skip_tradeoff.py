"""Fig. 7: accuracy loss vs computation reduction per skip threshold.

Paper result: th=0.1 removes ~97% of output computation at 0.87%
accuracy loss; th=0.01 removes ~81% with no loss.  (Our synthetic
stories are shorter than full bAbI stories, so absolute reductions are
lower; the shape — large reductions with negligible accuracy loss,
monotone in the threshold — is the reproduced claim.)
"""

from repro.analysis import threshold_sweep
from repro.report import format_percent, format_table

PAPER = {0.01: (0.81, 0.00), 0.1: (0.97, 0.0087)}


def test_fig07_zero_skip_tradeoff(benchmark, report):
    curve = benchmark.pedantic(
        threshold_sweep,
        kwargs=dict(
            task_ids=(1, 6, 15),
            thresholds=(0.0001, 0.001, 0.01, 0.1, 0.5),
            train_examples=300,
            test_examples=80,
            epochs=20,
        ),
        iterations=1,
        rounds=1,
    )

    rows = []
    for point in curve.points:
        paper_red, paper_loss = PAPER.get(point.threshold, (None, None))
        rows.append(
            [
                point.threshold,
                format_percent(point.computation_reduction),
                format_percent(paper_red) if paper_red is not None else "-",
                format_percent(point.accuracy_loss),
                format_percent(paper_loss) if paper_loss is not None else "-",
            ]
        )
    report(
        format_table(
            ["th_skip", "reduction", "paper", "acc loss", "paper loss"],
            rows,
            title="Fig. 7 — zero-skipping tradeoff (averaged over tasks)",
        )
    )

    point_01 = curve.point_at(0.1)
    benchmark.extra_info["reduction_at_0.1"] = round(
        point_01.computation_reduction, 3
    )
    benchmark.extra_info["accuracy_loss_at_0.1"] = round(point_01.accuracy_loss, 4)

    reductions = [p.computation_reduction for p in curve.points]
    assert reductions == sorted(reductions)  # monotone in threshold
    assert point_01.computation_reduction > 0.5  # large reduction at 0.1
    assert point_01.accuracy_loss < 0.1  # negligible accuracy cost
