"""Fig. 3: baseline MemNN scalability under varying memory bandwidth.

Paper result: the baseline's speedup saturates quickly as the number
of memory channels decreases — memory bandwidth, not compute, limits
scaling.
"""

from repro.analysis import bandwidth_scalability
from repro.report import format_series, format_table


def test_fig03_bandwidth_scalability(benchmark, report):
    curves = benchmark(
        bandwidth_scalability, channels=(2, 4, 8), max_threads=24
    )

    rows = []
    for channels, curve in curves.items():
        rows.append(
            [
                f"{channels}ch",
                f"{curve[8]:.2f}x",
                f"{curve[16]:.2f}x",
                f"{curve[24]:.2f}x",
            ]
        )
    report(
        format_table(
            ["channels", "speedup@8t", "speedup@16t", "speedup@24t"],
            rows,
            title="Fig. 3 — baseline speedup vs threads per channel config "
            "(paper: fewer channels saturate earlier)",
        )
    )
    for channels, curve in curves.items():
        report(format_series(f"  {channels}-channel", curve))

    benchmark.extra_info["speedup_24t_by_channels"] = {
        ch: round(curve[24], 2) for ch, curve in curves.items()
    }
    # Shape assertions: more channels, more headroom.
    assert curves[2][24] < curves[4][24] < curves[8][24]
