"""Table 1: memory-network configurations used in the evaluation.

Regenerates the configuration table and checks the presets carry the
paper's parameters (ed = 48/64/25, database sizes, chunk sizes).
"""

from repro.core.config import TABLE1


def _render_table1():
    rows = []
    for platform, entry in TABLE1.items():
        config = entry["config"]
        rows.append(
            (
                platform,
                config.embedding_dim,
                entry["database_sentences"],
                entry["chunk_size"] if entry["chunk_size"] else "variable",
            )
        )
    return rows


def test_table1_configs(benchmark, report):
    rows = benchmark(_render_table1)

    from repro.report import format_table

    report(
        format_table(
            ["platform", "embedding dim", "database (# sentences)", "chunk size"],
            rows,
            title="Table 1 — memory network configurations",
        )
    )

    by_platform = {row[0]: row for row in rows}
    assert by_platform["CPU"][1] == 48 and by_platform["CPU"][3] == 1000
    assert by_platform["GPU"][1] == 64
    assert by_platform["FPGA"][1] == 25 and by_platform["FPGA"][2] == 1000
