"""Fig. 9: CPU performance of the column-based algorithm.

Paper results: (a) the column-based algorithm cuts the softmax
latency, streaming cuts inner-product/weighted-sum stalls; (b) MnnFast
reaches 5.38x over the baseline at 20 threads and 4.02x on average.
"""

from repro.analysis import operation_breakdown, speedup_over_baseline
from repro.report import format_speedup, format_table


def test_fig09a_operation_breakdown(benchmark, report):
    breakdown = benchmark(operation_breakdown, threads=20)

    base = breakdown["baseline"]
    rows = [
        [name]
        + [
            f"{breakdown[alg][phase] / base[phase]:.2f}"
            for phase in ("inner_product", "softmax", "weighted_sum")
        ]
        for name, alg in [
            ("baseline", "baseline"),
            ("column", "column"),
            ("column+stream", "column_streaming"),
            ("mnnfast", "mnnfast"),
        ]
    ]
    report(
        format_table(
            ["variant", "inner", "softmax", "weighted"],
            rows,
            title="Fig. 9(a) — per-operation latency normalized to baseline",
        )
    )
    assert breakdown["column"]["softmax"] < base["softmax"]
    assert breakdown["mnnfast"]["weighted_sum"] < base["weighted_sum"]


def test_fig09b_speedup_vs_threads(benchmark, report):
    speedups = benchmark(speedup_over_baseline, max_threads=20)

    mnnfast = speedups["mnnfast"]
    average = sum(mnnfast.values()) / len(mnnfast)
    rows = [
        [alg, format_speedup(curve[1]), format_speedup(curve[10]),
         format_speedup(curve[20])]
        for alg, curve in speedups.items()
    ]
    report(
        format_table(
            ["variant", "1 thread", "10 threads", "20 threads"],
            rows,
            title="Fig. 9(b) — speedup over baseline "
            f"(paper: MnnFast 5.38x @20t, 4.02x avg; measured avg "
            f"{average:.2f}x)",
        )
    )

    benchmark.extra_info["mnnfast_speedup_20t"] = round(mnnfast[20], 2)
    benchmark.extra_info["mnnfast_speedup_avg"] = round(average, 2)
    assert 4.0 <= mnnfast[20] <= 6.0  # paper: 5.38x
    assert 3.0 <= average <= 5.0  # paper: 4.02x
