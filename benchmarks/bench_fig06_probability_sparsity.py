"""Fig. 6: probability-value distribution of trained attention.

Paper result: over bAbI stories (up to 50 sentences) and 100
questions, only a few probability values are activated; the rest are
close to zero — the observation zero-skipping exploits.
"""

from repro.analysis import probability_distribution
from repro.report import format_percent, format_table


def test_fig06_probability_sparsity(benchmark, report):
    result = benchmark.pedantic(
        probability_distribution,
        kwargs=dict(
            task_id=1,
            num_questions=100,
            max_sentences=20,
            train_examples=300,
            epochs=20,
        ),
        iterations=1,
        rounds=1,
    )

    fractions = result.fraction_above
    report(
        format_table(
            ["statistic", "value"],
            [
                ["test accuracy (sanity)", format_percent(result.test_accuracy)],
                ["entries with p > 0.01", format_percent(fractions[0.01])],
                ["entries with p > 0.05", format_percent(fractions[0.05])],
                ["entries with p > 0.1", format_percent(fractions[0.1])],
                ["entries with p > 0.5", format_percent(fractions[0.5])],
                ["mean per-question peak p", f"{result.mean_max:.3f}"],
                ["mean attention entropy (bits)", f"{result.mean_entropy:.2f}"],
            ],
            title="Fig. 6 — trained p-vector distribution over 100 questions "
            "(paper: only a few values activated, others near zero)",
        )
    )

    benchmark.extra_info["fraction_above_0.1"] = round(fractions[0.1], 4)
    assert fractions[0.1] < 0.5  # sparse: most mass in few entries
    assert result.mean_max > 0.15
