"""Extension bench: confidence-gated early exit (ISSUE 7 acceptance).

Two claims, one artifact:

1. **Threshold sweep** — on the calibrated topical workload
   (:func:`repro.analysis.early_exit_workload`, the locked-attention
   regime where the gate's terminal-state extrapolation is sound), the
   batched engine's wall-clock throughput rises with the gate
   threshold while argmax answer agreement with the full-depth engine
   stays high.  Acceptance: some swept threshold reaches **>= 1.3x**
   batched throughput at **>= 0.98** agreement.  A serving-model p99
   column rides along: each threshold's ``run_batched`` simulation at
   a fixed offered load, where ragged-depth batches charge each hop at
   its expected survivor count.

2. **Overload: shed hops before requests** — two identical batched
   deployments under ~2x-saturation load with bounded queue +
   deadlines; one adds the degradation policy with *only* the
   early-exit lever armed (``hop_step=0``, ``threshold_factor=1`` —
   the zero-skip and hop-count levers stay parked).  The exit-armed
   server must time out strictly fewer questions at equal offered
   load, and its hop accounting must show the freed compute.

Writes ``BENCH_earlyexit.json`` (see :mod:`emit`); ``BENCH_SMOKE``
shrinks the workload for the CI gate.
"""

import time

import numpy as np

from emit import emit, smoke_mode

from repro.analysis import early_exit_workload
from repro.core import EngineConfig, MemNNConfig, MnnFastEngine
from repro.report import format_table
from repro.serving import (
    AdmissionConfig,
    DegradationConfig,
    QaServer,
    QuestionRequest,
    ServerConfig,
    generate_workload,
)

#: Gate thresholds swept (0 = disabled, the full-depth reference).
THRESHOLDS = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)
NS = 2_048 if smoke_mode() else 8_192
NQ = 64 if smoke_mode() else 256
ED, NW, VOCAB, HOPS = 32, 8, 500, 4
REPEATS = 3 if smoke_mode() else 5

#: The ISSUE 7 acceptance point: some threshold must hold both at once.
AGREEMENT_FLOOR = 0.98
SPEEDUP_FLOOR = 1.3

#: Serving-model sweep: batched service at a fixed offered load.
SERVE_WORKERS = 4
SERVE_BATCH = 8
SERVE_DURATION = 0.05 if smoke_mode() else 0.15

#: Overload experiment: offered load as a multiple of saturation.
OVERLOAD_FACTOR = 2.0
OVERLOAD_DURATION = 0.05 if smoke_mode() else 0.15


def _best_of(fn):
    """Min wall-clock seconds over REPEATS after one warm-up call."""
    fn()
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _serving_network() -> MemNNConfig:
    return MemNNConfig(
        embedding_dim=48, num_sentences=20_000, num_questions=1,
        vocab_size=30_000, hops=HOPS,
    )


def _serving_config(exit_threshold: float) -> ServerConfig:
    return ServerConfig(
        network=_serving_network(),
        engine=EngineConfig.batched(SERVE_BATCH, max_wait=1e-3)
        .with_early_exit(exit_threshold),
        workers=SERVE_WORKERS,
    )


def _serving_rate() -> float:
    """Offered load that saturates the full-depth batched pool."""
    server = QaServer(_serving_config(0.0))
    per_question = (
        server.inference_seconds(batch_size=SERVE_BATCH) / SERVE_BATCH
        + server.question_embed_seconds(QuestionRequest(arrival=0.0, words=6))
    )
    return 1.1 * SERVE_WORKERS / per_question


def _engine_sweep():
    """Wall-clock + agreement per threshold on the shared workload."""
    config = MemNNConfig(
        embedding_dim=ED, num_sentences=NS, num_questions=NQ,
        vocab_size=VOCAB, max_words=NW, hops=HOPS,
    )
    weights, stories, questions = early_exit_workload(config, NQ)
    base = EngineConfig()
    rate = _serving_rate()

    def engine_at(threshold: float) -> MnnFastEngine:
        engine = MnnFastEngine(
            config, weights=weights,
            engine_config=base.with_early_exit(threshold),
        )
        engine.store_story(stories)
        return engine

    full_engine = engine_at(0.0)
    full = full_engine.answer(questions)
    full_seconds = _best_of(lambda: full_engine.answer(questions))

    points = []
    for threshold in THRESHOLDS:
        engine = engine_at(threshold)
        result = engine.answer(questions)
        seconds = _best_of(lambda: engine.answer(questions))
        trace = result.hop_trace

        # Serving model: batched service at the same offered load for
        # every threshold — p99 falls as the gate sheds hops.
        workload = generate_workload(
            question_rate=rate, story_rate=0.0,
            duration=SERVE_DURATION, seed=7,
        )
        metrics = QaServer(_serving_config(threshold), seed=9).run_batched(
            workload
        )

        points.append({
            "threshold": threshold,
            "seconds": round(seconds, 6),
            "throughput_qps": round(NQ / seconds, 1),
            "speedup_vs_full": round(full_seconds / seconds, 3),
            "agreement": round(
                float(np.mean(result.answer_ids == full.answer_ids)), 4
            ),
            "mean_hops": round(trace.mean_hops, 3),
            "hops_saved_fraction": round(trace.hops_saved_fraction, 4),
            "exited_fraction": round(
                trace.num_exited / trace.num_questions, 4
            ),
            "depth_histogram": {
                str(k): v for k, v in trace.depth_histogram().items()
            },
            "serve_p99_ms": round(metrics.latency_percentile(99) * 1e3, 4),
            "serve_throughput_qps": round(metrics.throughput("question"), 1),
            "serve_hops_saved_fraction": round(
                metrics.hops_saved_fraction, 4
            ),
        })
    return points


def _overload_pair():
    """Equal offered load, with and without the exit lever armed."""
    network = _serving_network()

    def config(armed: bool) -> ServerConfig:
        return ServerConfig(
            network=network,
            engine=EngineConfig.batched(SERVE_BATCH, max_wait=1e-3),
            workers=SERVE_WORKERS,
            deadline=5e-3,
            admission=AdmissionConfig(max_queue=64),
            degradation=DegradationConfig(
                enabled=armed,
                high_watermark=16,
                low_watermark=4,
                max_level=3,
                # Only the early-exit lever: zero-skip threshold and
                # hop count stay at their configured values.
                threshold_factor=1.0,
                hop_step=0,
                exit_threshold_step=0.15,
            ),
        )

    base = QaServer(config(False))
    per_question = (
        base.inference_seconds(batch_size=SERVE_BATCH) / SERVE_BATCH
        + base.question_embed_seconds(QuestionRequest(arrival=0.0, words=6))
    )
    rate = OVERLOAD_FACTOR * SERVE_WORKERS / per_question
    workload = generate_workload(
        question_rate=rate, story_rate=0.0,
        duration=OVERLOAD_DURATION, seed=11,
    )
    full = QaServer(config(False), seed=9).run_batched(workload)
    gated = QaServer(config(True), seed=9).run_batched(workload)
    return rate, full, gated


def test_early_exit_throughput_at_agreement_floor(benchmark, report):
    sweep = benchmark.pedantic(_engine_sweep, iterations=1, rounds=1)
    rate, full, gated = _overload_pair()

    report(format_table(
        ["threshold", "mean hops", "agree", "speedup", "throughput",
         "serve p99", "serve hops saved"],
        [
            [
                f"{p['threshold']:g}",
                f"{p['mean_hops']:.2f} / {HOPS}",
                f"{p['agreement']:.3f}",
                f"{p['speedup_vs_full']:.2f}x",
                f"{p['throughput_qps']:,.0f}/s",
                f"{p['serve_p99_ms']:.2f} ms",
                f"{p['serve_hops_saved_fraction']:.0%}",
            ]
            for p in sweep
        ],
        title=(
            f"Early-exit threshold sweep (ns={NS:,}, {NQ} questions, "
            f"{HOPS} hops, logit-margin gate)"
        ),
    ))
    report(
        f"\noverload at {rate:,.0f} questions/s "
        f"({OVERLOAD_FACTOR:g}x saturation): "
        f"full-depth {full.timed_out} timeouts / {full.shed} shed; "
        f"exit-armed {gated.timed_out} timeouts / {gated.shed} shed "
        f"(hops saved {gated.hops_saved_fraction:.0%}, "
        f"peak level {gated.degradation_peak_level})"
    )

    qualifying = [
        p for p in sweep
        if p["agreement"] >= AGREEMENT_FLOOR
        and p["speedup_vs_full"] >= SPEEDUP_FLOOR
    ]
    best = max(
        qualifying, key=lambda p: p["speedup_vs_full"], default=None
    )

    emit("earlyexit", {
        "workload": {
            "ns": NS, "nq": NQ, "ed": ED, "nw": NW, "vocab": VOCAB,
            "hops": HOPS, "repeats": REPEATS, "metric": "logit_margin",
        },
        "agreement_floor": AGREEMENT_FLOOR,
        "speedup_floor": SPEEDUP_FLOOR,
        "threshold_sweep": sweep,
        "best_qualifying": best,
        "overload": {
            "offered_rate": rate,
            "load_factor": OVERLOAD_FACTOR,
            "duration": OVERLOAD_DURATION,
            "full_depth": {
                "timed_out": full.timed_out,
                "shed": full.shed,
                "completed": full.completed,
                "p99_ms": round(full.latency_percentile(99) * 1e3, 4),
            },
            "exit_armed": {
                "timed_out": gated.timed_out,
                "shed": gated.shed,
                "completed": gated.completed,
                "p99_ms": round(gated.latency_percentile(99) * 1e3, 4),
                "hops_saved_fraction": round(gated.hops_saved_fraction, 4),
                "degradation_peak_level": gated.degradation_peak_level,
            },
        },
    })
    if best is not None:
        benchmark.extra_info["best_speedup"] = best["speedup_vs_full"]
        benchmark.extra_info["best_agreement"] = best["agreement"]

    # Acceptance 1: some threshold clears both floors at once.
    assert best is not None, (
        f"no swept threshold reached >= {SPEEDUP_FLOOR}x at agreement "
        f">= {AGREEMENT_FLOOR}: "
        + ", ".join(
            f"th={p['threshold']:g} {p['speedup_vs_full']:.2f}x@"
            f"{p['agreement']:.3f}"
            for p in sweep
        )
    )
    # The disabled gate is the reference: agreement exactly 1.
    assert sweep[0]["threshold"] == 0.0
    assert sweep[0]["agreement"] == 1.0

    # Acceptance 2: under overload the exit-armed server sheds hops
    # before requests — strictly fewer timeouts at equal offered load,
    # no extra shedding, and the hop accounting shows the freed work.
    full.reconcile()
    gated.reconcile()
    assert gated.timed_out < full.timed_out, (
        f"exit-armed {gated.timed_out} vs full-depth {full.timed_out}"
    )
    assert gated.shed <= full.shed
    assert gated.degradation_peak_level > 0, "exit lever never engaged"
    assert gated.hops_saved_fraction > 0.0
    assert gated.completed > full.completed
