"""Extension bench: key-value memories + key hashing at KB scale.

The paper motivates MnnFast with large-scale QA over knowledge
sources; this bench measures the KV extension end to end — retrieval
accuracy, the inverted index's candidate reduction, and the wall-clock
effect of scanning only the hashed candidates with the column-based
dataflow.
"""

import pytest

from repro.core.kv import KVMnnFast
from repro.data import generate_movie_kb
from repro.report import format_percent, format_table


@pytest.fixture(scope="module")
def workload():
    kb, questions = generate_movie_kb(num_films=800, seed=1)
    return KVMnnFast(kb), questions


def test_kv_answer_with_hashing(benchmark, workload):
    engine, questions = workload

    def answer_batch():
        return [engine.answer(q.tokens) for q in questions[:50]]

    answers = benchmark(answer_batch)
    correct = sum(
        a.answer_token in q.valid_answers
        for a, q in zip(answers, questions)
    )
    benchmark.extra_info["accuracy"] = correct / len(answers)
    benchmark.extra_info["mean_hashing_reduction"] = round(
        sum(a.hashing_reduction for a in answers) / len(answers), 3
    )
    assert correct / len(answers) > 0.95


def test_kv_answer_full_scan(benchmark, workload):
    engine, questions = workload

    def answer_batch():
        return [
            engine.answer(q.tokens, use_hashing=False) for q in questions[:50]
        ]

    answers = benchmark(answer_batch)
    assert all(a.candidates_scanned == a.total_slots for a in answers)


def test_kv_hashing_summary(benchmark, workload, report):
    engine, questions = workload

    def measure():
        hashed = [engine.answer(q.tokens) for q in questions[:100]]
        return {
            "accuracy": sum(
                a.answer_token in q.valid_answers
                for a, q in zip(hashed, questions)
            ) / len(hashed),
            "reduction": sum(a.hashing_reduction for a in hashed) / len(hashed),
            "slots": hashed[0].total_slots,
        }

    result = benchmark.pedantic(measure, iterations=1, rounds=1)
    report(
        format_table(
            ["metric", "value"],
            [
                ["KB slots", f"{result['slots']:,}"],
                ["retrieval accuracy", format_percent(result["accuracy"])],
                ["key-hashing reduction", format_percent(result["reduction"])],
            ],
            title="KV-MemNN extension — hashing + column-based scan",
        )
    )
    assert result["reduction"] > 0.5
