"""Measured NumPy microbenchmarks of the core algorithms.

These are real wall-clock measurements of this repository's
implementations (not the platform models): the column-based algorithm
and zero-skipping operating on large in-memory networks.  Absolute
times reflect NumPy, not the paper's OpenBLAS testbed — the point is
the relative behaviour (chunking stays competitive while shrinking
intermediates; zero-skipping pays off when the kept set is small).
"""

import numpy as np
import pytest

from repro.core import (
    BaselineMemNN,
    ChunkConfig,
    ColumnMemNN,
    ZeroSkipConfig,
)

NS, ED, NQ = 200_000, 48, 16


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    m_in = rng.normal(size=(NS, ED))
    m_out = rng.normal(size=(NS, ED))
    # Peaked scores so zero-skipping has realistic sparsity to exploit.
    u = m_in[rng.integers(0, NS, size=NQ)] * 2.0
    return m_in, m_out, u


def test_baseline_inference(benchmark, workload):
    m_in, m_out, u = workload
    engine = BaselineMemNN(m_in, m_out)
    result = benchmark(engine.output, u)
    assert result.output.shape == (NQ, ED)


def test_column_inference(benchmark, workload):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    result = benchmark(engine.output, u)
    assert result.output.shape == (NQ, ED)
    # The whole point: chunk-sized intermediates instead of ns-sized.
    assert result.stats.intermediate_bytes <= 2 * NQ * 1000 * 4


def test_column_unstable_paper_mode(benchmark, workload):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    result = benchmark(engine.output, u, stable=False)
    assert np.all(np.isfinite(result.output))


def test_mnnfast_zero_skip(benchmark, workload):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    skip = ZeroSkipConfig(threshold=1e-4, mode="probability")
    result = benchmark(engine.output, u, zero_skip=skip)
    assert result.stats.rows_skipped > 0
