"""Measured NumPy microbenchmarks of the core algorithms.

These are real wall-clock measurements of this repository's
implementations (not the platform models): the column-based algorithm
and zero-skipping operating on large in-memory networks.  Absolute
times reflect NumPy, not the paper's OpenBLAS testbed — the point is
the relative behaviour (chunking stays competitive while shrinking
intermediates; zero-skipping pays off when the kept set is small).
"""

import numpy as np
import pytest

from emit import emit

from repro.core import (
    BaselineMemNN,
    ChunkConfig,
    ColumnMemNN,
    ZeroSkipConfig,
)

NS, ED, NQ = 200_000, 48, 16

#: Headline wall-clock per algorithm, accumulated across tests and
#: re-emitted after each so the final BENCH_algorithms.json carries
#: every series that ran (pytest offers no reliable "last test" hook).
_HEADLINES: dict[str, float] = {}


def _record(name: str, result) -> None:
    _HEADLINES[name] = round(result.elapsed_seconds, 6)
    emit("algorithms", {
        "workload": {"ns": NS, "ed": ED, "nq": NQ},
        "elapsed_seconds": dict(_HEADLINES),
    })


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    m_in = rng.normal(size=(NS, ED))
    m_out = rng.normal(size=(NS, ED))
    # Peaked scores so zero-skipping has realistic sparsity to exploit.
    u = m_in[rng.integers(0, NS, size=NQ)] * 2.0
    return m_in, m_out, u


def test_baseline_inference(benchmark, workload):
    m_in, m_out, u = workload
    engine = BaselineMemNN(m_in, m_out)
    result = benchmark(engine.output, u)
    _record("baseline", result)
    assert result.output.shape == (NQ, ED)


def test_column_inference(benchmark, workload):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    result = benchmark(engine.output, u)
    _record("column", result)
    assert result.output.shape == (NQ, ED)
    # The whole point: chunk-sized intermediates instead of ns-sized.
    assert result.stats.intermediate_bytes <= 2 * NQ * 1000 * 4


def test_column_unstable_paper_mode(benchmark, workload):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    result = benchmark(engine.output, u, stable=False)
    _record("column_unstable", result)
    assert np.all(np.isfinite(result.output))


def test_mnnfast_zero_skip(benchmark, workload):
    m_in, m_out, u = workload
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=1000))
    skip = ZeroSkipConfig(threshold=1e-4, mode="probability")
    result = benchmark(engine.output, u, zero_skip=skip)
    _record("zero_skip", result)
    assert result.stats.rows_skipped > 0
