"""Extension bench: overload robustness via graceful degradation.

Drives the same question stream at 2x the server's saturating rate
through two otherwise-identical deployments — bounded queue + deadline
only ("no-policy") vs the same plus the degradation policy that trades
MnnFast's fidelity knobs (``th_skip``, hop count) for service time.
The degraded server must shed strictly less AND hold a strictly lower
p99 latency; the span trace supplies the per-stage breakdown showing
where the latency went (queueing vs embed vs inference).
"""

from repro.report import (
    format_overload_comparison,
    format_stage_breakdown,
)
from repro.serving import run_overload_experiment

DURATION = 0.05  # simulated seconds of arrivals
LOAD_FACTOR = 2.0


def test_overload_graceful_degradation(benchmark, report):
    result = benchmark.pedantic(
        run_overload_experiment,
        kwargs={"duration": DURATION, "load_factor": LOAD_FACTOR},
        iterations=1,
        rounds=2,
    )
    no_policy, degraded = result.no_policy, result.degraded

    report(
        f"offered {result.offered_rate:,.0f} questions/s = "
        f"{LOAD_FACTOR:g}x the {result.saturating_rate:,.0f}/s saturation "
        "point (4 workers, 3-hop network)\n\n"
        + format_overload_comparison(
            "no-policy", no_policy, "degraded", degraded
        )
        + "\n\n"
        + format_stage_breakdown(
            {"no-policy": no_policy, "degraded": degraded}
        )
    )

    benchmark.extra_info["shed_rate_no_policy"] = round(no_policy.shed_rate, 3)
    benchmark.extra_info["shed_rate_degraded"] = round(degraded.shed_rate, 3)
    benchmark.extra_info["p99_us_no_policy"] = round(
        no_policy.latency_percentile(99) * 1e6, 1
    )
    benchmark.extra_info["p99_us_degraded"] = round(
        degraded.latency_percentile(99) * 1e6, 1
    )

    # The acceptance bar: degradation must beat plain shedding on both
    # axes at once — fewer requests dropped AND a lower tail.
    assert degraded.shed_rate < no_policy.shed_rate
    assert degraded.latency_percentile(99) < no_policy.latency_percentile(99)
    # The policy actually engaged (and both runs reconcile).
    assert degraded.degradation_peak_level > 0
    no_policy.reconcile()
    degraded.reconcile()
    # The stage breakdown localizes the win: queueing time shrank.
    assert (
        degraded.stage_breakdown("question")["queueing"]
        < no_policy.stage_breakdown("question")["queueing"]
    )
