"""Fig. 14: effectiveness of the embedding cache in FPGA-based MnnFast.

Paper results: with ed=256 and COCA word frequencies, caches of
32/64/128/256 KB reduce the embedding-operation latency by
34.5/41.7/47.7/53.1% versus no cache.
"""

from repro.analysis import embedding_cache_effectiveness
from repro.report import format_percent, format_table

PAPER = {32: 0.345, 64: 0.417, 128: 0.477, 256: 0.531}


def test_fig14_embedding_cache(benchmark, report):
    reductions = benchmark.pedantic(
        embedding_cache_effectiveness,
        kwargs=dict(num_lookups=50_000),
        iterations=1,
        rounds=2,
    )

    rows = [
        [
            f"{size // 1024} KB",
            format_percent(value),
            format_percent(PAPER[size // 1024]),
        ]
        for size, value in reductions.items()
    ]
    report(
        format_table(
            ["cache size", "latency reduction", "paper"],
            rows,
            title="Fig. 14 — embedding-cache latency reduction vs 'No Cache' "
            "(Zipfian COCA-substitute stream, direct-mapped cache, ed=256)",
        )
    )

    benchmark.extra_info["reductions"] = {
        size // 1024: round(value, 3) for size, value in reductions.items()
    }
    values = list(reductions.values())
    assert values == sorted(values)  # bigger cache, bigger win
    for size, value in reductions.items():
        assert abs(value - PAPER[size // 1024]) < 0.08
