"""Extension bench: sharded lazy-softmax attention (§3.1 scale-out).

Sweeps the shard count K and both shard policies over one attention
pass, verifying the exact-merge property (sharded output equals
single-shard column mode to 1e-10) while measuring the fan-out's
numerical cost and the per-shard work split.
"""

import numpy as np

from repro.core import ChunkConfig, ColumnMemNN, ShardedMemNN
from repro.report import format_table

NS, ED, NQ = 20_000, 48, 16
SHARD_COUNTS = (1, 2, 4, 8)


def _problem():
    rng = np.random.default_rng(7)
    m_in = rng.normal(size=(NS, ED))
    m_out = rng.normal(size=(NS, ED))
    u = rng.normal(size=(NQ, ED))
    return m_in, m_out, u


def test_sharded_attention_exact_merge(benchmark, report):
    m_in, m_out, u = _problem()
    chunk = ChunkConfig(1000)
    reference = ColumnMemNN(m_in, m_out, chunk=chunk).output(u)

    def sweep():
        results = {}
        for policy in ("contiguous", "strided"):
            for shards in SHARD_COUNTS:
                solver = ShardedMemNN(
                    m_in, m_out, num_shards=shards, policy=policy, chunk=chunk
                )
                results[(policy, shards)] = solver.output(u)
        return results

    results = benchmark(sweep)

    rows = []
    worst = 0.0
    for (policy, shards), result in results.items():
        delta = float(np.abs(result.output - reference.output).max())
        worst = max(worst, delta)
        shard_rows = [
            s.rows_computed // NQ for s in result.tier_stats()["shards"]
        ]
        rows.append([
            policy,
            shards,
            f"{delta:.2e}",
            f"{min(shard_rows)}..{max(shard_rows)}",
            f"{result.stats.flops / reference.stats.flops:.4f}",
        ])
    report(
        format_table(
            ["policy", "K", "max |Δ| vs column", "rows/shard", "flops ratio"],
            rows,
            title="Sharded attention — exact merge across K and policy "
            "(paper §3.1: partials combine with negligible overhead)",
        )
    )

    benchmark.extra_info["worst_abs_delta"] = worst
    # The merge is exact, not approximate: machine-epsilon agreement.
    assert worst < 1e-10
    # The merge overhead is negligible next to the O(ns*ed) scan.
    eight = results[("contiguous", 8)]
    assert eight.stats.flops < reference.stats.flops * 1.01
