"""Ablation: embedding-cache geometry and the bypass alternative.

DESIGN.md §5: the paper builds the embedding cache direct-mapped
(§4.2) and argues against plain cache bypassing (§3.3).  This ablation
quantifies both choices: associativity vs. hit rate, and the bypass
path's latency cost.
"""

from repro.analysis import embedding_cache_effectiveness
from repro.core.config import EmbeddingCacheConfig
from repro.data import ZipfCorpus
from repro.memsim import EmbeddingCache
from repro.perf import FpgaModel
from repro.report import format_percent, format_table


def test_associativity_ablation(benchmark, report):
    """Direct-mapped (paper) vs 2-way and 4-way at equal capacity."""

    def sweep():
        return {
            ways: embedding_cache_effectiveness(
                num_lookups=30_000,
                sizes_bytes=(64 * 1024,),
                associativity=ways,
            )[64 * 1024]
            for ways in (1, 2, 4)
        }

    reductions = benchmark(sweep)
    report(
        format_table(
            ["associativity", "latency reduction @64KB"],
            [[ways, format_percent(value)] for ways, value in reductions.items()],
            title="Ablation — embedding-cache associativity "
            "(paper builds direct-mapped)",
        )
    )
    benchmark.extra_info["reduction_by_ways"] = {
        k: round(v, 3) for k, v in reductions.items()
    }
    # Associativity can only help hit rate at equal capacity.
    assert reductions[4] >= reductions[1] - 0.02


def test_bypass_vs_dedicated_cache(benchmark, report):
    """§3.3: bypassing protects the LLC but pins every lookup at DRAM
    latency; the dedicated cache removes both problems."""

    def run():
        corpus = ZipfCorpus(vocab_size=22_000, exponent=1.15, shuffle_ids=False)
        words = corpus.sample(20_000)
        model = FpgaModel()
        no_cache = model.embedding_latency(words)  # == bypass-to-DRAM cost
        cache = EmbeddingCache(
            EmbeddingCacheConfig(size_bytes=128 * 1024, embedding_dim=256)
        )
        cached = model.embedding_latency(words, cache=cache)
        return no_cache.total_seconds, cached.total_seconds, cached.hit_rate

    bypass_s, cached_s, hit_rate = benchmark(run)
    report(
        format_table(
            ["strategy", "embedding latency", "hit rate"],
            [
                ["bypass (non-temporal to DRAM)", f"{bypass_s * 1e3:.2f} ms", "-"],
                ["dedicated embedding cache", f"{cached_s * 1e3:.2f} ms",
                 format_percent(hit_rate)],
            ],
            title="Ablation — cache bypassing vs the dedicated embedding cache",
        )
    )
    assert cached_s < bypass_s
