"""Fig. 4: inference performance under co-executed embedding threads.

Paper result: embedding threads contend with inference threads for the
shared memory system; the degradation grows with the number of
embedding threads and with the scale of the MemNN.  MnnFast's
embedding cache (§3.3) removes the contention entirely.
"""

from repro.analysis import contention_sweep
from repro.report import format_table


def test_fig04_cache_contention(benchmark, report):
    grid = benchmark(
        contention_sweep, thread_counts=(1, 2, 4, 8), mode="shared"
    )
    isolated = contention_sweep(thread_counts=(8,), mode="embedding_cache")

    rows = [
        [scale] + [f"{series[k]:.2f}" for k in (1, 2, 4, 8)]
        + [f"{isolated[scale][8]:.2f}"]
        for scale, series in grid.items()
    ]
    report(
        format_table(
            ["scale", "1 emb", "2 emb", "4 emb", "8 emb", "8 emb + emb-cache"],
            rows,
            title="Fig. 4 — relative inference performance vs co-located "
            "embedding threads (1.0 = no embedding traffic)",
        )
    )

    benchmark.extra_info["relative_perf_8_threads"] = {
        scale: round(series[8], 3) for scale, series in grid.items()
    }
    for scale, series in grid.items():
        assert series[8] < 1.0  # contention exists
        assert series[8] <= series[1] + 1e-9  # grows with threads
        assert isolated[scale][8] > series[8]  # the fix works
