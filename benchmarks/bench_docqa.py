"""Document-QA retrieval quality: qrels-gated approximation sweep.

The repo's other BENCH artifacts gate *performance* (wall-clock,
bytes, scaling); this one gates *retrieval quality* (ISSUE 10).  A
deterministic synthetic document corpus with planted supporting spans
(:func:`repro.docqa.corpus.synthetic_corpus`) and queries lifted from
those spans (:func:`repro.docqa.queries.generate_queries`) give ground
truth by construction; the engine configs under test are scored as
retrievers against the qrels ledger
(:mod:`repro.docqa.evaluate` — recall@k, MRR, span-hit rate,
final-hop attention mass on relevant rows).

The sweep mirrors the serving stack's approximation levers:

* **exact** — the full MnnFast column path (the quality ceiling);
* **top-k** — the IVF retrieval tier, with ``nprobe`` walked up a
  calibration ladder (ANN-benchmarks style) until supporting-span
  recall@k holds the floor; the artifact records the whole ladder and
  the calibrated operating point;
* **early exit** — confidence-gated adaptive depth; queries that
  retire early are ranked by their *final executed hop's* attention,
  so the gate genuinely changes rankings and the span-hit comparison
  against full depth is a real measurement.

A traffic section exercises the workload generator: session-shaped
arrivals must fill batches better than rate-matched uniform arrivals
(:func:`repro.batching.batcher.form_batches`), and document-affine
sessions routed by cache affinity must beat round-robin on chunk hit
rate (:class:`repro.cluster.simulation.ClusterSim`).

Acceptance: top-k recall@k >= 0.95 at the calibrated ``nprobe``;
early-exit span-hit within 0.01 of full depth while actually exiting
early (mean hops < configured); every config scored every query.

Writes ``BENCH_docqa.json`` (see :mod:`emit`); ``BENCH_SMOKE`` shrinks
the corpus for the CI gate.
"""

import numpy as np

from emit import emit, smoke_mode

from repro.batching.batcher import form_batches
from repro.cluster import ClusterConfig, ClusterSim
from repro.core import EngineConfig
from repro.core.config import BatchConfig
from repro.docqa import (
    docqa_network,
    docqa_weights,
    docqa_workload,
    evaluate_retriever_runs,
    generate_queries,
    run_retriever,
    synthetic_corpus,
    to_cluster_requests,
)
from repro.core.engine import MnnFastEngine
from repro.report import format_table

NUM_DOCS = 16 if smoke_mode() else 32
ROWS_PER_DOC = 64 if smoke_mode() else 128
NUM_QUERIES = 24 if smoke_mode() else 64
#: ed=64 at full size: 4096 random BoW rows need the dimensions to
#: separate (same sizing note as bench_topk_recall.py) — at ed=32 the
#: max noise inner product overtakes the supporting row's self-score
#: and even the exact ranking loses the span.
ED = 32 if smoke_mode() else 64
NW, HOPS = 8, 2
K = 4
KMEANS_ITERS = 12  # align clusters to documents; build is off-gate
#: Peaked hop-1 attention (cf. Fig. 6) with a damped output embedding
#: (the trained-model surrogate — see repro.docqa.evaluate.docqa_weights).
WEIGHT_SCALE, OUT_SCALE = 0.35, 0.2
CORPUS_SEED, QUERY_SEED, WEIGHT_SEED = 3, 5, 7
CHUNK_SIZE = 256

#: Calibration ladder: smallest nprobe holding the recall floor wins.
NPROBE_LADDER = (2, 4, 8, 16, 32)
RECALL_FLOOR = 0.95
#: Early exit may move span-hit rate at most this far from full depth.
SPAN_HIT_TOLERANCE = 0.01
EXIT_THRESHOLD = 0.8

#: Traffic section: session shape and cluster routing.
QUESTIONS_PER_SESSION = 4
SESSION_RATE = 20.0
ROUTING_CHUNK = 16


def _evaluate(config, network, weights, corpus, queries, qrels):
    """Score one engine config as a retriever over the full query set."""
    engine = MnnFastEngine(network, weights=weights, engine_config=config)
    try:
        engine.store_story(corpus.rows)
        runs = run_retriever(engine, queries)
    finally:
        engine.close()
    return evaluate_retriever_runs(runs, qrels, k=K)


def _metrics(evaluation) -> dict:
    return {
        "recall_at_k": round(evaluation.recall_at_k, 4),
        "mrr": round(evaluation.mrr, 4),
        "span_hit_rate": round(evaluation.span_hit_rate, 4),
        "mean_attention_mass": round(evaluation.mean_attention_mass, 4),
        "mean_hops": round(evaluation.mean_hops, 3),
        "mean_candidate_fraction": round(
            evaluation.mean_candidate_fraction, 4
        ),
        "runs": evaluation.num_queries,
    }


def _measure() -> dict:
    corpus = synthetic_corpus(
        num_docs=NUM_DOCS, rows_per_doc=ROWS_PER_DOC, max_words=NW,
        seed=CORPUS_SEED,
    )
    queries, qrels = generate_queries(
        corpus, num_queries=NUM_QUERIES, seed=QUERY_SEED
    )
    network = docqa_network(corpus, embedding_dim=ED, hops=HOPS)
    weights = docqa_weights(
        network, seed=WEIGHT_SEED, scale=WEIGHT_SCALE, out_scale=OUT_SCALE
    )
    base = EngineConfig.mnnfast(chunk_size=CHUNK_SIZE)

    exact = _evaluate(base, network, weights, corpus, queries, qrels)

    # --- calibrate nprobe to the supporting-span recall floor -----------
    ladder = []
    topk = None
    calibrated_nprobe = None
    for nprobe in NPROBE_LADDER:
        cfg = base.with_topk(
            nprobe=nprobe, min_rows=0, record_candidates=True,
            kmeans_iters=KMEANS_ITERS,
        )
        evaluation = _evaluate(cfg, network, weights, corpus, queries, qrels)
        ladder.append({"nprobe": nprobe, **_metrics(evaluation)})
        if evaluation.recall_at_k >= RECALL_FLOOR:
            topk, calibrated_nprobe = evaluation, nprobe
            break
    if topk is None:
        raise AssertionError(
            f"no nprobe in {NPROBE_LADDER} holds recall@{K} >= "
            f"{RECALL_FLOOR}; ladder: {ladder}"
        )

    early_exit = _evaluate(
        base.with_early_exit(EXIT_THRESHOLD),
        network, weights, corpus, queries, qrels,
    )

    # --- traffic shapes -------------------------------------------------
    policy = BatchConfig(max_batch_size=8, max_wait=0.02)
    sessioned = docqa_workload(
        queries, session_rate=SESSION_RATE,
        questions_per_session=QUESTIONS_PER_SESSION,
        intra_session_gap=0.002, num_sessions=32, seed=11,
    )
    uniform = docqa_workload(
        queries, session_rate=SESSION_RATE * QUESTIONS_PER_SESSION,
        questions_per_session=1, num_sessions=len(sessioned), seed=11,
    )
    fills = {}
    for label, stream in (("sessioned", sessioned), ("uniform", uniform)):
        batches = form_batches(stream, policy)
        fills[label] = round(
            sum(b.size for b in batches) / (len(batches) * policy.max_batch_size),
            4,
        )

    chunk_bytes = 2 * ROUTING_CHUNK * ED * 8
    doc_chunks = ROWS_PER_DOC // ROUTING_CHUNK
    cluster_config = ClusterConfig(
        num_rows=corpus.num_rows, embedding_dim=ED, chunk_size=ROUTING_CHUNK,
        replicas=4, resident_bytes=3 * doc_chunks * chunk_bytes,
        disk_bandwidth=2e8,
    )
    cluster_stream = docqa_workload(
        queries, session_rate=150.0,
        questions_per_session=QUESTIONS_PER_SESSION,
        num_sessions=250, seed=19,
    )
    cluster_requests = to_cluster_requests(
        cluster_stream, corpus, chunk_size=ROUTING_CHUNK,
        total_chunks=cluster_config.total_chunks,
    )
    hit_rates = {
        routing: round(
            ClusterSim(cluster_config, policy=routing)
            .run(cluster_requests)
            .chunk_hit_rate,
            4,
        )
        for routing in ("round_robin", "cache_affinity")
    }

    return {
        "corpus": corpus,
        "exact": exact,
        "topk": topk,
        "early_exit": early_exit,
        "ladder": ladder,
        "calibrated_nprobe": calibrated_nprobe,
        "batch_fill": fills,
        "chunk_hit_rate": hit_rates,
    }


def test_docqa_quality_gates(benchmark, report):
    result = benchmark.pedantic(_measure, iterations=1, rounds=1)
    corpus = result["corpus"]
    evaluations = {
        name: result[name] for name in ("exact", "topk", "early_exit")
    }

    report(format_table(
        ["config", f"recall@{K}", "MRR", "span hit", "attn mass",
         "mean hops", "rows examined"],
        [
            [
                name,
                f"{ev.recall_at_k:.3f}",
                f"{ev.mrr:.3f}",
                f"{ev.span_hit_rate:.3f}",
                f"{ev.mean_attention_mass:.3f}",
                f"{ev.mean_hops:.2f}",
                f"{ev.mean_candidate_fraction:.3f}",
            ]
            for name, ev in evaluations.items()
        ],
        title=(
            f"Document-QA qrels sweep — {corpus.num_docs} docs x "
            f"{ROWS_PER_DOC} rows, {NUM_QUERIES} queries, top-k "
            f"calibrated to nprobe={result['calibrated_nprobe']}"
        ),
    ))
    report(
        f"batch fill: sessioned {result['batch_fill']['sessioned']:.3f} vs "
        f"uniform {result['batch_fill']['uniform']:.3f}; chunk hit-rate: "
        f"affinity {result['chunk_hit_rate']['cache_affinity']:.3f} vs "
        f"round-robin {result['chunk_hit_rate']['round_robin']:.3f}"
    )

    span_hit_delta = abs(
        evaluations["early_exit"].span_hit_rate
        - evaluations["exact"].span_hit_rate
    )
    emit("docqa", {
        "workload": {
            "num_docs": corpus.num_docs, "rows_per_doc": ROWS_PER_DOC,
            "num_rows": corpus.num_rows, "num_queries": NUM_QUERIES,
            "ed": ED, "nw": NW, "hops": HOPS, "k": K,
            "weight_scale": WEIGHT_SCALE, "out_scale": OUT_SCALE,
            "chunk_size": CHUNK_SIZE,
            "exit_threshold": EXIT_THRESHOLD,
            "nprobe_ladder": list(NPROBE_LADDER),
        },
        "gates": {
            "recall_floor": RECALL_FLOOR,
            "span_hit_tolerance": SPAN_HIT_TOLERANCE,
        },
        "configs": {
            name: _metrics(ev) for name, ev in evaluations.items()
        },
        "calibration": result["ladder"],
        "calibrated_nprobe": result["calibrated_nprobe"],
        "span_hit_delta": round(span_hit_delta, 4),
        "traffic": {
            "batch_fill": result["batch_fill"],
            "chunk_hit_rate": result["chunk_hit_rate"],
        },
    })
    benchmark.extra_info["topk_recall_at_k"] = round(
        evaluations["topk"].recall_at_k, 4
    )
    benchmark.extra_info["span_hit_delta"] = round(span_hit_delta, 4)

    # Acceptance: every config scored every query; the calibrated top-k
    # point holds the recall floor while examining a strict subset of
    # memory; early exit stays within the span-hit tolerance of full
    # depth while actually exiting early; the workload's locality
    # structure is real (sessions fill batches, affinity beats
    # round-robin).
    for name, evaluation in evaluations.items():
        assert evaluation.num_queries == NUM_QUERIES, (
            f"{name} scored {evaluation.num_queries}/{NUM_QUERIES} queries"
        )
    assert evaluations["topk"].recall_at_k >= RECALL_FLOOR
    assert evaluations["topk"].mean_candidate_fraction < 1.0, (
        "calibrated top-k examined the whole memory — vacuous"
    )
    assert span_hit_delta <= SPAN_HIT_TOLERANCE, (
        f"early-exit span-hit moved {span_hit_delta:.4f} from full depth"
    )
    assert evaluations["early_exit"].mean_hops < HOPS, (
        "early-exit gate never fired — the span-hit comparison is vacuous"
    )
    assert result["batch_fill"]["sessioned"] > result["batch_fill"]["uniform"]
    assert (
        result["chunk_hit_rate"]["cache_affinity"]
        >= result["chunk_hit_rate"]["round_robin"]
    )
