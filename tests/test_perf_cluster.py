"""Tests for the multi-node scale-out model (§5.3)."""

import pytest

from repro.core.config import GPU_CONFIG
from repro.perf.cluster import ClusterModel, ClusterRunResult


@pytest.fixture
def cluster():
    return ClusterModel()


class TestClusterScaling:
    def test_more_nodes_faster(self, cluster):
        curve = cluster.speedup_curve(GPU_CONFIG, node_counts=(1, 2, 4))
        assert curve[1] < curve[2] < curve[4]

    def test_nodes_escape_pcie_contention(self, cluster):
        """Two 2-GPU nodes beat one 4-GPU node: each node has its own
        host PCIe (the paper's isolation argument)."""
        one_node = cluster.run(GPU_CONFIG, nodes=1, gpus_per_node=4)
        two_nodes = cluster.run(GPU_CONFIG, nodes=2, gpus_per_node=2)
        assert two_nodes.total_seconds < one_node.total_seconds

    def test_sync_overhead_negligible_at_paper_scale(self, cluster):
        """Paper: communication overhead for synchronization is
        negligible because partials are O(nq x ed) while the memory
        scan is O(ns) — true in the large-ns regime the paper targets."""
        large = GPU_CONFIG.scaled(10_000_000)
        result = cluster.run(large, nodes=8, gpus_per_node=4)
        assert result.sync_fraction < 0.01

    def test_sync_fraction_shrinks_with_database_size(self, cluster):
        small = cluster.run(GPU_CONFIG.scaled(100_000), nodes=8).sync_fraction
        large = cluster.run(GPU_CONFIG.scaled(10_000_000), nodes=8).sync_fraction
        assert large < small

    def test_partial_payload_is_tiny(self, cluster):
        # nq=32, ed=64: (32*64 + 64) * 4 bytes ~ 8 KB, not megabytes.
        assert cluster.partial_bytes(GPU_CONFIG) < 16 * 1024

    def test_reduce_time_grows_logarithmically(self, cluster):
        reduce2 = cluster.reduce_seconds(GPU_CONFIG, 2)
        reduce8 = cluster.reduce_seconds(GPU_CONFIG, 8)
        assert reduce8 == pytest.approx(3 * reduce2)

    def test_single_node_needs_no_reduce(self, cluster):
        assert cluster.reduce_seconds(GPU_CONFIG, 1) == 0.0
        assert cluster.run(GPU_CONFIG, nodes=1).reduce_seconds == 0.0

    def test_total_gpus(self, cluster):
        result = cluster.run(GPU_CONFIG, nodes=3, gpus_per_node=2)
        assert result.total_gpus == 6

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            cluster.run(GPU_CONFIG, nodes=0)
        with pytest.raises(ValueError):
            ClusterModel(network_bandwidth=0)

    def test_run_rejects_bad_gpus_per_node(self, cluster):
        """The guard fires at the model boundary with a clear message,
        not deep inside GpuModel's per-GPU sharding."""
        with pytest.raises(ValueError, match="gpus_per_node"):
            cluster.run(GPU_CONFIG, nodes=2, gpus_per_node=0)

    def test_result_validates_at_construction(self):
        with pytest.raises(ValueError, match="nodes"):
            ClusterRunResult(
                nodes=0, gpus_per_node=4,
                compute_seconds=1.0, reduce_seconds=0.0,
            )
        with pytest.raises(ValueError, match="gpus_per_node"):
            ClusterRunResult(
                nodes=1, gpus_per_node=0,
                compute_seconds=1.0, reduce_seconds=0.0,
            )
