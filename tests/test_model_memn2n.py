"""Tests for the trainable MemN2N: gradients, invariants, learning."""

import numpy as np
import pytest

from repro.model import (
    Adagrad,
    MemN2N,
    MemN2NConfig,
    SGD,
    Trainer,
    clip_by_global_norm,
    train_on_task,
)
from repro.model.layers import (
    attention_softmax,
    attention_softmax_backward,
    embed_sum,
    embed_sum_backward,
    softmax_cross_entropy,
)


@pytest.fixture
def tiny_model():
    cfg = MemN2NConfig(
        vocab_size=10, embedding_dim=5, hops=2, max_sentences=4, max_words=3
    )
    return MemN2N(cfg, rng=np.random.default_rng(7))


@pytest.fixture
def tiny_batch(rng):
    stories = rng.integers(0, 10, size=(3, 4, 3))
    questions = rng.integers(1, 10, size=(3, 3))
    answers = rng.integers(1, 10, size=3)
    return stories, questions, answers


class TestLayers:
    def test_embed_sum_ignores_padding(self, rng):
        emb = rng.normal(size=(6, 4))
        full = embed_sum(emb, np.array([[1, 2, 0]]))
        short = embed_sum(emb, np.array([[1, 2]]))
        np.testing.assert_allclose(full, short)

    def test_embed_sum_backward_scatters(self, rng):
        emb = rng.normal(size=(6, 4))
        grad_emb = np.zeros_like(emb)
        tokens = np.array([[1, 1, 2]])
        grad_out = np.ones((1, 4))
        embed_sum_backward(grad_out, grad_emb, tokens)
        np.testing.assert_allclose(grad_emb[1], 2.0)  # word 1 used twice
        np.testing.assert_allclose(grad_emb[2], 1.0)
        np.testing.assert_allclose(grad_emb[0], 0.0)  # pad pinned

    def test_attention_softmax_masks_invalid(self, rng):
        scores = rng.normal(size=(2, 5))
        valid = np.array([[True, True, False, False, False]] * 2)
        p = attention_softmax(scores, valid)
        assert (p[:, 2:] == 0).all()
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_attention_softmax_backward_orthogonal_to_ones(self, rng):
        # Softmax gradients sum to zero along the slot axis.
        scores = rng.normal(size=(2, 5))
        valid = np.ones((2, 5), dtype=bool)
        p = attention_softmax(scores, valid)
        g = attention_softmax_backward(rng.normal(size=(2, 5)), p)
        np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, grad, probs = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6
        np.testing.assert_allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_gradient_direction(self):
        logits = np.zeros((1, 3))
        _, grad, _ = softmax_cross_entropy(logits, np.array([1]))
        assert grad[0, 1] < 0  # push the target up
        assert grad[0, 0] > 0 and grad[0, 2] > 0


class TestGradients:
    def test_numerical_gradient_check(self, tiny_model, tiny_batch):
        stories, questions, answers = tiny_batch
        loss, grads, _ = tiny_model.loss_and_grads(stories, questions, answers)
        params = tiny_model.parameters()
        rng = np.random.default_rng(0)
        eps = 1e-6
        for p_index, param in enumerate(params):
            for _ in range(4):
                flat = int(rng.integers(param.size))
                idx = np.unravel_index(flat, param.shape)
                if p_index < len(tiny_model.embeddings) and idx[0] == 0:
                    continue  # pad row is pinned
                original = param[idx]
                param[idx] = original + eps
                up, _, _ = tiny_model.loss_and_grads(stories, questions, answers)
                param[idx] = original - eps
                down, _, _ = tiny_model.loss_and_grads(stories, questions, answers)
                param[idx] = original
                numeric = (up - down) / (2 * eps)
                analytic = grads[p_index][idx]
                assert numeric == pytest.approx(analytic, rel=1e-4, abs=1e-7)

    def test_pad_row_gradient_is_zero(self, tiny_model, tiny_batch):
        stories, questions, answers = tiny_batch
        _, grads, _ = tiny_model.loss_and_grads(stories, questions, answers)
        for grad in grads[: len(tiny_model.embeddings)]:
            np.testing.assert_array_equal(grad[0], 0.0)


class TestForward:
    def test_attention_is_distribution(self, tiny_model, tiny_batch):
        stories, questions, _ = tiny_batch
        probs = tiny_model.attention(stories, questions)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_empty_slots_get_zero_attention(self, tiny_model, rng):
        stories = rng.integers(1, 10, size=(2, 4, 3))
        stories[:, 2:] = 0  # last two slots empty
        questions = rng.integers(1, 10, size=(2, 3))
        probs = tiny_model.attention(stories, questions)
        assert (probs[:, 2:] == 0).all()

    def test_zero_skip_threshold_zero_is_identity(self, tiny_model, tiny_batch):
        stories, questions, _ = tiny_batch
        a = tiny_model.forward(stories, questions, skip_threshold=0.0)
        b = tiny_model.forward(stories, questions)
        np.testing.assert_allclose(a.logits, b.logits)
        assert a.kept_fraction == 1.0

    def test_zero_skip_reduces_kept_fraction(self, tiny_model, tiny_batch):
        stories, questions, _ = tiny_batch
        state = tiny_model.forward(stories, questions, skip_threshold=0.3)
        assert state.kept_fraction < 1.0

    def test_hop_count_changes_output(self, tiny_batch, rng):
        stories, questions, _ = tiny_batch
        logits = {}
        for hops in (1, 3):
            cfg = MemN2NConfig(
                vocab_size=10, embedding_dim=5, hops=hops,
                max_sentences=4, max_words=3,
            )
            model = MemN2N(cfg, rng=np.random.default_rng(7))
            logits[hops] = model.forward(stories, questions).logits
        assert not np.allclose(logits[1], logits[3])

    def test_input_validation(self, tiny_model, rng):
        with pytest.raises(ValueError, match="stories"):
            tiny_model.forward(np.zeros((2, 3)), np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError, match="max_sentences"):
            tiny_model.forward(
                np.zeros((1, 9, 3), dtype=int), np.zeros((1, 3), dtype=int)
            )
        with pytest.raises(ValueError, match="vocabulary"):
            tiny_model.forward(
                np.full((1, 2, 3), 99), np.zeros((1, 3), dtype=int)
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemN2NConfig(vocab_size=1)
        with pytest.raises(ValueError):
            MemN2NConfig(vocab_size=10, hops=0)


class TestOptim:
    def test_clip_noop_below_norm(self, rng):
        grads = [np.full(4, 0.1)]
        norm = clip_by_global_norm(grads, max_norm=100.0)
        np.testing.assert_allclose(grads[0], 0.1)
        assert norm == pytest.approx(0.2)

    def test_clip_scales_above_norm(self):
        grads = [np.full(4, 10.0)]
        clip_by_global_norm(grads, max_norm=1.0)
        total = np.sqrt((grads[0] ** 2).sum())
        assert total == pytest.approx(1.0)

    def test_sgd_annealing(self):
        sgd = SGD(learning_rate=0.1, anneal_every=2, anneal_factor=0.5)
        assert sgd.current_lr == pytest.approx(0.1)
        sgd.end_epoch()
        sgd.end_epoch()
        assert sgd.current_lr == pytest.approx(0.05)

    def test_sgd_moves_against_gradient(self):
        sgd = SGD(learning_rate=1.0)
        params = [np.array([1.0])]
        sgd.step(params, [np.array([0.5])])
        assert params[0][0] == pytest.approx(0.5)

    def test_adagrad_adapts_per_parameter(self):
        ada = Adagrad(learning_rate=1.0)
        params = [np.array([0.0, 0.0])]
        ada.step(params, [np.array([10.0, 0.1])])
        # Both coordinates move by ~lr * sign(g) on the first step.
        assert params[0][0] == pytest.approx(-1.0, rel=1e-3)
        assert params[0][1] == pytest.approx(-1.0, rel=1e-2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SGD().step([np.zeros(2)], [])


class TestTraining:
    def test_loss_decreases_on_task1(self):
        trainer, _, _, result = train_on_task(
            1, train_examples=120, test_examples=30, epochs=10
        )
        assert result.losses[-1] < result.losses[0]

    def test_learns_single_supporting_fact(self):
        # Full budget: task 1 should be learned well above chance.
        trainer, test, vocab, result = train_on_task(
            1, train_examples=400, test_examples=80, epochs=40
        )
        assert result.train_accuracy > 0.9
        assert result.test_accuracy > 0.6

    def test_zero_skip_evaluation_consistency(self):
        trainer, test, _, _ = train_on_task(
            1, train_examples=200, test_examples=50, epochs=15
        )
        evaluation = trainer.evaluate_zero_skip(
            test["stories"], test["questions"], test["answers"], threshold=0.1
        )
        assert 0.0 <= evaluation.computation_reduction < 1.0
        assert 0.0 <= evaluation.accuracy <= 1.0
        assert evaluation.accuracy_loss >= 0.0

    def test_trainer_validates_batch_size(self, tiny_model):
        with pytest.raises(ValueError):
            Trainer(tiny_model, batch_size=0)
