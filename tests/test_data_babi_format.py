"""Tests for the bAbI file-format serializer/parser."""

import pytest

from repro.data import generate_task
from repro.data.babi_format import (
    dump_examples,
    dumps_examples,
    load_examples,
    loads_examples,
)

REAL_STYLE = """\
1 Mary moved to the bathroom.
2 John went to the hallway.
3 Where is Mary?\tbathroom\t1
4 Daniel went back to the hallway.
5 Sandra moved to the garden.
6 Where is Daniel?\thallway\t4
1 Sandra travelled to the office.
2 Where is Sandra?\toffice\t1
"""


class TestRoundTrip:
    @pytest.mark.parametrize("task_id", [1, 2, 15, 19])
    def test_dump_then_load_preserves_content(self, task_id):
        original = generate_task(task_id, 15, seed=4)
        text = dumps_examples(original)
        parsed = loads_examples(text, task_id=task_id)
        assert len(parsed) == len(original)
        for a, b in zip(original, parsed):
            assert b.story == a.story
            assert b.question == a.question
            assert b.answer == a.answer
            assert b.supporting == sorted(set(a.supporting)) or \
                b.supporting == a.supporting
            assert b.task_id == task_id

    def test_file_round_trip(self, tmp_path):
        examples = generate_task(1, 5, seed=0)
        path = tmp_path / "task1.txt"
        dump_examples(examples, path)
        parsed = load_examples(path, task_id=1)
        assert [e.answer for e in parsed] == [e.answer for e in examples]

    def test_empty_input(self):
        assert dumps_examples([]) == ""
        assert loads_examples("") == []


class TestRealFormatParsing:
    def test_multiple_questions_per_story(self):
        examples = loads_examples(REAL_STYLE)
        assert len(examples) == 3
        first, second, third = examples
        # The first question sees only the two sentences before it.
        assert len(first.story) == 2
        assert first.answer == "bathroom"
        # The second question's story includes everything so far
        # (question lines are not story sentences).
        assert len(second.story) == 4
        assert second.answer == "hallway"
        # Line numbering restarting at 1 begins a fresh story.
        assert len(third.story) == 1
        assert third.answer == "office"

    def test_supporting_fact_mapping_skips_question_lines(self):
        examples = loads_examples(REAL_STYLE)
        second = examples[1]
        # File line 4 is story index 2 (line 3 was a question).
        assert second.supporting == [2]
        assert second.story[2] == ["daniel", "went", "back", "to", "the", "hallway"]

    def test_punctuation_and_case_normalized(self):
        examples = loads_examples(REAL_STYLE)
        assert examples[0].story[0] == ["mary", "moved", "to", "the", "bathroom"]
        assert examples[0].question == ["where", "is", "mary"]

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            loads_examples("no number here\n")

    def test_dangling_supporting_fact_rejected(self):
        bad = "1 Mary is here.\n2 Where is Mary?\there\t9\n"
        with pytest.raises(ValueError, match="supporting"):
            loads_examples(bad)

    def test_question_without_support_field(self):
        text = "1 Mary is here.\n2 Where is Mary?\there\n"
        examples = loads_examples(text)
        assert examples[0].supporting == []


class TestTrainingOnParsedData:
    def test_vectorize_parsed_examples(self):
        from repro.data import build_vocabulary, vectorize

        examples = loads_examples(REAL_STYLE)
        vocab = build_vocabulary(examples)
        stories, questions, answers = vectorize(examples, vocab, 8, 6)
        assert stories.shape == (3, 6, 8)
        assert answers.min() > 0
