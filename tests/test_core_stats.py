"""Unit tests for the closed-form phase-cost accounting."""

import pytest

from repro.core.config import ChunkConfig, MemNNConfig
from repro.core.stats import (
    PHASES,
    OpStats,
    baseline_phase_costs,
    column_phase_costs,
)


@pytest.fixture
def cfg():
    return MemNNConfig(
        embedding_dim=48, num_sentences=100_000, num_questions=16, vocab_size=1000
    )


class TestOpStats:
    def test_addition_sums_counters(self):
        a = OpStats(flops=10, bytes_read=5, rows_computed=3)
        b = OpStats(flops=1, bytes_read=2, rows_skipped=4)
        c = a + b
        assert c.flops == 11
        assert c.bytes_read == 7
        assert c.rows_computed == 3
        assert c.rows_skipped == 4

    def test_addition_takes_peak_intermediate(self):
        a = OpStats(intermediate_bytes=100)
        b = OpStats(intermediate_bytes=70)
        assert (a + b).intermediate_bytes == 100

    def test_skip_ratio(self):
        s = OpStats(rows_computed=25, rows_skipped=75)
        assert s.skip_ratio == pytest.approx(0.75)

    def test_skip_ratio_empty(self):
        assert OpStats().skip_ratio == 0.0

    def test_total_bytes(self):
        assert OpStats(bytes_read=3, bytes_written=4).total_bytes == 7


class TestBaselineCosts:
    def test_all_phases_present(self, cfg):
        costs = baseline_phase_costs(cfg)
        assert set(costs) == set(PHASES)

    def test_matmul_flops(self, cfg):
        costs = baseline_phase_costs(cfg)
        expected = 2.0 * 16 * 100_000 * 48
        assert costs["inner_product"].flops == expected
        assert costs["weighted_sum"].flops == expected

    def test_softmax_spill_traffic_dominated_by_intermediates(self, cfg):
        # Baseline softmax traffic is pure intermediate spill (4 passes).
        costs = baseline_phase_costs(cfg)
        inter = cfg.intermediate_bytes
        assert costs["softmax"].dram_bytes == 4 * inter

    def test_total_dram_includes_both_memories(self, cfg):
        costs = baseline_phase_costs(cfg)
        total = sum(c.dram_bytes for c in costs.values())
        assert total >= 2 * cfg.memory_bytes


class TestColumnCosts:
    def test_no_dram_spills_for_intermediates(self, cfg):
        costs = column_phase_costs(cfg, ChunkConfig(chunk_size=1000))
        assert costs["softmax"].dram_bytes == 0.0
        assert costs["softmax"].cache_bytes > 0.0

    def test_total_dram_less_than_baseline(self, cfg):
        base = sum(c.dram_bytes for c in baseline_phase_costs(cfg).values())
        col = sum(
            c.dram_bytes
            for c in column_phase_costs(cfg, ChunkConfig(chunk_size=1000)).values()
        )
        assert col < base

    def test_zero_skip_reduces_weighted_sum(self, cfg):
        chunk = ChunkConfig(chunk_size=1000)
        full = column_phase_costs(cfg, chunk, skip_ratio=0.0)
        skip = column_phase_costs(cfg, chunk, skip_ratio=0.97)
        assert skip["weighted_sum"].flops == pytest.approx(
            full["weighted_sum"].flops * 0.03
        )
        assert skip["inner_product"].flops == full["inner_product"].flops

    def test_skip_ratio_validated(self, cfg):
        with pytest.raises(ValueError):
            column_phase_costs(cfg, ChunkConfig(), skip_ratio=1.5)

    def test_division_reduction_ns_to_ed(self, cfg):
        # §3.1: divisions drop from O(ns) (baseline softmax includes a
        # division per element) to O(ed) per question.
        base = baseline_phase_costs(cfg)["softmax"].flops
        col = column_phase_costs(cfg, ChunkConfig())["softmax"].flops
        assert col < base

    def test_phase_cost_addition(self, cfg):
        costs = column_phase_costs(cfg, ChunkConfig())
        total = costs["inner_product"] + costs["softmax"] + costs["weighted_sum"]
        assert total.flops == sum(c.flops for c in costs.values())
        assert total.dram_bytes == sum(c.dram_bytes for c in costs.values())
