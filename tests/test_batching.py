"""Continuous batching: batcher discipline, vectorized engine path,
batched service mode.

The correctness story has three layers:

* ``answer_batch()`` must equal a per-question ``answer()`` loop at
  the documented 1e-10 logit tolerance across the full
  ``algorithm × zero_skip × softmax`` grid (the lazy softmax is
  row-independent over questions), including ragged sizes and nq=1;
* the :class:`ContinuousBatcher` must honor its dispatch rules —
  full / max_wait / deadline — and never coalesce a request past its
  admission deadline;
* ``QaServer.run_batched`` must keep the lifecycle ledger consistent
  (``reconcile()``) while showing the amortization: higher batch caps
  buy strictly higher throughput past saturation.
"""

import itertools

import numpy as np
import pytest

from repro.batching import (
    BatcherStats,
    BatchFormation,
    ContinuousBatcher,
    form_batches,
)
from repro.core import (
    BatchConfig,
    ChunkConfig,
    EngineConfig,
    EngineWeights,
    MemNNConfig,
    MnnFastEngine,
    OpStats,
    ZeroSkipConfig,
)
from repro.serving import (
    AdmissionConfig,
    QaServer,
    QuestionRequest,
    RetryConfig,
    ServerConfig,
    Workload,
    generate_workload,
)

LOGIT_TOLERANCE = 1e-10


# --------------------------------------------------------------------------
# answer_batch ≡ sequential answer loop
# --------------------------------------------------------------------------


def _engine_grid():
    """Every answer-producing path, at exact (th=0) settings."""
    grid = {}
    for stable in (True, False):
        grid[("baseline", stable)] = EngineConfig(
            algorithm="baseline", stable_softmax=stable
        )
        grid[("column", stable)] = EngineConfig(
            algorithm="column", chunk=ChunkConfig(16), stable_softmax=stable
        )
        grid[("column+skip0", stable)] = EngineConfig(
            algorithm="column",
            chunk=ChunkConfig(16),
            zero_skip=ZeroSkipConfig(0.0, mode="exp"),
            stable_softmax=stable,
        )
        grid[("sharded", stable)] = EngineConfig(
            algorithm="sharded",
            num_shards=3,
            chunk=ChunkConfig(16),
            stable_softmax=stable,
        )
    return grid


def _problem(seed, nq):
    rng = np.random.default_rng(seed)
    config = MemNNConfig(
        embedding_dim=16,
        num_sentences=200,
        num_questions=nq,
        vocab_size=60,
        max_words=6,
        hops=2,
    )
    weights = EngineWeights.random(config, rng=rng)
    story = rng.integers(1, 60, size=(53, 6))
    questions = rng.integers(1, 60, size=(nq, 6))
    return config, weights, story, questions


@pytest.mark.parametrize("seed", (0, 1))
@pytest.mark.parametrize("nq", (1, 4, 5))
def test_answer_batch_equals_sequential_loop(seed, nq):
    """The batched path is the sequential loop, at 1e-10, on every
    engine configuration — including nq=1 and a ragged nq=5."""
    config, weights, story, questions = _problem(seed, nq)
    for key, engine_config in _engine_grid().items():
        engine = MnnFastEngine(config, weights, engine_config=engine_config)
        engine.store_story(story)
        batched = engine.answer_batch(questions)
        assert batched.batch_size == nq
        assert len(batched.results) == nq
        for i, result in enumerate(batched.results):
            solo = engine.answer(questions[i : i + 1])
            np.testing.assert_allclose(
                result.logits,
                solo.logits,
                rtol=LOGIT_TOLERANCE,
                atol=LOGIT_TOLERANCE,
                err_msg=f"batched row {i} diverges from solo on {key}",
            )
            np.testing.assert_array_equal(
                result.answer_ids,
                solo.answer_ids,
                err_msg=f"argmax answer diverges on {key}",
            )


def test_answer_batch_views_slice_the_batch():
    """Per-question results are row views of the batch result."""
    config, weights, story, questions = _problem(3, 4)
    engine = MnnFastEngine(
        config, weights, engine_config=EngineConfig(algorithm="column")
    )
    engine.store_story(story)
    batched = engine.answer_batch(questions)
    np.testing.assert_array_equal(
        np.concatenate([r.logits for r in batched.results]),
        batched.batch.logits,
    )
    np.testing.assert_array_equal(batched.answer_ids, batched.batch.answer_ids)
    assert batched.stats is batched.batch.stats


def test_answer_batch_amortizes_memory_traffic():
    """One batched pass streams the matrices once; a sequential loop
    streams them nq times (the §5 amortization, in bytes)."""
    config, weights, story, questions = _problem(0, 8)
    engine = MnnFastEngine(
        config, weights, engine_config=EngineConfig.batched(8)
    )
    engine.store_story(story)
    batched = engine.answer_batch(questions)
    solo_bytes = sum(
        engine.answer(questions[i : i + 1]).stats.bytes_read for i in range(8)
    )
    assert batched.batch.stats.bytes_read < solo_bytes / 2
    assert (
        batched.amortized_bytes_per_question
        == batched.batch.stats.bytes_read / 8
    )
    # Per-question shares carry the amortized accounting.
    share = batched.results[0].stats
    assert share.bytes_read == batched.batch.stats.bytes_read // 8


def test_answer_batch_with_cache_matches_uncached():
    class DictCache:
        def __init__(self):
            self.store = {}

        def lookup(self, word_id):
            return self.store.get(word_id)

        def insert(self, word_id, vector):
            self.store[word_id] = np.array(vector)

    config, weights, story, questions = _problem(2, 4)
    engine = MnnFastEngine(
        config, weights, engine_config=EngineConfig(algorithm="column")
    )
    engine.store_story(story)
    plain = engine.answer_batch(questions)
    cached = engine.answer_batch(questions, cache=DictCache())
    np.testing.assert_array_equal(plain.batch.logits, cached.batch.logits)


def test_opstats_amortized():
    stats = OpStats(
        flops=100, bytes_read=33, bytes_written=10, intermediate_bytes=7
    )
    share = stats.amortized(4)
    assert share.flops == 25
    assert share.bytes_read == 8
    assert share.bytes_written == 2
    assert share.intermediate_bytes == 7  # a peak, not additive
    with pytest.raises(ValueError):
        stats.amortized(0)


# --------------------------------------------------------------------------
# BatchConfig / ContinuousBatcher
# --------------------------------------------------------------------------


class TestBatchConfig:
    def test_defaults_disabled(self):
        config = BatchConfig()
        assert config.max_batch_size == 1
        assert not config.enabled
        assert BatchConfig(max_batch_size=2).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchConfig(max_wait=-1.0)

    def test_engineconfig_batched_constructor(self):
        engine = EngineConfig.batched(8, max_wait=5e-3)
        assert engine.batch.max_batch_size == 8
        assert engine.batch.max_wait == 5e-3
        assert engine.algorithm == "column"


class TestContinuousBatcher:
    def test_dispatches_when_full(self):
        batcher = ContinuousBatcher(BatchConfig(max_batch_size=3, max_wait=1.0))
        assert batcher.submit("a", now=0.0) is None
        assert batcher.submit("b", now=0.1) is None
        batch = batcher.submit("c", now=0.2)
        assert batch is not None
        assert batch.formation.reason == "full"
        assert batch.formation.fill_ratio == 1.0
        assert batch.items == ("a", "b", "c")  # FIFO, never reordered
        assert batch.formation.queue_waits == pytest.approx((0.2, 0.1, 0.0))
        assert batcher.queue_depth == 0

    def test_dispatches_on_max_wait(self):
        batcher = ContinuousBatcher(
            BatchConfig(max_batch_size=8, max_wait=0.01)
        )
        batcher.submit("a", now=1.0)
        assert batcher.next_forced_dispatch() == pytest.approx(1.01)
        assert batcher.poll(1.005) is None  # not yet
        batch = batcher.poll(1.01)
        assert batch is not None
        assert batch.formation.reason == "wait"
        assert batch.formation.size == 1

    def test_deadline_clamps_forced_dispatch(self):
        """A member's admission deadline preempts max_wait: the batch
        ships while the request can still make it."""
        batcher = ContinuousBatcher(
            BatchConfig(max_batch_size=8, max_wait=1.0)
        )
        batcher.submit("slack", now=0.0, deadline=10.0)
        batcher.submit("tight", now=0.1, deadline=0.25)
        assert batcher.next_forced_dispatch() == pytest.approx(0.25)
        batch = batcher.poll(0.25)
        assert batch is not None
        assert batch.formation.reason == "deadline"
        assert batch.formation.min_deadline_slack >= 0.0
        assert "tight" in batch.items

    def test_time_must_be_monotone(self):
        batcher = ContinuousBatcher(BatchConfig(max_batch_size=4))
        batcher.submit("a", now=1.0)
        with pytest.raises(ValueError):
            batcher.submit("b", now=0.5)

    def test_deadline_before_enqueue_rejected(self):
        batcher = ContinuousBatcher(BatchConfig(max_batch_size=4))
        with pytest.raises(ValueError):
            batcher.submit("a", now=1.0, deadline=0.5)

    def test_flush_drains_partial_batch(self):
        batcher = ContinuousBatcher(
            BatchConfig(max_batch_size=8, max_wait=1.0)
        )
        batcher.submit("a", now=0.0)
        batcher.submit("b", now=0.1)
        batch = batcher.flush(0.2)
        assert batch.formation.reason == "flush"
        assert batch.size == 2
        assert batcher.flush(0.3) is None  # empty queue

    def test_stats_aggregate_formations(self):
        batcher = ContinuousBatcher(
            BatchConfig(max_batch_size=2, max_wait=1.0)
        )
        for i in range(5):
            batcher.submit(i, now=float(i))
        batcher.flush(5.0)
        stats = batcher.stats
        assert isinstance(stats, BatcherStats)
        assert stats.submitted == 5
        assert stats.dispatched == 5
        assert stats.batches_formed == 3  # 2 + 2 + flush(1)
        assert stats.mean_batch_size == pytest.approx(5 / 3)
        assert 0.0 < stats.mean_fill_ratio <= 1.0

    def test_formation_rejects_unknown_reason(self):
        with pytest.raises(ValueError):
            BatchFormation(
                formed_at=0.0, size=1, capacity=1, reason="whim",
                queue_waits=(0.0,), deadline_slacks=(),
            )


class TestFormBatches:
    def test_partitions_the_stream_in_order(self):
        requests = [
            QuestionRequest(arrival=0.01 * i, words=4) for i in range(10)
        ]
        batches = form_batches(requests, BatchConfig(max_batch_size=4, max_wait=1.0))
        items = [item for b in batches for item in b.items]
        assert items == requests  # every request exactly once, in order
        assert [b.size for b in batches] == [4, 4, 2]

    def test_never_coalesces_past_deadline(self):
        requests = [
            QuestionRequest(arrival=0.001 * i, words=4, deadline=0.002)
            for i in range(20)
        ]
        batches = form_batches(
            requests, BatchConfig(max_batch_size=16, max_wait=10.0)
        )
        assert len(batches) > 1  # deadlines forced early dispatch
        for batch in batches:
            assert batch.formation.min_deadline_slack >= -1e-9

    def test_default_deadline_applies(self):
        requests = [QuestionRequest(arrival=0.0, words=4)]
        (batch,) = form_batches(
            requests,
            BatchConfig(max_batch_size=8, max_wait=5.0),
            default_deadline=0.5,
        )
        assert batch.formation.formed_at == pytest.approx(0.5)
        assert batch.formation.reason == "deadline"


# --------------------------------------------------------------------------
# QaServer.run_batched
# --------------------------------------------------------------------------


def _batched_server(batch_size, **config_kwargs):
    return QaServer(
        ServerConfig(
            engine=EngineConfig.batched(batch_size, max_wait=2e-3),
            workers=4,
            **config_kwargs,
        ),
        seed=9,
    )


def _workload(rate=40_000.0, duration=0.02, story_rate=50.0):
    return generate_workload(
        question_rate=rate, story_rate=story_rate, duration=duration, seed=7
    )


class TestRunBatched:
    def test_ledger_reconciles_and_occupancy_reported(self):
        metrics = _batched_server(4).run_batched(_workload())
        # run_batched calls reconcile() itself; re-assert the invariant.
        metrics.reconcile()
        assert metrics.arrivals == (
            metrics.completed + metrics.shed + metrics.timed_out
        )
        assert metrics.batches
        assert 0.0 < metrics.batch_occupancy <= 1.0
        assert metrics.mean_batch_size >= 1.0
        summary = metrics.summary()
        assert summary["batches"] == len(metrics.batches)
        assert summary["queueing_p50"] <= summary["queueing_p99"]

    def test_batching_raises_saturated_throughput(self):
        """Past single-question saturation, a bigger batch cap means
        strictly more questions served per second (Fig. 12 style)."""
        solo = _batched_server(1).run_batched(_workload())
        batched = _batched_server(8).run_batched(_workload())
        assert batched.throughput("question") > 1.5 * solo.throughput("question")

    def test_queueing_percentiles_ordered(self):
        metrics = _batched_server(8).run_batched(_workload())
        p = metrics.queueing_percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_admission_sheds_at_bounded_batcher_queue(self):
        metrics = _batched_server(
            2, admission=AdmissionConfig(max_queue=4),
            retry=RetryConfig(max_retries=0),
        ).run_batched(_workload(rate=80_000.0))
        assert metrics.shed > 0
        metrics.reconcile()

    def test_tight_deadlines_time_out_not_crash(self):
        metrics = _batched_server(8, deadline=1e-4).run_batched(
            _workload(rate=80_000.0)
        )
        assert metrics.timed_out > 0
        metrics.reconcile()

    def test_deadline_members_never_coalesced_past_deadline(self):
        """Every formed batch ships with non-negative deadline slack."""
        metrics = _batched_server(8, deadline=5e-3).run_batched(
            _workload(rate=20_000.0)
        )
        for batch in metrics.batches:
            assert all(s >= -1e-9 for s in batch.deadline_slacks)

    def test_questions_only_workload(self):
        metrics = _batched_server(4).run_batched(
            _workload(story_rate=0.0)
        )
        assert metrics.completed == metrics.arrivals
        assert not metrics.of_kind("story")

    def test_empty_workload(self):
        metrics = _batched_server(4).run_batched(Workload())
        assert metrics.arrivals == 0
        assert metrics.batches == []
        metrics.reconcile()
