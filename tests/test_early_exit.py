"""Confidence-gated early exit: config, gate behavior, serving lever.

Covers the adaptive hop-pruning surface end to end: the
:class:`EarlyExitConfig` validation and builder, the confidence
signals and :class:`HopTrace` record, the engine gate's depth
semantics (min_hops floor, never-on-last-hop, accounting), and the
serving-side cost model / degradation lever
(:func:`exit_rate_for_threshold`, ``expected_hop_survivors``,
``effective_exit_threshold``).
"""

import numpy as np
import pytest

from repro.analysis import early_exit_workload, sweep_early_exit
from repro.core import (
    EngineConfig,
    EngineWeights,
    MemNNConfig,
    MnnFastEngine,
)
from repro.core.config import EarlyExitConfig
from repro.core.early_exit import (
    EXIT_CONFIDENCE,
    EXIT_FULL_DEPTH,
    HopTrace,
    attention_mass_confidence,
    logit_margin_confidence,
)
from repro.serving import (
    DegradationConfig,
    DegradationPolicy,
    QaServer,
    ServerConfig,
    exit_rate_for_threshold,
)


class TestEarlyExitConfig:
    def test_defaults_disable_the_gate(self):
        cfg = EarlyExitConfig()
        assert cfg.threshold == 0.0
        assert not cfg.enabled
        assert cfg.required_confidence == 1.0

    def test_threshold_domain(self):
        with pytest.raises(ValueError, match="threshold"):
            EarlyExitConfig(threshold=-0.1)
        with pytest.raises(ValueError, match="threshold"):
            EarlyExitConfig(threshold=1.0)
        assert EarlyExitConfig(threshold=0.999).enabled

    def test_metric_names_validated(self):
        with pytest.raises(ValueError, match="metric"):
            EarlyExitConfig(metric="vibes")
        EarlyExitConfig(metric="attention_mass")

    def test_min_hops_and_top_k_positive_integers(self):
        with pytest.raises(ValueError, match="min_hops"):
            EarlyExitConfig(min_hops=0)
        with pytest.raises(ValueError, match="attention_top_k"):
            EarlyExitConfig(attention_top_k=0)

    def test_required_confidence_is_one_minus_threshold(self):
        assert EarlyExitConfig(threshold=0.3).required_confidence == pytest.approx(0.7)

    def test_builder_sets_threshold_and_keeps_other_knobs(self):
        base = EngineConfig.mnnfast()
        gated = base.with_early_exit(0.2)
        assert gated.early_exit.threshold == 0.2
        assert gated.early_exit.metric == base.early_exit.metric
        assert gated.early_exit.min_hops == base.early_exit.min_hops
        # The rest of the engine config is untouched.
        assert gated.algorithm == base.algorithm
        assert gated.zero_skip == base.zero_skip

    def test_builder_partial_override_inherits(self):
        first = EngineConfig().with_early_exit(
            0.1, metric="attention_mass", min_hops=2
        )
        second = first.with_early_exit(0.4)
        assert second.early_exit.metric == "attention_mass"
        assert second.early_exit.min_hops == 2
        assert second.early_exit.threshold == 0.4


class TestConfidenceSignals:
    def test_logit_margin_in_unit_interval(self, rng):
        u = rng.normal(size=(6, 8))
        o = rng.normal(size=(6, 8))
        w = rng.normal(size=(5, 8))
        conf = logit_margin_confidence(u, o, remaining_hops=2, answer_weight=w)
        assert conf.shape == (6,)
        assert np.all(conf >= 0.0) and np.all(conf <= 1.0)

    def test_logit_margin_single_class_is_one(self, rng):
        conf = logit_margin_confidence(
            rng.normal(size=(3, 4)),
            rng.normal(size=(3, 4)),
            remaining_hops=1,
            answer_weight=rng.normal(size=(1, 4)),
        )
        np.testing.assert_array_equal(conf, 1.0)

    def test_attention_mass_bounded_and_exact_when_k_covers_ns(self, rng):
        u = rng.normal(size=(4, 8))
        m_in = rng.normal(size=(20, 8))
        conf = attention_mass_confidence(u, m_in, top_k=5)
        assert np.all(conf > 0.0) and np.all(conf <= 1.0 + 1e-12)
        covered = attention_mass_confidence(u, m_in, top_k=20)
        np.testing.assert_allclose(covered, 1.0, rtol=1e-12)

    def test_attention_mass_monotone_in_k(self, rng):
        u = rng.normal(size=(4, 8))
        m_in = rng.normal(size=(30, 8))
        small = attention_mass_confidence(u, m_in, top_k=2)
        large = attention_mass_confidence(u, m_in, top_k=8)
        assert np.all(large >= small - 1e-15)


class TestHopTrace:
    def test_full_depth_constructor(self):
        trace = HopTrace.full_depth(num_questions=3, hops=4)
        assert trace.num_questions == 3
        assert trace.num_exited == 0
        assert trace.mean_hops == 4.0
        assert trace.hops_saved_fraction == 0.0
        assert trace.exit_reason == [EXIT_FULL_DEPTH] * 3
        assert trace.depth_histogram() == {4: 3}

    def test_derived_statistics(self):
        trace = HopTrace(
            threshold=0.2,
            metric="logit_margin",
            hops_configured=4,
            hops_run=np.array([1, 4, 2, 1]),
            exit_reason=[
                EXIT_CONFIDENCE,
                EXIT_FULL_DEPTH,
                EXIT_CONFIDENCE,
                EXIT_CONFIDENCE,
            ],
        )
        assert trace.num_exited == 3
        assert trace.mean_hops == pytest.approx(2.0)
        assert trace.hops_saved_fraction == pytest.approx(1.0 - 8 / 16)
        assert trace.depth_histogram() == {1: 2, 2: 1, 4: 1}

    def test_question_view_slices_all_fields(self):
        trace = HopTrace(
            threshold=0.2,
            metric="logit_margin",
            hops_configured=3,
            hops_run=np.array([1, 3]),
            exit_reason=[EXIT_CONFIDENCE, EXIT_FULL_DEPTH],
            confidence=[np.array([0.9, 0.4]), np.array([np.nan, 0.6])],
        )
        view = trace.question(1)
        assert view.num_questions == 1
        assert view.hops_run[0] == 3
        assert view.exit_reason == [EXIT_FULL_DEPTH]
        assert [c[0] for c in view.confidence] == [0.4, 0.6]


def _calibrated_problem(num_questions=24, hops=4, seed=7):
    config = MemNNConfig(
        embedding_dim=16,
        num_sentences=300,
        num_questions=num_questions,
        vocab_size=200,
        max_words=6,
        hops=hops,
    )
    weights, stories, questions = early_exit_workload(
        config, num_questions, seed=seed
    )
    return config, weights, stories, questions


def _run(config, weights, stories, questions, engine_config):
    engine = MnnFastEngine(config, weights, engine_config=engine_config)
    engine.store_story(stories)
    return engine.answer(questions)


class TestEngineGate:
    def test_gate_fires_on_calibrated_workload(self):
        config, weights, stories, questions = _calibrated_problem()
        result = _run(
            config, weights, stories, questions,
            EngineConfig().with_early_exit(0.2),
        )
        trace = result.hop_trace
        assert trace.num_exited > 0
        assert EXIT_CONFIDENCE in trace.exit_reason
        assert trace.mean_hops < config.hops
        assert 0.0 < trace.hops_saved_fraction < 1.0

    def test_gate_preserves_answers_on_calibrated_workload(self):
        config, weights, stories, questions = _calibrated_problem()
        full = _run(config, weights, stories, questions, EngineConfig())
        gated = _run(
            config, weights, stories, questions,
            EngineConfig().with_early_exit(0.2),
        )
        np.testing.assert_array_equal(gated.answer_ids, full.answer_ids)

    def test_min_hops_floor_honored(self):
        config, weights, stories, questions = _calibrated_problem(hops=4)
        result = _run(
            config, weights, stories, questions,
            EngineConfig().with_early_exit(0.5, min_hops=3),
        )
        assert np.all(np.asarray(result.hop_trace.hops_run) >= 3)

    def test_gate_never_checks_after_last_hop(self):
        # min_hops == hops leaves no hop after which a check may run:
        # the gate is active but can never fire, and emits no checks.
        config, weights, stories, questions = _calibrated_problem(hops=3)
        result = _run(
            config, weights, stories, questions,
            EngineConfig().with_early_exit(0.5, min_hops=3),
        )
        trace = result.hop_trace
        assert trace.num_exited == 0
        assert list(trace.hops_run) == [config.hops] * len(questions)
        assert trace.confidence == []

    def test_confidence_checks_recorded_per_gate_hop(self):
        config, weights, stories, questions = _calibrated_problem(hops=4)
        trace = _run(
            config, weights, stories, questions,
            EngineConfig().with_early_exit(0.05, min_hops=1),
        ).hop_trace
        # Checks after hops 1 .. hops-1.
        assert len(trace.confidence) == config.hops - 1
        assert all(c.shape == (len(questions),) for c in trace.confidence)
        # Retired questions read NaN in later checks.
        if trace.num_exited > 0 and len(trace.confidence) > 1:
            exited_first = np.asarray(trace.hops_run) == 1
            if exited_first.any():
                assert np.isnan(trace.confidence[1][exited_first]).all()

    def test_attention_mass_metric_path(self):
        config, weights, stories, questions = _calibrated_problem()
        result = _run(
            config, weights, stories, questions,
            EngineConfig().with_early_exit(0.5, metric="attention_mass"),
        )
        trace = result.hop_trace
        assert trace.metric == "attention_mass"
        assert trace.num_exited > 0
        # Checks stop once every question has retired, so anywhere
        # between 1 and hops-1 check records is legal.
        assert 1 <= len(trace.confidence) <= config.hops - 1

    def test_gate_checks_are_accounted_in_opstats(self):
        # A tiny threshold arms the gate (checks run, costs accrue)
        # but is effectively unreachable, so no hop work is saved —
        # isolating the gate's own accounting.
        config, weights, stories, questions = _calibrated_problem()
        full = _run(config, weights, stories, questions, EngineConfig())
        gated = _run(
            config, weights, stories, questions,
            EngineConfig().with_early_exit(1e-9),
        )
        assert gated.hop_trace.num_exited == 0
        assert gated.stats.flops > full.stats.flops
        assert gated.stats.exp_calls > full.stats.exp_calls


class TestServingLever:
    def test_exit_rate_zero_at_zero_threshold(self):
        assert exit_rate_for_threshold(0.0) == 0.0
        assert exit_rate_for_threshold(-1.0) == 0.0

    def test_exit_rate_monotone_and_capped(self):
        thresholds = [0.01, 0.05, 0.15, 0.4, 0.9, 0.99]
        rates = [exit_rate_for_threshold(t) for t in thresholds]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        assert all(0.0 < r <= 0.95 for r in rates)

    def test_expected_hop_survivors_gate_off(self):
        server = QaServer(ServerConfig(engine=EngineConfig.mnnfast()))
        hops = server.config.network.hops
        assert server.expected_hop_survivors(8) == [8] * hops

    def test_expected_hop_survivors_shrink_geometrically(self):
        server = QaServer(
            ServerConfig(engine=EngineConfig.mnnfast().with_early_exit(0.4))
        )
        survivors = server.expected_hop_survivors(64, hops=4)
        assert len(survivors) == 4
        assert survivors[0] == 64
        assert all(b <= a for a, b in zip(survivors, survivors[1:]))
        assert survivors[-1] < 64

    def test_expected_hop_survivors_respect_min_hops(self):
        server = QaServer(
            ServerConfig(
                engine=EngineConfig.mnnfast().with_early_exit(0.4, min_hops=3)
            )
        )
        survivors = server.expected_hop_survivors(32, hops=4)
        # No check fires before min_hops, so the first three hops run
        # the full batch.
        assert survivors[:3] == [32, 32, 32]
        assert survivors[3] < 32

    def test_inference_seconds_cheaper_with_gate(self):
        server = QaServer(ServerConfig(engine=EngineConfig.mnnfast()))
        full = server.inference_seconds(batch_size=16, hops=4)
        gated = server.inference_seconds(
            batch_size=16, hops=4, exit_threshold=0.4
        )
        assert gated < full

    def test_effective_exit_threshold_additive_and_capped(self):
        policy = DegradationPolicy(
            DegradationConfig(
                enabled=True,
                low_watermark=0,
                high_watermark=1,
                max_level=5,
                exit_threshold_step=0.3,
                max_exit_threshold=0.8,
            ),
            EngineConfig.mnnfast(),  # gate off: base threshold 0
            hops=4,
        )
        assert policy.effective_exit_threshold() == 0.0
        policy.observe(10)
        assert policy.effective_exit_threshold() == pytest.approx(0.3)
        policy.observe(10)
        assert policy.effective_exit_threshold() == pytest.approx(0.6)
        policy.observe(10)  # 0.9 would exceed the cap
        assert policy.effective_exit_threshold() == pytest.approx(0.8)
        # Draining the queue steps the lever back down.
        policy.observe(0)
        policy.observe(0)
        policy.observe(0)
        assert policy.effective_exit_threshold() == 0.0

    def test_effective_exit_threshold_stacks_on_engine_base(self):
        policy = DegradationPolicy(
            DegradationConfig(enabled=True, low_watermark=0, high_watermark=1),
            EngineConfig.mnnfast().with_early_exit(0.1),
            hops=4,
        )
        assert policy.effective_exit_threshold() == pytest.approx(0.1)
        policy.observe(10)
        assert policy.effective_exit_threshold() == pytest.approx(
            0.1 + policy.config.exit_threshold_step
        )

    def test_pinned_effective_tuple_untouched_by_exit_lever(self):
        # The historical (th_skip, hops) lever must not see the new
        # exit-threshold knobs.
        policy = DegradationPolicy(
            DegradationConfig(enabled=True, low_watermark=0, high_watermark=1),
            EngineConfig.mnnfast(),
            hops=3,
        )
        policy.observe(10)
        threshold, hops = policy.effective()
        assert threshold == pytest.approx(0.1 * policy.config.threshold_factor)
        assert hops == 3 - policy.config.hop_step


class TestWorkloadDeterminism:
    def test_early_exit_workload_repeat_twice_identical(self):
        config = MemNNConfig(
            embedding_dim=16,
            num_sentences=300,
            num_questions=12,
            vocab_size=200,
            max_words=6,
            hops=4,
        )
        first = early_exit_workload(config, 12, seed=11)
        second = early_exit_workload(config, 12, seed=11)
        for a, b in zip(first, second):
            if isinstance(a, EngineWeights):
                np.testing.assert_array_equal(a.embedding_a, b.embedding_a)
                np.testing.assert_array_equal(a.embedding_c, b.embedding_c)
                np.testing.assert_array_equal(a.answer_weight, b.answer_weight)
            else:
                np.testing.assert_array_equal(a, b)

    def test_sweep_quick_smoke(self):
        sweep = sweep_early_exit(
            num_questions=16, thresholds=(0.0, 0.2), seed=3
        )
        assert [p.threshold for p in sweep.points] == [0.0, 0.2]
        zero = sweep.point_at(0.0)
        assert zero.agreement == 1.0
        assert zero.mean_hops == sweep.hops
        aggressive = sweep.point_at(0.2)
        assert aggressive.mean_hops <= zero.mean_hops
