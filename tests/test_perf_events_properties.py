"""Property-based tests (hypothesis) for the discrete-event kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.events import (
    Acquire,
    Release,
    Resource,
    SharedBandwidth,
    Simulator,
    Timeout,
    Transfer,
)

delay = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
payload = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)


@settings(max_examples=50, deadline=None)
@given(st.lists(delay, min_size=1, max_size=20))
def test_clock_is_monotone(delays):
    sim = Simulator()
    observed = []

    def proc(d):
        yield Timeout(d)
        observed.append(sim.now)

    for d in delays:
        sim.spawn(proc(d))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == pytest.approx(max(delays))


@settings(max_examples=50, deadline=None)
@given(st.lists(payload, min_size=1, max_size=15), st.floats(min_value=0.5, max_value=50))
def test_shared_link_conserves_bytes(payloads, capacity):
    sim = Simulator()
    link = SharedBandwidth(sim, capacity=capacity)

    def proc(n):
        yield Transfer(link, n)

    for n in payloads:
        sim.spawn(proc(n))
    sim.run()
    assert link.bytes_moved == pytest.approx(sum(payloads), rel=1e-6)


@settings(max_examples=50, deadline=None)
@given(st.lists(payload, min_size=1, max_size=15), st.floats(min_value=0.5, max_value=50))
def test_shared_link_total_time_is_work_conserving(payloads, capacity):
    """With everyone arriving at t=0, the link finishes exactly at
    total_bytes / capacity — processor sharing wastes nothing."""
    sim = Simulator()
    link = SharedBandwidth(sim, capacity=capacity)

    def proc(n):
        yield Transfer(link, n)

    for n in payloads:
        sim.spawn(proc(n))
    total = sim.run()
    assert total == pytest.approx(sum(payloads) / capacity, rel=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(delay, min_size=1, max_size=12),
    st.integers(min_value=1, max_value=4),
)
def test_resource_never_oversubscribed(durations, capacity):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    peak = {"value": 0}

    def proc(d):
        yield Acquire(resource)
        peak["value"] = max(peak["value"], resource.in_use)
        yield Timeout(d)
        yield Release(resource)

    for d in durations:
        sim.spawn(proc(d))
    sim.run()
    assert peak["value"] <= capacity
    assert resource.in_use == 0  # everything released


@settings(max_examples=50, deadline=None)
@given(st.lists(delay, min_size=1, max_size=10))
def test_exclusive_resource_serializes_total_time(durations):
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def proc(d):
        yield Acquire(resource)
        yield Timeout(d)
        yield Release(resource)

    for d in durations:
        sim.spawn(proc(d))
    total = sim.run()
    assert total == pytest.approx(sum(durations), rel=1e-9, abs=1e-9)
