"""Property-based tests (hypothesis) for the memory-hierarchy substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EmbeddingCacheConfig
from repro.memsim import (
    Access,
    DramModel,
    EmbeddingCache,
    MemoryHierarchy,
    SetAssociativeCache,
)

address = st.integers(min_value=0, max_value=1 << 20)
size = st.integers(min_value=1, max_value=512)


def make_cache(size_kb=4, ways=2):
    return SetAssociativeCache(
        size_bytes=size_kb * 1024, line_bytes=64, associativity=ways
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(address, size, st.booleans()), max_size=200))
def test_cache_never_exceeds_capacity(accesses):
    cache = make_cache()
    capacity_lines = cache.size_bytes // cache.line_bytes
    for addr, sz, write in accesses:
        cache.access(addr, sz, write=write)
        assert cache.resident_lines <= capacity_lines


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(address, size, st.booleans()), max_size=200))
def test_hits_plus_misses_equals_line_touches(accesses):
    cache = make_cache()
    expected = 0
    for addr, sz, write in accesses:
        first = addr // 64
        last = (addr + sz - 1) // 64
        expected += last - first + 1
        cache.access(addr, sz, write=write)
    assert cache.stats.hits + cache.stats.misses == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(address, size), max_size=150))
def test_read_only_workload_never_writes_back(accesses):
    cache = make_cache(size_kb=1)
    for addr, sz in accesses:
        cache.access(addr, sz, write=False)
    assert cache.stats.writebacks == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(address, size, st.booleans()), max_size=120))
def test_repeating_a_trace_on_warm_cache_only_hits_when_it_fits(accesses):
    """A working set within capacity replays with 100% hits."""
    footprint_lines = set()
    for addr, sz, _ in accesses:
        for line in range(addr // 64, (addr + sz - 1) // 64 + 1):
            footprint_lines.add(line)
    cache = SetAssociativeCache(
        size_bytes=1 << 20, line_bytes=64, associativity=16
    )
    if len(footprint_lines) > (1 << 20) // 64:
        return
    for addr, sz, write in accesses:
        cache.access(addr, sz, write=write)
    before_misses = cache.stats.misses
    for addr, sz, write in accesses:
        cache.access(addr, sz, write=write)
    assert cache.stats.misses == before_misses


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=4),
)
def test_embedding_cache_accounts_every_access(word_ids, ways):
    entries = 16
    cache = EmbeddingCache(
        EmbeddingCacheConfig(size_bytes=entries * 8 * 4, embedding_dim=8),
        associativity=ways if entries % ways == 0 else 1,
    )
    cache.simulate_stream(word_ids)
    assert cache.stats.hits + cache.stats.misses == len(word_ids)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
def test_bigger_embedding_cache_never_hits_less(word_ids):
    rates = []
    for entries in (8, 32, 128):
        cache = EmbeddingCache(
            EmbeddingCacheConfig(size_bytes=entries * 8 * 4, embedding_dim=8),
            associativity=entries,  # fully associative isolates capacity
        )
        cache.simulate_stream(word_ids)
        rates.append(cache.stats.hits)
    assert rates == sorted(rates)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(address, size, st.booleans()), max_size=100))
def test_hierarchy_dram_bytes_are_line_multiples(accesses):
    hierarchy = MemoryHierarchy(make_cache(), DramModel())
    for addr, sz, write in accesses:
        hierarchy.access(Access(addr, sz, write=write))
    summary = hierarchy.total()
    assert summary.dram_bytes % 64 == 0
    assert summary.dram_bytes == (
        summary.demand_misses + summary.writebacks + summary.bypassed_lines
    ) * 64
