"""Tests for the FPGA resource model (Table 1's scale-down rationale)."""

import pytest

from repro.core.config import FPGA_CONFIG, GPU_CONFIG, MemNNConfig
from repro.perf.fpga import FpgaModel, FpgaResources, ZYNQ_7020


class TestResourceModel:
    def test_paper_design_point_fits_zynq(self):
        """Table 1's FPGA config (ed=25, chunk=25) must fit the board."""
        model = FpgaModel()
        assert model.fits_device(FPGA_CONFIG)

    def test_cpu_scale_design_does_not_fit(self):
        """§5.1: the CPU/GPU-scale configuration is scaled down for the
        FPGA 'due to the lack of available logic cells' — at the GPU's
        ed=64 the MAC array alone exceeds the Zynq-7020's 220 DSPs."""
        model = FpgaModel()
        assert not model.fits_device(GPU_CONFIG)

    def test_dsp_usage_scales_with_lanes_and_ed(self):
        narrow = FpgaModel(lanes=2).resource_usage(FPGA_CONFIG)
        wide = FpgaModel(lanes=8).resource_usage(FPGA_CONFIG)
        assert wide.dsp_slices > narrow.dsp_slices

    def test_embedding_cache_costs_bram(self):
        model = FpgaModel()
        without = model.resource_usage(FPGA_CONFIG)
        with_cache = model.resource_usage(
            FPGA_CONFIG, embedding_cache_bytes=256 * 1024
        )
        assert with_cache.bram_kbytes >= without.bram_kbytes + 256

    def test_large_embedding_cache_exhausts_bram(self):
        model = FpgaModel()
        assert not model.fits_device(
            FPGA_CONFIG, embedding_cache_bytes=1024 * 1024
        )

    def test_fits_is_componentwise(self):
        device = FpgaResources(dsp_slices=100, bram_kbytes=100, luts=100)
        assert device.fits(FpgaResources(100, 100, 100))
        assert not device.fits(FpgaResources(101, 1, 1))
        assert not device.fits(FpgaResources(1, 101, 1))
        assert not device.fits(FpgaResources(1, 1, 101))

    def test_zynq_constants(self):
        assert ZYNQ_7020.dsp_slices == 220
        assert ZYNQ_7020.bram_kbytes == 630
