"""Tests for the synthetic bAbI task generators.

Each task family gets a *semantic* check: the generated answer must be
re-derivable from the story by an independent rule-based reader, so a
generator bug cannot silently produce unanswerable data.
"""

import numpy as np
import pytest

from repro.data import (
    TASK_NAMES,
    build_vocabulary,
    generate_example,
    generate_mixed,
    generate_task,
    vectorize,
)
from repro.data.babi import GRAB_VERBS, DROP_VERBS, MOVE_VERBS


@pytest.fixture(params=list(range(1, 21)), ids=[TASK_NAMES[i] for i in range(1, 21)])
def task_id(request):
    return request.param


class TestAllTasks:
    def test_generates_valid_examples(self, task_id):
        for example in generate_task(task_id, 30, seed=3):
            assert example.task_id == task_id
            assert example.story, "story must not be empty"
            assert example.question, "question must not be empty"
            assert example.answer
            assert example.supporting, "supporting facts required"
            assert all(0 <= i < len(example.story) for i in example.supporting)

    def test_deterministic_under_seed(self, task_id):
        a = generate_task(task_id, 10, seed=42)
        b = generate_task(task_id, 10, seed=42)
        for x, y in zip(a, b):
            assert x.story == y.story
            assert x.question == y.question
            assert x.answer == y.answer

    def test_different_seeds_differ(self, task_id):
        a = generate_task(task_id, 20, seed=1)
        b = generate_task(task_id, 20, seed=2)
        assert any(
            x.story != y.story or x.answer != y.answer for x, y in zip(a, b)
        )

    def test_tokens_are_clean(self, task_id):
        for example in generate_task(task_id, 10, seed=0):
            for sentence in example.story + [example.question]:
                for token in sentence:
                    assert token == token.lower()
                    assert " " not in token


def _track_locations(story):
    """Independent reader for move-style stories."""
    locations = {}
    for sentence in story:
        text = " ".join(sentence)
        for verb in MOVE_VERBS:
            if f" {verb} the " in f" {text} ":
                actor = sentence[0]
                locations[actor] = sentence[-1]
    return locations


class TestSemantics:
    """Re-derive answers with independent rule-based readers."""

    def test_task1_answer_is_last_location(self):
        for example in generate_task(1, 40, seed=9):
            actor = example.question[-1]
            assert _track_locations(example.story)[actor] == example.answer

    def test_task2_object_location_is_derivable(self):
        for example in generate_task(2, 40, seed=9):
            obj = example.question[-1]
            locations, holder, site = {}, {}, {}
            for sentence in example.story:
                text = " ".join(sentence)
                actor = sentence[0]
                if any(f" {v} the " in f" {text} " for v in MOVE_VERBS):
                    locations[actor] = sentence[-1]
                    for o, h in list(holder.items()):
                        if h == actor:
                            site[o] = sentence[-1]
                elif any(f" {v} the " in f" {text} " for v in GRAB_VERBS):
                    holder[sentence[-1]] = actor
                    site[sentence[-1]] = locations[actor]
                elif any(f" {v} the " in f" {text} " for v in DROP_VERBS):
                    site[sentence[-1]] = locations[actor]
                    del holder[sentence[-1]]
            assert site[obj] == example.answer

    def test_task3_before_question(self):
        for example in generate_task(3, 40, seed=9):
            # "where was the O before the L" -- the move into L must be
            # the last one, preceded by a move into the answer.
            obj = example.question[3]
            last_loc = example.question[-1]
            grab_index = next(
                i for i, s in enumerate(example.story)
                if s[-1] == obj and any(
                    f" {v} " in f" {' '.join(s)} " for v in GRAB_VERBS
                )
            )
            carrier = example.story[grab_index][0]
            moves = [
                s[-1] for s in example.story[grab_index:]
                if s[0] == carrier
                and any(f" {v} the " in f" {' '.join(s)} " for v in MOVE_VERBS)
            ]
            assert moves[-1] == last_loc
            assert moves[-2] == example.answer

    def test_task6_yes_no_consistent(self):
        for example in generate_task(6, 40, seed=9):
            actor, location = example.question[1], example.question[-1]
            actual = _track_locations(example.story)[actor]
            expected = "yes" if actual == location else "no"
            assert example.answer == expected

    def test_task7_count_matches_grabs_minus_drops(self):
        for example in generate_task(7, 40, seed=9):
            actor = example.question[-2]
            count = 0
            for s in example.story:
                if s[0] != actor:
                    continue
                text = " ".join(s)
                if any(f" {v} the " in f" {text} " for v in GRAB_VERBS):
                    count += 1
                elif any(f" {v} the " in f" {text} " for v in DROP_VERBS):
                    count -= 1
            from repro.data.babi import NUMBER_WORDS
            assert example.answer == NUMBER_WORDS[count]

    def test_task15_deduction_chain(self):
        for example in generate_task(15, 30, seed=9):
            name = example.question[2]
            species = next(
                s[-1] for s in example.story if s[0] == name and s[1] == "is"
            )
            plural = {"mouse": "mice", "cat": "cats", "wolf": "wolves",
                      "sheep": "sheep"}[species]
            fear = next(
                s[-1] for s in example.story if s[0] == plural
            )
            assert example.answer == fear

    def test_task17_positional_truth(self):
        for example in generate_task(17, 40, seed=9):
            positions = {}
            first = example.story[0][4 if example.story[0][3] == "of" else 3]
            # Rebuild coordinates from the facts.
            deltas = {"above": (0, 1), "below": (0, -1), "left": (-1, 0),
                      "right": (1, 0)}
            for s in example.story:
                shape, relation = s[1], s[3]
                anchor = s[-1]
                dx, dy = deltas[relation]
                if anchor not in positions:
                    positions[anchor] = (0, 0)
                ax, ay = positions[anchor]
                positions[shape] = (ax + dx, ay + dy)
            a, relation, b = example.question[2], example.question[3], example.question[-1]
            (ax, ay), (bx, by) = positions[a], positions[b]
            truth = {"above": ay > by, "below": ay < by,
                     "left": ax < bx, "right": ax > bx}[relation]
            assert example.answer == ("yes" if truth else "no")
            del first

    def test_task18_size_transitivity(self):
        for example in generate_task(18, 40, seed=9):
            bigger = {}
            order = []
            for s in example.story:
                big, small = s[1], s[-1]
                bigger[big] = small
                if not order:
                    order = [big, small]
                else:
                    order.append(small)
            a, b = example.question[2], example.question[-1]
            fits = order.index(a) > order.index(b)
            assert example.answer == ("yes" if fits else "no")

    def test_task19_path_reaches_goal(self):
        deltas = {"north": (0, 1), "south": (0, -1), "east": (1, 0),
                  "west": (-1, 0)}
        letter_delta = {"n": (0, 1), "s": (0, -1), "e": (1, 0), "w": (-1, 0)}
        for example in generate_task(19, 40, seed=9):
            positions = {}
            for s in example.story:
                room, direction, anchor = s[1], s[3], s[-1]
                if anchor not in positions:
                    positions[anchor] = (0, 0)
                ax, ay = positions[anchor]
                dx, dy = deltas[direction]
                positions[room] = (ax + dx, ay + dy)
            start, goal = example.question[-4], example.question[-1]
            x, y = positions[start]
            for move in example.answer.split(","):
                dx, dy = letter_delta[move]
                x, y = x + dx, y + dy
            assert (x, y) == positions[goal]

    def test_task20_motivation(self):
        from repro.data.babi import _MOTIVES
        for example in generate_task(20, 40, seed=9):
            if example.question[0] == "why":
                motive = example.story[0][-1]
                assert example.answer == motive
            else:  # where will X go
                motive = example.story[0][-1]
                assert example.answer == _MOTIVES[motive][0]


class TestApi:
    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="task_id"):
            generate_example(21, np.random.default_rng(0))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_task(1, -1)

    def test_mixed_covers_all_tasks(self):
        examples = generate_mixed(40, seed=0)
        assert {e.task_id for e in examples} == set(range(1, 21))

    def test_mixed_with_subset(self):
        examples = generate_mixed(10, seed=0, task_ids=(1, 2))
        assert {e.task_id for e in examples} == {1, 2}

    def test_vocabulary_covers_everything(self):
        examples = generate_mixed(60, seed=0)
        vocab = build_vocabulary(examples)
        for example in examples:
            for sentence in example.story + [example.question]:
                for token in sentence:
                    assert token in vocab
            assert example.answer in vocab

    def test_vectorize_shapes_and_padding(self):
        examples = generate_task(1, 20, seed=0)
        vocab = build_vocabulary(examples)
        stories, questions, answers = vectorize(examples, vocab, 8, 15)
        assert stories.shape == (20, 15, 8)
        assert questions.shape == (20, 8)
        assert answers.shape == (20,)
        assert stories.min() >= 0

    def test_vectorize_keeps_most_recent_sentences(self):
        examples = generate_task(1, 10, seed=0)
        vocab = build_vocabulary(examples)
        stories, _, _ = vectorize(examples, vocab, 8, 2)
        example = examples[0]
        last = vocab.encode(example.story[-1], width=8)
        np.testing.assert_array_equal(stories[0, -1], last)
