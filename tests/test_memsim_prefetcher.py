"""Tests for the hardware stride prefetcher."""

import pytest

from repro.core.config import ChunkConfig, MemNNConfig
from repro.memsim import (
    Access,
    DramModel,
    MemoryHierarchy,
    MemoryLayout,
    SetAssociativeCache,
    column_inference_trace,
)
from repro.memsim.prefetcher import StridePrefetcher


class TestDetector:
    def test_needs_confidence_before_issuing(self):
        pf = StridePrefetcher(trigger_confidence=2)
        assert pf.observe(10) == []  # first touch: learn region
        assert pf.observe(11) == []  # stride 1, confidence 1
        assert pf.observe(12) != []  # confidence 2: fire

    def test_prefetches_ahead_with_stride(self):
        pf = StridePrefetcher(degree=2, distance=3)
        pf.observe(10)
        pf.observe(11)
        targets = pf.observe(12)
        assert targets == [15, 16]

    def test_detects_negative_stride(self):
        pf = StridePrefetcher(degree=1, distance=1)
        pf.observe(100)
        pf.observe(98)
        targets = pf.observe(96)
        assert targets == [94]

    def test_random_pattern_stays_quiet(self):
        pf = StridePrefetcher()
        issued = []
        for line in (5, 91, 17, 64, 3, 77, 29, 50):
            issued += pf.observe(line)
        assert pf.stats.streams_detected == 0

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher(trigger_confidence=2)
        pf.observe(10)
        pf.observe(11)
        pf.observe(12)          # firing on stride 1
        assert pf.observe(20) == []  # stride jumped: re-learn
        # One more same-stride delta re-reaches the trigger confidence.
        assert pf.observe(28) != []

    def test_table_eviction_bounds_state(self):
        pf = StridePrefetcher(table_size=2)
        pf.observe(0)        # region 0
        pf.observe(1000)     # region 15
        pf.observe(20000)    # region 312 -> evicts region 0
        assert len(pf._table) == 2

    def test_repeated_same_line_is_not_a_stream(self):
        pf = StridePrefetcher()
        for _ in range(5):
            assert pf.observe(42) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)
        with pytest.raises(ValueError):
            StridePrefetcher(trigger_confidence=0)


class TestHierarchyIntegration:
    def make(self, prefetcher=None, llc_kb=256):
        return MemoryHierarchy(
            SetAssociativeCache(
                size_bytes=llc_kb * 1024, line_bytes=64, associativity=8
            ),
            DramModel(),
            prefetcher=prefetcher,
        )

    def test_sequential_scan_mostly_hits_with_prefetcher(self):
        hierarchy = self.make(StridePrefetcher(degree=4, distance=1))
        for i in range(512):
            hierarchy.access(Access(i * 64, 64))
        summary = hierarchy.stream("inference")
        # After the detector warms up, demand accesses land on
        # prefetched lines.
        assert summary.demand_misses < 0.2 * 512

    def test_sequential_scan_all_misses_without_prefetcher(self):
        hierarchy = self.make()
        for i in range(512):
            hierarchy.access(Access(i * 64, 64))
        assert hierarchy.stream("inference").demand_misses == 512

    def test_prefetch_traffic_still_counted_as_dram_bytes(self):
        hierarchy = self.make(StridePrefetcher(degree=2, distance=1))
        for i in range(128):
            hierarchy.access(Access(i * 64, 64))
        summary = hierarchy.stream("inference")
        assert summary.dram_bytes >= 128 * 64  # nothing is free

    def test_hw_prefetch_recovers_software_streaming_on_cpu(self):
        """Ablation: on a CPU, the generic stride prefetcher captures
        what §3.1's explicit streaming provides, because the
        column-based algorithm's access pattern is perfectly strided —
        that is *why* the paper's CPU numbers benefit so much from
        chunking.  (This functional model does not penalize prefetch
        timeliness; the latency effect lives in the roofline models.)"""
        cfg = MemNNConfig(
            embedding_dim=16, num_sentences=4000, num_questions=8,
            vocab_size=1000,
        )
        layout = MemoryLayout(cfg, chunk_size=250)

        def run(prefetcher, streaming):
            hierarchy = self.make(prefetcher, llc_kb=128)
            hierarchy.run_trace(
                column_inference_trace(
                    layout, ChunkConfig(250, streaming=streaming)
                )
            )
            return hierarchy.stream("inference").demand_misses

        no_help = run(None, streaming=False)
        hardware = run(StridePrefetcher(degree=8, distance=2), streaming=False)
        software = run(None, streaming=True)
        assert hardware < 0.1 * no_help
        assert software < 0.1 * no_help
